// A tour of the constraint DSL (paper Fig. 2): author a program as text,
// parse it against a schema, validate it, execute its denotational
// semantics on rows, measure loss / coverage / epsilon-validity, and print
// it back out. Constraints are plain text artifacts you can review, diff,
// and check into version control.
//
//   $ ./build/examples/dsl_tour

#include <cstdio>

#include "core/interpreter.h"
#include "core/metrics.h"
#include "core/parser.h"
#include "core/printer.h"
#include "table/table.h"

using namespace guardrail;

int main() {
  // The paper's case-study schema (Adult): relationship determines
  // marital status.
  Schema schema({Attribute("rel"), Attribute("marital_status"),
                 Attribute("workclass")});
  Table adult(std::move(schema));
  adult.AppendRowLabels({"Husband", "Married-civ-spouse", "Private"});
  adult.AppendRowLabels({"Wife", "Married-civ-spouse", "Private"});
  adult.AppendRowLabels({"Husband", "Married-civ-spouse", "Self-emp"});
  adult.AppendRowLabels({"Own-child", "Never-married", "Private"});
  adult.AppendRowLabels({"Husband", "Separated", "Private"});  // Corrupted!

  // The constraint of the paper's appendix case study, as text.
  const char* source =
      "GIVEN rel ON marital_status HAVING\n"
      "  IF rel = 'Husband' THEN marital_status <- 'Married-civ-spouse';\n"
      "  IF rel = 'Wife' THEN marital_status <- 'Married-civ-spouse';\n";

  Schema mutable_schema = adult.schema();
  auto program = core::ParseProgram(source, &mutable_schema);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("Parsed program (round-tripped through the printer):\n%s\n",
              core::ToDsl(*program, mutable_schema).c_str());

  // Denotational semantics: [[p]]_t for each row (Eqn. 1 detection).
  core::Interpreter interpreter(&*program);
  for (RowIndex r = 0; r < adult.num_rows(); ++r) {
    Row row = adult.GetRow(r);
    bool ok = interpreter.Satisfies(row);
    std::printf("row %lld: rel=%-9s marital_status=%-18s  %s\n",
                static_cast<long long>(r), adult.GetLabel(r, 0).c_str(),
                adult.GetLabel(r, 1).c_str(),
                ok ? "consistent" : "VIOLATION");
    if (!ok) {
      for (const auto& v : interpreter.Check(row)) {
        std::printf("         expected %s = '%s' (statement %d, branch %d)\n",
                    adult.schema().attribute(v.attribute).name().c_str(),
                    adult.schema().attribute(v.attribute).label(v.expected).c_str(),
                    v.statement_index, v.branch_index);
      }
    }
  }

  // Program quality metrics (Sec. 2.2).
  const core::Statement& stmt = program->statements[0];
  std::printf("\nstatement coverage cov(s, D) = %.2f   (Eqn. 6)\n",
              core::StatementCoverage(stmt, adult));
  std::printf("statement loss L(s, D)       = %lld  (Eqn. 2)\n",
              static_cast<long long>(core::StatementLoss(stmt, adult)));
  for (double epsilon : {0.1, 0.5}) {
    std::printf("epsilon-valid at eps=%.1f      = %s   (Eqn. 3)\n", epsilon,
                core::IsStatementEpsilonValid(stmt, adult, epsilon) ? "yes"
                                                                    : "no");
  }
  return 0;
}
