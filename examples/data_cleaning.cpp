// A batch data-cleaning pipeline: synthesize constraints from a trusted
// historical split, sweep an error-injected feed for violations, report
// detection quality against ground truth, repair the feed, and export the
// cleaned CSV — the "detector + sanitizer" deployment mode of the paper's
// introduction.
//
//   $ ./build/examples/data_cleaning [dataset_id]

#include <cstdio>
#include <cstdlib>

#include "core/guard.h"
#include "core/printer.h"
#include "exp/detection_metrics.h"
#include "exp/pipeline.h"
#include "table/profile.h"

using namespace guardrail;

int main(int argc, char** argv) {
  int dataset_id = argc > 1 ? std::atoi(argv[1]) : 9;  // Telco churn.
  if (dataset_id < 1 || dataset_id > 12) {
    std::fprintf(stderr, "dataset_id must be 1..12\n");
    return 1;
  }

  exp::ExperimentConfig config;
  config.row_limit = 8000;
  config.train_model = false;
  config.synthesis.fill.epsilon = 0.05;
  auto prepared = exp::PrepareDataset(dataset_id, config);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  const exp::PreparedDataset& p = **prepared;

  std::printf("Dataset #%d (%s): %lld training rows, %lld incoming rows, "
              "%zu injected errors\n\n",
              dataset_id, p.bundle.spec.name.c_str(),
              static_cast<long long>(p.train.num_rows()),
              static_cast<long long>(p.test_dirty.num_rows()),
              p.errors.size());

  std::printf("Column profile of the trusted split:\n%s\n",
              ToString(ProfileTable(p.train)).c_str());

  std::printf("Synthesized constraint program (%zu statements, %lld "
              "branches, coverage %.2f):\n%s\n",
              p.synthesis.program.statements.size(),
              static_cast<long long>(p.synthesis.program.NumBranches()),
              p.synthesis.coverage,
              core::ToDsl(p.synthesis.program, p.train.schema())
                  .substr(0, 1200)
                  .c_str());

  // Detection sweep.
  core::Guard guard(&p.synthesis.program);
  std::vector<bool> flags = guard.DetectViolations(p.test_dirty);
  exp::ConfusionCounts counts = exp::CountConfusion(flags, p.row_has_error);
  std::printf("Detection: TP=%lld FP=%lld FN=%lld TN=%lld  F1=%.3f "
              "MCC=%.3f\n",
              static_cast<long long>(counts.tp),
              static_cast<long long>(counts.fp),
              static_cast<long long>(counts.fn),
              static_cast<long long>(counts.tn), exp::F1(counts),
              exp::Mcc(counts));

  // Repair sweep.
  Table cleaned = p.test_dirty;
  core::GuardOutcome outcome =
      guard.ProcessTable(&cleaned, core::ErrorPolicy::kRectify);
  int64_t restored = 0;
  for (const auto& e : p.errors) {
    restored += cleaned.Get(e.row, e.column) == e.original_value ? 1 : 0;
  }
  std::printf("Repair: %lld rows flagged, %lld cells rewritten, "
              "%lld / %zu injected errors restored exactly\n",
              static_cast<long long>(outcome.rows_flagged),
              static_cast<long long>(outcome.cells_repaired),
              static_cast<long long>(restored), p.errors.size());

  // Export.
  std::string out_path = "/tmp/guardrail_cleaned_dataset.csv";
  Status status = WriteCsvFile(out_path, cleaned.ToCsv());
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Cleaned table exported to %s\n", out_path.c_str());
  return 0;
}
