// The paper's Fig. 1 scenario end to end: a hospital database, a purchased
// (opaque) ML model predicting dyspnea, and an ML-integrated SQL query whose
// result is silently skewed by noisy rows — until Guardrail vets every row
// the model sees.
//
//   $ ./build/examples/hospital_queries

#include <cstdio>

#include "core/guard.h"
#include "core/printer.h"
#include "core/synthesizer.h"
#include "ml/automl.h"
#include "sql/executor.h"
#include "table/error_injector.h"
#include "table/sem_generator.h"

using namespace guardrail;

namespace {

// A miniature "asia"-style diagnosis network (cf. the Lung Cancer dataset
// the paper evaluates): smoking drives lung findings, tub risk drives tub
// findings, either drives the xray result, and dysp (the prediction target)
// depends on the underlying condition.
SemModel BuildHospitalSem() {
  std::vector<SemNode> nodes(7);
  nodes[0] = {"floor", 6, {}, 0.0};          // Ward floor (free attribute).
  nodes[1] = {"smoking", 2, {}, 0.0};
  nodes[2] = {"tub_risk", 2, {}, 0.0};
  nodes[3] = {"lung", 3, {1}, 0.15};         // Stochastic given smoking.
  nodes[4] = {"either", 3, {2, 3}, 0.01};    // Disease code: near-functional.
  nodes[5] = {"xray", 3, {4}, 0.01};         // X-ray grade follows the code.
  nodes[6] = {"dysp", 2, {4}, 0.10};         // Shortness of breath.
  return SemModel(std::move(nodes), /*function_seed=*/2026);
}

}  // namespace

int main() {
  SemModel sem = BuildHospitalSem();
  Rng rng(7);
  Table history = sem.Sample(6000, &rng);   // The hospital's clean records.
  Table incoming = sem.Sample(2500, &rng);  // This week's intake.

  // The "proprietary third-party model": trained elsewhere on clean data.
  ml::AutoMlTrainer trainer;
  auto model = trainer.Train(history, /*label_column=*/6);
  if (!model.ok()) {
    std::fprintf(stderr, "model training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  // Guardrail synthesizes constraints from the historical records, offline.
  core::SynthesisOptions options;
  options.fill.epsilon = 0.05;
  core::Synthesizer synthesizer(options);
  core::SynthesisReport report = synthesizer.Synthesize(history, &rng);
  std::printf("Constraints synthesized from hospital records:\n%s\n",
              core::ToDsl(report.program, history.schema()).c_str());

  // Noisy intake: erroneous X-ray results / disease codes (Fig. 1).
  ErrorInjectionOptions injection;
  injection.error_rate = 0.02;
  injection.protected_columns = {0, 6};  // Floor and outcome stay intact.
  ErrorInjectionResult injected = InjectErrors(incoming, injection, &rng);

  // Bob's query: average predicted dyspnea likelihood per floor.
  const std::string query =
      "SELECT floor, AVG(CASE WHEN ML_PREDICT('dysp_model') = 'dysp_v1' "
      "THEN 1 ELSE 0 END) AS dysp_rate FROM admissions GROUP BY floor";

  auto run = [&](const Table& table, const core::Guard* guard) {
    sql::Executor executor;
    executor.RegisterTable("admissions", &table);
    executor.RegisterModel("dysp_model", model->get());
    if (guard != nullptr) {
      executor.SetGuard(guard, core::ErrorPolicy::kRectify);
    }
    auto result = executor.Execute(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*result);
  };

  sql::QueryResult truth = run(incoming, nullptr);
  sql::QueryResult dirty = run(injected.dirty, nullptr);
  core::Guard guard(&report.program);
  sql::QueryResult guarded = run(injected.dirty, &guard);

  std::printf("Ground truth (clean intake):\n%s\n", truth.ToString().c_str());
  std::printf("Dirty intake, unguarded:\n%s\n", dirty.ToString().c_str());
  std::printf("Dirty intake behind Guardrail (rectify):\n%s\n",
              guarded.ToString().c_str());
  return 0;
}
