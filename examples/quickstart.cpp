// Quickstart: synthesize integrity constraints from a tiny noisy table,
// detect a corrupted row, and rectify it — the paper's running
// PostalCode/City example (Sec. 2.1) in a dozen lines of API.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/guard.h"
#include "core/printer.h"
#include "core/synthesizer.h"
#include "table/table.h"

using namespace guardrail;

int main() {
  // 1. A small relation: PostalCode determines City (functionally), and a
  //    free-text note column that nothing determines.
  Schema schema({Attribute("postal_code"), Attribute("city"),
                 Attribute("note")});
  Table data(std::move(schema));
  const char* zips[] = {"94704", "94607", "10001", "73301"};
  const char* cities[] = {"Berkeley", "Oakland", "NewYork", "Austin"};
  for (int repeat = 0; repeat < 40; ++repeat) {
    for (int i = 0; i < 4; ++i) {
      data.AppendRowLabels(
          {zips[i], cities[i], "note" + std::to_string(repeat % 7)});
    }
  }

  // 2. Synthesize the constraint program (structure learning -> MEC ->
  //    sketch filling, Secs. 3-4 of the paper).
  core::SynthesisOptions options;
  options.fill.epsilon = 0.01;
  core::Synthesizer synthesizer(options);
  Rng rng(/*seed=*/42);
  core::SynthesisReport report = synthesizer.Synthesize(data, &rng);

  std::printf("Synthesized integrity constraints:\n%s\n",
              core::ToDsl(report.program, data.schema()).c_str());
  std::printf("coverage = %.2f, DAGs in MEC = %lld, CI tests = %lld\n\n",
              report.coverage,
              static_cast<long long>(report.num_dags_enumerated),
              static_cast<long long>(report.num_ci_tests));

  // 3. A corrupted row arrives: "Berkeley" was mangled to "gibbon"
  //    (paper Example 2.1).
  Row corrupted = data.GetRow(0);
  corrupted[1] = data.mutable_schema().attribute(1).GetOrInsert("gibbon");

  core::Guard guard(&report.program);

  // raise: surface the violation as an error.
  auto raised = guard.ProcessRow(corrupted, core::ErrorPolicy::kRaise);
  std::printf("raise   -> %s\n", raised.status().ToString().c_str());

  // rectify: repair to the most likely correct value.
  auto repaired = guard.ProcessRow(corrupted, core::ErrorPolicy::kRectify);
  if (repaired.ok()) {
    std::printf("rectify -> city restored to '%s'\n",
                data.schema().attribute(1).label((*repaired)[1]).c_str());
  }
  return 0;
}
