#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace guardrail {

namespace {

// Lanczos coefficients (g = 7, n = 9).
constexpr double kLanczos[] = {
    0.99999999999980993,     676.5203681218851,     -1259.1392167224028,
    771.32342877765313,      -176.61502916214059,   12.507343278686905,
    -0.13857109526572012,    9.9843695780195716e-6, 1.5056327351493116e-7};

// Continued fraction for Q(a, x), Numerical Recipes style.
double GammaQContinuedFraction(double a, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-14;
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - LnGamma(a)) * h;
}

// Series expansion for P(a, x).
double GammaPSeries(double a, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-14;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LnGamma(a));
}

// Assigns average ranks (1-based) to `values`, handling ties.
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

// Standard normal survival function via erfc.
double NormalSurvival(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

double LnGamma(double x) {
  GUARDRAIL_CHECK_GT(x, 0.0);
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small arguments.
    return std::log(M_PI / std::sin(M_PI * x)) - LnGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kLanczos[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kLanczos[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

double RegularizedGammaP(double a, double x) {
  GUARDRAIL_CHECK_GT(a, 0.0);
  GUARDRAIL_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  GUARDRAIL_CHECK_GT(a, 0.0);
  GUARDRAIL_CHECK_GE(x, 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSurvival(double x, double dof) {
  if (dof <= 0.0) return 1.0;
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(dof / 2.0, x / 2.0);
}

double LnBinomial(int64_t n, int64_t k) {
  GUARDRAIL_CHECK_GE(n, 0);
  GUARDRAIL_CHECK_GE(k, 0);
  GUARDRAIL_CHECK_LE(k, n);
  return LnGamma(static_cast<double>(n) + 1.0) -
         LnGamma(static_cast<double>(k) + 1.0) -
         LnGamma(static_cast<double>(n - k) + 1.0);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  GUARDRAIL_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  GUARDRAIL_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

double SpearmanPValue(double rho, size_t n) {
  if (n < 3) return 1.0;
  double df = static_cast<double>(n) - 2.0;
  double denom = 1.0 - rho * rho;
  if (denom <= 1e-12) return 0.0;
  double t = rho * std::sqrt(df / denom);
  // Two-sided p via the normal approximation of the t distribution adjusted
  // with a Welch-like correction; adequate for reporting significance here.
  double z = t * (1.0 - 1.0 / (4.0 * df));
  return 2.0 * NormalSurvival(std::fabs(z));
}

void MinMaxNormalize(std::vector<double>* values) {
  if (values->empty()) return;
  auto [mn_it, mx_it] = std::minmax_element(values->begin(), values->end());
  double mn = *mn_it, mx = *mx_it;
  double span = mx - mn;
  for (double& v : *values) v = span > 0.0 ? (v - mn) / span : 0.0;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double F1Score(int64_t tp, int64_t fp, int64_t fn) {
  double denom = static_cast<double>(2 * tp + fp + fn);
  if (denom <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(tp) / denom;
}

double MatthewsCorrelation(int64_t tp, int64_t fp, int64_t tn, int64_t fn) {
  double denom = std::sqrt(static_cast<double>(tp + fp)) *
                 std::sqrt(static_cast<double>(tp + fn)) *
                 std::sqrt(static_cast<double>(tn + fp)) *
                 std::sqrt(static_cast<double>(tn + fn));
  if (denom <= 0.0) return 0.0;
  return (static_cast<double>(tp) * static_cast<double>(tn) -
          static_cast<double>(fp) * static_cast<double>(fn)) /
         denom;
}

double WilcoxonSignedRankPValue(const std::vector<double>& a,
                                const std::vector<double>& b) {
  GUARDRAIL_CHECK_EQ(a.size(), b.size());
  std::vector<double> diffs;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(d);
  }
  const size_t n = diffs.size();
  if (n < 2) return 1.0;
  std::vector<double> abs_diffs(n);
  for (size_t i = 0; i < n; ++i) abs_diffs[i] = std::fabs(diffs[i]);
  std::vector<double> ranks = AverageRanks(abs_diffs);
  double w_plus = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (diffs[i] > 0.0) w_plus += ranks[i];
  }
  double nn = static_cast<double>(n);
  double mean = nn * (nn + 1.0) / 4.0;
  double sd = std::sqrt(nn * (nn + 1.0) * (2.0 * nn + 1.0) / 24.0);
  if (sd <= 0.0) return 1.0;
  double z = (w_plus - mean) / sd;
  return 2.0 * NormalSurvival(std::fabs(z));
}

}  // namespace guardrail
