#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace guardrail {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

std::string QuoteField(std::string_view field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text) {
  CsvDocument doc;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool record_has_content = false;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&]() -> Status {
    end_field();
    if (doc.header.empty() && doc.rows.empty()) {
      doc.header = std::move(record);
    } else {
      if (record.size() != doc.header.size()) {
        return Status::ParseError("CSV row has " +
                                  std::to_string(record.size()) +
                                  " fields, header has " +
                                  std::to_string(doc.header.size()));
      }
      doc.rows.push_back(std::move(record));
    }
    record.clear();
    record_has_content = false;
    return Status::OK();
  };

  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      if (c == '"') {
        in_quotes = true;
        record_has_content = true;
      } else if (c == ',') {
        end_field();
        record_has_content = true;
      } else if (c == '\n' || c == '\r') {
        if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
        if (record_has_content || !field.empty() || !record.empty()) {
          GUARDRAIL_RETURN_NOT_OK(end_record());
        }
      } else {
        field += c;
        record_has_content = true;
      }
    }
    ++i;
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (record_has_content || !field.empty() || !record.empty()) {
    GUARDRAIL_RETURN_NOT_OK(end_record());
  }
  if (doc.header.empty()) return Status::ParseError("empty CSV input");
  return doc;
}

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  auto write_record = [&](const std::vector<std::string>& record) {
    for (size_t i = 0; i < record.size(); ++i) {
      if (i > 0) out += ',';
      out += NeedsQuoting(record[i]) ? QuoteField(record[i]) : record[i];
    }
    out += '\n';
  };
  write_record(doc.header);
  for (const auto& row : doc.rows) write_record(row);
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCsv(ss.str());
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsv(doc);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace guardrail
