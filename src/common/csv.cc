#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace guardrail {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

std::string QuoteField(std::string_view field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// "row R, column C" with 1-based positions (row 1 is the header).
std::string At(size_t row, size_t column) {
  return "row " + std::to_string(row) + ", column " + std::to_string(column);
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text) {
  GUARDRAIL_FAILPOINT("csv.parse");
  CsvDocument doc;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool record_has_content = false;
  // 1-based positions for error context. `row` counts records (header = 1);
  // `column` counts fields within the current record.
  size_t row = 1;
  size_t column = 1;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
    ++column;
  };
  auto end_record = [&]() -> Status {
    end_field();
    if (doc.header.empty() && doc.rows.empty()) {
      doc.header = std::move(record);
    } else {
      if (record.size() != doc.header.size()) {
        return Status::InvalidArgument(
            "CSV row has " + std::to_string(record.size()) +
            " field(s) but the header has " +
            std::to_string(doc.header.size()) + " (row " + std::to_string(row) +
            ")");
      }
      doc.rows.push_back(std::move(record));
    }
    record.clear();
    record_has_content = false;
    ++row;
    column = 1;
    return Status::OK();
  };

  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '\0') {
      return Status::InvalidArgument("CSV contains a NUL byte at " +
                                     At(row, column));
    }
    if (field.size() >= kMaxCsvFieldBytes) {
      return Status::InvalidArgument(
          "CSV field exceeds " + std::to_string(kMaxCsvFieldBytes) +
          " bytes at " + At(row, column));
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      if (c == '"') {
        if (!field.empty() || field_was_quoted) {
          // RFC 4180: a quote may only open a field or escape inside one.
          // `ab"cd` or `"ab"cd` would silently mis-parse; reject instead.
          return Status::InvalidArgument(
              "misplaced quote inside unquoted CSV field at " +
              At(row, column));
        }
        in_quotes = true;
        field_was_quoted = true;
        record_has_content = true;
      } else if (c == ',') {
        end_field();
        record_has_content = true;
      } else if (c == '\n' || c == '\r') {
        if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
        if (record_has_content || !field.empty() || !record.empty()) {
          GUARDRAIL_RETURN_NOT_OK(end_record());
        }
      } else {
        if (field_was_quoted) {
          return Status::InvalidArgument(
              "characters after closing quote in CSV field at " +
              At(row, column));
        }
        field += c;
        record_has_content = true;
      }
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field at " +
                                   At(row, column));
  }
  if (record_has_content || !field.empty() || !record.empty()) {
    GUARDRAIL_RETURN_NOT_OK(end_record());
  }
  if (doc.header.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }
  return doc;
}

std::string WriteCsvRecord(const std::vector<std::string>& record) {
  std::string out;
  for (size_t i = 0; i < record.size(); ++i) {
    if (i > 0) out += ',';
    out += NeedsQuoting(record[i]) ? QuoteField(record[i]) : record[i];
  }
  return out;
}

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  auto write_record = [&](const std::vector<std::string>& record) {
    out += WriteCsvRecord(record);
    out += '\n';
  };
  write_record(doc.header);
  for (const auto& row : doc.rows) write_record(row);
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path) {
  GUARDRAIL_FAILPOINT("csv.open");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCsv(ss.str());
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  GUARDRAIL_FAILPOINT("csv.write");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsv(doc);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace guardrail
