#ifndef GUARDRAIL_COMMON_RETRY_H_
#define GUARDRAIL_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/status.h"

namespace guardrail {

/// Whether an idempotent operation that failed with `code` is worth
/// re-attempting. Transient categories — transport failures, overload
/// shedding, deadline expiry of a single attempt — are retryable; semantic
/// failures (bad input, unknown entity, broken invariants) will fail the
/// same way every time and short-circuit immediately.
bool IsRetryableStatusCode(StatusCode code);

inline bool IsRetryableStatus(const Status& status) {
  return !status.ok() && IsRetryableStatusCode(status.code());
}

/// Exponential-backoff retry policy. All randomness (jitter) flows through
/// the repo's seeded Rng, so a retry schedule replays bit-for-bit from
/// `seed` — chaos tests can assert exact backoff sequences.
struct RetryPolicy {
  /// Total attempts, including the first; < 1 behaves as 1.
  int max_attempts = 4;
  int64_t initial_backoff_ms = 10;
  int64_t max_backoff_ms = 2000;
  double multiplier = 2.0;
  /// Each backoff is drawn uniformly from
  /// [base * (1 - jitter), base * (1 + jitter)]; 0 disables jitter.
  double jitter = 0.2;
  uint64_t seed = 0x5E77A11ULL;
};

/// The deterministic backoff sequence of one logical operation: attempt,
/// fail, NextBackoffMillis(), sleep, attempt, ... Two schedules built from
/// identical policies emit identical sequences.
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy);

  /// Backoff to wait before the next attempt, advancing the sequence.
  /// Always in [base * (1 - jitter), base * (1 + jitter)] where base is the
  /// exponentially grown (and max-capped) current backoff.
  int64_t NextBackoffMillis();

  /// Backoffs handed out so far.
  int backoffs_drawn() const { return backoffs_drawn_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  double base_ms_;
  int backoffs_drawn_ = 0;
};

struct RetryStats {
  int attempts = 0;
  int64_t total_backoff_ms = 0;
};

/// Runs `attempt` (called with the 0-based attempt index) until it returns
/// OK, fails with a non-retryable code, exhausts `policy.max_attempts`, or
/// the deadline runs out. Sleeps the schedule's backoff between attempts,
/// never past the deadline: when the remaining budget cannot cover the next
/// backoff, the loop gives up and returns the last error (or Timeout when
/// the deadline expired before any attempt ran).
Status RetryWithBackoff(const RetryPolicy& policy, const Deadline& deadline,
                        const std::function<Status(int attempt)>& attempt,
                        RetryStats* stats = nullptr);

}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_RETRY_H_
