#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/telemetry/metrics.h"

namespace guardrail {

ThreadPool::ThreadPool(int num_workers) {
  int n = std::max(0, num_workers);
  queues_.resize(static_cast<size_t>(std::max(1, n)));
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // With zero workers nobody drained the queues; honor the run-exactly-once
  // contract by executing the leftovers on the destroying thread.
  for (auto& queue : queues_) {
    while (!queue.empty()) {
      std::function<void()> task = std::move(queue.front());
      queue.pop_front();
      task();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queues_[next_queue_++ % queues_.size()].push_back(std::move(task));
  }
  cv_.notify_one();
  GUARDRAIL_COUNTER_INC("thread_pool.tasks_submitted");
}

bool ThreadPool::NextTask(size_t worker_index, std::function<void()>* task) {
  auto& own = queues_[worker_index % queues_.size()];
  if (!own.empty()) {
    *task = std::move(own.front());
    own.pop_front();
    return true;
  }
  for (size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = queues_[(worker_index + k) % queues_.size()];
    if (!victim.empty()) {
      *task = std::move(victim.back());
      victim.pop_back();
      GUARDRAIL_COUNTER_INC("thread_pool.tasks_stolen");
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this, worker_index, &task] {
        return NextTask(worker_index, &task) || stop_;
      });
      if (!task) return;  // stop_ and every deque empty: drained.
    }
    task();
    GUARDRAIL_COUNTER_INC("thread_pool.tasks_executed");
  }
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("GUARDRAIL_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::mutex g_shared_pool_mu;
std::unique_ptr<ThreadPool>& SharedPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
int g_shared_pool_workers = -1;  // -1: size from DefaultThreads() - 1.

}  // namespace

ThreadPool& ThreadPool::Shared() {
  std::unique_lock<std::mutex> lock(g_shared_pool_mu);
  auto& slot = SharedPoolSlot();
  if (slot == nullptr) {
    int workers = g_shared_pool_workers >= 0
                      ? g_shared_pool_workers
                      : std::max(0, DefaultThreads() - 1);
    slot = std::make_unique<ThreadPool>(workers);
  }
  return *slot;
}

void ThreadPool::SetSharedWorkers(int num_workers) {
  std::unique_lock<std::mutex> lock(g_shared_pool_mu);
  g_shared_pool_workers = std::max(0, num_workers);
  auto& slot = SharedPoolSlot();
  if (slot != nullptr && slot->num_workers() != g_shared_pool_workers) {
    slot.reset();  // Recreated lazily at the new size.
  }
}

int ResolveThreads(int num_threads) {
  return num_threads > 0 ? num_threads : ThreadPool::DefaultThreads();
}

namespace {

/// Shared fork/join state for one ParallelFor. Chunks are claimed through an
/// atomic cursor; every claimed chunk decrements `chunks_left` whether its
/// bodies ran or were skipped by cancellation, so the count always reaches
/// zero and the caller's wait always terminates.
struct ParallelForState {
  const std::function<void(int64_t)>* body = nullptr;
  int64_t num_items = 0;
  int64_t chunk_size = 1;
  int64_t num_chunks = 0;
  const CancellationToken* cancel = nullptr;
  uint32_t cancel_stride = 64;

  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> chunks_left{0};
  std::atomic<bool> cancelled{false};

  std::mutex done_mu;
  std::condition_variable done_cv;
};

/// Claims and executes chunks until the cursor runs out. Runs on the caller
/// and on every helper task; safe to run after the loop finished (it simply
/// finds no chunk to claim).
void DrainChunks(const std::shared_ptr<ParallelForState>& state) {
  uint32_t countdown = 0;
  for (;;) {
    int64_t chunk = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= state->num_chunks) return;
    if (!state->cancelled.load(std::memory_order_relaxed)) {
      int64_t begin = chunk * state->chunk_size;
      int64_t end = std::min(begin + state->chunk_size, state->num_items);
      for (int64_t i = begin; i < end; ++i) {
        if (state->cancel != nullptr) {
          if (countdown == 0) {
            countdown = state->cancel_stride;
            if (state->cancel->Cancelled()) {
              state->cancelled.store(true, std::memory_order_relaxed);
              break;
            }
          }
          --countdown;
        }
        (*state->body)(i);
      }
    }
    // Release pairs with the caller's acquire load: every slot write made by
    // this chunk's bodies is visible once the caller observes zero.
    if (state->chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::unique_lock<std::mutex> lock(state->done_mu);
      state->done_cv.notify_all();
    }
  }
}

}  // namespace

Status ParallelFor(ThreadPool* pool, int64_t num_items,
                   const std::function<void(int64_t)>& body,
                   const ParallelForOptions& options) {
  if (num_items <= 0) return Status::OK();

  int workers = pool != nullptr ? pool->num_workers() : 0;
  int parallelism = options.max_parallelism > 0
                        ? options.max_parallelism
                        : workers + 1;
  int helpers = std::min(parallelism - 1, workers);
  if (helpers < 0) helpers = 0;

  auto state = std::make_shared<ParallelForState>();
  state->body = &body;
  state->num_items = num_items;
  // Over-decompose by 4x relative to the executor count so stealing can
  // rebalance skewed bodies; chunking never affects results, only schedule.
  int64_t target_chunks = static_cast<int64_t>(helpers + 1) * 4;
  state->chunk_size = std::max<int64_t>(
      options.min_items_per_chunk,
      (num_items + target_chunks - 1) / target_chunks);
  state->num_chunks =
      (num_items + state->chunk_size - 1) / state->chunk_size;
  state->chunks_left.store(state->num_chunks, std::memory_order_relaxed);
  state->cancel = options.cancel;
  state->cancel_stride = std::max<uint32_t>(1, options.cancel_stride);

  GUARDRAIL_COUNTER_INC("thread_pool.parallel_for_calls");
  helpers = static_cast<int>(
      std::min<int64_t>(helpers, state->num_chunks - 1));
  for (int h = 0; h < helpers; ++h) {
    pool->Submit([state] { DrainChunks(state); });
  }
  DrainChunks(state);

  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&state] {
      return state->chunks_left.load(std::memory_order_acquire) == 0;
    });
  }

  if (state->cancelled.load(std::memory_order_relaxed)) {
    GUARDRAIL_COUNTER_INC("thread_pool.parallel_for_cancelled");
    return options.cancel->CheckTimeout("parallel_for");
  }
  return Status::OK();
}

}  // namespace guardrail
