#ifndef GUARDRAIL_COMMON_LOGGING_H_
#define GUARDRAIL_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/telemetry/log.h"  // IWYU pragma: export (GUARDRAIL_LOG)

namespace guardrail {
namespace internal_logging {

/// Accumulates a fatal message and aborts the process on destruction. Used by
/// the GUARDRAIL_CHECK family; invariant violations are programming errors,
/// not recoverable conditions, so they terminate (Status is for data errors).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "FATAL " << file << ":" << line << "] ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace guardrail

/// Aborts with a message when `condition` is false.
#define GUARDRAIL_CHECK(condition)                                     \
  if (!(condition))                                                    \
  ::guardrail::internal_logging::FatalLogMessage(__FILE__, __LINE__)   \
      .stream()                                                        \
      << "Check failed: " #condition " "

#define GUARDRAIL_CHECK_EQ(a, b) GUARDRAIL_CHECK((a) == (b))
#define GUARDRAIL_CHECK_NE(a, b) GUARDRAIL_CHECK((a) != (b))
#define GUARDRAIL_CHECK_LT(a, b) GUARDRAIL_CHECK((a) < (b))
#define GUARDRAIL_CHECK_LE(a, b) GUARDRAIL_CHECK((a) <= (b))
#define GUARDRAIL_CHECK_GT(a, b) GUARDRAIL_CHECK((a) > (b))
#define GUARDRAIL_CHECK_GE(a, b) GUARDRAIL_CHECK((a) >= (b))

/// Aborts when a Status-returning expression fails. For call sites where an
/// error indicates a bug rather than a runtime condition.
#define GUARDRAIL_CHECK_OK(expr)                                       \
  do {                                                                 \
    ::guardrail::Status _st = (expr);                                  \
    GUARDRAIL_CHECK(_st.ok()) << _st.ToString();                       \
  } while (0)

#endif  // GUARDRAIL_COMMON_LOGGING_H_
