#include "common/rng.h"

#include <cmath>

namespace guardrail {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  GUARDRAIL_CHECK_GT(bound, 0u);
  // Lemire-style rejection: accept values below the largest multiple of bound.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  GUARDRAIL_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    GUARDRAIL_CHECK_GE(w, 0.0);
    total += w;
  }
  GUARDRAIL_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  GUARDRAIL_CHECK_LE(k, n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k entries form the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextUint64(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace guardrail
