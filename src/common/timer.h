#ifndef GUARDRAIL_COMMON_TIMER_H_
#define GUARDRAIL_COMMON_TIMER_H_

#include <chrono>

namespace guardrail {

/// Monotonic wall-clock stopwatch used for the timing columns of the
/// experiment tables.
class StopWatch {
 public:
  StopWatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_TIMER_H_
