#include "common/failpoint.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/telemetry/telemetry.h"

namespace guardrail {

namespace {

// FNV-1a over the point name; folded into the seed so each point draws an
// independent deterministic stream.
uint64_t HashName(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h = (h ^ static_cast<uint64_t>(static_cast<unsigned char>(c))) *
        1099511628211ULL;
  }
  return h;
}

Status MakeInjected(StatusCode code, std::string_view name) {
  std::string msg = "injected failure at failpoint '" + std::string(name) + "'";
  return Status(code, std::move(msg));
}

bool ParseCodeName(std::string_view text, StatusCode* code) {
  if (text == "invalid") *code = StatusCode::kInvalidArgument;
  else if (text == "notfound") *code = StatusCode::kNotFound;
  else if (text == "range") *code = StatusCode::kOutOfRange;
  else if (text == "exhausted") *code = StatusCode::kResourceExhausted;
  else if (text == "parse") *code = StatusCode::kParseError;
  else if (text == "io") *code = StatusCode::kIoError;
  else if (text == "internal") *code = StatusCode::kInternal;
  else if (text == "timeout") *code = StatusCode::kTimeout;
  else return false;
  return true;
}

}  // namespace

struct FailpointRegistry::Impl {
  struct Armed {
    double probability = 1.0;
    StatusCode code = StatusCode::kInternal;
    Rng rng{0};
  };

  mutable std::mutex mu;
  std::map<std::string, Armed, std::less<>> points;
  // Fast path: skip the lock entirely while nothing is armed.
  std::atomic<int32_t> num_armed{0};
  std::atomic<int64_t> trips_fired{0};
};

FailpointRegistry::FailpointRegistry() : impl_(new Impl()) {
  const char* env = std::getenv("GUARDRAIL_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    // A malformed env spec is an operator error; surface it loudly but do
    // not abort — the process may be a production service.
    Status st = ArmFromSpec(env);
    if (!st.ok()) {
      std::fprintf(stderr, "GUARDRAIL_FAILPOINTS ignored: %s\n",
                   st.ToString().c_str());
      DisarmAll();
    }
  }
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(std::string_view name, double probability,
                            StatusCode code, uint64_t seed) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::Armed armed;
  armed.probability = probability;
  armed.code = code;
  armed.rng = Rng(seed ^ HashName(name));
  impl_->points.insert_or_assign(std::string(name), std::move(armed));
  impl_->num_armed.store(static_cast<int32_t>(impl_->points.size()),
                         std::memory_order_release);
}

void FailpointRegistry::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  if (it != impl_->points.end()) impl_->points.erase(it);
  impl_->num_armed.store(static_cast<int32_t>(impl_->points.size()),
                         std::memory_order_release);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->points.clear();
  impl_->num_armed.store(0, std::memory_order_release);
}

Status FailpointRegistry::ArmFromSpec(std::string_view spec, uint64_t seed) {
  for (const std::string& entry : StrSplit(spec, ',')) {
    std::string_view trimmed = StrTrim(entry);
    if (trimmed.empty()) continue;
    std::string_view name = trimmed;
    double probability = 1.0;
    StatusCode code = StatusCode::kInternal;
    size_t eq = trimmed.find('=');
    if (eq != std::string_view::npos) {
      name = trimmed.substr(0, eq);
      std::string_view rest = trimmed.substr(eq + 1);
      std::string_view prob_text = rest;
      size_t at = rest.find('@');
      if (at != std::string_view::npos) {
        prob_text = rest.substr(0, at);
        if (!ParseCodeName(rest.substr(at + 1), &code)) {
          return Status::InvalidArgument("unknown failpoint status code '" +
                                         std::string(rest.substr(at + 1)) +
                                         "'");
        }
      }
      if (!ParseDouble(prob_text, &probability) ||
          probability < 0.0 || probability > 1.0) {
        return Status::InvalidArgument("bad failpoint probability '" +
                                       std::string(prob_text) + "'");
      }
    }
    if (name.empty()) {
      return Status::InvalidArgument("empty failpoint name in spec");
    }
    Arm(name, probability, code, seed);
  }
  return Status::OK();
}

Status FailpointRegistry::Trip(std::string_view name) {
  if (impl_->num_armed.load(std::memory_order_acquire) == 0) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  if (it == impl_->points.end()) return Status::OK();
  Impl::Armed& armed = it->second;
  if (armed.probability < 1.0 && !armed.rng.NextBernoulli(armed.probability)) {
    return Status::OK();
  }
  impl_->trips_fired.fetch_add(1, std::memory_order_relaxed);
  Status injected = MakeInjected(armed.code, name);
  GUARDRAIL_LOG(WARN) << "failpoint tripped"
                      << telemetry::Kv("point", name)
                      << telemetry::Kv("code",
                                       StatusCodeToString(armed.code));
  GUARDRAIL_COUNTER_INC("failpoint.trips_total");
  if (telemetry::TracingEnabled()) {
    std::string args = "\"point\": \"";
    telemetry::AppendJsonEscaped(name, &args);
    args += "\"";
    telemetry::InstantEvent("failpoint.trip", args);
  }
  return injected;
}

bool FailpointRegistry::IsArmed(std::string_view name) const {
  if (impl_->num_armed.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->points.find(name) != impl_->points.end();
}

std::vector<std::string> FailpointRegistry::ArmedNames() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->points.size());
  for (const auto& [name, armed] : impl_->points) names.push_back(name);
  return names;
}

int64_t FailpointRegistry::trips_fired() const {
  return impl_->trips_fired.load(std::memory_order_relaxed);
}

}  // namespace guardrail
