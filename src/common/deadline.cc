#include "common/deadline.h"

namespace guardrail {

Status CancellationToken::CheckTimeout(const char* stage) const {
  if (!Cancelled()) return Status::OK();
  return Status::Timeout(std::string(stage) +
                         (cancelled_->load(std::memory_order_relaxed)
                              ? ": cancelled"
                              : ": deadline expired"));
}

}  // namespace guardrail
