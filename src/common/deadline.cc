#include "common/deadline.h"

#include "common/telemetry/telemetry.h"

namespace guardrail {

Status CancellationToken::CheckTimeout(const char* stage) const {
  if (!Cancelled()) return Status::OK();
  const bool explicit_cancel =
      cancelled_->load(std::memory_order_relaxed);
  GUARDRAIL_LOG(WARN) << (explicit_cancel ? "stage cancelled"
                                          : "deadline expired")
                      << telemetry::Kv("stage", stage);
  // Two distinct macro sites: the counter pointer is cached per-site, so a
  // single site with a ternary name would pin whichever name fired first.
  if (explicit_cancel) {
    GUARDRAIL_COUNTER_INC("deadline.cancellations_total");
  } else {
    GUARDRAIL_COUNTER_INC("deadline.expiries_total");
  }
  if (telemetry::TracingEnabled()) {
    std::string args = "\"stage\": \"";
    telemetry::AppendJsonEscaped(stage, &args);
    args += "\", \"cancelled\": ";
    args += explicit_cancel ? "true" : "false";
    telemetry::InstantEvent("deadline.expired", args);
  }
  return Status::Timeout(std::string(stage) +
                         (explicit_cancel ? ": cancelled"
                                          : ": deadline expired"));
}

}  // namespace guardrail
