#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace guardrail {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string StrToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StrStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool StrEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = StrTrim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = StrTrim(s);
  if (s.empty()) return false;
  // std::from_chars for double is unreliable across libstdc++ versions; use
  // strtod with an explicit end check.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

}  // namespace guardrail
