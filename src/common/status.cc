#include "common/status.h"

namespace guardrail {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kConstraintViolation:
      return "Constraint violation";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace guardrail
