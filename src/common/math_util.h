#ifndef GUARDRAIL_COMMON_MATH_UTIL_H_
#define GUARDRAIL_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace guardrail {

/// Natural log of the gamma function (Lanczos approximation); valid for x > 0.
double LnGamma(double x);

/// Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: P[X >= x]. Returns 1.0 when dof == 0 (degenerate test).
double ChiSquareSurvival(double x, double dof);

/// Natural log of n-choose-k.
double LnBinomial(int64_t n, int64_t k);

/// Pearson correlation of two equally sized samples; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Approximate two-sided p-value for a Spearman correlation via the
/// t-distribution approximation with n-2 degrees of freedom.
double SpearmanPValue(double rho, size_t n);

/// Min-max normalizes `values` in place to [0, 1]; all-equal input maps to 0.
void MinMaxNormalize(std::vector<double>* values);

/// Mean and (population) standard deviation helpers.
double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

/// Binary classification metrics from confusion counts.
double F1Score(int64_t tp, int64_t fp, int64_t fn);
double MatthewsCorrelation(int64_t tp, int64_t fp, int64_t tn, int64_t fn);

/// Wilcoxon signed-rank test p-value (normal approximation) for paired
/// samples; used for the auxiliary-sampler significance claim (Table 8).
double WilcoxonSignedRankPValue(const std::vector<double>& a,
                                const std::vector<double>& b);

}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_MATH_UTIL_H_
