#ifndef GUARDRAIL_COMMON_STRING_UTIL_H_
#define GUARDRAIL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace guardrail {

/// Splits `input` at every occurrence of `sep`. Adjacent separators produce
/// empty fields; an empty input yields one empty field.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// ASCII lower-casing.
std::string StrToLower(std::string_view s);

bool StrStartsWith(std::string_view s, std::string_view prefix);
bool StrEndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool StrEqualsIgnoreCase(std::string_view a, std::string_view b);

/// Parses a decimal integer / double; returns false on any trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

/// Formats a double with `digits` significant digits, trimming zeros.
std::string FormatDouble(double value, int digits = 6);

}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_STRING_UTIL_H_
