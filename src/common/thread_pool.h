#ifndef GUARDRAIL_COMMON_THREAD_POOL_H_
#define GUARDRAIL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"

namespace guardrail {

/// A fixed-size pool of workers with per-worker task deques and work
/// stealing: a worker drains its own deque front-first and, when empty,
/// steals from the back of a sibling's deque. Submission round-robins across
/// deques so independent call sites spread naturally; stealing rebalances
/// when task costs are skewed.
///
/// The pool is a pure executor — it never blocks a caller. Fork/join
/// parallelism is layered on top by ParallelFor, whose calling thread
/// participates in the loop body, so nesting a ParallelFor inside a pool
/// task cannot deadlock even when every worker is busy: the caller simply
/// runs all chunks itself.
///
/// Destruction drains every queued task before joining the workers, so a
/// submitted task always runs exactly once.
class ThreadPool {
 public:
  /// Spawns `num_workers` workers (0 is valid: Submit still accepts tasks,
  /// they are executed by the destructor's drain or by ParallelFor callers).
  explicit ThreadPool(int num_workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for asynchronous execution. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Default worker parallelism for this process: the GUARDRAIL_THREADS
  /// environment variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  static int DefaultThreads();

  /// The process-wide pool shared by the synthesis pipeline. Created on
  /// first use with DefaultThreads() - 1 workers (ParallelFor callers
  /// participate, so k workers give k+1-way parallelism).
  static ThreadPool& Shared();

  /// Resizes the shared pool to `num_workers` (recreating it if it already
  /// exists with a different size). Call before or between pipeline runs,
  /// not concurrently with them.
  static void SetSharedWorkers(int num_workers);

 private:
  void WorkerLoop(size_t worker_index);

  /// Pops a task for `worker_index`, preferring its own deque and stealing
  /// from siblings otherwise. Requires mu_ held. Returns false if every
  /// deque is empty.
  bool NextTask(size_t worker_index, std::function<void()>* task);

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t next_queue_ = 0;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
};

/// Effective parallelism for a component-level `num_threads` option:
/// positive values are taken literally, 0 (the "default" sentinel) resolves
/// to ThreadPool::DefaultThreads().
int ResolveThreads(int num_threads);

struct ParallelForOptions {
  /// Maximum concurrent executors including the calling thread; <= 0 means
  /// pool workers + 1. The value never changes the result, only the
  /// schedule: with max_parallelism 1 (or an empty pool) the loop runs
  /// inline on the caller.
  int max_parallelism = 0;
  /// Lower bound on items per scheduling chunk, for bodies so cheap that
  /// per-item dispatch would dominate.
  int64_t min_items_per_chunk = 1;
  /// Cooperative cancellation: polled amortized between loop iterations by
  /// every executor. Once observed, no further bodies start and ParallelFor
  /// returns the token's timeout status.
  const CancellationToken* cancel = nullptr;
  /// How many iterations may run between cancellation polls.
  uint32_t cancel_stride = 64;
};

/// Runs body(i) for every i in [0, num_items), distributing contiguous
/// chunks over the calling thread plus up to max_parallelism - 1 pool
/// workers. Determinism contract: the set of (i -> body(i)) executions is
/// independent of thread count and scheduling; bodies communicate results
/// only through their own index-i slot in caller-owned storage, so any
/// thread count yields bit-identical output. Bodies for distinct i run
/// concurrently and must not touch shared mutable state without their own
/// synchronization.
///
/// Returns OK after all bodies ran; on cancellation, skips remaining bodies
/// (already-started chunks stop at the next poll) and returns the token's
/// Status::Timeout. The caller must then treat result slots as
/// partially-filled.
Status ParallelFor(ThreadPool* pool, int64_t num_items,
                   const std::function<void(int64_t)>& body,
                   const ParallelForOptions& options = ParallelForOptions());

}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_THREAD_POOL_H_
