#ifndef GUARDRAIL_COMMON_TELEMETRY_METRICS_H_
#define GUARDRAIL_COMMON_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/telemetry/state.h"

namespace guardrail {
namespace telemetry {

/// A monotonically increasing (well, Add can be negative, but by convention
/// it is not) named value. Thread-safe: increments are relaxed atomic adds,
/// which is all a statistics counter needs — no ordering with other memory.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer samples with
/// power-of-two bucket bounds 1, 2, 4, ... — cheap enough for per-row
/// recording (one atomic add into the right bucket) and lossless about the
/// distribution shape that matters for skew diagnosis.
class Histogram {
 public:
  /// Bounds are 2^0 .. 2^(kNumBounds-1); the last bucket is the overflow.
  static constexpr int kNumBounds = 32;

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i (inclusive); the final bucket is unbounded.
  static int64_t BucketBound(int i) { return int64_t{1} << i; }

  void Reset();

 private:
  std::array<std::atomic<int64_t>, kNumBounds + 1> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Process-wide name -> metric registry. Lookup takes a mutex, so hot call
/// sites cache the returned pointer (see GUARDRAIL_COUNTER_ADD); pointers
/// stay valid for the process lifetime — ResetAll zeroes values but never
/// invalidates a metric.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Value of `name`, or 0 when the counter was never touched.
  int64_t CounterValue(std::string_view name) const;

  /// Every metric as a JSON document:
  ///   {"counters": {...}, "histograms": {"n": {"count":..,"sum":..,
  ///    "bucket_bounds":[..],"bucket_counts":[..]}}}
  std::string ToJson() const;

  /// Sorted names of all counters touched so far.
  std::vector<std::string> CounterNames() const;

  /// Zeroes every metric (pointers stay valid).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace telemetry
}  // namespace guardrail

/// Adds `delta` to the named counter when metrics are on. `name` must be a
/// string literal: the resolved pointer is cached in a function-local static
/// so the steady-state cost is one relaxed flag load, one branch, and one
/// relaxed add — and just the load + branch while telemetry is disabled.
#define GUARDRAIL_COUNTER_ADD(name, delta)                                  \
  do {                                                                      \
    if (::guardrail::telemetry::MetricsEnabled()) {                         \
      static ::guardrail::telemetry::Counter* _guardrail_counter_ =         \
          ::guardrail::telemetry::MetricsRegistry::Instance().GetCounter(   \
              name);                                                        \
      _guardrail_counter_->Add(delta);                                      \
    }                                                                       \
  } while (0)

#define GUARDRAIL_COUNTER_INC(name) GUARDRAIL_COUNTER_ADD(name, 1)

/// Records `value` into the named histogram when metrics are on (same
/// caching scheme as GUARDRAIL_COUNTER_ADD).
#define GUARDRAIL_HISTOGRAM_RECORD(name, value)                             \
  do {                                                                      \
    if (::guardrail::telemetry::MetricsEnabled()) {                         \
      static ::guardrail::telemetry::Histogram* _guardrail_histogram_ =     \
          ::guardrail::telemetry::MetricsRegistry::Instance().GetHistogram( \
              name);                                                        \
      _guardrail_histogram_->Record(value);                                 \
    }                                                                       \
  } while (0)

#endif  // GUARDRAIL_COMMON_TELEMETRY_METRICS_H_
