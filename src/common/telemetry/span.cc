#include "common/telemetry/span.h"

#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/telemetry/metrics.h"
#include "common/telemetry/telemetry.h"

namespace guardrail {
namespace telemetry {

namespace {

// Bounded so a long-running traced process cannot grow without limit; drops
// are counted and reported rather than silently truncated.
constexpr size_t kMaxTraceEvents = 1 << 20;

struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEventRecord> events;
  int64_t dropped = 0;
  // Streaming sink (StartTraceStream): when `stream` is open, events flush
  // to it whenever the buffer reaches `flush_threshold` instead of hitting
  // the in-memory cap.
  FILE* stream = nullptr;
  size_t flush_threshold = 0;
  // True once at least one record was written to `stream` (comma placement
  // in the JSON event array).
  bool stream_has_events = false;
};

TraceBuffer& Buffer() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

// Trace timestamps are micros since the first event of the process, which
// keeps them small and stable across runs.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

uint32_t CurrentTid() {
  static std::atomic<uint32_t> next_tid{1};
  thread_local uint32_t tid = next_tid.fetch_add(1);
  return tid;
}

/// Renders one record as a Chrome trace_event JSON object (no separator).
void AppendTraceEventJson(const TraceEventRecord& e, std::string* out) {
  *out += "\n{\"name\": \"";
  AppendJsonEscaped(e.name, out);
  *out += "\", \"ph\": \"";
  *out += e.phase;
  *out += "\", \"ts\": " + std::to_string(e.ts_micros) +
          ", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
  if (e.phase == 'i') *out += ", \"s\": \"t\"";
  if (!e.args_json.empty()) *out += ", \"args\": {" + e.args_json + "}";
  *out += "}";
}

/// Writes every buffered event to the open stream and clears the buffer.
/// Caller holds buffer.mu and has checked buffer.stream != nullptr.
void FlushToStreamLocked(TraceBuffer* buffer) {
  std::string chunk;
  for (const TraceEventRecord& e : buffer->events) {
    if (buffer->stream_has_events) chunk += ",";
    buffer->stream_has_events = true;
    AppendTraceEventJson(e, &chunk);
  }
  if (!chunk.empty()) {
    fwrite(chunk.data(), 1, chunk.size(), buffer->stream);
  }
  buffer->events.clear();
}

void Append(TraceEventRecord record) {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.stream != nullptr) {
    buffer.events.push_back(std::move(record));
    if (buffer.events.size() >= buffer.flush_threshold) {
      FlushToStreamLocked(&buffer);
    }
    return;
  }
  if (buffer.events.size() >= kMaxTraceEvents) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(std::move(record));
}

void AppendArgPrefix(const char* key, std::string* out) {
  if (!out->empty()) *out += ", ";
  *out += '"';
  AppendJsonEscaped(key, out);
  *out += "\": ";
}

}  // namespace

Span::Span(const char* name, bool always_time) : name_(name) {
  flags_ = LoadComponentFlags();
  timing_ = always_time || flags_ != 0;
  if (!timing_) return;
  start_ = std::chrono::steady_clock::now();
  if ((flags_ & kTracingBit) != 0) {
    TraceEventRecord record;
    record.name = name_;
    record.phase = 'B';
    record.ts_micros = NowMicros();
    record.tid = CurrentTid();
    Append(std::move(record));
  }
}

Span::~Span() {
  if (!timing_ || flags_ == 0) return;
  int64_t micros = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  if ((flags_ & kTracingBit) != 0) {
    TraceEventRecord record;
    record.name = name_;
    record.phase = 'E';
    record.ts_micros = NowMicros();
    record.tid = CurrentTid();
    record.args_json = std::move(args_json_);
    Append(std::move(record));
  }
  if ((flags_ & kMetricsBit) != 0) {
    MetricsRegistry& registry = MetricsRegistry::Instance();
    registry.GetCounter("span." + std::string(name_) + ".micros")->Add(micros);
    registry.GetCounter("span." + std::string(name_) + ".count")->Increment();
  }
}

void Span::AddArg(const char* key, std::string_view value) {
  if ((flags_ & kTracingBit) == 0) return;
  AppendArgPrefix(key, &args_json_);
  args_json_ += '"';
  AppendJsonEscaped(value, &args_json_);
  args_json_ += '"';
}

void Span::AddArg(const char* key, int64_t value) {
  if ((flags_ & kTracingBit) == 0) return;
  AppendArgPrefix(key, &args_json_);
  args_json_ += std::to_string(value);
}

void Span::AddArg(const char* key, bool value) {
  if ((flags_ & kTracingBit) == 0) return;
  AppendArgPrefix(key, &args_json_);
  args_json_ += value ? "true" : "false";
}

double Span::ElapsedSeconds() const {
  if (!timing_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void InstantEvent(const char* name, std::string_view args_json) {
  if (!TracingEnabled()) return;
  TraceEventRecord record;
  record.name = name;
  record.phase = 'i';
  record.ts_micros = NowMicros();
  record.tid = CurrentTid();
  record.args_json = std::string(args_json);
  Append(std::move(record));
}

std::vector<TraceEventRecord> SnapshotTraceEvents() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.events;
}

int64_t TraceEventsDropped() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.dropped;
}

std::string TraceToJson() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  for (const TraceEventRecord& e : buffer.events) {
    if (!first) out += ",";
    first = false;
    AppendTraceEventJson(e, &out);
  }
  out += "\n]\n}\n";
  return out;
}

Status StartTraceStream(const std::string& path, size_t flush_threshold) {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.stream != nullptr) {
    return Status::AlreadyExists("a trace stream is already active");
  }
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot create trace stream file: " + path);
  }
  const char* header = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  fwrite(header, 1, strlen(header), f);
  buffer.stream = f;
  buffer.flush_threshold = flush_threshold == 0 ? 1 : flush_threshold;
  buffer.stream_has_events = false;
  // Events already buffered before the stream opened belong to the stream's
  // timeline too; they flush with the first threshold crossing (or at stop).
  EnableTracing(true);
  return Status::OK();
}

Status StopTraceStream() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.stream == nullptr) return Status::OK();
  FlushToStreamLocked(&buffer);
  const char* footer = "\n]\n}\n";
  fwrite(footer, 1, strlen(footer), buffer.stream);
  const bool ok = fclose(buffer.stream) == 0;
  buffer.stream = nullptr;
  buffer.flush_threshold = 0;
  buffer.stream_has_events = false;
  if (!ok) return Status::IoError("closing the trace stream failed");
  return Status::OK();
}

bool TraceStreamActive() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.stream != nullptr;
}

void ClearTrace() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.clear();
  buffer.dropped = 0;
}

}  // namespace telemetry
}  // namespace guardrail
