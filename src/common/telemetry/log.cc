#include "common/telemetry/log.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace guardrail {
namespace telemetry {

namespace {

struct SinkState {
  std::mutex mu;
  LogSink sink;  // empty => default stderr sink
};

SinkState& Sink() {
  static SinkState* state = new SinkState();
  return *state;
}

// True when the value can go on the wire bare; otherwise it is quoted with
// the same escaping msg= uses.
bool IsBareValue(const std::string& value) {
  if (value.empty()) return false;
  for (char c : value) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"' || c == '=' ||
        c == '\\') {
      return false;
    }
  }
  return true;
}

void AppendQuoted(const std::string& text, std::string* out) {
  *out += '"';
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
  *out += '"';
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int32_t>(level), std::memory_order_relaxed);
}

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *level = LogLevel::kWarn;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "UNKNOWN";
}

std::string LogRecord::ToLine() const {
  std::string out = "level=";
  out += LogLevelName(level);
  out += " src=";
  out += Basename(file);
  out += ':';
  out += std::to_string(line);
  out += " msg=";
  AppendQuoted(message, &out);
  for (const auto& [key, value] : fields) {
    out += ' ';
    out += key;
    out += '=';
    if (IsBareValue(value)) {
      out += value;
    } else {
      AppendQuoted(value, &out);
    }
  }
  return out;
}

void SetLogSink(LogSink sink) {
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sink = std::move(sink);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) {
  record_.level = level;
  record_.file = file;
  record_.line = line;
}

LogMessage::~LogMessage() {
  record_.message = message_.str();
  SinkState& state = Sink();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.sink) {
    state.sink(record_);
    return;
  }
  std::string line = record_.ToLine();
  std::fprintf(stderr, "[guardrail] %s\n", line.c_str());
}

}  // namespace telemetry
}  // namespace guardrail
