#ifndef GUARDRAIL_COMMON_TELEMETRY_LOG_H_
#define GUARDRAIL_COMMON_TELEMETRY_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace guardrail {
namespace telemetry {

/// Severity ladder. The process-wide threshold (default kWarn, so steady
/// state is quiet) suppresses everything below it; kOff silences logging
/// entirely. The threshold check is a single relaxed atomic load, so a
/// compiled-in DEBUG statement on a hot path costs a load and a branch.
enum class LogLevel : int32_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

inline std::atomic<int32_t> g_log_level{static_cast<int32_t>(LogLevel::kWarn)};

inline bool LogEnabled(LogLevel level) {
  return static_cast<int32_t>(level) >=
         g_log_level.load(std::memory_order_relaxed);
}

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Returns false on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* level);

const char* LogLevelName(LogLevel level);

/// A structured record as handed to sinks: the severity, the free-text
/// message, and the key=value fields in order of attachment.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";
  int line = 0;
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;

  /// The single-line rendering the default stderr sink emits:
  ///   level=WARN src=file.cc:42 msg="..." key=value ...
  std::string ToLine() const;
};

/// Replaces the stderr sink (pass nullptr to restore it). Used by tests to
/// capture log events; the sink runs under the logging mutex, so it must not
/// log or block.
using LogSink = std::function<void(const LogRecord&)>;
void SetLogSink(LogSink sink);

/// A key=value field for the structured part of a log statement:
///   GUARDRAIL_LOG(WARN) << "failpoint fired" << Kv("point", name);
struct KvField {
  std::string key;
  std::string value;
};

template <typename T>
KvField Kv(std::string_view key, const T& value) {
  std::ostringstream stream;
  stream << value;
  return KvField{std::string(key), stream.str()};
}

inline KvField Kv(std::string_view key, bool value) {
  return KvField{std::string(key), value ? "true" : "false"};
}

/// Accumulates one log statement and emits it on destruction. Message text
/// streams in; KvField objects divert into the structured fields.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage& operator<<(KvField field) {
    record_.fields.push_back({std::move(field.key), std::move(field.value)});
    return *this;
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    message_ << value;
    return *this;
  }

 private:
  LogRecord record_;
  std::ostringstream message_;
};

}  // namespace telemetry
}  // namespace guardrail

namespace guardrail {
namespace telemetry {
namespace log_severity {
// Severity tokens for the GUARDRAIL_LOG macro argument.
inline constexpr LogLevel DEBUG = LogLevel::kDebug;
inline constexpr LogLevel INFO = LogLevel::kInfo;
inline constexpr LogLevel WARN = LogLevel::kWarn;
inline constexpr LogLevel ERROR = LogLevel::kError;
}  // namespace log_severity
}  // namespace telemetry
}  // namespace guardrail

/// Structured leveled logging: GUARDRAIL_LOG(INFO) << "msg" << Kv("k", v).
/// Statements below the process log level cost one relaxed load + branch and
/// never evaluate their operands.
#define GUARDRAIL_LOG(severity)                                       \
  if (!::guardrail::telemetry::LogEnabled(                            \
          ::guardrail::telemetry::log_severity::severity)) {          \
  } else                                                              \
    ::guardrail::telemetry::LogMessage(                               \
        ::guardrail::telemetry::log_severity::severity, __FILE__, __LINE__)

#endif  // GUARDRAIL_COMMON_TELEMETRY_LOG_H_
