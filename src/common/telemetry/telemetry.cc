#include "common/telemetry/telemetry.h"

#include <cstdio>
#include <cstdlib>

namespace guardrail {
namespace telemetry {

namespace {

Status WriteFile(const std::string& path, const std::string& contents,
                 const char* what) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError(std::string("cannot open ") + what + " output '" +
                           path + "' for writing");
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  int close_rc = std::fclose(file);
  if (written != contents.size() || close_rc != 0) {
    return Status::IoError(std::string("short write to ") + what +
                           " output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

Status WriteTrace(const std::string& path) {
  return WriteFile(path, TraceToJson(), "trace");
}

Status WriteMetrics(const std::string& path) {
  return WriteFile(path, MetricsRegistry::Instance().ToJson(), "metrics");
}

void InitLogLevelFromEnv() {
  const char* env = std::getenv("GUARDRAIL_LOG_LEVEL");
  if (env == nullptr) return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) SetLogLevel(level);
}

void EnableMetrics(bool enabled) {
  if (enabled) {
    g_component_flags.fetch_or(kMetricsBit, std::memory_order_relaxed);
  } else {
    g_component_flags.fetch_and(~kMetricsBit, std::memory_order_relaxed);
  }
}

void EnableTracing(bool enabled) {
  if (enabled) {
    g_component_flags.fetch_or(kTracingBit, std::memory_order_relaxed);
  } else {
    g_component_flags.fetch_and(~kTracingBit, std::memory_order_relaxed);
  }
}

void ResetAllForTest() {
  EnableMetrics(false);
  EnableTracing(false);
  MetricsRegistry::Instance().ResetAll();
  // A live streaming sink would otherwise leak its FILE* across tests (and
  // keep swallowing the next test's events).
  (void)StopTraceStream();
  ClearTrace();
  SetLogSink(nullptr);
  SetLogLevel(LogLevel::kWarn);
}

}  // namespace telemetry
}  // namespace guardrail
