#ifndef GUARDRAIL_COMMON_TELEMETRY_SPAN_H_
#define GUARDRAIL_COMMON_TELEMETRY_SPAN_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/telemetry/state.h"

namespace guardrail {
namespace telemetry {

/// One begin/end/instant record in the in-memory trace buffer, mirroring the
/// Chrome trace_event phases ('B' duration-begin, 'E' duration-end,
/// 'i' instant). Nesting is implicit in the per-thread B/E ordering, exactly
/// as chrome://tracing / Perfetto reconstruct it.
struct TraceEventRecord {
  const char* name = "";
  char phase = 'B';
  int64_t ts_micros = 0;
  uint32_t tid = 0;
  /// Pre-rendered JSON object body ("\"k\": \"v\", ...") or empty.
  std::string args_json;
};

/// RAII scoped timer: emits a B event on construction and an E event (with
/// any accumulated args) on destruction when tracing is on, and folds its
/// duration into the `span.<name>.micros` / `span.<name>.count` counters
/// when metrics are on. With everything disabled the constructor is a single
/// relaxed atomic load and a branch — cheap enough for inner pipeline
/// stages, though per-row work should use counters, not spans.
///
/// `always_time` additionally keeps the wall-clock measurement alive even
/// with telemetry off, so code that needs the elapsed time for its own
/// reporting (SynthesisReport's per-stage seconds) can read ElapsedSeconds()
/// and telemetry exports agree with the report by construction.
class Span {
 public:
  explicit Span(const char* name, bool always_time = false);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value to the span's end event (no-op unless tracing).
  void AddArg(const char* key, std::string_view value);
  void AddArg(const char* key, int64_t value);
  void AddArg(const char* key, bool value);

  /// Seconds since construction; 0.0 unless timing is active (telemetry on
  /// or always_time requested).
  double ElapsedSeconds() const;

 private:
  const char* name_;
  uint32_t flags_ = 0;
  bool timing_ = false;
  std::chrono::steady_clock::time_point start_{};
  std::string args_json_;
};

/// Appends an instant event to the trace (no-op unless tracing). Used for
/// point-in-time facts worth seeing on the timeline: deadline expiries,
/// failpoint fires, degradation-rung transitions.
void InstantEvent(const char* name, std::string_view args_json = {});

/// Snapshot of the trace buffer (oldest first) plus how many events were
/// dropped after the buffer cap was hit.
std::vector<TraceEventRecord> SnapshotTraceEvents();
int64_t TraceEventsDropped();

/// Renders the buffer as a Chrome trace_event JSON document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}), loadable in
/// chrome://tracing and Perfetto.
std::string TraceToJson();

/// Clears the trace buffer (events and drop count).
void ClearTrace();

// ---- Streaming trace sink ----------------------------------------------
// For long-running processes (the serving daemon, `guardrail stream`) whose
// traces outgrow the in-memory cap: events flush incrementally to a Chrome
// trace_event JSON file whenever the buffer reaches `flush_threshold`, so
// memory stays bounded no matter how long the process runs and the file is
// loadable in chrome://tracing after a clean stop. While a stream is
// active, SnapshotTraceEvents / TraceToJson see only the not-yet-flushed
// tail, and the buffer-cap drop path is never taken.

/// Opens `path`, writes the document header, and routes subsequent trace
/// events through the bounded streaming buffer. Fails if a stream is
/// already active or the file cannot be created. Enables tracing as a side
/// effect (a silent stream would record an empty file).
Status StartTraceStream(const std::string& path,
                        size_t flush_threshold = 4096);

/// Flushes any buffered events, writes the document footer, and closes the
/// file. No-op (OK) when no stream is active. The trace buffer keeps
/// collecting in memory afterwards; tracing stays enabled.
Status StopTraceStream();

/// True between a successful StartTraceStream and the matching stop.
bool TraceStreamActive();

}  // namespace telemetry
}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_TELEMETRY_SPAN_H_
