#ifndef GUARDRAIL_COMMON_TELEMETRY_TELEMETRY_H_
#define GUARDRAIL_COMMON_TELEMETRY_TELEMETRY_H_

/// Facade for the telemetry subsystem. Pulling in this header gives the
/// three pillars:
///   - spans + instant events (span.h) exported as Chrome trace_event JSON,
///   - counters + histograms (metrics.h) exported as a JSON document,
///   - structured leveled logging (log.h).
/// Enablement is per-pillar (EnableMetrics / EnableTracing in state.h);
/// everything compiles to a relaxed atomic load + branch when off.

#include <string>
#include <string_view>

#include "common/status.h"
#include "common/telemetry/log.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/span.h"
#include "common/telemetry/state.h"

namespace guardrail {
namespace telemetry {

/// Appends `text` to `*out` with JSON string escaping (quotes, backslashes,
/// control characters) but without the surrounding quotes.
void AppendJsonEscaped(std::string_view text, std::string* out);

/// Writes the trace buffer as Chrome trace_event JSON to `path`
/// (chrome://tracing / Perfetto compatible). Fails with kIoError when the
/// file cannot be written.
Status WriteTrace(const std::string& path);

/// Writes all metrics as a JSON document to `path`.
Status WriteMetrics(const std::string& path);

/// Applies GUARDRAIL_LOG_LEVEL from the environment if set and parseable.
/// Called once from CLI/test main paths; safe to call repeatedly.
void InitLogLevelFromEnv();

/// Resets all mutable telemetry state: zeroes every metric, clears the trace
/// buffer, disables both pillars, and restores the default log sink/level.
/// Test-only — production code never unwinds telemetry.
void ResetAllForTest();

}  // namespace telemetry
}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_TELEMETRY_TELEMETRY_H_
