#include "common/telemetry/metrics.h"

#include <algorithm>

#include "common/telemetry/telemetry.h"

namespace guardrail {
namespace telemetry {

void Histogram::Record(int64_t value) {
  int bucket = 0;
  if (value > 0) {
    // Index of the first bound >= value; values beyond the largest bound
    // land in the overflow bucket.
    while (bucket < kNumBounds && value > BucketBound(bucket)) ++bucket;
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

int64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"";
    AppendJsonEscaped(name, &out);
    out += "\": " + std::to_string(counter->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"";
    AppendJsonEscaped(name, &out);
    out += "\": {\"count\": " + std::to_string(histogram->count()) +
           ", \"sum\": " + std::to_string(histogram->sum());
    // Trailing empty buckets are elided; bounds and counts stay aligned.
    int last = Histogram::kNumBounds;
    while (last >= 0 && histogram->bucket(last) == 0) --last;
    out += ", \"bucket_bounds\": [";
    for (int i = 0; i <= last && i < Histogram::kNumBounds; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(Histogram::BucketBound(i));
    }
    out += "], \"bucket_counts\": [";
    for (int i = 0; i <= last; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(histogram->bucket(i));
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace telemetry
}  // namespace guardrail
