#ifndef GUARDRAIL_COMMON_TELEMETRY_STATE_H_
#define GUARDRAIL_COMMON_TELEMETRY_STATE_H_

#include <atomic>
#include <cstdint>

namespace guardrail {
namespace telemetry {

/// Which telemetry pillars are live. Kept in one process-wide atomic so the
/// disabled fast path — the common case on the guard / CI-test hot loops —
/// is a single relaxed load and a predictable branch.
enum ComponentFlags : uint32_t {
  kMetricsBit = 1u << 0,
  kTracingBit = 1u << 1,
};

inline std::atomic<uint32_t> g_component_flags{0};

inline uint32_t LoadComponentFlags() {
  return g_component_flags.load(std::memory_order_relaxed);
}

inline bool MetricsEnabled() {
  return (LoadComponentFlags() & kMetricsBit) != 0;
}

inline bool TracingEnabled() {
  return (LoadComponentFlags() & kTracingBit) != 0;
}

void EnableMetrics(bool enabled);
void EnableTracing(bool enabled);

}  // namespace telemetry
}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_TELEMETRY_STATE_H_
