#ifndef GUARDRAIL_COMMON_STATUS_H_
#define GUARDRAIL_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace guardrail {

/// Error category carried by a non-ok Status. Modeled after the Arrow /
/// RocksDB convention: fallible operations return Status (or Result<T>)
/// instead of throwing.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kConstraintViolation = 6,  // A data row violated a synthesized constraint.
  kParseError = 7,
  kIoError = 8,
  kNotImplemented = 9,
  kInternal = 10,
  kTimeout = 11,
};

/// Returns a human-readable name for the code ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
/// The OK status carries no allocation and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsConstraintViolation() const {
    return code_ == StatusCode::kConstraintViolation;
  }

  /// "<code name>: <message>" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Access to the value when the
/// result holds an error aborts (see GUARDRAIL_CHECK in logging.h), so callers
/// must test ok() first or use ValueOr().
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace guardrail

/// Propagates a non-ok Status from an expression to the caller.
#define GUARDRAIL_RETURN_NOT_OK(expr)                 \
  do {                                                \
    ::guardrail::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// moves the value into `lhs`.
#define GUARDRAIL_ASSIGN_OR_RETURN(lhs, expr)         \
  auto GUARDRAIL_CONCAT_(_res_, __LINE__) = (expr);   \
  if (!GUARDRAIL_CONCAT_(_res_, __LINE__).ok())       \
    return GUARDRAIL_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(GUARDRAIL_CONCAT_(_res_, __LINE__)).value()

#define GUARDRAIL_CONCAT_INNER_(a, b) a##b
#define GUARDRAIL_CONCAT_(a, b) GUARDRAIL_CONCAT_INNER_(a, b)

#endif  // GUARDRAIL_COMMON_STATUS_H_
