#ifndef GUARDRAIL_COMMON_CSV_H_
#define GUARDRAIL_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace guardrail {

/// A parsed CSV document: a header row plus data rows, all as strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Upper bound on a single field's size; longer fields are rejected rather
/// than ballooning memory on hostile input.
inline constexpr size_t kMaxCsvFieldBytes = 1u << 20;  // 1 MiB

/// Parses RFC-4180-style CSV text: comma separated, double-quote quoting with
/// "" escapes, LF or CRLF line endings. The first record is the header.
/// Malformed input — ragged rows, unterminated or misplaced quotes, embedded
/// NUL bytes, overlong fields — is rejected with Status::InvalidArgument
/// carrying 1-based row/column context, never silently mis-parsed.
Result<CsvDocument> ParseCsv(std::string_view text);

/// Serializes a document back to CSV text, quoting fields that need it.
std::string WriteCsv(const CsvDocument& doc);

/// Serializes a single record as one CSV line (no trailing newline), with
/// the same quoting rules as WriteCsv.
std::string WriteCsvRecord(const std::vector<std::string>& record);

/// File convenience wrappers.
Result<CsvDocument> ReadCsvFile(const std::string& path);
Status WriteCsvFile(const std::string& path, const CsvDocument& doc);

}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_CSV_H_
