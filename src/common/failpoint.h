#ifndef GUARDRAIL_COMMON_FAILPOINT_H_
#define GUARDRAIL_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace guardrail {

/// Fault-injection registry. Production code marks recoverable failure sites
/// with GUARDRAIL_FAILPOINT("name"); a disarmed failpoint costs one relaxed
/// atomic load. Tests (and operators, via the GUARDRAIL_FAILPOINTS
/// environment variable) arm points by name to make the site return a
/// non-OK Status deterministically or with a given probability, driven by
/// the repo's own Rng so chaos runs replay bit-for-bit from a seed.
///
/// Spec grammar (comma separated):
///   point            — always fires, StatusCode::kInternal
///   point=0.25       — fires with probability 0.25
///   point=0.25@io    — fires with that probability as StatusCode::kIoError
/// Recognized code names: invalid, notfound, range, exhausted, parse, io,
/// internal, timeout.
class FailpointRegistry {
 public:
  /// Process-wide registry. Reads GUARDRAIL_FAILPOINTS once on first access.
  static FailpointRegistry& Instance();

  /// Arms `name`; subsequent Trip(name) calls fire with `probability`,
  /// returning Status with `code`. The per-point Rng is seeded from `seed`
  /// and the name, so two runs with the same seed fire identically.
  void Arm(std::string_view name, double probability = 1.0,
           StatusCode code = StatusCode::kInternal, uint64_t seed = 0);

  void Disarm(std::string_view name);
  void DisarmAll();

  /// Parses and arms a comma-separated spec (see grammar above).
  Status ArmFromSpec(std::string_view spec, uint64_t seed = 0);

  /// The fallible site hook: OK unless `name` is armed and fires this call.
  Status Trip(std::string_view name);

  /// Whether `name` is currently armed, without drawing from its Rng. Batch
  /// fast paths use this to route whole blocks back to the scalar path while
  /// a point is armed, so chaos runs replay the exact per-row trip sequence.
  /// Costs one atomic load while nothing is armed.
  bool IsArmed(std::string_view name) const;

  /// Names currently armed (sorted) and the total number of fires so far.
  std::vector<std::string> ArmedNames() const;
  int64_t trips_fired() const;

 private:
  FailpointRegistry();
  struct Impl;
  Impl* impl_;
};

/// Convenience free function used by the GUARDRAIL_FAILPOINT macro.
inline Status FailpointTrip(std::string_view name) {
  return FailpointRegistry::Instance().Trip(name);
}

/// RAII arm/disarm for tests.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string name, double probability = 1.0,
                           StatusCode code = StatusCode::kInternal,
                           uint64_t seed = 0)
      : name_(std::move(name)) {
    FailpointRegistry::Instance().Arm(name_, probability, code, seed);
  }
  ~ScopedFailpoint() { FailpointRegistry::Instance().Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace guardrail

/// Marks a fallible failure site: propagates an injected error to the caller.
#define GUARDRAIL_FAILPOINT(name) \
  GUARDRAIL_RETURN_NOT_OK(::guardrail::FailpointTrip(name))

#endif  // GUARDRAIL_COMMON_FAILPOINT_H_
