#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace guardrail {

bool IsRetryableStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kIoError:            // Transport: connect/read/write.
    case StatusCode::kResourceExhausted:  // Overload shedding; back off.
    case StatusCode::kTimeout:            // One attempt's budget, not ours.
      return true;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kAlreadyExists:
    case StatusCode::kConstraintViolation:
    case StatusCode::kParseError:
    case StatusCode::kNotImplemented:
    case StatusCode::kInternal:
      return false;
  }
  return false;
}

RetrySchedule::RetrySchedule(const RetryPolicy& policy)
    : policy_(policy),
      rng_(policy.seed),
      base_ms_(static_cast<double>(
          std::max<int64_t>(0, policy.initial_backoff_ms))) {
  policy_.max_attempts = std::max(1, policy_.max_attempts);
  policy_.multiplier = std::max(1.0, policy_.multiplier);
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  policy_.max_backoff_ms = std::max<int64_t>(0, policy_.max_backoff_ms);
}

int64_t RetrySchedule::NextBackoffMillis() {
  double base = std::min(base_ms_,
                         static_cast<double>(policy_.max_backoff_ms));
  // Grow for the next draw before jittering this one, so the cap applies to
  // the un-jittered exponential curve.
  base_ms_ = std::min(base_ms_ * policy_.multiplier,
                      static_cast<double>(policy_.max_backoff_ms));
  double jittered = base;
  if (policy_.jitter > 0.0) {
    double span = base * policy_.jitter;
    jittered = base - span + 2.0 * span * rng_.NextDouble();
  }
  ++backoffs_drawn_;
  return static_cast<int64_t>(jittered < 0.0 ? 0.0 : jittered);
}

Status RetryWithBackoff(const RetryPolicy& policy, const Deadline& deadline,
                        const std::function<Status(int attempt)>& attempt,
                        RetryStats* stats) {
  RetrySchedule schedule(policy);
  const int max_attempts = std::max(1, policy.max_attempts);
  Status last = Status::Timeout("deadline expired before the first attempt");
  for (int i = 0; i < max_attempts; ++i) {
    if (deadline.Expired()) break;
    if (stats != nullptr) ++stats->attempts;
    last = attempt(i);
    if (last.ok() || !IsRetryableStatusCode(last.code())) return last;
    if (i + 1 >= max_attempts) break;

    int64_t backoff_ms = schedule.NextBackoffMillis();
    // Deadline-capped: a backoff the remaining budget cannot cover means
    // the next attempt could never start in time — give up now instead of
    // sleeping into a guaranteed timeout.
    double remaining_ms = deadline.RemainingSeconds() * 1000.0;
    if (static_cast<double>(backoff_ms) >= remaining_ms) break;
    if (stats != nullptr) stats->total_backoff_ms += backoff_ms;
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
  return last;
}

}  // namespace guardrail
