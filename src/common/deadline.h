#ifndef GUARDRAIL_COMMON_DEADLINE_H_
#define GUARDRAIL_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "common/status.h"

namespace guardrail {

/// A point on the monotonic clock after which work should stop. The default
/// Deadline is infinite (never expires), so APIs can take one unconditionally
/// and pay nothing on the unlimited path. Deadlines compose by taking the
/// earlier of two (Earliest), which is how a per-stage budget nests inside a
/// whole-request budget.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterMillis(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  static Deadline AfterSeconds(double seconds) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }
  static Deadline At(Clock::time_point at) { return Deadline(at); }

  bool is_infinite() const { return at_ == Clock::time_point::max(); }
  bool Expired() const { return !is_infinite() && Clock::now() >= at_; }

  /// Seconds until expiry; +inf when infinite, 0 when already expired.
  double RemainingSeconds() const {
    if (is_infinite()) return std::numeric_limits<double>::infinity();
    double s = std::chrono::duration<double>(at_ - Clock::now()).count();
    return s > 0.0 ? s : 0.0;
  }

  Clock::time_point time_point() const { return at_; }

  /// The earlier of the two deadlines.
  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    return a.at_ <= b.at_ ? a : b;
  }

 private:
  explicit Deadline(Clock::time_point at) : at_(at) {}
  Clock::time_point at_;
};

/// A cheap, copyable cancellation handle: a deadline plus a shared manual
/// cancel flag. Copies share the flag, so cancelling any copy cancels all of
/// them; tightening the deadline (WithDeadline) keeps the shared flag, which
/// is how a stage budget composes with its request's cancellation.
class CancellationToken {
 public:
  /// Never cancelled, infinite deadline.
  CancellationToken()
      : deadline_(Deadline::Infinite()),
        cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  static CancellationToken Never() { return CancellationToken(); }
  static CancellationToken WithBudgetMillis(int64_t ms) {
    CancellationToken token;
    token.deadline_ = Deadline::AfterMillis(ms);
    return token;
  }

  /// A token sharing this one's cancel flag but expiring no later than
  /// `deadline`.
  CancellationToken WithDeadline(const Deadline& deadline) const {
    CancellationToken token = *this;
    token.deadline_ = Deadline::Earliest(deadline_, deadline);
    return token;
  }

  /// Manual cancellation; observed by every copy of this token.
  void RequestCancel() const { cancelled_->store(true, std::memory_order_relaxed); }

  bool Cancelled() const {
    return cancelled_->load(std::memory_order_relaxed) || deadline_.Expired();
  }

  const Deadline& deadline() const { return deadline_; }

  /// OK, or Status::Timeout naming the stage that ran out of budget.
  Status CheckTimeout(const char* stage) const;

 private:
  Deadline deadline_;
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Amortizes the clock read inside hot loops: Expired() touches the clock
/// only every `stride` calls, and latches once the token reports
/// cancellation, so the steady-state cost is one counter decrement per
/// iteration. Not thread-safe; make one per loop.
class DeadlineChecker {
 public:
  explicit DeadlineChecker(const CancellationToken* token,
                           uint32_t stride = 256)
      : token_(token), stride_(stride == 0 ? 1 : stride), countdown_(0) {}

  /// True once the token is cancelled / expired (checked every stride calls).
  bool Expired() {
    if (expired_) return true;
    if (countdown_ > 0) {
      --countdown_;
      return false;
    }
    countdown_ = stride_ - 1;
    expired_ = token_ != nullptr && token_->Cancelled();
    return expired_;
  }

  /// OK, or Status::Timeout for `stage` once expired.
  Status Check(const char* stage) {
    if (!Expired()) return Status::OK();
    return token_->CheckTimeout(stage);
  }

 private:
  const CancellationToken* token_;
  uint32_t stride_;
  uint32_t countdown_;
  bool expired_ = false;
};

}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_DEADLINE_H_
