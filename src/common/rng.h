#ifndef GUARDRAIL_COMMON_RNG_H_
#define GUARDRAIL_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace guardrail {

/// Deterministic pseudo-random number generator (xoshiro256++ seeded through
/// splitmix64). All experiments in this repository are reproducible: every
/// source of randomness flows through an explicitly seeded Rng.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be positive. Uses rejection sampling
  /// to avoid modulo bias.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; useful for giving each dataset
  /// or experiment its own stream while keeping a single master seed.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace guardrail

#endif  // GUARDRAIL_COMMON_RNG_H_
