#include "baselines/tane.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "baselines/partition.h"
#include "common/logging.h"

namespace guardrail {
namespace baselines {

namespace {

using Mask = uint64_t;

std::vector<AttrIndex> MaskToAttrs(Mask mask) {
  std::vector<AttrIndex> out;
  for (int32_t a = 0; a < 64; ++a) {
    if (mask & (1ULL << a)) out.push_back(a);
  }
  return out;
}

}  // namespace

Result<std::vector<Fd>> Tane::Discover(const Table& table) const {
  return Discover(table, CancellationToken::Never());
}

Result<std::vector<Fd>> Tane::Discover(const Table& table,
                                       const CancellationToken& cancel) const {
  const int32_t n = table.num_columns();
  // Each lattice node costs at least a partition scan, so a small stride
  // keeps expiry latency low without measurable polling cost.
  DeadlineChecker deadline(&cancel, /*stride=*/8);
  if (n > 63) {
    return Status::InvalidArgument("TANE implementation supports <= 63 attrs");
  }
  const int64_t num_rows = table.num_rows();
  const Mask all_attrs = n == 63 ? ~0ULL >> 1 : (1ULL << n) - 1;

  std::vector<Fd> found;

  // Partition cache for the previous and current level.
  std::unordered_map<Mask, StrippedPartition> prev_partitions;
  std::unordered_map<Mask, StrippedPartition> cur_partitions;

  // rhs+ candidate sets.
  std::unordered_map<Mask, Mask> rhs_candidates;
  rhs_candidates[0] = all_attrs;

  // Level 1: singletons.
  std::vector<Mask> level;
  for (int32_t a = 0; a < n; ++a) {
    Mask x = 1ULL << a;
    level.push_back(x);
    cur_partitions[x] = StrippedPartition::ForAttribute(table, a);
  }

  for (int32_t depth = 1; depth <= options_.max_lhs_size + 1 && !level.empty();
       ++depth) {
    // --- compute_dependencies ---
    std::unordered_map<Mask, Mask> level_rhs;
    for (Mask x : level) {
      Mask cplus = all_attrs;
      for (AttrIndex a : MaskToAttrs(x)) {
        auto it = rhs_candidates.find(x & ~(1ULL << a));
        cplus &= it == rhs_candidates.end() ? 0 : it->second;
      }
      level_rhs[x] = cplus;
    }

    for (Mask x : level) {
      GUARDRAIL_RETURN_NOT_OK(deadline.Check("tane dependency check"));
      Mask& cplus = level_rhs[x];
      Mask test_set = x & cplus;
      for (AttrIndex a : MaskToAttrs(test_set)) {
        Mask lhs_mask = x & ~(1ULL << a);
        double g3;
        if (lhs_mask == 0) {
          // {} -> A holds iff A is constant.
          const StrippedPartition& pa = cur_partitions[x];
          int64_t largest = 0;
          for (const auto& cls : pa.classes()) {
            largest = std::max(largest,
                               static_cast<int64_t>(cls.size()));
          }
          g3 = num_rows == 0
                   ? 0.0
                   : static_cast<double>(num_rows - std::max<int64_t>(
                                                        largest, 1)) /
                         static_cast<double>(num_rows);
        } else {
          const StrippedPartition& lhs_part = prev_partitions[lhs_mask];
          const StrippedPartition& full_part = cur_partitions[x];
          g3 = lhs_part.FdG3Error(full_part, num_rows);
        }
        if (g3 <= options_.max_g3_error) {
          if (lhs_mask != 0) {
            Fd fd;
            fd.lhs = MaskToAttrs(lhs_mask);
            fd.rhs = a;
            fd.g3_error = g3;
            found.push_back(std::move(fd));
          }
          cplus &= ~(1ULL << a);
          if (g3 == 0.0) {
            // Exact FD: prune every attribute outside X from rhs+.
            cplus &= x;
          }
        }
      }
    }

    // --- prune ---
    std::vector<Mask> pruned_level;
    for (Mask x : level) {
      if (level_rhs[x] != 0) pruned_level.push_back(x);
      rhs_candidates[x] = level_rhs[x];
    }

    if (depth > options_.max_lhs_size) break;

    // --- generate next level (apriori join over sets sharing depth-1
    // attributes; deduplicated as we go) ---
    std::sort(pruned_level.begin(), pruned_level.end());
    std::set<Mask> next_set;
    for (size_t i = 0; i < pruned_level.size(); ++i) {
      for (size_t j = i + 1; j < pruned_level.size(); ++j) {
        Mask x = pruned_level[i], y = pruned_level[j];
        Mask merged = x | y;
        if (__builtin_popcountll(merged) != depth + 1) continue;
        Mask common = x & y;
        if (__builtin_popcountll(common) != depth - 1) continue;
        if (next_set.count(merged) > 0) continue;
        // All depth-size subsets must be present in the pruned level.
        bool all_present = true;
        for (AttrIndex a : MaskToAttrs(merged)) {
          Mask sub = merged & ~(1ULL << a);
          if (!std::binary_search(pruned_level.begin(), pruned_level.end(),
                                  sub)) {
            all_present = false;
            break;
          }
        }
        if (all_present) next_set.insert(merged);
      }
      if (static_cast<int64_t>(next_set.size()) > options_.max_level_width) {
        // Mirrors TANE's practical memory wall on wide relations (the "-"
        // entries of the paper's Table 3).
        return Status::ResourceExhausted(
            "TANE lattice level exceeds max_level_width");
      }
    }
    std::vector<Mask> next_level(next_set.begin(), next_set.end());

    // Compute partitions for the next level via products.
    prev_partitions = std::move(cur_partitions);
    cur_partitions.clear();
    for (Mask x : next_level) {
      GUARDRAIL_RETURN_NOT_OK(deadline.Check("tane partition product"));
      // Split deterministically: strip the lowest attribute.
      AttrIndex lowest = MaskToAttrs(x).front();
      Mask rest = x & ~(1ULL << lowest);
      const StrippedPartition& pa = prev_partitions[rest];
      // The singleton partition may live two levels back; recompute cheaply.
      StrippedPartition pb = StrippedPartition::ForAttribute(table, lowest);
      cur_partitions[x] = StrippedPartition::Product(pa, pb, num_rows);
    }
    level = std::move(next_level);
  }

  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace baselines
}  // namespace guardrail
