#include "baselines/fd_detector.h"

#include <algorithm>

namespace guardrail {
namespace baselines {

uint64_t FdDetector::HashCombo(const Table& table, RowIndex row,
                               const std::vector<AttrIndex>& attrs,
                               bool* has_null) {
  uint64_t key = 1469598103934665603ULL;
  *has_null = false;
  for (AttrIndex a : attrs) {
    ValueId v = table.Get(row, a);
    if (v == kNullValue) {
      *has_null = true;
      return 0;
    }
    key = (key ^ static_cast<uint64_t>(v + 1)) * 1099511628211ULL;
    key = (key ^ static_cast<uint64_t>(a + 1)) * 1099511628211ULL;
  }
  return key;
}

void FdDetector::Fit(const Table& train) {
  mappings_.clear();
  for (const Fd& fd : fds_) {
    FdMapping mapping;
    mapping.fd = fd;
    // Histogram of RHS values per LHS combination.
    std::unordered_map<uint64_t, std::unordered_map<ValueId, int64_t>> hist;
    for (RowIndex r = 0; r < train.num_rows(); ++r) {
      bool has_null = false;
      uint64_t key = HashCombo(train, r, fd.lhs, &has_null);
      if (has_null) continue;
      ValueId v = train.Get(r, fd.rhs);
      if (v == kNullValue) continue;
      ++hist[key][v];
    }
    for (const auto& [key, values] : hist) {
      ValueId mode = kNullValue;
      int64_t mode_count = 0, total = 0;
      for (const auto& [v, c] : values) {
        total += c;
        if (c > mode_count || (c == mode_count && v < mode)) {
          mode = v;
          mode_count = c;
        }
      }
      if (total < options_.min_support) continue;
      if (static_cast<double>(mode_count) <
          options_.min_confidence * static_cast<double>(total)) {
        continue;
      }
      mapping.expected.emplace(key, mode);
    }
    if (!mapping.expected.empty()) mappings_.push_back(std::move(mapping));
  }
}

std::vector<bool> FdDetector::Detect(const Table& test) const {
  std::vector<bool> flags(static_cast<size_t>(test.num_rows()), false);
  for (const auto& mapping : mappings_) {
    for (RowIndex r = 0; r < test.num_rows(); ++r) {
      if (flags[static_cast<size_t>(r)]) continue;
      bool has_null = false;
      uint64_t key = HashCombo(test, r, mapping.fd.lhs, &has_null);
      if (has_null) continue;
      auto it = mapping.expected.find(key);
      if (it == mapping.expected.end()) continue;
      ValueId v = test.Get(r, mapping.fd.rhs);
      if (v != kNullValue && v != it->second) {
        flags[static_cast<size_t>(r)] = true;
      }
    }
  }
  return flags;
}

int64_t FdDetector::num_mappings() const {
  int64_t total = 0;
  for (const auto& mapping : mappings_) {
    total += static_cast<int64_t>(mapping.expected.size());
  }
  return total;
}

std::vector<bool> CfdDetector::Detect(const Table& test) const {
  std::vector<bool> flags(static_cast<size_t>(test.num_rows()), false);
  for (RowIndex r = 0; r < test.num_rows(); ++r) {
    for (const auto& cfd : cfds_) {
      bool matches = true;
      for (size_t i = 0; i < cfd.lhs.size(); ++i) {
        if (test.Get(r, cfd.lhs[i]) != cfd.lhs_values[i]) {
          matches = false;
          break;
        }
      }
      if (!matches) continue;
      ValueId v = test.Get(r, cfd.rhs);
      if (v != kNullValue && v != cfd.rhs_value) {
        flags[static_cast<size_t>(r)] = true;
        break;
      }
    }
  }
  return flags;
}

}  // namespace baselines
}  // namespace guardrail
