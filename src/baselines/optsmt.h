#ifndef GUARDRAIL_BASELINES_OPTSMT_H_
#define GUARDRAIL_BASELINES_OPTSMT_H_

#include <cstdint>

#include "common/deadline.h"
#include "core/ast.h"
#include "table/table.h"

namespace guardrail {
namespace baselines {

/// The OptSMT-style exact synthesizer of paper Sec. 8.3: searches the whole
/// program space (no sketch, no MEC pruning) for the loss-minimizing,
/// epsilon-valid program by exhaustive enumeration over determinant subsets,
/// dependents, warranted conditions, and hole assignments, generating one
/// soft "clause" per (row, candidate branch) pair exactly as an OptSMT
/// encoding would.
///
/// The point of this baseline is its cost curve: clause counts explode with
/// attributes and rows, and the search exceeds any practical time budget on
/// the evaluation datasets (the paper's solver produced tens of millions of
/// clauses and timed out after 24h on the smallest dataset). On tiny inputs
/// it terminates and is exact, which the tests exploit to cross-validate the
/// sketch-based synthesizer.
class OptSmtSynthesizer {
 public:
  struct Options {
    double epsilon = 0.02;
    int64_t min_branch_support = 5;
    /// Maximum determinant-set size enumerated.
    int32_t max_determinants = 2;
    /// Wall-clock budget; exceeded -> timed_out result.
    double time_budget_seconds = 10.0;
    /// Clause-generation cap; exceeded -> timed_out result.
    int64_t max_clauses = 200000000;
    /// External cancellation, checked alongside the wall-clock budget; when
    /// it fires the search stops with timed_out = true (anytime semantics —
    /// the best program found so far is still returned).
    CancellationToken cancel = CancellationToken::Never();
  };

  struct ReportedResult {
    bool timed_out = false;
    core::Program program;
    /// Soft clauses the equivalent OptSMT encoding would contain.
    int64_t clauses_generated = 0;
    int64_t candidates_explored = 0;
    double seconds = 0.0;
  };

  explicit OptSmtSynthesizer(Options options) : options_(options) {}

  ReportedResult Synthesize(const Table& data) const;

 private:
  Options options_;
};

}  // namespace baselines
}  // namespace guardrail

#endif  // GUARDRAIL_BASELINES_OPTSMT_H_
