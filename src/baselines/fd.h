#ifndef GUARDRAIL_BASELINES_FD_H_
#define GUARDRAIL_BASELINES_FD_H_

#include <string>
#include <vector>

#include "table/schema.h"
#include "table/value.h"

namespace guardrail {
namespace baselines {

/// A (possibly approximate) functional dependency lhs -> rhs.
struct Fd {
  std::vector<AttrIndex> lhs;  // Sorted.
  AttrIndex rhs = 0;
  /// g3 error of the dependency on the discovery data: the minimum fraction
  /// of rows to delete for the FD to hold exactly.
  double g3_error = 0.0;

  bool operator==(const Fd& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }
  bool operator<(const Fd& other) const {
    if (rhs != other.rhs) return rhs < other.rhs;
    return lhs < other.lhs;
  }
};

/// A constant conditional functional dependency: (lhs = pattern) -> rhs =
/// consequent, e.g. ([country = 'US'] -> currency = 'USD').
struct ConstantCfd {
  std::vector<AttrIndex> lhs;          // Sorted.
  std::vector<ValueId> lhs_values;     // Aligned with lhs.
  AttrIndex rhs = 0;
  ValueId rhs_value = kNullValue;
  int64_t support = 0;
  double confidence = 1.0;

  bool operator==(const ConstantCfd& other) const {
    return lhs == other.lhs && lhs_values == other.lhs_values &&
           rhs == other.rhs && rhs_value == other.rhs_value;
  }
};

std::string FdToString(const Fd& fd, const Schema& schema);
std::string CfdToString(const ConstantCfd& cfd, const Schema& schema);

}  // namespace baselines
}  // namespace guardrail

#endif  // GUARDRAIL_BASELINES_FD_H_
