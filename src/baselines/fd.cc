#include "baselines/fd.h"

namespace guardrail {
namespace baselines {

std::string FdToString(const Fd& fd, const Schema& schema) {
  std::string out = "[";
  for (size_t i = 0; i < fd.lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute(fd.lhs[i]).name();
  }
  out += "] -> " + schema.attribute(fd.rhs).name();
  return out;
}

std::string CfdToString(const ConstantCfd& cfd, const Schema& schema) {
  std::string out = "[";
  for (size_t i = 0; i < cfd.lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute(cfd.lhs[i]).name() + "='" +
           schema.attribute(cfd.lhs[i]).label(cfd.lhs_values[i]) + "'";
  }
  out += "] -> " + schema.attribute(cfd.rhs).name() + "='" +
         schema.attribute(cfd.rhs).label(cfd.rhs_value) + "'";
  return out;
}

}  // namespace baselines
}  // namespace guardrail
