#ifndef GUARDRAIL_BASELINES_PARTITION_H_
#define GUARDRAIL_BASELINES_PARTITION_H_

#include <cstdint>
#include <vector>

#include "table/table.h"

namespace guardrail {
namespace baselines {

/// A stripped partition (TANE, Huhtala et al. 1999): the equivalence classes
/// of rows under "agree on attribute set X", with singleton classes removed.
/// Partition refinement over stripped partitions is the workhorse of
/// lattice-based FD discovery.
class StrippedPartition {
 public:
  StrippedPartition() = default;

  /// Partition by a single attribute.
  static StrippedPartition ForAttribute(const Table& table, AttrIndex attr);

  /// Product partition pi_{X union Y} = pi_X * pi_Y (the standard
  /// linear-time probe-table algorithm). `num_rows` of both operands must
  /// refer to the same relation.
  static StrippedPartition Product(const StrippedPartition& a,
                                   const StrippedPartition& b,
                                   int64_t num_rows);

  const std::vector<std::vector<RowIndex>>& classes() const {
    return classes_;
  }

  /// Number of non-singleton classes.
  int64_t NumClasses() const { return static_cast<int64_t>(classes_.size()); }

  /// Total rows across stripped classes (||pi|| in TANE notation).
  int64_t NumRowsInClasses() const;

  /// The TANE e(X) measure building block: ||pi|| - |pi|.
  int64_t Error() const { return NumRowsInClasses() - NumClasses(); }

  /// g3 error of the FD X -> A where *this is pi_X and `with_rhs` is
  /// pi_{X union A}: the minimum number of rows to remove, divided by
  /// `num_rows`, for the FD to hold (TANE Sec. 2.3).
  double FdG3Error(const StrippedPartition& with_rhs, int64_t num_rows) const;

  /// True when refining by A does not split any class (exact FD X -> A).
  bool RefinesExactly(const StrippedPartition& with_rhs) const {
    return Error() == with_rhs.Error();
  }

 private:
  std::vector<std::vector<RowIndex>> classes_;
};

}  // namespace baselines
}  // namespace guardrail

#endif  // GUARDRAIL_BASELINES_PARTITION_H_
