#ifndef GUARDRAIL_BASELINES_CTANE_H_
#define GUARDRAIL_BASELINES_CTANE_H_

#include <cstdint>
#include <vector>

#include "baselines/fd.h"
#include "common/status.h"
#include "table/table.h"

namespace guardrail {
namespace baselines {

/// CTANE-style discovery of constant conditional functional dependencies
/// (Fan et al. 2010). This implementation covers the constant-pattern
/// fragment: levelwise search over (attribute = value) itemsets, emitting
/// minimal rules (X = x) -> (A = a) with sufficient support and confidence.
class Ctane {
 public:
  struct Options {
    /// Minimum rows matching the LHS pattern.
    int64_t min_support = 10;
    /// Minimum fraction of matching rows that satisfy the consequent.
    double min_confidence = 0.99;
    /// Largest LHS pattern size.
    int32_t max_lhs_size = 2;
    /// Safety valve on the candidate frontier (mirrors the paper's "-"
    /// failures on wide/high-cardinality data).
    int64_t max_frontier = 500000;
  };

  explicit Ctane(Options options) : options_(options) {}

  Result<std::vector<ConstantCfd>> Discover(const Table& table) const;

 private:
  Options options_;
};

}  // namespace baselines
}  // namespace guardrail

#endif  // GUARDRAIL_BASELINES_CTANE_H_
