#include "baselines/ctane.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/logging.h"

namespace guardrail {
namespace baselines {

namespace {

// A constant pattern: sorted (attribute, value) items plus its tid-list.
struct PatternNode {
  std::vector<std::pair<AttrIndex, ValueId>> items;
  std::vector<RowIndex> rows;
};

}  // namespace

Result<std::vector<ConstantCfd>> Ctane::Discover(const Table& table) const {
  const int32_t n = table.num_columns();
  const int64_t num_rows = table.num_rows();

  std::vector<ConstantCfd> found;
  // (lhs attrs + values, rhs attr) pairs already covered by a smaller rule;
  // used for minimality pruning.
  std::set<std::pair<std::vector<std::pair<AttrIndex, ValueId>>, AttrIndex>>
      covered;

  // Level 1 candidates: frequent single items.
  std::vector<PatternNode> frontier;
  for (AttrIndex a = 0; a < n; ++a) {
    std::unordered_map<ValueId, std::vector<RowIndex>> buckets;
    const auto& column = table.column(a);
    for (RowIndex r = 0; r < num_rows; ++r) {
      ValueId v = column[static_cast<size_t>(r)];
      if (v != kNullValue) buckets[v].push_back(r);
    }
    for (auto& [v, rows] : buckets) {
      if (static_cast<int64_t>(rows.size()) < options_.min_support) continue;
      PatternNode node;
      node.items = {{a, v}};
      node.rows = std::move(rows);
      frontier.push_back(std::move(node));
    }
  }

  auto emit_rules = [&](const PatternNode& node) {
    std::vector<bool> in_pattern(static_cast<size_t>(n), false);
    for (const auto& [a, v] : node.items) in_pattern[static_cast<size_t>(a)] = true;
    for (AttrIndex rhs = 0; rhs < n; ++rhs) {
      if (in_pattern[static_cast<size_t>(rhs)]) continue;
      // Minimality: skip when a sub-pattern already determines rhs.
      bool redundant = false;
      if (node.items.size() > 1) {
        for (size_t skip = 0; skip < node.items.size(); ++skip) {
          auto sub = node.items;
          sub.erase(sub.begin() + static_cast<int64_t>(skip));
          if (covered.count({sub, rhs}) > 0) {
            redundant = true;
            break;
          }
        }
      }
      if (redundant) continue;
      std::unordered_map<ValueId, int64_t> hist;
      for (RowIndex r : node.rows) {
        ValueId v = table.Get(r, rhs);
        if (v != kNullValue) ++hist[v];
      }
      ValueId mode = kNullValue;
      int64_t mode_count = 0, total = 0;
      for (const auto& [v, c] : hist) {
        total += c;
        if (c > mode_count || (c == mode_count && v < mode)) {
          mode = v;
          mode_count = c;
        }
      }
      if (total < options_.min_support) continue;
      double confidence =
          static_cast<double>(mode_count) / static_cast<double>(total);
      if (confidence < options_.min_confidence) continue;
      ConstantCfd cfd;
      for (const auto& [a, v] : node.items) {
        cfd.lhs.push_back(a);
        cfd.lhs_values.push_back(v);
      }
      cfd.rhs = rhs;
      cfd.rhs_value = mode;
      cfd.support = total;
      cfd.confidence = confidence;
      found.push_back(std::move(cfd));
      covered.insert({node.items, rhs});
    }
  };

  for (int32_t depth = 1;
       depth <= options_.max_lhs_size && !frontier.empty(); ++depth) {
    for (const auto& node : frontier) emit_rules(node);
    if (depth == options_.max_lhs_size) break;

    // Extend: join patterns sharing all but the last item.
    std::sort(frontier.begin(), frontier.end(),
              [](const PatternNode& a, const PatternNode& b) {
                return a.items < b.items;
              });
    std::vector<PatternNode> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      for (size_t j = i + 1; j < frontier.size(); ++j) {
        const auto& x = frontier[i].items;
        const auto& y = frontier[j].items;
        if (!std::equal(x.begin(), x.end() - 1, y.begin(), y.end() - 1)) {
          break;  // Sorted order: no further shared prefix.
        }
        if (x.back().first == y.back().first) continue;  // Same attribute.
        PatternNode merged;
        merged.items = x;
        merged.items.push_back(y.back());
        std::sort(merged.items.begin(), merged.items.end());
        std::set_intersection(frontier[i].rows.begin(), frontier[i].rows.end(),
                              frontier[j].rows.begin(), frontier[j].rows.end(),
                              std::back_inserter(merged.rows));
        if (static_cast<int64_t>(merged.rows.size()) < options_.min_support) {
          continue;
        }
        next.push_back(std::move(merged));
        if (static_cast<int64_t>(next.size()) > options_.max_frontier) {
          return Status::ResourceExhausted(
              "CTANE candidate frontier exceeds max_frontier");
        }
      }
    }
    frontier = std::move(next);
  }

  return found;
}

}  // namespace baselines
}  // namespace guardrail
