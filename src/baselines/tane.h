#ifndef GUARDRAIL_BASELINES_TANE_H_
#define GUARDRAIL_BASELINES_TANE_H_

#include <cstdint>
#include <vector>

#include "baselines/fd.h"
#include "common/deadline.h"
#include "common/status.h"
#include "table/table.h"

namespace guardrail {
namespace baselines {

/// TANE (Huhtala et al. 1999): levelwise lattice search for minimal
/// (approximate) functional dependencies using stripped-partition
/// refinement and rhs+ candidate pruning.
class Tane {
 public:
  struct Options {
    /// g3 error tolerance: discover X -> A with g3(X -> A) <= max_g3_error.
    /// 0 discovers exact FDs only.
    double max_g3_error = 0.0;
    /// Largest LHS size explored.
    int32_t max_lhs_size = 3;
    /// Lattice-size safety valve; discovery aborts with ResourceExhausted
    /// beyond this many candidate nodes per level (mirrors the paper's "-"
    /// out-of-memory entries for TANE on wide datasets).
    int64_t max_level_width = 200000;
  };

  explicit Tane(Options options) : options_(options) {}

  /// Discovers minimal FDs over `table`.
  Result<std::vector<Fd>> Discover(const Table& table) const;

  /// Cancellable discovery: checks `cancel` between lattice nodes and
  /// returns Status::Timeout when the budget fires mid-search.
  Result<std::vector<Fd>> Discover(const Table& table,
                                   const CancellationToken& cancel) const;

 private:
  Options options_;
};

}  // namespace baselines
}  // namespace guardrail

#endif  // GUARDRAIL_BASELINES_TANE_H_
