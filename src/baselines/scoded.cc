#include "baselines/scoded.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace guardrail {
namespace baselines {

void Scoded::Fit(const Table& train, const std::vector<Fd>& constraints) {
  tables_.clear();
  for (const Fd& fd : constraints) {
    if (fd.lhs.size() != 1) continue;  // Pairwise statistical constraints.
    AttrIndex det = fd.lhs[0];
    AttrIndex dep = fd.rhs;
    int32_t det_card = train.schema().attribute(det).domain_size();
    int32_t dep_card = train.schema().attribute(dep).domain_size();
    if (det_card < 1 || dep_card < 2) continue;

    std::vector<std::vector<int64_t>> counts(
        static_cast<size_t>(det_card),
        std::vector<int64_t>(static_cast<size_t>(dep_card), 0));
    for (RowIndex r = 0; r < train.num_rows(); ++r) {
      ValueId a = train.Get(r, det);
      ValueId b = train.Get(r, dep);
      if (a == kNullValue || b == kNullValue) continue;
      ++counts[static_cast<size_t>(a)][static_cast<size_t>(b)];
    }

    ConditionalTable table;
    table.det = det;
    table.dep = dep;
    table.neg_log_prob.assign(
        static_cast<size_t>(det_card),
        std::vector<double>(static_cast<size_t>(dep_card), 0.0));
    for (int32_t a = 0; a < det_card; ++a) {
      int64_t total = std::accumulate(counts[static_cast<size_t>(a)].begin(),
                                      counts[static_cast<size_t>(a)].end(),
                                      int64_t{0});
      double denom = static_cast<double>(total) +
                     options_.smoothing * static_cast<double>(dep_card);
      for (int32_t b = 0; b < dep_card; ++b) {
        double p =
            (static_cast<double>(counts[static_cast<size_t>(a)][static_cast<size_t>(b)]) +
             options_.smoothing) /
            denom;
        table.neg_log_prob[static_cast<size_t>(a)][static_cast<size_t>(b)] =
            -std::log(p);
      }
    }
    tables_.push_back(std::move(table));
  }
}

std::vector<double> Scoded::ScoreRows(const Table& test) const {
  std::vector<double> scores(static_cast<size_t>(test.num_rows()), 0.0);
  for (const auto& table : tables_) {
    int32_t det_card = static_cast<int32_t>(table.neg_log_prob.size());
    int32_t dep_card =
        det_card > 0 ? static_cast<int32_t>(table.neg_log_prob[0].size()) : 0;
    for (RowIndex r = 0; r < test.num_rows(); ++r) {
      ValueId a = test.Get(r, table.det);
      ValueId b = test.Get(r, table.dep);
      if (a == kNullValue || b == kNullValue) continue;
      if (a >= det_card) continue;  // Unseen determinant: no evidence.
      double surprise;
      if (b >= dep_card) {
        // A dependent value never seen in training: maximally surprising
        // under this conditional (the smoothed floor).
        surprise = *std::max_element(
            table.neg_log_prob[static_cast<size_t>(a)].begin(),
            table.neg_log_prob[static_cast<size_t>(a)].end());
      } else {
        surprise = table.neg_log_prob[static_cast<size_t>(a)][static_cast<size_t>(b)];
      }
      // Subtract the per-constraint baseline (the most likely value's
      // surprise) so rows following every constraint score ~0.
      double baseline = *std::min_element(
          table.neg_log_prob[static_cast<size_t>(a)].begin(),
          table.neg_log_prob[static_cast<size_t>(a)].end());
      scores[static_cast<size_t>(r)] += surprise - baseline;
    }
  }
  return scores;
}

std::vector<bool> Scoded::DetectTopK(const Table& test) const {
  std::vector<double> scores = ScoreRows(test);
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  std::vector<bool> flags(scores.size(), false);
  int64_t flagged = 0;
  for (size_t idx : order) {
    if (flagged >= options_.top_k || scores[idx] <= 0.0) break;
    flags[idx] = true;
    ++flagged;
  }
  return flags;
}

}  // namespace baselines
}  // namespace guardrail
