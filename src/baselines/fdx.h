#ifndef GUARDRAIL_BASELINES_FDX_H_
#define GUARDRAIL_BASELINES_FDX_H_

#include <cstdint>
#include <vector>

#include "baselines/fd.h"
#include "common/rng.h"
#include "common/status.h"
#include "table/table.h"

namespace guardrail {
namespace baselines {

/// FDX (Zhang et al. 2020): statistical FD discovery. Transforms row pairs
/// into binary equality indicators (the same auxiliary view Guardrail uses),
/// fits a linear structural model over the indicators via (ridge-regularized)
/// inverse-covariance estimation, thresholds partial correlations into an
/// undirected structure, and orients edges with a conditional-entropy
/// asymmetry heuristic standing in for the linear-non-Gaussian machinery.
///
/// The paper (Sec. 6) argues FDX's linear-additive-noise assumption is
/// mis-specified for binary indicator data; this implementation faithfully
/// inherits that weakness: inversion can be ill-conditioned (reported as an
/// error, matching the "-" entries of Table 3) and orientations are noisy.
class Fdx {
 public:
  struct Options {
    /// Ridge term added to the covariance diagonal before inversion.
    double ridge = 1e-4;
    /// Absolute partial-correlation threshold for keeping an edge.
    double partial_correlation_threshold = 0.12;
    /// Pivot threshold below which the inversion is declared
    /// ill-conditioned.
    double min_pivot = 1e-9;
    /// Pair sample size knobs (see pgm::AuxiliarySamplerOptions).
    int32_t num_shifts = 5;
    int64_t max_pairs = 200000;
  };

  explicit Fdx(Options options) : options_(options) {}

  /// Discovers FDs; the error status reproduces FDX's ill-conditioned
  /// inversion failure mode.
  Result<std::vector<Fd>> Discover(const Table& table, Rng* rng) const;

 private:
  Options options_;
};

}  // namespace baselines
}  // namespace guardrail

#endif  // GUARDRAIL_BASELINES_FDX_H_
