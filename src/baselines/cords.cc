#include "baselines/cords.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/math_util.h"

namespace guardrail {
namespace baselines {

Result<std::vector<Fd>> Cords::Discover(const Table& table, Rng* rng) const {
  const int32_t n = table.num_columns();
  const int64_t rows = table.num_rows();
  if (rows < 4) return Status::InvalidArgument("not enough rows for CORDS");

  // Row sample.
  int64_t sample_size = std::min(options_.sample_size, rows);
  std::vector<size_t> picked = rng->SampleWithoutReplacement(
      static_cast<size_t>(rows), static_cast<size_t>(sample_size));

  std::vector<Fd> found;
  for (int32_t a = 0; a < n; ++a) {
    for (int32_t b = 0; b < n; ++b) {
      if (a == b) continue;
      // Distinct counts and the joint contingency on the sample.
      std::unordered_set<ValueId> distinct_a;
      std::unordered_map<uint64_t, int64_t> joint;
      std::unordered_map<ValueId, int64_t> margin_a, margin_b;
      int64_t valid = 0;
      for (size_t idx : picked) {
        ValueId va = table.Get(static_cast<RowIndex>(idx), a);
        ValueId vb = table.Get(static_cast<RowIndex>(idx), b);
        if (va == kNullValue || vb == kNullValue) continue;
        ++valid;
        distinct_a.insert(va);
        ++margin_a[va];
        ++margin_b[vb];
        ++joint[(static_cast<uint64_t>(va) << 32) |
                static_cast<uint64_t>(static_cast<uint32_t>(vb))];
      }
      if (valid < 8 || distinct_a.size() < 2) continue;
      // Keys trivially determine everything; CORDS screens them out.
      if (static_cast<double>(distinct_a.size()) >
          options_.max_key_ratio * static_cast<double>(valid)) {
        continue;
      }

      // Soft-FD strength: distinct(A) / distinct(A, B), counting only
      // combinations witnessed at least twice (singleton pairs on a sample
      // are indistinguishable from noise; CORDS applies the same frequency
      // cutoff idea to its sampled distinct counts).
      int64_t cutoff = std::max<int64_t>(2, valid / 200);
      int64_t solid_pairs = 0;
      for (const auto& [key, count] : joint) {
        (void)key;
        solid_pairs += count >= cutoff ? 1 : 0;
      }
      if (solid_pairs == 0) continue;
      double strength = static_cast<double>(distinct_a.size()) /
                        static_cast<double>(solid_pairs);
      if (strength < options_.min_strength || strength > 1.0 + 1e-9) continue;

      // Chi-squared correlation screen.
      double chi2 = 0.0;
      for (const auto& [key, observed] : joint) {
        ValueId va = static_cast<ValueId>(key >> 32);
        ValueId vb = static_cast<ValueId>(key & 0xFFFFFFFFULL);
        double expected = static_cast<double>(margin_a[va]) *
                          static_cast<double>(margin_b[vb]) /
                          static_cast<double>(valid);
        if (expected > 0.0) {
          double diff = static_cast<double>(observed) - expected;
          chi2 += diff * diff / expected;
        }
      }
      double dof = static_cast<double>(margin_a.size() - 1) *
                   static_cast<double>(margin_b.size() - 1);
      if (dof <= 0.0 || ChiSquareSurvival(chi2, dof) >= options_.alpha) {
        continue;
      }

      Fd fd;
      fd.lhs = {a};
      fd.rhs = b;
      fd.g3_error = 1.0 - strength;
      found.push_back(std::move(fd));
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace baselines
}  // namespace guardrail
