#ifndef GUARDRAIL_BASELINES_SCODED_H_
#define GUARDRAIL_BASELINES_SCODED_H_

#include <cstdint>
#include <vector>

#include "baselines/fd.h"
#include "table/table.h"

namespace guardrail {
namespace baselines {

/// SCODED-style statistical-constraint error detection (Yan et al. 2020,
/// discussed in paper Sec. 6). Unlike Guardrail's hard constraints, SCODED
/// takes *user-specified* statistical constraints — here the soft form
/// "dep is distributed as P(dep | det)" for given (det, dep) pairs — scores
/// every row by how surprising it is under the fitted conditional
/// distributions, and surfaces the top-k violations.
///
/// The paper positions Guardrail as complementary: it can *infer* the
/// constraint set SCODED requires as input. ScoreRows accepts exactly the
/// pairwise dependencies a Guardrail sketch (or an FD discoverer) provides.
class Scoded {
 public:
  struct Options {
    /// Laplace smoothing for the conditional estimates.
    double smoothing = 0.5;
    /// DetectTopK flags this many of the highest-scoring rows.
    int64_t top_k = 50;
  };

  explicit Scoded(Options options) : options_(options) {}

  /// Fits P(dep | det) tables from `train` for each statistical constraint
  /// (single-determinant FDs; wider determinants are ignored, matching the
  /// pairwise statistical constraints of the original system).
  void Fit(const Table& train, const std::vector<Fd>& constraints);

  /// Per-row surprise: sum over constraints of -log P(dep value | det
  /// value). Unseen determinant values contribute nothing (no evidence).
  std::vector<double> ScoreRows(const Table& test) const;

  /// Flags the top-k rows by score (score must be positive to be flagged).
  std::vector<bool> DetectTopK(const Table& test) const;

  int64_t num_fitted_constraints() const {
    return static_cast<int64_t>(tables_.size());
  }

 private:
  struct ConditionalTable {
    AttrIndex det = 0;
    AttrIndex dep = 0;
    // [det value][dep value] -> -log P(dep | det), dense.
    std::vector<std::vector<double>> neg_log_prob;
  };

  Options options_;
  std::vector<ConditionalTable> tables_;
};

}  // namespace baselines
}  // namespace guardrail

#endif  // GUARDRAIL_BASELINES_SCODED_H_
