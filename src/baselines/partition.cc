#include "baselines/partition.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace guardrail {
namespace baselines {

StrippedPartition StrippedPartition::ForAttribute(const Table& table,
                                                  AttrIndex attr) {
  const int32_t domain =
      std::max(1, table.schema().attribute(attr).domain_size());
  // +1 bucket for NULLs (NULL == NULL for partitioning purposes).
  std::vector<std::vector<RowIndex>> buckets(static_cast<size_t>(domain) + 1);
  const auto& column = table.column(attr);
  for (RowIndex r = 0; r < table.num_rows(); ++r) {
    ValueId v = column[static_cast<size_t>(r)];
    size_t idx = v == kNullValue ? static_cast<size_t>(domain)
                                 : static_cast<size_t>(v);
    buckets[idx].push_back(r);
  }
  StrippedPartition out;
  for (auto& bucket : buckets) {
    if (bucket.size() >= 2) out.classes_.push_back(std::move(bucket));
  }
  return out;
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& a,
                                             const StrippedPartition& b,
                                             int64_t num_rows) {
  // TANE's linear probe-table algorithm.
  std::vector<int64_t> owner(static_cast<size_t>(num_rows), -1);
  std::vector<std::vector<RowIndex>> scratch(a.classes_.size());
  for (size_t i = 0; i < a.classes_.size(); ++i) {
    for (RowIndex t : a.classes_[i]) {
      owner[static_cast<size_t>(t)] = static_cast<int64_t>(i);
    }
  }
  StrippedPartition out;
  for (const auto& cls : b.classes_) {
    // Distribute the class's rows into the scratch buckets of their a-class.
    for (RowIndex t : cls) {
      int64_t o = owner[static_cast<size_t>(t)];
      if (o >= 0) scratch[static_cast<size_t>(o)].push_back(t);
    }
    // Flush: each non-trivial intersection is a product class.
    for (RowIndex t : cls) {
      int64_t o = owner[static_cast<size_t>(t)];
      if (o < 0) continue;
      auto& bucket = scratch[static_cast<size_t>(o)];
      if (bucket.empty()) continue;  // Already flushed for this b-class.
      if (bucket.size() >= 2) out.classes_.push_back(bucket);
      bucket.clear();
    }
  }
  return out;
}

int64_t StrippedPartition::NumRowsInClasses() const {
  int64_t total = 0;
  for (const auto& cls : classes_) total += static_cast<int64_t>(cls.size());
  return total;
}

double StrippedPartition::FdG3Error(const StrippedPartition& with_rhs,
                                    int64_t num_rows) const {
  if (num_rows == 0) return 0.0;
  // Mark one representative per refined class with the class size.
  std::unordered_map<RowIndex, int64_t> rep_size;
  rep_size.reserve(with_rhs.classes_.size() * 2);
  for (const auto& cls : with_rhs.classes_) {
    rep_size[cls.front()] = static_cast<int64_t>(cls.size());
  }
  int64_t error = 0;
  for (const auto& cls : classes_) {
    int64_t best = 1;  // Unmarked rows are singletons in the refinement.
    for (RowIndex t : cls) {
      auto it = rep_size.find(t);
      if (it != rep_size.end()) best = std::max(best, it->second);
    }
    error += static_cast<int64_t>(cls.size()) - best;
  }
  return static_cast<double>(error) / static_cast<double>(num_rows);
}

}  // namespace baselines
}  // namespace guardrail
