#include "baselines/fdx.h"

#include <algorithm>
#include <cmath>

#include "pgm/auxiliary_sampler.h"

namespace guardrail {
namespace baselines {

namespace {

/// Gauss-Jordan inversion with partial pivoting. Returns false when a pivot
/// falls below `min_pivot` (ill-conditioned input).
bool InvertMatrix(std::vector<std::vector<double>>* m, double min_pivot) {
  const size_t n = m->size();
  std::vector<std::vector<double>> inv(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) inv[i][i] = 1.0;
  auto& a = *m;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < min_pivot) return false;
    std::swap(a[col], a[pivot]);
    std::swap(inv[col], inv[pivot]);
    double d = a[col][col];
    for (size_t j = 0; j < n; ++j) {
      a[col][j] /= d;
      inv[col][j] /= d;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      double f = a[r][col];
      if (f == 0.0) continue;
      for (size_t j = 0; j < n; ++j) {
        a[r][j] -= f * a[col][j];
        inv[r][j] -= f * inv[col][j];
      }
    }
  }
  *m = std::move(inv);
  return true;
}

/// Entropy of a Bernoulli(p), in nats.
double BernoulliEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

}  // namespace

Result<std::vector<Fd>> Fdx::Discover(const Table& table, Rng* rng) const {
  const int32_t n = table.num_columns();
  pgm::AuxiliarySamplerOptions aux_options;
  aux_options.num_shifts = options_.num_shifts;
  aux_options.max_pairs = options_.max_pairs;
  pgm::EncodedData aux = pgm::SampleAuxiliaryDistribution(table, aux_options, rng);
  if (aux.num_rows < 4) {
    return Status::InvalidArgument("not enough rows for FDX");
  }
  const double rows = static_cast<double>(aux.num_rows);

  // Means and covariance of the binary indicators.
  std::vector<double> mean(static_cast<size_t>(n), 0.0);
  for (int32_t i = 0; i < n; ++i) {
    int64_t sum = 0;
    for (ValueId v : aux.columns[static_cast<size_t>(i)]) sum += v;
    mean[static_cast<size_t>(i)] = static_cast<double>(sum) / rows;
  }
  std::vector<std::vector<double>> cov(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), 0.0));
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = i; j < n; ++j) {
      double acc = 0.0;
      const auto& ci = aux.columns[static_cast<size_t>(i)];
      const auto& cj = aux.columns[static_cast<size_t>(j)];
      for (int64_t r = 0; r < aux.num_rows; ++r) {
        acc += (static_cast<double>(ci[static_cast<size_t>(r)]) -
                mean[static_cast<size_t>(i)]) *
               (static_cast<double>(cj[static_cast<size_t>(r)]) -
                mean[static_cast<size_t>(j)]);
      }
      double c = acc / rows;
      cov[static_cast<size_t>(i)][static_cast<size_t>(j)] = c;
      cov[static_cast<size_t>(j)][static_cast<size_t>(i)] = c;
    }
  }
  // A constant indicator (an attribute where sampled pairs always agree or
  // always disagree) makes the covariance singular; the ridge softens but a
  // fully degenerate matrix still fails — FDX's documented failure mode.
  for (int32_t i = 0; i < n; ++i) {
    cov[static_cast<size_t>(i)][static_cast<size_t>(i)] += options_.ridge;
  }
  std::vector<std::vector<double>> precision = cov;
  if (!InvertMatrix(&precision, options_.min_pivot)) {
    return Status::Internal("FDX: ill-conditioned covariance inversion");
  }

  // Partial correlations -> undirected candidate edges.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = i + 1; j < n; ++j) {
      double denom = std::sqrt(precision[static_cast<size_t>(i)][static_cast<size_t>(i)] *
                               precision[static_cast<size_t>(j)][static_cast<size_t>(j)]);
      if (denom <= 0.0) continue;
      double rho = -precision[static_cast<size_t>(i)][static_cast<size_t>(j)] / denom;
      if (std::fabs(rho) >= options_.partial_correlation_threshold) {
        edges.emplace_back(i, j);
      }
    }
  }

  // Orientation: conditional-entropy asymmetry. H(I_j | I_i) near zero means
  // knowing "rows agree on i" pins down "rows agree on j" — evidence that i
  // determines j.
  auto conditional_entropy = [&](int32_t given, int32_t target) {
    // Joint histogram over (I_given, I_target).
    double joint[2][2] = {{0, 0}, {0, 0}};
    const auto& cg = aux.columns[static_cast<size_t>(given)];
    const auto& ct = aux.columns[static_cast<size_t>(target)];
    for (int64_t r = 0; r < aux.num_rows; ++r) {
      joint[cg[static_cast<size_t>(r)]][ct[static_cast<size_t>(r)]] += 1.0;
    }
    double h = 0.0;
    for (int g = 0; g < 2; ++g) {
      double ng = joint[g][0] + joint[g][1];
      if (ng <= 0.0) continue;
      h += (ng / rows) * BernoulliEntropy(joint[g][1] / ng);
    }
    return h;
  };

  std::vector<std::vector<AttrIndex>> parents(static_cast<size_t>(n));
  for (const auto& [i, j] : edges) {
    double h_j_given_i = conditional_entropy(i, j);
    double h_i_given_j = conditional_entropy(j, i);
    if (h_j_given_i <= h_i_given_j) {
      parents[static_cast<size_t>(j)].push_back(i);
    } else {
      parents[static_cast<size_t>(i)].push_back(j);
    }
  }

  std::vector<Fd> found;
  for (int32_t j = 0; j < n; ++j) {
    if (parents[static_cast<size_t>(j)].empty()) continue;
    Fd fd;
    fd.lhs = parents[static_cast<size_t>(j)];
    std::sort(fd.lhs.begin(), fd.lhs.end());
    fd.rhs = j;
    found.push_back(std::move(fd));
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace baselines
}  // namespace guardrail
