#ifndef GUARDRAIL_BASELINES_FD_DETECTOR_H_
#define GUARDRAIL_BASELINES_FD_DETECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baselines/fd.h"
#include "table/table.h"

namespace guardrail {
namespace baselines {

/// Turns discovered FDs into a row-level error detector comparable to
/// Guardrail's guard: for each FD X -> A, the detector memorizes the
/// majority A-value per X-combination on clean training data and flags test
/// rows whose combination is known but whose A-value disagrees.
class FdDetector {
 public:
  struct Options {
    /// Mappings must be witnessed by at least this many training rows.
    int64_t min_support = 2;
    /// Required purity of the training mapping (majority fraction).
    double min_confidence = 0.95;
  };

  FdDetector(std::vector<Fd> fds, Options options)
      : fds_(std::move(fds)), options_(options) {}

  /// Learns the value mappings from `train`.
  void Fit(const Table& train);

  /// Per-row violation flags over `test`.
  std::vector<bool> Detect(const Table& test) const;

  int64_t num_mappings() const;

 private:
  struct FdMapping {
    Fd fd;
    // Hash of the LHS combination -> expected RHS code.
    std::unordered_map<uint64_t, ValueId> expected;
  };

  static uint64_t HashCombo(const Table& table, RowIndex row,
                            const std::vector<AttrIndex>& attrs, bool* has_null);

  std::vector<Fd> fds_;
  Options options_;
  std::vector<FdMapping> mappings_;
};

/// The same idea for constant CFDs, which carry their expected value
/// directly: a row matching the LHS pattern with a different RHS value is a
/// violation.
class CfdDetector {
 public:
  explicit CfdDetector(std::vector<ConstantCfd> cfds)
      : cfds_(std::move(cfds)) {}

  std::vector<bool> Detect(const Table& test) const;

 private:
  std::vector<ConstantCfd> cfds_;
};

}  // namespace baselines
}  // namespace guardrail

#endif  // GUARDRAIL_BASELINES_FD_DETECTOR_H_
