#ifndef GUARDRAIL_BASELINES_CORDS_H_
#define GUARDRAIL_BASELINES_CORDS_H_

#include <cstdint>
#include <vector>

#include "baselines/fd.h"
#include "common/rng.h"
#include "common/status.h"
#include "table/table.h"

namespace guardrail {
namespace baselines {

/// CORDS (Ilyas et al. 2004): sampling-based discovery of correlations and
/// *soft* functional dependencies between attribute pairs. For each ordered
/// pair (A, B) it samples rows and declares a soft FD A -> B when the number
/// of distinct (A, B) combinations stays close to the number of distinct A
/// values (strength >= `min_strength`), with a chi-squared screen for plain
/// correlation. As the paper notes (Sec. 6), CORDS is pairwise only: it
/// cannot represent multi-attribute determinants and keeps redundant
/// (transitively implied) dependencies.
class Cords {
 public:
  struct Options {
    /// Row sample size (CORDS' headline trick is that small samples
    /// suffice).
    int64_t sample_size = 2000;
    /// Soft-FD strength threshold: |distinct(A)| / |distinct(A,B)|.
    double min_strength = 0.95;
    /// Skip pairs whose determinant looks like a key on the sample
    /// (distinct count close to the sample size; keys trivially determine
    /// everything).
    double max_key_ratio = 0.9;
    /// Chi-squared significance level for the correlation screen.
    double alpha = 0.01;
  };

  explicit Cords(Options options) : options_(options) {}

  /// Discovers pairwise soft FDs.
  Result<std::vector<Fd>> Discover(const Table& table, Rng* rng) const;

 private:
  Options options_;
};

}  // namespace baselines
}  // namespace guardrail

#endif  // GUARDRAIL_BASELINES_CORDS_H_
