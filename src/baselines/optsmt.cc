#include "baselines/optsmt.h"

#include <algorithm>
#include <vector>

#include "common/timer.h"
#include "core/metrics.h"
#include "core/sketch.h"
#include "core/sketch_filler.h"

namespace guardrail {
namespace baselines {

OptSmtSynthesizer::ReportedResult OptSmtSynthesizer::Synthesize(
    const Table& data) const {
  ReportedResult result;
  StopWatch watch;
  const int32_t n = data.num_columns();

  core::FillOptions fill;
  fill.epsilon = options_.epsilon;
  fill.min_branch_support = options_.min_branch_support;
  fill.max_conditions_per_statement = 1 << 30;  // Exact search: no cap.

  // For every dependent attribute, exhaustively search determinant subsets.
  for (AttrIndex dep = 0; dep < n && !result.timed_out; ++dep) {
    core::Statement best;
    double best_coverage = -1.0;

    // Enumerate subsets of the other attributes up to max_determinants via
    // an explicit combination walk per size.
    std::vector<AttrIndex> pool;
    for (AttrIndex a = 0; a < n; ++a) {
      if (a != dep) pool.push_back(a);
    }
    for (int32_t size = 1;
         size <= options_.max_determinants &&
         size <= static_cast<int32_t>(pool.size()) && !result.timed_out;
         ++size) {
      std::vector<int32_t> idx(static_cast<size_t>(size));
      for (int32_t i = 0; i < size; ++i) idx[static_cast<size_t>(i)] = i;
      while (true) {
        if (watch.ElapsedSeconds() > options_.time_budget_seconds ||
            result.clauses_generated > options_.max_clauses ||
            options_.cancel.Cancelled()) {
          result.timed_out = true;
          break;
        }
        core::StatementSketch sketch;
        sketch.dependent = dep;
        for (int32_t i : idx) {
          sketch.determinants.push_back(pool[static_cast<size_t>(i)]);
        }
        ++result.candidates_explored;

        // Clause accounting for the equivalent OptSMT encoding: every row
        // contributes one soft clause per candidate hole assignment of the
        // branch its determinant combination selects.
        result.clauses_generated +=
            data.num_rows() *
            static_cast<int64_t>(
                data.schema().attribute(dep).domain_size());

        std::optional<core::Statement> filled =
            core::FillStatementSketch(sketch, data, fill);
        if (filled.has_value()) {
          double coverage = core::StatementCoverage(*filled, data);
          if (coverage > best_coverage) {
            best_coverage = coverage;
            best = std::move(*filled);
          }
        }

        // Next combination.
        int32_t i = size - 1;
        int32_t limit = static_cast<int32_t>(pool.size());
        while (i >= 0 && idx[static_cast<size_t>(i)] == limit - size + i) --i;
        if (i < 0) break;
        ++idx[static_cast<size_t>(i)];
        for (int32_t j = i + 1; j < size; ++j) {
          idx[static_cast<size_t>(j)] = idx[static_cast<size_t>(j - 1)] + 1;
        }
      }
    }
    if (best_coverage > 0.0) {
      result.program.statements.push_back(std::move(best));
    }
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace baselines
}  // namespace guardrail
