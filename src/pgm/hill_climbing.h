#ifndef GUARDRAIL_PGM_HILL_CLIMBING_H_
#define GUARDRAIL_PGM_HILL_CLIMBING_H_

#include <cstdint>

#include "common/deadline.h"
#include "pgm/bic_score.h"
#include "pgm/dag.h"
#include "pgm/encoded_data.h"

namespace guardrail {
namespace pgm {

/// Score-based structure learning: greedy hill climbing over DAGs with
/// add / delete / reverse edge moves under the decomposable BIC score.
/// An alternative to the constraint-based PC algorithm for the sketch-
/// learning stage; ablation-compared in bench/ablation_structure_learners.
class HillClimbingLearner {
 public:
  struct Options {
    /// In-degree cap (keeps CPDs estimable and sketches fillable).
    int32_t max_parents = 3;
    /// Upper bound on greedy improvement rounds.
    int32_t max_iterations = 200;
    /// Minimum score improvement to accept a move.
    double min_delta = 1e-6;
  };

  struct LearnResult {
    Dag dag;
    double score = 0.0;
    int32_t iterations = 0;
    int64_t moves_evaluated = 0;
    /// True when the budget expired before greedy convergence. The dag is
    /// still the best structure found so far — hill climbing is an anytime
    /// algorithm, so expiry degrades quality, never validity.
    bool timed_out = false;
  };

  explicit HillClimbingLearner(Options options) : options_(options) {}

  LearnResult Learn(const EncodedData& data) const;

  /// Anytime variant: stops improving when `cancel` fires and returns the
  /// current (always acyclic) structure with timed_out set.
  LearnResult Learn(const EncodedData& data,
                    const CancellationToken& cancel) const;

 private:
  Options options_;
};

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_HILL_CLIMBING_H_
