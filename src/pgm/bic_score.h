#ifndef GUARDRAIL_PGM_BIC_SCORE_H_
#define GUARDRAIL_PGM_BIC_SCORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "pgm/dag.h"
#include "pgm/encoded_data.h"

namespace guardrail {
namespace pgm {

/// Decomposable BIC score for categorical Bayesian networks:
///   score(G) = sum_v [ loglik(v | Pa(v)) - 0.5 * log(n) * params(v) ]
/// where params(v) = (|v| - 1) * prod |Pa(v)| and loglik uses maximum-
/// likelihood CPD estimates. Family scores are memoized on
/// (variable, parent set), so hill climbing re-scores only touched
/// families.
class BicScorer {
 public:
  explicit BicScorer(const EncodedData* data);

  /// Score of one family: variable v with parent set `parents` (sorted).
  double FamilyScore(int32_t v, const std::vector<int32_t>& parents) const;

  /// Total network score.
  double Score(const Dag& dag) const;

  int64_t cache_hits() const { return hits_; }
  int64_t cache_misses() const { return misses_; }

 private:
  const EncodedData* data_;
  mutable std::map<std::pair<int32_t, std::vector<int32_t>>, double> cache_;
  mutable int64_t hits_ = 0;
  mutable int64_t misses_ = 0;
};

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_BIC_SCORE_H_
