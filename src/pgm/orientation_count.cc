#include "pgm/orientation_count.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace guardrail {
namespace pgm {

namespace {

// A small mutable simple graph in edge-list-over-adjacency-set form, with a
// canonical string key for memoization.
struct SimpleGraph {
  int32_t n = 0;
  // Upper-triangular adjacency, adj[u] holds v > u.
  std::vector<std::vector<int32_t>> adj;

  int64_t NumEdges() const {
    int64_t m = 0;
    for (const auto& row : adj) m += static_cast<int64_t>(row.size());
    return m;
  }

  std::string Key() const {
    std::string key = std::to_string(n) + ":";
    for (int32_t u = 0; u < n; ++u) {
      for (int32_t v : adj[static_cast<size_t>(u)]) {
        key += std::to_string(u) + "," + std::to_string(v) + ";";
      }
    }
    return key;
  }
};

struct Counter {
  std::unordered_map<std::string, double> memo;
  int64_t work = 0;
  int64_t max_work = 0;
  bool exhausted = false;
};

// a(G) = a(G - e) + a(G / e); a(edgeless on n vertices) = 1.
double Count(SimpleGraph g, Counter* counter) {
  if (counter->exhausted) return 0.0;
  if (++counter->work > counter->max_work) {
    counter->exhausted = true;
    return 0.0;
  }
  if (g.NumEdges() == 0) return 1.0;
  std::string key = g.Key();
  auto it = counter->memo.find(key);
  if (it != counter->memo.end()) return it->second;

  // Pick the first edge (u, v).
  int32_t u = -1, v = -1;
  for (int32_t i = 0; i < g.n && u < 0; ++i) {
    if (!g.adj[static_cast<size_t>(i)].empty()) {
      u = i;
      v = g.adj[static_cast<size_t>(i)].front();
    }
  }

  // Deletion: remove (u, v).
  SimpleGraph deleted = g;
  auto& du = deleted.adj[static_cast<size_t>(u)];
  du.erase(std::find(du.begin(), du.end(), v));
  double a_del = Count(std::move(deleted), counter);

  // Contraction: merge v into u, relabel w > v to w - 1, dedupe edges.
  SimpleGraph contracted;
  contracted.n = g.n - 1;
  contracted.adj.assign(static_cast<size_t>(contracted.n), {});
  auto relabel = [&](int32_t w) {
    if (w == v) return u;
    return w > v ? w - 1 : w;
  };
  for (int32_t a = 0; a < g.n; ++a) {
    for (int32_t b : g.adj[static_cast<size_t>(a)]) {
      int32_t ra = relabel(a), rb = relabel(b);
      if (ra == rb) continue;  // The contracted edge itself.
      int32_t lo = std::min(ra, rb), hi = std::max(ra, rb);
      auto& row = contracted.adj[static_cast<size_t>(lo)];
      if (std::find(row.begin(), row.end(), hi) == row.end()) {
        row.push_back(hi);
      }
    }
  }
  for (auto& row : contracted.adj) std::sort(row.begin(), row.end());
  double a_con = Count(std::move(contracted), counter);

  double total = a_del + a_con;
  counter->memo.emplace(std::move(key), total);
  return total;
}

}  // namespace

double CountAcyclicOrientations(const Pdag& graph, int64_t max_work) {
  const int32_t n = graph.num_nodes();
  // Split into connected components of the skeleton; the total count is the
  // product over components.
  std::vector<int32_t> component(static_cast<size_t>(n), -1);
  int32_t num_components = 0;
  for (int32_t s = 0; s < n; ++s) {
    if (component[static_cast<size_t>(s)] >= 0) continue;
    int32_t id = num_components++;
    std::vector<int32_t> stack{s};
    component[static_cast<size_t>(s)] = id;
    while (!stack.empty()) {
      int32_t u = stack.back();
      stack.pop_back();
      for (int32_t v = 0; v < n; ++v) {
        if (v != u && graph.IsAdjacent(u, v) &&
            component[static_cast<size_t>(v)] < 0) {
          component[static_cast<size_t>(v)] = id;
          stack.push_back(v);
        }
      }
    }
  }

  double total = 1.0;
  for (int32_t c = 0; c < num_components; ++c) {
    // Gather and relabel the component's vertices.
    std::vector<int32_t> verts;
    for (int32_t v = 0; v < n; ++v) {
      if (component[static_cast<size_t>(v)] == c) verts.push_back(v);
    }
    SimpleGraph g;
    g.n = static_cast<int32_t>(verts.size());
    g.adj.assign(static_cast<size_t>(g.n), {});
    for (int32_t i = 0; i < g.n; ++i) {
      for (int32_t j = i + 1; j < g.n; ++j) {
        if (graph.IsAdjacent(verts[static_cast<size_t>(i)],
                             verts[static_cast<size_t>(j)])) {
          g.adj[static_cast<size_t>(i)].push_back(j);
        }
      }
    }
    Counter counter;
    counter.max_work = max_work;
    double count = Count(std::move(g), &counter);
    if (counter.exhausted) return std::numeric_limits<double>::infinity();
    total *= count;
    if (total > 1e300) return std::numeric_limits<double>::infinity();
  }
  return total;
}

}  // namespace pgm
}  // namespace guardrail
