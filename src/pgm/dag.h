#ifndef GUARDRAIL_PGM_DAG_H_
#define GUARDRAIL_PGM_DAG_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace guardrail {
namespace pgm {

/// A directed acyclic graph over `num_nodes` labeled vertices (attribute
/// indexes). Stores both parent and child lists for O(deg) traversal.
class Dag {
 public:
  Dag() = default;
  explicit Dag(int32_t num_nodes);

  int32_t num_nodes() const { return num_nodes_; }

  /// Adds edge from -> to. Duplicate edges are ignored; self-loops are
  /// programming errors.
  void AddEdge(int32_t from, int32_t to);

  bool HasEdge(int32_t from, int32_t to) const;

  const std::vector<int32_t>& parents(int32_t node) const {
    return parents_[static_cast<size_t>(node)];
  }
  const std::vector<int32_t>& children(int32_t node) const {
    return children_[static_cast<size_t>(node)];
  }

  int64_t num_edges() const { return num_edges_; }

  /// True when the directed graph has no cycle.
  bool IsAcyclic() const;

  /// Topological order (parents before children); requires acyclicity.
  std::vector<int32_t> TopologicalOrder() const;

  /// True if u and v are connected by an edge in either direction.
  bool IsAdjacent(int32_t u, int32_t v) const {
    return HasEdge(u, v) || HasEdge(v, u);
  }

  /// V-structures u -> w <- v with u, v non-adjacent, as sorted triples
  /// (min(u,v), w, max(u,v)); used for Markov-equivalence checks.
  std::vector<std::array<int32_t, 3>> VStructures() const;

  /// Two DAGs are Markov equivalent iff same skeleton and same v-structures.
  bool IsMarkovEquivalent(const Dag& other) const;

  bool operator==(const Dag& other) const;

  /// Multi-line debug form "0 -> 1\n0 -> 2\n...".
  std::string ToString() const;

 private:
  int32_t num_nodes_ = 0;
  int64_t num_edges_ = 0;
  std::vector<std::vector<int32_t>> parents_;
  std::vector<std::vector<int32_t>> children_;
  std::vector<std::vector<bool>> edge_;  // edge_[from][to]
};

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_DAG_H_
