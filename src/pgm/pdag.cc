#include "pgm/pdag.h"

#include <utility>

#include "common/logging.h"
#include "pgm/meek_rules.h"

namespace guardrail {
namespace pgm {

Pdag::Pdag(int32_t num_nodes) : num_nodes_(num_nodes) {
  GUARDRAIL_CHECK_GE(num_nodes, 0);
  matrix_.assign(static_cast<size_t>(num_nodes),
                 std::vector<bool>(static_cast<size_t>(num_nodes), false));
}

Pdag Pdag::CompleteUndirected(int32_t num_nodes) {
  Pdag g(num_nodes);
  for (int32_t u = 0; u < num_nodes; ++u) {
    for (int32_t v = u + 1; v < num_nodes; ++v) {
      g.AddUndirectedEdge(u, v);
    }
  }
  return g;
}

Pdag Pdag::FromDag(const Dag& dag) {
  // Start from the skeleton with v-structure arcs directed, then close under
  // Meek rules; the remaining compelled directions define the CPDAG.
  Pdag g(dag.num_nodes());
  for (int32_t u = 0; u < dag.num_nodes(); ++u) {
    for (int32_t v : dag.children(u)) {
      if (!g.IsAdjacent(u, v)) g.AddUndirectedEdge(u, v);
    }
  }
  for (const auto& vs : dag.VStructures()) {
    int32_t a = vs[0], w = vs[1], b = vs[2];
    if (g.HasUndirectedEdge(a, w)) g.Orient(a, w);
    if (g.HasUndirectedEdge(b, w)) g.Orient(b, w);
  }
  ApplyMeekRules(&g);
  return g;
}

void Pdag::AddUndirectedEdge(int32_t u, int32_t v) {
  GUARDRAIL_CHECK_NE(u, v);
  matrix_[static_cast<size_t>(u)][static_cast<size_t>(v)] = true;
  matrix_[static_cast<size_t>(v)][static_cast<size_t>(u)] = true;
}

void Pdag::AddDirectedEdge(int32_t from, int32_t to) {
  GUARDRAIL_CHECK_NE(from, to);
  matrix_[static_cast<size_t>(from)][static_cast<size_t>(to)] = true;
  matrix_[static_cast<size_t>(to)][static_cast<size_t>(from)] = false;
}

void Pdag::RemoveEdge(int32_t u, int32_t v) {
  matrix_[static_cast<size_t>(u)][static_cast<size_t>(v)] = false;
  matrix_[static_cast<size_t>(v)][static_cast<size_t>(u)] = false;
}

bool Pdag::HasDirectedEdge(int32_t from, int32_t to) const {
  return Arc(from, to) && !Arc(to, from);
}

bool Pdag::HasUndirectedEdge(int32_t u, int32_t v) const {
  return Arc(u, v) && Arc(v, u);
}

bool Pdag::IsAdjacent(int32_t u, int32_t v) const {
  return Arc(u, v) || Arc(v, u);
}

void Pdag::Orient(int32_t from, int32_t to) {
  GUARDRAIL_CHECK(HasUndirectedEdge(from, to))
      << "Orient requires an undirected edge " << from << " -- " << to;
  matrix_[static_cast<size_t>(to)][static_cast<size_t>(from)] = false;
}

std::vector<int32_t> Pdag::AdjacentNodes(int32_t node) const {
  std::vector<int32_t> out;
  for (int32_t v = 0; v < num_nodes_; ++v) {
    if (v != node && IsAdjacent(node, v)) out.push_back(v);
  }
  return out;
}

std::vector<int32_t> Pdag::DirectedParents(int32_t node) const {
  std::vector<int32_t> out;
  for (int32_t v = 0; v < num_nodes_; ++v) {
    if (v != node && HasDirectedEdge(v, node)) out.push_back(v);
  }
  return out;
}

std::vector<int32_t> Pdag::UndirectedNeighbors(int32_t node) const {
  std::vector<int32_t> out;
  for (int32_t v = 0; v < num_nodes_; ++v) {
    if (v != node && HasUndirectedEdge(node, v)) out.push_back(v);
  }
  return out;
}

int64_t Pdag::NumUndirectedEdges() const {
  int64_t count = 0;
  for (int32_t u = 0; u < num_nodes_; ++u) {
    for (int32_t v = u + 1; v < num_nodes_; ++v) {
      if (HasUndirectedEdge(u, v)) ++count;
    }
  }
  return count;
}

int64_t Pdag::NumDirectedEdges() const {
  int64_t count = 0;
  for (int32_t u = 0; u < num_nodes_; ++u) {
    for (int32_t v = 0; v < num_nodes_; ++v) {
      if (u != v && HasDirectedEdge(u, v)) ++count;
    }
  }
  return count;
}

std::vector<std::pair<int32_t, int32_t>> Pdag::UndirectedEdges() const {
  std::vector<std::pair<int32_t, int32_t>> out;
  for (int32_t u = 0; u < num_nodes_; ++u) {
    for (int32_t v = u + 1; v < num_nodes_; ++v) {
      if (HasUndirectedEdge(u, v)) out.emplace_back(u, v);
    }
  }
  return out;
}

bool Pdag::IsFullyDirected() const { return NumUndirectedEdges() == 0; }

Result<Dag> Pdag::ToDag() const {
  if (!IsFullyDirected()) {
    return Status::InvalidArgument("Pdag still has undirected edges");
  }
  Dag dag(num_nodes_);
  for (int32_t u = 0; u < num_nodes_; ++u) {
    for (int32_t v = 0; v < num_nodes_; ++v) {
      if (u != v && HasDirectedEdge(u, v)) dag.AddEdge(u, v);
    }
  }
  if (!dag.IsAcyclic()) {
    return Status::InvalidArgument("directed edges form a cycle");
  }
  return dag;
}

bool Pdag::HasDirectedCycle() const {
  // Kahn peeling over the directed-edge subgraph.
  std::vector<int32_t> indegree(static_cast<size_t>(num_nodes_), 0);
  for (int32_t u = 0; u < num_nodes_; ++u) {
    for (int32_t v = 0; v < num_nodes_; ++v) {
      if (u != v && HasDirectedEdge(u, v)) ++indegree[static_cast<size_t>(v)];
    }
  }
  std::vector<int32_t> frontier;
  for (int32_t v = 0; v < num_nodes_; ++v) {
    if (indegree[static_cast<size_t>(v)] == 0) frontier.push_back(v);
  }
  int32_t processed = 0;
  while (!frontier.empty()) {
    int32_t u = frontier.back();
    frontier.pop_back();
    ++processed;
    for (int32_t v = 0; v < num_nodes_; ++v) {
      if (u != v && HasDirectedEdge(u, v) &&
          --indegree[static_cast<size_t>(v)] == 0) {
        frontier.push_back(v);
      }
    }
  }
  return processed < num_nodes_;
}

std::string Pdag::ToString() const {
  std::string out;
  for (int32_t u = 0; u < num_nodes_; ++u) {
    for (int32_t v = 0; v < num_nodes_; ++v) {
      if (u < v && HasUndirectedEdge(u, v)) {
        out += std::to_string(u) + " -- " + std::to_string(v) + "\n";
      }
      if (u != v && HasDirectedEdge(u, v)) {
        out += std::to_string(u) + " -> " + std::to_string(v) + "\n";
      }
    }
  }
  return out;
}

}  // namespace pgm
}  // namespace guardrail
