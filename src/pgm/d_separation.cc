#include "pgm/d_separation.h"

#include <set>
#include <utility>

#include "common/logging.h"

namespace guardrail {
namespace pgm {

namespace {

// Ancestors of the conditioning set (inclusive), for collider activation.
std::vector<bool> AncestorsOf(const Dag& dag, const std::vector<int32_t>& z) {
  std::vector<bool> is_ancestor(static_cast<size_t>(dag.num_nodes()), false);
  std::vector<int32_t> stack(z.begin(), z.end());
  for (int32_t v : z) is_ancestor[static_cast<size_t>(v)] = true;
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    for (int32_t p : dag.parents(v)) {
      if (!is_ancestor[static_cast<size_t>(p)]) {
        is_ancestor[static_cast<size_t>(p)] = true;
        stack.push_back(p);
      }
    }
  }
  return is_ancestor;
}

}  // namespace

bool IsDSeparated(const Dag& dag, int32_t x, int32_t y,
                  const std::vector<int32_t>& z) {
  GUARDRAIL_CHECK_NE(x, y);
  std::vector<bool> in_z(static_cast<size_t>(dag.num_nodes()), false);
  for (int32_t v : z) {
    GUARDRAIL_CHECK_NE(v, x);
    GUARDRAIL_CHECK_NE(v, y);
    in_z[static_cast<size_t>(v)] = true;
  }
  std::vector<bool> anc_z = AncestorsOf(dag, z);

  // Reachability over (node, direction) states; direction records how the
  // trail entered the node: true = along an incoming edge (from a parent),
  // false = along an outgoing edge (from a child).
  std::set<std::pair<int32_t, bool>> visited;
  std::vector<std::pair<int32_t, bool>> frontier;
  // Leaving x in both directions.
  frontier.emplace_back(x, true);
  frontier.emplace_back(x, false);

  while (!frontier.empty()) {
    auto [node, entered_via_parent] = frontier.back();
    frontier.pop_back();
    if (!visited.insert({node, entered_via_parent}).second) continue;
    if (node == y && node != x) return false;  // Active trail reached y.

    bool conditioned = in_z[static_cast<size_t>(node)];
    if (node == x) {
      // Start node: move freely to parents and children.
      for (int32_t p : dag.parents(node)) frontier.emplace_back(p, false);
      for (int32_t c : dag.children(node)) frontier.emplace_back(c, true);
      continue;
    }
    if (entered_via_parent) {
      // Arrived head-on (-> node). Chain/fork continuation requires node
      // unobserved; collider continuation (back up to parents) requires
      // node (or a descendant) observed.
      if (!conditioned) {
        for (int32_t c : dag.children(node)) frontier.emplace_back(c, true);
      }
      if (anc_z[static_cast<size_t>(node)]) {
        for (int32_t p : dag.parents(node)) frontier.emplace_back(p, false);
      }
    } else {
      // Arrived tail-on (<- node). Continue through node only if it is
      // unobserved: down to its other children and up to its parents.
      if (!conditioned) {
        for (int32_t p : dag.parents(node)) frontier.emplace_back(p, false);
        for (int32_t c : dag.children(node)) frontier.emplace_back(c, true);
      }
    }
  }
  return true;
}

}  // namespace pgm
}  // namespace guardrail
