#ifndef GUARDRAIL_PGM_PC_ALGORITHM_H_
#define GUARDRAIL_PGM_PC_ALGORITHM_H_

#include <map>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "pgm/ci_test.h"
#include "pgm/pdag.h"

namespace guardrail {
namespace pgm {

/// Output of the PC algorithm: a CPDAG plus the recorded separating sets and
/// bookkeeping counters.
struct PcResult {
  Pdag cpdag;
  /// Separating set found for each removed pair (u < v).
  std::map<std::pair<int32_t, int32_t>, std::vector<int32_t>> sepsets;
  int64_t num_ci_tests = 0;
  int64_t num_unreliable_tests = 0;
};

/// Constraint-based structure learning (the PC-stable variant): starts from
/// the complete undirected graph, removes edges whose endpoints test
/// conditionally independent for growing conditioning-set sizes, orients
/// v-structures from sepsets, and closes under Meek rules. The result is the
/// CPDAG representing the Markov equivalence class of the data's PGM
/// (paper Sec. 4.4).
class PcAlgorithm {
 public:
  struct Options {
    GSquareTest::Options ci_options;
    /// Maximum conditioning-set size.
    int32_t max_condition_size = 3;
    /// Parallelism for the per-level CI tests (0 = hardware concurrency via
    /// ThreadPool::DefaultThreads(), 1 = serial). Within each PC-stable
    /// level every ordered pair's subset search runs as an independent task
    /// against the frozen adjacency sets; edge removals and sepsets are then
    /// committed in a serial pair-ordered merge, so the learned skeleton —
    /// and every counter in PcResult — is identical for any setting.
    int num_threads = 0;
  };

  explicit PcAlgorithm(Options options) : options_(options) {}

  PcResult Run(const EncodedData& data) const;

  /// Cancellable variant: the token is polled between CI tests (amortized);
  /// expiry returns Status::Timeout. A half-finished skeleton is not a valid
  /// CPDAG, so no partial result is produced — callers degrade to a cheaper
  /// structure learner instead (see core::Synthesizer's ladder).
  Result<PcResult> Run(const EncodedData& data,
                       const CancellationToken& cancel) const;

 private:
  Options options_;
};

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_PC_ALGORITHM_H_
