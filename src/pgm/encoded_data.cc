#include "pgm/encoded_data.h"

namespace guardrail {
namespace pgm {

EncodedData EncodeIdentity(const Table& table) {
  EncodedData data;
  data.num_rows = table.num_rows();
  data.columns.reserve(static_cast<size_t>(table.num_columns()));
  data.cardinalities.reserve(static_cast<size_t>(table.num_columns()));
  for (AttrIndex c = 0; c < table.num_columns(); ++c) {
    data.columns.push_back(table.column(c));
    data.cardinalities.push_back(table.schema().attribute(c).domain_size());
  }
  return data;
}

}  // namespace pgm
}  // namespace guardrail
