#include "pgm/hill_climbing.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/telemetry/telemetry.h"

namespace guardrail {
namespace pgm {

namespace {

// Mutable adjacency working copy (parent sets), cheaper to edit than Dag.
struct WorkingGraph {
  std::vector<std::set<int32_t>> parents;

  explicit WorkingGraph(int32_t n) : parents(static_cast<size_t>(n)) {}

  bool HasEdge(int32_t from, int32_t to) const {
    return parents[static_cast<size_t>(to)].count(from) > 0;
  }

  // True when adding from -> to closes a directed cycle (to reaches from).
  bool WouldCreateCycle(int32_t from, int32_t to) const {
    std::vector<int32_t> stack{from};
    std::set<int32_t> seen{from};
    while (!stack.empty()) {
      int32_t v = stack.back();
      stack.pop_back();
      if (v == to) return true;
      for (int32_t p : parents[static_cast<size_t>(v)]) {
        if (seen.insert(p).second) stack.push_back(p);
      }
    }
    return false;
  }

  Dag ToDag() const {
    Dag dag(static_cast<int32_t>(parents.size()));
    for (size_t v = 0; v < parents.size(); ++v) {
      for (int32_t p : parents[v]) {
        dag.AddEdge(p, static_cast<int32_t>(v));
      }
    }
    return dag;
  }
};

std::vector<int32_t> SortedParents(const WorkingGraph& g, int32_t v) {
  return std::vector<int32_t>(g.parents[static_cast<size_t>(v)].begin(),
                              g.parents[static_cast<size_t>(v)].end());
}

}  // namespace

HillClimbingLearner::LearnResult HillClimbingLearner::Learn(
    const EncodedData& data) const {
  return Learn(data, CancellationToken::Never());
}

HillClimbingLearner::LearnResult HillClimbingLearner::Learn(
    const EncodedData& data, const CancellationToken& cancel) const {
  const int32_t n = data.num_variables();
  telemetry::Span span("hill_climb");
  span.AddArg("num_variables", static_cast<int64_t>(n));
  BicScorer scorer(&data);
  WorkingGraph graph(n);

  // Per-node family scores (the decomposable pieces of BIC).
  std::vector<double> family(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    family[static_cast<size_t>(v)] = scorer.FamilyScore(v, {});
  }

  LearnResult result{Dag(n), 0.0, 0, 0, false};
  // Each move evaluation runs a BIC family score over the data, so even a
  // stride of 1 would be cheap; 16 makes polling disappear entirely.
  DeadlineChecker deadline(&cancel, /*stride=*/16);

  // One candidate move: the score delta and how to apply it.
  struct Move {
    enum class Kind { kAdd, kDelete, kReverse } kind = Kind::kAdd;
    int32_t from = 0, to = 0;
    double delta = 0.0;
    double new_to_family = 0.0;
    double new_from_family = 0.0;  // Only for reverse.
  };

  for (int32_t iter = 0; iter < options_.max_iterations; ++iter) {
    Move best;
    best.delta = options_.min_delta;
    bool found = false;

    auto consider = [&](Move move) {
      ++result.moves_evaluated;
      if (move.delta > best.delta) {
        best = move;
        found = true;
      }
    };

    for (int32_t from = 0; from < n && !result.timed_out; ++from) {
      for (int32_t to = 0; to < n; ++to) {
        if (from == to) continue;
        if (deadline.Expired()) {
          result.timed_out = true;
          break;
        }
        if (!graph.HasEdge(from, to)) {
          // Add from -> to.
          if (static_cast<int32_t>(
                  graph.parents[static_cast<size_t>(to)].size()) >=
              options_.max_parents) {
            continue;
          }
          if (graph.HasEdge(to, from) || graph.WouldCreateCycle(from, to)) {
            continue;
          }
          std::vector<int32_t> parents = SortedParents(graph, to);
          parents.insert(
              std::upper_bound(parents.begin(), parents.end(), from), from);
          Move move;
          move.kind = Move::Kind::kAdd;
          move.from = from;
          move.to = to;
          move.new_to_family = scorer.FamilyScore(to, parents);
          move.delta = move.new_to_family - family[static_cast<size_t>(to)];
          consider(move);
        } else {
          // Delete from -> to.
          {
            std::vector<int32_t> parents = SortedParents(graph, to);
            parents.erase(
                std::find(parents.begin(), parents.end(), from));
            Move move;
            move.kind = Move::Kind::kDelete;
            move.from = from;
            move.to = to;
            move.new_to_family = scorer.FamilyScore(to, parents);
            move.delta = move.new_to_family - family[static_cast<size_t>(to)];
            consider(move);
          }
          // Reverse from -> to into to -> from.
          if (static_cast<int32_t>(
                  graph.parents[static_cast<size_t>(from)].size()) <
              options_.max_parents) {
            // Check acyclicity of the reversal: remove, then test to->from.
            graph.parents[static_cast<size_t>(to)].erase(from);
            bool cyclic = graph.WouldCreateCycle(to, from);
            graph.parents[static_cast<size_t>(to)].insert(from);
            if (!cyclic) {
              std::vector<int32_t> to_parents = SortedParents(graph, to);
              to_parents.erase(
                  std::find(to_parents.begin(), to_parents.end(), from));
              std::vector<int32_t> from_parents = SortedParents(graph, from);
              from_parents.insert(
                  std::upper_bound(from_parents.begin(), from_parents.end(),
                                   to),
                  to);
              Move move;
              move.kind = Move::Kind::kReverse;
              move.from = from;
              move.to = to;
              move.new_to_family = scorer.FamilyScore(to, to_parents);
              move.new_from_family = scorer.FamilyScore(from, from_parents);
              move.delta =
                  (move.new_to_family - family[static_cast<size_t>(to)]) +
                  (move.new_from_family - family[static_cast<size_t>(from)]);
              consider(move);
            }
          }
        }
      }
    }

    // A partially scanned neighborhood would apply a non-greedy move; stop
    // at the last fully evaluated iteration instead.
    if (result.timed_out || !found) break;
    switch (best.kind) {
      case Move::Kind::kAdd:
        graph.parents[static_cast<size_t>(best.to)].insert(best.from);
        family[static_cast<size_t>(best.to)] = best.new_to_family;
        break;
      case Move::Kind::kDelete:
        graph.parents[static_cast<size_t>(best.to)].erase(best.from);
        family[static_cast<size_t>(best.to)] = best.new_to_family;
        break;
      case Move::Kind::kReverse:
        graph.parents[static_cast<size_t>(best.to)].erase(best.from);
        graph.parents[static_cast<size_t>(best.from)].insert(best.to);
        family[static_cast<size_t>(best.to)] = best.new_to_family;
        family[static_cast<size_t>(best.from)] = best.new_from_family;
        break;
    }
    result.iterations = iter + 1;
  }

  GUARDRAIL_COUNTER_ADD("hill_climb.moves_evaluated", result.moves_evaluated);
  GUARDRAIL_COUNTER_ADD("hill_climb.iterations", result.iterations);
  span.AddArg("iterations", static_cast<int64_t>(result.iterations));
  span.AddArg("moves_evaluated", result.moves_evaluated);
  span.AddArg("timed_out", result.timed_out);
  result.dag = graph.ToDag();
  GUARDRAIL_CHECK(result.dag.IsAcyclic());
  result.score = 0.0;
  for (int32_t v = 0; v < n; ++v) {
    result.score += family[static_cast<size_t>(v)];
  }
  return result;
}

}  // namespace pgm
}  // namespace guardrail
