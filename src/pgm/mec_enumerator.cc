#include "pgm/mec_enumerator.h"

#include <algorithm>
#include <set>
#include <string>

#include "common/logging.h"
#include "common/telemetry/telemetry.h"
#include "pgm/meek_rules.h"

namespace guardrail {
namespace pgm {

namespace {

using VStructureSet = std::vector<std::array<int32_t, 3>>;

// Colliders already compelled in the CPDAG: u -> w <- v with u, v
// non-adjacent. Every member DAG of the MEC has exactly this collider set.
VStructureSet CpdagVStructures(const Pdag& g) {
  VStructureSet out;
  const int32_t n = g.num_nodes();
  for (int32_t w = 0; w < n; ++w) {
    std::vector<int32_t> parents = g.DirectedParents(w);
    for (size_t i = 0; i < parents.size(); ++i) {
      for (size_t j = i + 1; j < parents.size(); ++j) {
        int32_t u = parents[i], v = parents[j];
        if (!g.IsAdjacent(u, v)) {
          out.push_back({std::min(u, v), w, std::max(u, v)});
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string DagKey(const Dag& dag) {
  std::string key;
  key.reserve(static_cast<size_t>(dag.num_nodes()) *
              static_cast<size_t>(dag.num_nodes()));
  for (int32_t u = 0; u < dag.num_nodes(); ++u) {
    for (int32_t v = 0; v < dag.num_nodes(); ++v) {
      key += dag.HasEdge(u, v) ? '1' : '0';
    }
  }
  return key;
}

struct EnumerationState {
  const VStructureSet* reference;
  bool strict = true;
  int64_t max_dags;
  std::vector<Dag>* out;
  std::set<std::string>* seen;
  DeadlineChecker* deadline = nullptr;
  bool timed_out = false;
};

void Recurse(Pdag graph, EnumerationState* state) {
  if (static_cast<int64_t>(state->out->size()) >= state->max_dags) return;
  if (state->timed_out || state->deadline->Expired()) {
    state->timed_out = true;
    return;
  }
  ApplyMeekRules(&graph);
  if (graph.HasDirectedCycle()) return;

  auto undirected = graph.UndirectedEdges();
  if (undirected.empty()) {
    Result<Dag> dag = graph.ToDag();
    if (!dag.ok()) return;
    // A valid member keeps the compelled collider set intact: no collider
    // may be destroyed, and no new unshielded collider may appear.
    if (state->strict && dag->VStructures() != *state->reference) return;
    std::string key = DagKey(*dag);
    if (state->seen->insert(std::move(key)).second) {
      state->out->push_back(std::move(*dag));
    }
    return;
  }

  auto [u, v] = undirected.front();
  {
    Pdag forward = graph;
    forward.Orient(u, v);
    Recurse(std::move(forward), state);
  }
  {
    Pdag backward = graph;
    backward.Orient(v, u);
    Recurse(std::move(backward), state);
  }
}

}  // namespace

std::vector<Dag> MecEnumerator::Enumerate(const Pdag& cpdag) const {
  std::vector<Dag> out;
  // Infallible with an infinite budget.
  GUARDRAIL_CHECK_OK(Enumerate(cpdag, CancellationToken::Never(), &out));
  return out;
}

Status MecEnumerator::Enumerate(const Pdag& cpdag,
                                const CancellationToken& cancel,
                                std::vector<Dag>* out) const {
  out->clear();
  telemetry::Span span("mec_enumerate");
  std::set<std::string> seen;
  VStructureSet reference = CpdagVStructures(cpdag);
  DeadlineChecker deadline(&cancel, /*stride=*/64);
  EnumerationState state{&reference,        options_.strict_v_structures,
                         options_.max_dags, out,
                         &seen,             &deadline};
  Recurse(cpdag, &state);
  GUARDRAIL_COUNTER_ADD("mec.dags_enumerated",
                        static_cast<int64_t>(out->size()));
  span.AddArg("dags", static_cast<int64_t>(out->size()));
  span.AddArg("timed_out", state.timed_out);
  if (state.timed_out) return cancel.CheckTimeout("mec enumeration");
  return Status::OK();
}

int64_t MecEnumerator::CountMembers(const Pdag& cpdag) const {
  return static_cast<int64_t>(Enumerate(cpdag).size());
}

std::vector<Dag> BruteForceMecMembers(const Pdag& cpdag) {
  auto undirected = cpdag.UndirectedEdges();
  const size_t m = undirected.size();
  GUARDRAIL_CHECK_LE(m, 20u) << "brute force is for small graphs only";
  VStructureSet reference = CpdagVStructures(cpdag);

  std::vector<Dag> out;
  for (uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    Pdag g = cpdag;
    for (size_t i = 0; i < m; ++i) {
      auto [u, v] = undirected[i];
      if (mask & (1ULL << i)) {
        g.Orient(u, v);
      } else {
        g.Orient(v, u);
      }
    }
    Result<Dag> dag = g.ToDag();
    if (!dag.ok()) continue;
    if (dag->VStructures() != reference) continue;
    out.push_back(std::move(*dag));
  }
  return out;
}

int RepairCpdagCycles(Pdag* cpdag) {
  const int32_t n = cpdag->num_nodes();
  if (!cpdag->HasDirectedCycle()) return 0;
  // Kosaraju SCC over the directed subgraph.
  std::vector<int32_t> order;
  std::vector<bool> visited(static_cast<size_t>(n), false);
  // First pass: finish order.
  for (int32_t start = 0; start < n; ++start) {
    if (visited[static_cast<size_t>(start)]) continue;
    std::vector<std::pair<int32_t, int32_t>> stack{{start, 0}};
    visited[static_cast<size_t>(start)] = true;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      bool descended = false;
      for (int32_t v = next; v < n; ++v) {
        if (v != node && cpdag->HasDirectedEdge(node, v) &&
            !visited[static_cast<size_t>(v)]) {
          next = v + 1;
          visited[static_cast<size_t>(v)] = true;
          stack.emplace_back(v, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        order.push_back(stack.back().first);
        stack.pop_back();
      }
    }
  }
  // Second pass on the transpose, in reverse finish order.
  std::vector<int32_t> component(static_cast<size_t>(n), -1);
  int32_t num_components = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (component[static_cast<size_t>(*it)] >= 0) continue;
    int32_t id = num_components++;
    std::vector<int32_t> stack{*it};
    component[static_cast<size_t>(*it)] = id;
    while (!stack.empty()) {
      int32_t u = stack.back();
      stack.pop_back();
      for (int32_t v = 0; v < n; ++v) {
        if (v != u && cpdag->HasDirectedEdge(v, u) &&
            component[static_cast<size_t>(v)] < 0) {
          component[static_cast<size_t>(v)] = id;
          stack.push_back(v);
        }
      }
    }
  }
  // Downgrade intra-SCC directed edges.
  int downgraded = 0;
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v = 0; v < n; ++v) {
      if (u != v && cpdag->HasDirectedEdge(u, v) &&
          component[static_cast<size_t>(u)] ==
              component[static_cast<size_t>(v)]) {
        cpdag->AddUndirectedEdge(u, v);
        ++downgraded;
      }
    }
  }
  return downgraded;
}

Dag BestEffortExtension(const Pdag& cpdag) {
  Pdag g = cpdag;
  // Break any directed cycle introduced by finite-sample orientation noise:
  // drop the reverse arc of cycles by downgrading conflicting arcs. We only
  // guard the greedy loop below; the directed part of a PC output is
  // acyclic in all but pathological cases.
  for (const auto& [u, v] : g.UndirectedEdges()) {
    Pdag trial = g;
    trial.Orient(u, v);
    if (trial.HasDirectedCycle()) {
      Pdag other = g;
      other.Orient(v, u);
      if (other.HasDirectedCycle()) {
        // Both directions close a cycle; remove the edge entirely.
        g.RemoveEdge(u, v);
        continue;
      }
      g = std::move(other);
    } else {
      g = std::move(trial);
    }
  }
  if (g.HasDirectedCycle()) {
    // Pathological input: fall back to an empty graph rather than abort.
    return Dag(cpdag.num_nodes());
  }
  Result<Dag> dag = g.ToDag();
  if (!dag.ok()) return Dag(cpdag.num_nodes());
  return std::move(*dag);
}

}  // namespace pgm
}  // namespace guardrail
