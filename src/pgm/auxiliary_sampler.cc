#include "pgm/auxiliary_sampler.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace guardrail {
namespace pgm {

EncodedData SampleAuxiliaryDistribution(const Table& table,
                                        const AuxiliarySamplerOptions& options,
                                        Rng* rng) {
  const int64_t n = table.num_rows();
  const int32_t num_attrs = table.num_columns();

  EncodedData out;
  out.cardinalities.assign(static_cast<size_t>(num_attrs), 2);
  out.columns.assign(static_cast<size_t>(num_attrs), {});
  if (n < 2) {
    out.num_rows = 0;
    return out;
  }

  std::vector<RowIndex> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  if (options.shuffle) rng->Shuffle(&order);

  int32_t shifts = std::min<int64_t>(options.num_shifts, n - 1);
  int64_t total = static_cast<int64_t>(shifts) * n;
  if (options.max_pairs > 0) total = std::min(total, options.max_pairs);

  for (auto& col : out.columns) col.reserve(static_cast<size_t>(total));

  int64_t produced = 0;
  for (int32_t s = 1; s <= shifts && produced < total; ++s) {
    for (int64_t i = 0; i < n && produced < total; ++i) {
      RowIndex r1 = order[static_cast<size_t>(i)];
      RowIndex r2 = order[static_cast<size_t>((i + s) % n)];
      for (AttrIndex a = 0; a < num_attrs; ++a) {
        ValueId v1 = table.Get(r1, a);
        ValueId v2 = table.Get(r2, a);
        out.columns[static_cast<size_t>(a)].push_back(v1 == v2 ? 1 : 0);
      }
      ++produced;
    }
  }
  out.num_rows = produced;
  return out;
}

}  // namespace pgm
}  // namespace guardrail
