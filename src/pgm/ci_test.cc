#include "pgm/ci_test.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/math_util.h"

namespace guardrail {
namespace pgm {

GSquareTest::GSquareTest(const EncodedData* data, Options options)
    : data_(data), options_(options) {
  GUARDRAIL_CHECK(data != nullptr);
}

CiResult GSquareTest::Test(int32_t x, int32_t y,
                           const std::vector<int32_t>& z) const {
  ++num_tests_;
  const int64_t n = data_->num_rows;
  const int32_t kx = data_->cardinalities[static_cast<size_t>(x)];
  const int32_t ky = data_->cardinalities[static_cast<size_t>(y)];

  CiResult result;

  // Power heuristic on the *full* degrees of freedom: with too few samples
  // per cell the test has no power to reject, so report "independent, not
  // reliable" (the PC convention for untestable pairs).
  double full_dof = static_cast<double>(kx - 1) * static_cast<double>(ky - 1);
  for (int32_t zi : z) {
    full_dof *= static_cast<double>(
        data_->cardinalities[static_cast<size_t>(zi)]);
    if (full_dof > 1e15) break;  // Saturate; certainly unreliable.
  }
  if (full_dof <= 0.0 ||
      static_cast<double>(n) < options_.min_samples_per_dof * full_dof) {
    result.independent = true;
    result.reliable = false;
    return result;
  }

  const auto& cx = data_->columns[static_cast<size_t>(x)];
  const auto& cy = data_->columns[static_cast<size_t>(y)];

  // Stratify rows by the conditioning-set key; each stratum keeps a dense
  // kx-by-ky contingency table.
  struct Stratum {
    std::vector<int64_t> counts;  // kx * ky
    int64_t total = 0;
  };
  std::unordered_map<uint64_t, Stratum> strata;
  strata.reserve(64);

  for (int64_t r = 0; r < n; ++r) {
    ValueId vx = cx[static_cast<size_t>(r)];
    ValueId vy = cy[static_cast<size_t>(r)];
    if (vx == kNullValue || vy == kNullValue) continue;
    uint64_t key = 0;
    bool null_in_z = false;
    for (int32_t zi : z) {
      ValueId vz = data_->columns[static_cast<size_t>(zi)][static_cast<size_t>(r)];
      if (vz == kNullValue) {
        null_in_z = true;
        break;
      }
      key = key * static_cast<uint64_t>(
                      data_->cardinalities[static_cast<size_t>(zi)]) +
            static_cast<uint64_t>(vz);
    }
    if (null_in_z) continue;
    Stratum& s = strata[key];
    if (s.counts.empty()) {
      s.counts.assign(static_cast<size_t>(kx) * static_cast<size_t>(ky), 0);
    }
    ++s.counts[static_cast<size_t>(vx) * static_cast<size_t>(ky) +
               static_cast<size_t>(vy)];
    ++s.total;
  }

  double g2 = 0.0;
  double dof = 0.0;
  std::vector<int64_t> row_margin(static_cast<size_t>(kx));
  std::vector<int64_t> col_margin(static_cast<size_t>(ky));
  for (const auto& [key, s] : strata) {
    (void)key;
    if (s.total < 2) continue;
    std::fill(row_margin.begin(), row_margin.end(), 0);
    std::fill(col_margin.begin(), col_margin.end(), 0);
    for (int32_t i = 0; i < kx; ++i) {
      for (int32_t j = 0; j < ky; ++j) {
        int64_t c = s.counts[static_cast<size_t>(i) * ky + j];
        row_margin[static_cast<size_t>(i)] += c;
        col_margin[static_cast<size_t>(j)] += c;
      }
    }
    int32_t nonzero_rows = 0, nonzero_cols = 0;
    for (int64_t m : row_margin) nonzero_rows += m > 0 ? 1 : 0;
    for (int64_t m : col_margin) nonzero_cols += m > 0 ? 1 : 0;
    if (nonzero_rows < 2 || nonzero_cols < 2) continue;

    for (int32_t i = 0; i < kx; ++i) {
      if (row_margin[static_cast<size_t>(i)] == 0) continue;
      for (int32_t j = 0; j < ky; ++j) {
        int64_t obs = s.counts[static_cast<size_t>(i) * ky + j];
        if (obs == 0) continue;
        double expected = static_cast<double>(row_margin[static_cast<size_t>(i)]) *
                          static_cast<double>(col_margin[static_cast<size_t>(j)]) /
                          static_cast<double>(s.total);
        g2 += 2.0 * static_cast<double>(obs) *
              std::log(static_cast<double>(obs) / expected);
      }
    }
    dof += static_cast<double>(nonzero_rows - 1) *
           static_cast<double>(nonzero_cols - 1);
  }

  result.statistic = g2;
  result.dof = dof;
  if (dof <= 0.0) {
    result.independent = true;
    result.reliable = false;
    result.p_value = 1.0;
    return result;
  }
  result.p_value = ChiSquareSurvival(g2, dof);
  result.independent = result.p_value >= options_.alpha;
  result.reliable = true;
  return result;
}

}  // namespace pgm
}  // namespace guardrail
