#include "pgm/ci_test.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/math_util.h"

namespace guardrail {
namespace pgm {

namespace {

/// One stratum of the hash fallback: a dense kx-by-ky contingency table for
/// rows sharing one conditioning-set key.
struct Stratum {
  std::vector<int64_t> counts;  // kx * ky
  int64_t total = 0;
};

/// Per-thread contingency scratch, reused across Test() calls so the steady
/// state performs no allocations (vectors and hash buckets keep their
/// capacity). Thread-local because PC runs many tests concurrently on the
/// same GSquareTest instance.
struct CiScratch {
  std::vector<int64_t> dense_counts;   // strata * kx * ky
  std::vector<int64_t> dense_totals;   // strata
  std::vector<int64_t> row_margin;     // kx
  std::vector<int64_t> col_margin;     // ky
  std::unordered_map<uint64_t, Stratum> strata;
  std::vector<uint64_t> ordered_keys;
};

CiScratch& GetCiScratch() {
  static thread_local CiScratch scratch;
  return scratch;
}

/// Adds one stratum's G² contribution. `counts` is a dense kx*ky table;
/// `total` its row count. Margins come from the caller's scratch.
void AccumulateStratum(const int64_t* counts, int64_t total, int32_t kx,
                       int32_t ky, std::vector<int64_t>* row_margin,
                       std::vector<int64_t>* col_margin, double* g2,
                       double* dof) {
  if (total < 2) return;
  std::fill(row_margin->begin(), row_margin->end(), 0);
  std::fill(col_margin->begin(), col_margin->end(), 0);
  for (int32_t i = 0; i < kx; ++i) {
    for (int32_t j = 0; j < ky; ++j) {
      int64_t c = counts[static_cast<size_t>(i) * ky + j];
      (*row_margin)[static_cast<size_t>(i)] += c;
      (*col_margin)[static_cast<size_t>(j)] += c;
    }
  }
  int32_t nonzero_rows = 0, nonzero_cols = 0;
  for (int64_t m : *row_margin) nonzero_rows += m > 0 ? 1 : 0;
  for (int64_t m : *col_margin) nonzero_cols += m > 0 ? 1 : 0;
  if (nonzero_rows < 2 || nonzero_cols < 2) return;

  for (int32_t i = 0; i < kx; ++i) {
    if ((*row_margin)[static_cast<size_t>(i)] == 0) continue;
    for (int32_t j = 0; j < ky; ++j) {
      int64_t obs = counts[static_cast<size_t>(i) * ky + j];
      if (obs == 0) continue;
      double expected =
          static_cast<double>((*row_margin)[static_cast<size_t>(i)]) *
          static_cast<double>((*col_margin)[static_cast<size_t>(j)]) /
          static_cast<double>(total);
      *g2 += 2.0 * static_cast<double>(obs) *
             std::log(static_cast<double>(obs) / expected);
    }
  }
  *dof += static_cast<double>(nonzero_rows - 1) *
          static_cast<double>(nonzero_cols - 1);
}

}  // namespace

GSquareTest::GSquareTest(const EncodedData* data, Options options)
    : data_(data), options_(options) {
  GUARDRAIL_CHECK(data != nullptr);
}

CiResult GSquareTest::Test(int32_t x, int32_t y,
                           const std::vector<int32_t>& z) const {
  num_tests_.fetch_add(1, std::memory_order_relaxed);
  const int64_t n = data_->num_rows;
  const int32_t kx = data_->cardinalities[static_cast<size_t>(x)];
  const int32_t ky = data_->cardinalities[static_cast<size_t>(y)];

  CiResult result;

  // Power heuristic on the *full* degrees of freedom: with too few samples
  // per cell the test has no power to reject, so report "independent, not
  // reliable" (the PC convention for untestable pairs).
  double full_dof = static_cast<double>(kx - 1) * static_cast<double>(ky - 1);
  for (int32_t zi : z) {
    full_dof *= static_cast<double>(
        data_->cardinalities[static_cast<size_t>(zi)]);
    if (full_dof > 1e15) break;  // Saturate; certainly unreliable.
  }
  if (full_dof <= 0.0 ||
      static_cast<double>(n) < options_.min_samples_per_dof * full_dof) {
    result.independent = true;
    result.reliable = false;
    return result;
  }

  const auto& cx = data_->columns[static_cast<size_t>(x)];
  const auto& cy = data_->columns[static_cast<size_t>(y)];
  const int64_t table_cells = static_cast<int64_t>(kx) * ky;

  // Number of distinct conditioning-set keys under the radix encoding
  // (saturating so the dense-path gate cannot overflow).
  int64_t num_strata = 1;
  for (int32_t zi : z) {
    int64_t card = data_->cardinalities[static_cast<size_t>(zi)];
    if (num_strata > (int64_t{1} << 62) / std::max<int64_t>(1, card)) {
      num_strata = int64_t{1} << 62;
      break;
    }
    num_strata *= card;
  }

  // Dense path when the whole strata * kx * ky cube is small — the common
  // case on auxiliary (binary) data, where it is a few dozen cells. The
  // 4n guard skips the dense path when the cube is much larger than the
  // data (zeroing mostly-empty cells would dominate). Both conditions
  // depend only on the data, never on the calling thread, so the chosen
  // path — and the bit-exact result — is identical for any thread count.
  const bool dense =
      num_strata <= options_.max_dense_cells / std::max<int64_t>(1, table_cells) &&
      num_strata * table_cells <= 4 * n + 1024;

  CiScratch& scratch = GetCiScratch();
  scratch.row_margin.assign(static_cast<size_t>(kx), 0);
  scratch.col_margin.assign(static_cast<size_t>(ky), 0);

  double g2 = 0.0;
  double dof = 0.0;

  if (dense) {
    scratch.dense_counts.assign(
        static_cast<size_t>(num_strata * table_cells), 0);
    scratch.dense_totals.assign(static_cast<size_t>(num_strata), 0);
    for (int64_t r = 0; r < n; ++r) {
      ValueId vx = cx[static_cast<size_t>(r)];
      ValueId vy = cy[static_cast<size_t>(r)];
      if (vx == kNullValue || vy == kNullValue) continue;
      uint64_t key = 0;
      bool null_in_z = false;
      for (int32_t zi : z) {
        ValueId vz =
            data_->columns[static_cast<size_t>(zi)][static_cast<size_t>(r)];
        if (vz == kNullValue) {
          null_in_z = true;
          break;
        }
        key = key * static_cast<uint64_t>(
                        data_->cardinalities[static_cast<size_t>(zi)]) +
              static_cast<uint64_t>(vz);
      }
      if (null_in_z) continue;
      ++scratch.dense_counts[key * static_cast<uint64_t>(table_cells) +
                             static_cast<uint64_t>(vx) *
                                 static_cast<uint64_t>(ky) +
                             static_cast<uint64_t>(vy)];
      ++scratch.dense_totals[key];
    }
    for (int64_t s = 0; s < num_strata; ++s) {
      AccumulateStratum(
          scratch.dense_counts.data() + s * table_cells,
          scratch.dense_totals[static_cast<size_t>(s)], kx, ky,
          &scratch.row_margin, &scratch.col_margin, &g2, &dof);
    }
  } else {
    // Hash fallback: stratify rows by the conditioning-set key; each stratum
    // keeps a dense kx-by-ky contingency table. The map is reused across
    // calls, so its bucket layout depends on this thread's history — strata
    // are therefore summed in sorted-key order, keeping the floating-point
    // accumulation identical no matter which thread runs the test.
    auto& strata = scratch.strata;
    strata.clear();
    for (int64_t r = 0; r < n; ++r) {
      ValueId vx = cx[static_cast<size_t>(r)];
      ValueId vy = cy[static_cast<size_t>(r)];
      if (vx == kNullValue || vy == kNullValue) continue;
      uint64_t key = 0;
      bool null_in_z = false;
      for (int32_t zi : z) {
        ValueId vz =
            data_->columns[static_cast<size_t>(zi)][static_cast<size_t>(r)];
        if (vz == kNullValue) {
          null_in_z = true;
          break;
        }
        key = key * static_cast<uint64_t>(
                        data_->cardinalities[static_cast<size_t>(zi)]) +
              static_cast<uint64_t>(vz);
      }
      if (null_in_z) continue;
      Stratum& s = strata[key];
      if (s.counts.empty()) {
        s.counts.assign(static_cast<size_t>(table_cells), 0);
      }
      ++s.counts[static_cast<size_t>(vx) * static_cast<size_t>(ky) +
                 static_cast<size_t>(vy)];
      ++s.total;
    }
    scratch.ordered_keys.clear();
    scratch.ordered_keys.reserve(strata.size());
    for (const auto& [key, s] : strata) scratch.ordered_keys.push_back(key);
    std::sort(scratch.ordered_keys.begin(), scratch.ordered_keys.end());
    for (uint64_t key : scratch.ordered_keys) {
      const Stratum& s = strata[key];
      AccumulateStratum(s.counts.data(), s.total, kx, ky, &scratch.row_margin,
                        &scratch.col_margin, &g2, &dof);
    }
  }

  result.statistic = g2;
  result.dof = dof;
  if (dof <= 0.0) {
    result.independent = true;
    result.reliable = false;
    result.p_value = 1.0;
    return result;
  }
  result.p_value = ChiSquareSurvival(g2, dof);
  result.independent = result.p_value >= options_.alpha;
  result.reliable = true;
  return result;
}

}  // namespace pgm
}  // namespace guardrail
