#ifndef GUARDRAIL_PGM_AUXILIARY_SAMPLER_H_
#define GUARDRAIL_PGM_AUXILIARY_SAMPLER_H_

#include <cstdint>

#include "common/rng.h"
#include "pgm/encoded_data.h"
#include "table/table.h"

namespace guardrail {
namespace pgm {

/// Samples the auxiliary distribution of paper Def. 4.5: for a pair of rows
/// (t1, t2), the k-th binary indicator is 1 iff t1(a_k) == t2(a_k). By
/// Prop. 5 the conditional-independence structure of the indicators matches
/// the raw attributes, so the PGM can be learned on this binary, sparsity-
/// friendly view instead of the raw (possibly high-cardinality) data.
struct AuxiliarySamplerOptions {
  /// Number of circular shifts; each shift contributes one indicator row per
  /// data row (the "circular shift trick" of Sec. 7 — pairing row i with row
  /// (i + shift) mod n needs no random pair materialization and touches each
  /// row exactly twice per shift).
  int32_t num_shifts = 5;
  /// Cap on total indicator rows (0 = unlimited).
  int64_t max_pairs = 200000;
  /// Rows are shuffled once before shifting so that adjacent-row artifacts
  /// of the generation order cannot leak into the pairing.
  bool shuffle = true;
};

/// Builds the binary indicator sample from `table`.
EncodedData SampleAuxiliaryDistribution(const Table& table,
                                        const AuxiliarySamplerOptions& options,
                                        Rng* rng);

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_AUXILIARY_SAMPLER_H_
