#include "pgm/bic_score.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace guardrail {
namespace pgm {

BicScorer::BicScorer(const EncodedData* data) : data_(data) {
  GUARDRAIL_CHECK(data != nullptr);
}

double BicScorer::FamilyScore(int32_t v,
                              const std::vector<int32_t>& parents) const {
  GUARDRAIL_CHECK(std::is_sorted(parents.begin(), parents.end()));
  auto key = std::make_pair(v, parents);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;

  const int32_t card_v = data_->cardinalities[static_cast<size_t>(v)];
  const auto& col_v = data_->columns[static_cast<size_t>(v)];

  // Counts per (parent configuration, value): hash-keyed sparse tables.
  struct Config {
    std::vector<int64_t> counts;
    int64_t total = 0;
  };
  std::unordered_map<uint64_t, Config> configs;
  double parent_space = 1.0;
  for (int32_t p : parents) {
    parent_space *= static_cast<double>(
        data_->cardinalities[static_cast<size_t>(p)]);
  }

  for (int64_t r = 0; r < data_->num_rows; ++r) {
    ValueId value = col_v[static_cast<size_t>(r)];
    if (value == kNullValue) continue;
    uint64_t config_key = 1469598103934665603ULL;
    bool has_null = false;
    for (int32_t p : parents) {
      ValueId pv = data_->columns[static_cast<size_t>(p)][static_cast<size_t>(r)];
      if (pv == kNullValue) {
        has_null = true;
        break;
      }
      config_key = (config_key ^ static_cast<uint64_t>(pv + 1)) *
                   1099511628211ULL;
    }
    if (has_null) continue;
    Config& config = configs[config_key];
    if (config.counts.empty()) {
      config.counts.assign(static_cast<size_t>(card_v), 0);
    }
    ++config.counts[static_cast<size_t>(value)];
    ++config.total;
  }

  double loglik = 0.0;
  int64_t n = 0;
  for (const auto& [key2, config] : configs) {
    (void)key2;
    n += config.total;
    for (int64_t c : config.counts) {
      if (c > 0) {
        loglik += static_cast<double>(c) *
                  std::log(static_cast<double>(c) /
                           static_cast<double>(config.total));
      }
    }
  }
  double params = static_cast<double>(card_v - 1) * parent_space;
  double penalty =
      n > 1 ? 0.5 * std::log(static_cast<double>(n)) * params : params;
  double score = loglik - penalty;
  cache_.emplace(std::move(key), score);
  return score;
}

double BicScorer::Score(const Dag& dag) const {
  double total = 0.0;
  for (int32_t v = 0; v < dag.num_nodes(); ++v) {
    std::vector<int32_t> parents = dag.parents(v);
    std::sort(parents.begin(), parents.end());
    total += FamilyScore(v, parents);
  }
  return total;
}

}  // namespace pgm
}  // namespace guardrail
