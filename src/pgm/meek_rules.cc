#include "pgm/meek_rules.h"

#include "common/telemetry/metrics.h"

namespace guardrail {
namespace pgm {

namespace {

// Orients x - y into x -> y when one of Meek's antecedents holds. Returns
// true if the edge was oriented.
bool TryOrient(Pdag* g, int32_t x, int32_t y) {
  const int32_t n = g->num_nodes();

  // R1: z -> x, z and y non-adjacent  =>  x -> y.
  for (int32_t z = 0; z < n; ++z) {
    if (z == x || z == y) continue;
    if (g->HasDirectedEdge(z, x) && !g->IsAdjacent(z, y)) {
      g->Orient(x, y);
      return true;
    }
  }
  // R2: x -> z -> y  =>  x -> y.
  for (int32_t z = 0; z < n; ++z) {
    if (z == x || z == y) continue;
    if (g->HasDirectedEdge(x, z) && g->HasDirectedEdge(z, y)) {
      g->Orient(x, y);
      return true;
    }
  }
  // R3: x - z, x - w, z -> y, w -> y, z and w non-adjacent  =>  x -> y.
  for (int32_t z = 0; z < n; ++z) {
    if (z == x || z == y) continue;
    if (!g->HasUndirectedEdge(x, z) || !g->HasDirectedEdge(z, y)) continue;
    for (int32_t w = z + 1; w < n; ++w) {
      if (w == x || w == y) continue;
      if (g->HasUndirectedEdge(x, w) && g->HasDirectedEdge(w, y) &&
          !g->IsAdjacent(z, w)) {
        g->Orient(x, y);
        return true;
      }
    }
  }
  // R4: chains x - z -> w and z -> w -> y with z and y non-adjacent and
  // x adjacent to w  =>  x -> y.
  for (int32_t z = 0; z < n; ++z) {
    if (z == x || z == y) continue;
    if (!g->HasUndirectedEdge(x, z)) continue;
    for (int32_t w = 0; w < n; ++w) {
      if (w == x || w == y || w == z) continue;
      if (g->HasDirectedEdge(z, w) && g->HasDirectedEdge(w, y) &&
          !g->IsAdjacent(z, y) && g->IsAdjacent(x, w)) {
        g->Orient(x, y);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

int ApplyMeekRules(Pdag* graph) {
  int oriented = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [u, v] : graph->UndirectedEdges()) {
      if (TryOrient(graph, u, v) || TryOrient(graph, v, u)) {
        ++oriented;
        changed = true;
      }
    }
  }
  GUARDRAIL_COUNTER_ADD("meek.edges_oriented", oriented);
  return oriented;
}

}  // namespace pgm
}  // namespace guardrail
