#include "pgm/dag.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace guardrail {
namespace pgm {

Dag::Dag(int32_t num_nodes) : num_nodes_(num_nodes) {
  GUARDRAIL_CHECK_GE(num_nodes, 0);
  parents_.resize(static_cast<size_t>(num_nodes));
  children_.resize(static_cast<size_t>(num_nodes));
  edge_.assign(static_cast<size_t>(num_nodes),
               std::vector<bool>(static_cast<size_t>(num_nodes), false));
}

void Dag::AddEdge(int32_t from, int32_t to) {
  GUARDRAIL_CHECK_GE(from, 0);
  GUARDRAIL_CHECK_LT(from, num_nodes_);
  GUARDRAIL_CHECK_GE(to, 0);
  GUARDRAIL_CHECK_LT(to, num_nodes_);
  GUARDRAIL_CHECK_NE(from, to);
  if (edge_[static_cast<size_t>(from)][static_cast<size_t>(to)]) return;
  edge_[static_cast<size_t>(from)][static_cast<size_t>(to)] = true;
  children_[static_cast<size_t>(from)].push_back(to);
  parents_[static_cast<size_t>(to)].push_back(from);
  ++num_edges_;
}

bool Dag::HasEdge(int32_t from, int32_t to) const {
  if (from < 0 || from >= num_nodes_ || to < 0 || to >= num_nodes_) {
    return false;
  }
  return edge_[static_cast<size_t>(from)][static_cast<size_t>(to)];
}

bool Dag::IsAcyclic() const {
  return static_cast<int32_t>(TopologicalOrder().size()) == num_nodes_;
}

std::vector<int32_t> Dag::TopologicalOrder() const {
  std::vector<int32_t> indegree(static_cast<size_t>(num_nodes_), 0);
  for (int32_t v = 0; v < num_nodes_; ++v) {
    indegree[static_cast<size_t>(v)] =
        static_cast<int32_t>(parents_[static_cast<size_t>(v)].size());
  }
  std::vector<int32_t> frontier;
  for (int32_t v = 0; v < num_nodes_; ++v) {
    if (indegree[static_cast<size_t>(v)] == 0) frontier.push_back(v);
  }
  std::vector<int32_t> order;
  order.reserve(static_cast<size_t>(num_nodes_));
  while (!frontier.empty()) {
    int32_t v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (int32_t c : children_[static_cast<size_t>(v)]) {
      if (--indegree[static_cast<size_t>(c)] == 0) frontier.push_back(c);
    }
  }
  // Cyclic graphs yield a shorter order; callers check the length.
  return order;
}

std::vector<std::array<int32_t, 3>> Dag::VStructures() const {
  std::vector<std::array<int32_t, 3>> out;
  for (int32_t w = 0; w < num_nodes_; ++w) {
    const auto& pa = parents_[static_cast<size_t>(w)];
    for (size_t i = 0; i < pa.size(); ++i) {
      for (size_t j = i + 1; j < pa.size(); ++j) {
        int32_t u = pa[i], v = pa[j];
        if (!IsAdjacent(u, v)) {
          out.push_back({std::min(u, v), w, std::max(u, v)});
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Dag::IsMarkovEquivalent(const Dag& other) const {
  if (num_nodes_ != other.num_nodes_) return false;
  for (int32_t u = 0; u < num_nodes_; ++u) {
    for (int32_t v = u + 1; v < num_nodes_; ++v) {
      if (IsAdjacent(u, v) != other.IsAdjacent(u, v)) return false;
    }
  }
  return VStructures() == other.VStructures();
}

bool Dag::operator==(const Dag& other) const {
  return num_nodes_ == other.num_nodes_ && edge_ == other.edge_;
}

std::string Dag::ToString() const {
  std::string out;
  for (int32_t u = 0; u < num_nodes_; ++u) {
    for (int32_t v : children_[static_cast<size_t>(u)]) {
      out += std::to_string(u) + " -> " + std::to_string(v) + "\n";
    }
  }
  return out;
}

}  // namespace pgm
}  // namespace guardrail
