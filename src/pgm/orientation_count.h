#ifndef GUARDRAIL_PGM_ORIENTATION_COUNT_H_
#define GUARDRAIL_PGM_ORIENTATION_COUNT_H_

#include <cstdint>

#include "pgm/pdag.h"

namespace guardrail {
namespace pgm {

/// Counts the acyclic orientations of the *skeleton* of `graph` — the size
/// of the DAG search space when the MEC's orientation information is thrown
/// away (the "# DAGs (w/o MEC)" column of paper Table 7).
///
/// Uses Stanley's theorem: the number of acyclic orientations of G equals
/// |chi_G(-1)|, computed by the deletion-contraction recurrence
/// a(G) = a(G - e) + a(G / e), per connected component, with memoization.
/// Returns +infinity (as a double) when the count exceeds ~1e300 or when a
/// component is too dense to finish within the work budget.
double CountAcyclicOrientations(const Pdag& graph,
                                int64_t max_work = 50'000'000);

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_ORIENTATION_COUNT_H_
