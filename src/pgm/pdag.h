#ifndef GUARDRAIL_PGM_PDAG_H_
#define GUARDRAIL_PGM_PDAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "pgm/dag.h"

namespace guardrail {
namespace pgm {

/// A partially directed acyclic graph: a mix of directed and undirected
/// edges. The PC algorithm outputs a CPDAG (the canonical representative of a
/// Markov equivalence class) in this form, and the MEC enumerator refines it
/// into member DAGs.
class Pdag {
 public:
  Pdag() = default;
  explicit Pdag(int32_t num_nodes);

  /// Builds the complete undirected graph (PC's starting point).
  static Pdag CompleteUndirected(int32_t num_nodes);

  /// Builds the CPDAG representation of `dag` — skeleton plus only the
  /// compelled edge directions (v-structures closed under Meek rules).
  static Pdag FromDag(const Dag& dag);

  int32_t num_nodes() const { return num_nodes_; }

  void AddUndirectedEdge(int32_t u, int32_t v);
  void AddDirectedEdge(int32_t from, int32_t to);

  /// Removes any edge (directed either way or undirected) between u and v.
  void RemoveEdge(int32_t u, int32_t v);

  bool HasDirectedEdge(int32_t from, int32_t to) const;
  bool HasUndirectedEdge(int32_t u, int32_t v) const;
  bool IsAdjacent(int32_t u, int32_t v) const;

  /// Converts the undirected edge u - v into u -> v. The edge must currently
  /// be undirected.
  void Orient(int32_t from, int32_t to);

  /// Neighbors connected by any edge type.
  std::vector<int32_t> AdjacentNodes(int32_t node) const;
  /// Nodes with a directed edge into `node`.
  std::vector<int32_t> DirectedParents(int32_t node) const;
  /// Nodes connected to `node` by an undirected edge.
  std::vector<int32_t> UndirectedNeighbors(int32_t node) const;

  int64_t NumUndirectedEdges() const;
  int64_t NumDirectedEdges() const;

  /// All undirected edges as (u, v) with u < v.
  std::vector<std::pair<int32_t, int32_t>> UndirectedEdges() const;

  /// True when no undirected edges remain.
  bool IsFullyDirected() const;

  /// Interprets the fully directed Pdag as a Dag. Fails when undirected
  /// edges remain or the directed graph is cyclic.
  Result<Dag> ToDag() const;

  /// True when the subgraph of directed edges contains a cycle.
  bool HasDirectedCycle() const;

  bool operator==(const Pdag& other) const { return matrix_ == other.matrix_; }

  /// "u -> v" / "u -- v" lines.
  std::string ToString() const;

 private:
  // matrix_[u][v] == true means an arc u -> v exists; an undirected edge is
  // stored as arcs both ways.
  bool Arc(int32_t u, int32_t v) const {
    return matrix_[static_cast<size_t>(u)][static_cast<size_t>(v)];
  }

  int32_t num_nodes_ = 0;
  std::vector<std::vector<bool>> matrix_;
};

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_PDAG_H_
