#ifndef GUARDRAIL_PGM_CI_TEST_H_
#define GUARDRAIL_PGM_CI_TEST_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "pgm/encoded_data.h"

namespace guardrail {
namespace pgm {

/// Outcome of one conditional-independence test.
struct CiResult {
  /// True when the test could not reject independence (or lacked the power
  /// to test at all — see `reliable`).
  bool independent = true;
  double p_value = 1.0;
  double statistic = 0.0;
  double dof = 0.0;
  /// False when the heuristic sample-size requirement failed; the caller
  /// (PC) then treats the pair as independent, which on sparse
  /// high-cardinality raw data collapses the learned structure — exactly the
  /// failure mode the auxiliary sampler exists to fix (paper Table 8).
  bool reliable = true;
};

/// G-squared (likelihood-ratio) conditional-independence test on categorical
/// data, the standard test driving the PC algorithm.
///
/// Test() is safe to call concurrently from multiple threads on the same
/// instance: the contingency scratch lives in thread-local storage (reused
/// across calls, so the steady state allocates nothing) and the test counter
/// is a relaxed atomic.
class GSquareTest {
 public:
  struct Options {
    /// Significance level; p < alpha rejects independence.
    double alpha = 0.01;
    /// Power heuristic: require at least this many samples per degree of
    /// freedom (bnlearn-style); otherwise the test is unreliable.
    double min_samples_per_dof = 5.0;
    /// When the conditioning-set cardinality product times kx*ky stays at or
    /// under this many cells, strata live in one dense array indexed by the
    /// radix key (the common case: one row pass, no hashing); larger
    /// products fall back to a hash map keyed by the same radix encoding.
    /// Both paths visit strata in ascending key order, so the G² floating
    /// sum — and hence the verdict — does not depend on which path ran.
    int64_t max_dense_cells = int64_t{1} << 20;
  };

  GSquareTest(const EncodedData* data, Options options);

  /// Tests x independent-of y given the conditioning set z. Thread-safe.
  CiResult Test(int32_t x, int32_t y, const std::vector<int32_t>& z) const;

  int64_t num_tests_run() const {
    return num_tests_.load(std::memory_order_relaxed);
  }

 private:
  const EncodedData* data_;
  Options options_;
  mutable std::atomic<int64_t> num_tests_{0};
};

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_CI_TEST_H_
