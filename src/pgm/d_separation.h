#ifndef GUARDRAIL_PGM_D_SEPARATION_H_
#define GUARDRAIL_PGM_D_SEPARATION_H_

#include <vector>

#include "pgm/dag.h"

namespace guardrail {
namespace pgm {

/// True when x and y are d-separated by the conditioning set z in `dag`
/// (every path between them is blocked; Def. .1 of the paper's appendix).
/// Implemented with the standard reachability ("Bayes ball") algorithm.
///
/// d-separation is the graphical side of the faithfulness / Markov bridge
/// the synthesis theory rests on: under faithfulness, d-separation in the
/// DGP's DAG coincides with conditional independence in the data — which is
/// exactly what the G-squared tests estimate and what the LNT/GNT criteria
/// (Defs. 4.1-4.2) consume. Used by tests to validate PC's output against
/// ground-truth SEM graphs.
bool IsDSeparated(const Dag& dag, int32_t x, int32_t y,
                  const std::vector<int32_t>& z);

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_D_SEPARATION_H_
