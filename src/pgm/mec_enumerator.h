#ifndef GUARDRAIL_PGM_MEC_ENUMERATOR_H_
#define GUARDRAIL_PGM_MEC_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "pgm/dag.h"
#include "pgm/pdag.h"

namespace guardrail {
namespace pgm {

/// Enumerates the DAG members of the Markov equivalence class represented by
/// a CPDAG (paper Alg. 2 line 2 and the Table 7 "# DAGs (w/ MEC)" column;
/// stands in for the Julia PDAG-enumeration library [36]).
///
/// Strategy: recursively pick an undirected edge, try both orientations,
/// close each choice under Meek rules, and prune branches that develop a
/// directed cycle. Leaves are validated to have the CPDAG's skeleton and
/// v-structures and deduplicated, so the output is exactly the MEC even if a
/// Meek closure is conservative.
class MecEnumerator {
 public:
  struct Options {
    /// Stop after this many DAGs (the paper bounds the enumeration too).
    int64_t max_dags = 100000;
    /// When true (the default), leaves must reproduce the CPDAG's collider
    /// set exactly — the output is the precise MEC. When false, any acyclic
    /// extension that respects the already-directed edges is emitted; used
    /// as a recovery mode when finite-sample PC output is not a valid CPDAG
    /// (the strict MEC is then empty) so that Alg. 2's coverage selection
    /// can still arbitrate between orientations.
    bool strict_v_structures = true;
  };

  MecEnumerator() : options_(Options()) {}
  explicit MecEnumerator(Options options) : options_(options) {}

  /// All consistent DAG extensions of `cpdag` (up to max_dags).
  std::vector<Dag> Enumerate(const Pdag& cpdag) const;

  /// Cancellable variant: the token is polled amortized inside the
  /// orientation recursion. On expiry, returns Status::Timeout while `*out`
  /// keeps the members found so far — an explicitly reported partial
  /// enumeration (never a silent truncation) that the synthesizer's
  /// degradation ladder can still arbitrate over.
  Status Enumerate(const Pdag& cpdag, const CancellationToken& cancel,
                   std::vector<Dag>* out) const;

  /// Number of members only (same bound applies).
  int64_t CountMembers(const Pdag& cpdag) const;

 private:
  Options options_;
};

/// Brute-force reference: enumerates every DAG on `num_nodes` vertices whose
/// skeleton and v-structures match `cpdag`. Exponential; only for testing
/// the enumerator on small graphs.
std::vector<Dag> BruteForceMecMembers(const Pdag& cpdag);

/// Repairs a finite-sample "CPDAG" whose compelled (directed) part contains
/// directed cycles — possible when PC orients conflicting colliders. Every
/// directed edge lying inside a strongly connected component of the directed
/// subgraph is downgraded to undirected, making the compelled part acyclic
/// while keeping all skeleton information. Returns the number of downgraded
/// edges.
int RepairCpdagCycles(Pdag* cpdag);

/// Orients the remaining undirected edges of `cpdag` greedily, avoiding
/// directed cycles but not enforcing v-structure preservation. Finite-sample
/// PC output is occasionally not a valid CPDAG (no consistent extension
/// exists); the synthesizer falls back to this so it always has at least one
/// candidate DAG.
Dag BestEffortExtension(const Pdag& cpdag);

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_MEC_ENUMERATOR_H_
