#include "pgm/pc_algorithm.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/logging.h"
#include "common/telemetry/telemetry.h"
#include "pgm/meek_rules.h"

namespace guardrail {
namespace pgm {

namespace {

// Enumerates all size-k subsets of `pool`, invoking `fn(subset)`; stops early
// when fn returns true (subset accepted). Returns whether fn accepted.
bool ForEachSubset(const std::vector<int32_t>& pool, int32_t k,
                   const std::function<bool(const std::vector<int32_t>&)>& fn) {
  const int32_t n = static_cast<int32_t>(pool.size());
  if (k > n) return false;
  std::vector<int32_t> idx(static_cast<size_t>(k));
  for (int32_t i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = i;
  std::vector<int32_t> subset(static_cast<size_t>(k));
  while (true) {
    for (int32_t i = 0; i < k; ++i) {
      subset[static_cast<size_t>(i)] = pool[static_cast<size_t>(idx[static_cast<size_t>(i)])];
    }
    if (fn(subset)) return true;
    // Advance the combination.
    int32_t i = k - 1;
    while (i >= 0 && idx[static_cast<size_t>(i)] == n - k + i) --i;
    if (i < 0) return false;
    ++idx[static_cast<size_t>(i)];
    for (int32_t j = i + 1; j < k; ++j) {
      idx[static_cast<size_t>(j)] = idx[static_cast<size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace

PcResult PcAlgorithm::Run(const EncodedData& data) const {
  Result<PcResult> result = Run(data, CancellationToken::Never());
  // Infallible with an infinite budget.
  return std::move(result).value();
}

Result<PcResult> PcAlgorithm::Run(const EncodedData& data,
                                  const CancellationToken& cancel) const {
  const int32_t n = data.num_variables();
  telemetry::Span span("pc");
  span.AddArg("num_variables", static_cast<int64_t>(n));
  PcResult result;
  result.cpdag = Pdag::CompleteUndirected(n);
  GSquareTest test(&data, options_.ci_options);
  // Each CI test is O(rows), so a small stride keeps the expiry latency low
  // without measurable polling cost.
  DeadlineChecker deadline(&cancel, /*stride=*/8);

  Pdag& g = result.cpdag;

  // ---- Phase 1: skeleton discovery (PC-stable). ----
  for (int32_t level = 0; level <= options_.max_condition_size; ++level) {
    // PC-stable: freeze the adjacency sets for this level so the outcome is
    // independent of edge-processing order.
    std::vector<std::vector<int32_t>> frozen_adj(static_cast<size_t>(n));
    for (int32_t u = 0; u < n; ++u) frozen_adj[static_cast<size_t>(u)] = g.AdjacentNodes(u);

    // Per-level CI-test counter. The name is dynamic, so resolve it once per
    // level instead of going through the macro's per-site cache.
    telemetry::Counter* level_counter =
        telemetry::MetricsEnabled()
            ? telemetry::MetricsRegistry::Instance().GetCounter(
                  "pc.level" + std::to_string(level) + ".ci_tests")
            : nullptr;

    bool any_testable = false;
    std::vector<std::pair<int32_t, int32_t>> to_remove;
    for (int32_t u = 0; u < n; ++u) {
      for (int32_t v : frozen_adj[static_cast<size_t>(u)]) {
        if (!g.IsAdjacent(u, v)) continue;  // Removed earlier this level.
        // Conditioning candidates: adj(u) \ {v}.
        std::vector<int32_t> pool;
        for (int32_t w : frozen_adj[static_cast<size_t>(u)]) {
          if (w != v) pool.push_back(w);
        }
        if (static_cast<int32_t>(pool.size()) < level) continue;
        any_testable = true;
        Status timeout = Status::OK();
        bool removed = ForEachSubset(
            pool, level, [&](const std::vector<int32_t>& subset) {
              if (deadline.Expired()) {
                timeout = cancel.CheckTimeout("pc skeleton");
                return true;  // Break out of the subset enumeration.
              }
              CiResult ci = test.Test(u, v, subset);
              GUARDRAIL_COUNTER_INC("pc.ci_tests_total");
              if (level_counter != nullptr) level_counter->Increment();
              if (!ci.reliable) {
                ++result.num_unreliable_tests;
                GUARDRAIL_COUNTER_INC("pc.unreliable_tests_total");
              }
              if (ci.independent) {
                auto key = std::minmax(u, v);
                result.sepsets[{key.first, key.second}] = subset;
                to_remove.emplace_back(u, v);
                return true;
              }
              return false;
            });
        (void)removed;
        if (!timeout.ok()) return timeout;
      }
    }
    for (const auto& [u, v] : to_remove) g.RemoveEdge(u, v);
    if (!any_testable) break;
  }

  // ---- Phase 2: v-structure orientation. ----
  // For every unshielded triple u - w - v (u, v non-adjacent), orient
  // u -> w <- v when w is NOT in sepset(u, v).
  for (int32_t w = 0; w < n; ++w) {
    std::vector<int32_t> adj = g.AdjacentNodes(w);
    for (size_t i = 0; i < adj.size(); ++i) {
      for (size_t j = i + 1; j < adj.size(); ++j) {
        int32_t u = adj[i], v = adj[j];
        if (g.IsAdjacent(u, v)) continue;
        auto key = std::minmax(u, v);
        auto it = result.sepsets.find({key.first, key.second});
        if (it == result.sepsets.end()) continue;
        const auto& sep = it->second;
        if (std::find(sep.begin(), sep.end(), w) != sep.end()) continue;
        // Orient into a collider, but never reverse an existing orientation.
        if (g.HasUndirectedEdge(u, w)) g.Orient(u, w);
        if (g.HasUndirectedEdge(v, w)) g.Orient(v, w);
        GUARDRAIL_COUNTER_INC("pc.v_structures_oriented");
      }
    }
  }

  // ---- Phase 3: Meek closure. ----
  ApplyMeekRules(&g);

  result.num_ci_tests = test.num_tests_run();
  span.AddArg("ci_tests", result.num_ci_tests);
  span.AddArg("unreliable_tests", result.num_unreliable_tests);
  return result;
}

}  // namespace pgm
}  // namespace guardrail
