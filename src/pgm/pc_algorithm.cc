#include "pgm/pc_algorithm.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/logging.h"
#include "common/telemetry/telemetry.h"
#include "common/thread_pool.h"
#include "pgm/meek_rules.h"

namespace guardrail {
namespace pgm {

namespace {

// Enumerates all size-k subsets of `pool`, invoking `fn(subset)`; stops early
// when fn returns true (subset accepted). Returns whether fn accepted.
bool ForEachSubset(const std::vector<int32_t>& pool, int32_t k,
                   const std::function<bool(const std::vector<int32_t>&)>& fn) {
  const int32_t n = static_cast<int32_t>(pool.size());
  if (k > n) return false;
  std::vector<int32_t> idx(static_cast<size_t>(k));
  for (int32_t i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = i;
  std::vector<int32_t> subset(static_cast<size_t>(k));
  while (true) {
    for (int32_t i = 0; i < k; ++i) {
      subset[static_cast<size_t>(i)] = pool[static_cast<size_t>(idx[static_cast<size_t>(i)])];
    }
    if (fn(subset)) return true;
    // Advance the combination.
    int32_t i = k - 1;
    while (i >= 0 && idx[static_cast<size_t>(i)] == n - k + i) --i;
    if (i < 0) return false;
    ++idx[static_cast<size_t>(i)];
    for (int32_t j = i + 1; j < k; ++j) {
      idx[static_cast<size_t>(j)] = idx[static_cast<size_t>(j - 1)] + 1;
    }
  }
}

/// One ordered pair (u, v) scheduled for this level's adjacency search,
/// carrying its frozen conditioning pool adj(u) \ {v}.
struct PairTask {
  int32_t u = 0;
  int32_t v = 0;
  std::vector<int32_t> pool;
};

/// What one pair's subset search produced. Written only by the task that
/// owns the slot; read by the serial merge phase after the level's barrier.
struct PairOutcome {
  bool independent = false;
  std::vector<int32_t> sepset;
  int64_t unreliable_tests = 0;
  bool timed_out = false;
};

}  // namespace

PcResult PcAlgorithm::Run(const EncodedData& data) const {
  Result<PcResult> result = Run(data, CancellationToken::Never());
  // Infallible with an infinite budget.
  return std::move(result).value();
}

Result<PcResult> PcAlgorithm::Run(const EncodedData& data,
                                  const CancellationToken& cancel) const {
  const int32_t n = data.num_variables();
  telemetry::Span span("pc");
  span.AddArg("num_variables", static_cast<int64_t>(n));
  PcResult result;
  result.cpdag = Pdag::CompleteUndirected(n);
  GSquareTest test(&data, options_.ci_options);

  Pdag& g = result.cpdag;
  ThreadPool& pool_exec = ThreadPool::Shared();
  const int parallelism = ResolveThreads(options_.num_threads);

  // ---- Phase 1: skeleton discovery (PC-stable, level-parallel). ----
  // PC-stable freezes each level's adjacency sets, which makes every pair's
  // subset search independent of the others within the level — exactly the
  // property that lets the (x, y, S) CI tests fan out across threads. Edge
  // removals are committed afterwards in a serial pair-ordered merge, so the
  // skeleton, the sepsets, and the test counters are bit-identical for any
  // thread count (including the serial 1-thread schedule).
  for (int32_t level = 0; level <= options_.max_condition_size; ++level) {
    std::vector<std::vector<int32_t>> frozen_adj(static_cast<size_t>(n));
    for (int32_t u = 0; u < n; ++u) frozen_adj[static_cast<size_t>(u)] = g.AdjacentNodes(u);

    // Per-level CI-test counter. The name is dynamic, so resolve it once per
    // level instead of going through the macro's per-site cache.
    telemetry::Counter* level_counter =
        telemetry::MetricsEnabled()
            ? telemetry::MetricsRegistry::Instance().GetCounter(
                  "pc.level" + std::to_string(level) + ".ci_tests")
            : nullptr;

    // Task list in the canonical serial order (u ascending, then adj order);
    // the merge below walks the same order.
    std::vector<PairTask> tasks;
    for (int32_t u = 0; u < n; ++u) {
      for (int32_t v : frozen_adj[static_cast<size_t>(u)]) {
        // Conditioning candidates: adj(u) \ {v}.
        std::vector<int32_t> pool;
        for (int32_t w : frozen_adj[static_cast<size_t>(u)]) {
          if (w != v) pool.push_back(w);
        }
        if (static_cast<int32_t>(pool.size()) < level) continue;
        tasks.push_back(PairTask{u, v, std::move(pool)});
      }
    }
    if (tasks.empty()) break;

    std::vector<PairOutcome> outcomes(tasks.size());
    ParallelForOptions pf;
    pf.max_parallelism = parallelism;
    pf.cancel = &cancel;
    // Each CI test is O(rows), so a small poll stride keeps the expiry
    // latency low without measurable cost.
    pf.cancel_stride = 1;
    Status pf_status = ParallelFor(
        &pool_exec, static_cast<int64_t>(tasks.size()),
        [&](int64_t i) {
          const PairTask& task = tasks[static_cast<size_t>(i)];
          PairOutcome& out = outcomes[static_cast<size_t>(i)];
          DeadlineChecker deadline(&cancel, /*stride=*/8);
          ForEachSubset(
              task.pool, level, [&](const std::vector<int32_t>& subset) {
                if (deadline.Expired()) {
                  out.timed_out = true;
                  return true;  // Break out of the subset enumeration.
                }
                CiResult ci = test.Test(task.u, task.v, subset);
                GUARDRAIL_COUNTER_INC("pc.ci_tests_total");
                if (level_counter != nullptr) level_counter->Increment();
                if (!ci.reliable) {
                  ++out.unreliable_tests;
                  GUARDRAIL_COUNTER_INC("pc.unreliable_tests_total");
                }
                if (ci.independent) {
                  out.independent = true;
                  out.sepset = subset;
                  return true;
                }
                return false;
              });
        },
        pf);
    if (!pf_status.ok()) return pf_status;

    // Serial merge in task order, replicating the serial algorithm's
    // deferred-removal semantics: every independent pair records its sepset
    // (a later ordered pair overwrites an earlier one for the same edge, as
    // the serial map assignment did) and removals take effect only after
    // the level — RemoveEdge is idempotent, so duplicates are harmless.
    for (size_t i = 0; i < tasks.size(); ++i) {
      const PairTask& task = tasks[i];
      const PairOutcome& out = outcomes[i];
      if (out.timed_out) return cancel.CheckTimeout("pc skeleton");
      result.num_unreliable_tests += out.unreliable_tests;
      if (!out.independent) continue;
      auto key = std::minmax(task.u, task.v);
      result.sepsets[{key.first, key.second}] = out.sepset;
    }
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (outcomes[i].independent) g.RemoveEdge(tasks[i].u, tasks[i].v);
    }
  }

  // ---- Phase 2: v-structure orientation. ----
  // For every unshielded triple u - w - v (u, v non-adjacent), orient
  // u -> w <- v when w is NOT in sepset(u, v).
  for (int32_t w = 0; w < n; ++w) {
    std::vector<int32_t> adj = g.AdjacentNodes(w);
    for (size_t i = 0; i < adj.size(); ++i) {
      for (size_t j = i + 1; j < adj.size(); ++j) {
        int32_t u = adj[i], v = adj[j];
        if (g.IsAdjacent(u, v)) continue;
        auto key = std::minmax(u, v);
        auto it = result.sepsets.find({key.first, key.second});
        if (it == result.sepsets.end()) continue;
        const auto& sep = it->second;
        if (std::find(sep.begin(), sep.end(), w) != sep.end()) continue;
        // Orient into a collider, but never reverse an existing orientation.
        if (g.HasUndirectedEdge(u, w)) g.Orient(u, w);
        if (g.HasUndirectedEdge(v, w)) g.Orient(v, w);
        GUARDRAIL_COUNTER_INC("pc.v_structures_oriented");
      }
    }
  }

  // ---- Phase 3: Meek closure. ----
  ApplyMeekRules(&g);

  result.num_ci_tests = test.num_tests_run();
  span.AddArg("ci_tests", result.num_ci_tests);
  span.AddArg("unreliable_tests", result.num_unreliable_tests);
  return result;
}

}  // namespace pgm
}  // namespace guardrail
