#ifndef GUARDRAIL_PGM_MEEK_RULES_H_
#define GUARDRAIL_PGM_MEEK_RULES_H_

#include "pgm/pdag.h"

namespace guardrail {
namespace pgm {

/// Applies Meek's orientation rules R1-R4 to `graph` until a fixed point.
///
///   R1: a -> b, b - c, a and c non-adjacent        => b -> c
///   R2: a -> b -> c, a - c                         => a -> c
///   R3: a - b, a - c, a - d, c -> b, d -> b,
///       c and d non-adjacent                       => a -> b
///   R4: a - b, a - c (or a adjacent to c),
///       c -> d, d -> b, a - d? (standard form)     => a -> b
///
/// Returns the number of edges oriented. The rules never orient an edge both
/// ways; they only refine undirected edges.
int ApplyMeekRules(Pdag* graph);

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_MEEK_RULES_H_
