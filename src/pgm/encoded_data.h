#ifndef GUARDRAIL_PGM_ENCODED_DATA_H_
#define GUARDRAIL_PGM_ENCODED_DATA_H_

#include <cstdint>
#include <vector>

#include "table/table.h"

namespace guardrail {
namespace pgm {

/// Column-major integer-coded sample matrix handed to the structure-learning
/// stack. Decouples CI tests from Table so the auxiliary (binary) sample and
/// the raw (identity) sample share one code path.
struct EncodedData {
  std::vector<std::vector<ValueId>> columns;
  std::vector<int32_t> cardinalities;
  int64_t num_rows = 0;

  int32_t num_variables() const {
    return static_cast<int32_t>(columns.size());
  }
};

/// Identity encoding: the raw table codes.
EncodedData EncodeIdentity(const Table& table);

}  // namespace pgm
}  // namespace guardrail

#endif  // GUARDRAIL_PGM_ENCODED_DATA_H_
