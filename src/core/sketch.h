#ifndef GUARDRAIL_CORE_SKETCH_H_
#define GUARDRAIL_CORE_SKETCH_H_

#include <string>
#include <vector>

#include "pgm/dag.h"
#include "table/schema.h"
#include "table/value.h"

namespace guardrail {
namespace core {

/// The sketch language of paper Fig. 3: a statement with the HAVING clause
/// left as a hole.
struct StatementSketch {
  std::vector<AttrIndex> determinants;  // GIVEN
  AttrIndex dependent = 0;              // ON

  bool operator==(const StatementSketch& other) const {
    return determinants == other.determinants &&
           dependent == other.dependent;
  }
  bool operator<(const StatementSketch& other) const {
    if (dependent != other.dependent) return dependent < other.dependent;
    return determinants < other.determinants;
  }
};

struct ProgramSketch {
  std::vector<StatementSketch> statements;

  bool empty() const { return statements.empty(); }
};

/// Derives the program sketch induced by a DAG (Alg. 2 lines 4-9): one
/// statement sketch GIVEN Parents(a) ON a per node with a non-empty parent
/// set. Determinants are sorted.
ProgramSketch SketchFromDag(const pgm::Dag& dag);

/// "GIVEN a, b ON c HAVING []" rendering for diagnostics.
std::string ToString(const StatementSketch& sketch, const Schema& schema);
std::string ToString(const ProgramSketch& sketch, const Schema& schema);

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_SKETCH_H_
