#ifndef GUARDRAIL_CORE_SKETCH_H_
#define GUARDRAIL_CORE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pgm/dag.h"
#include "table/schema.h"
#include "table/value.h"

namespace guardrail {
namespace core {

/// The sketch language of paper Fig. 3: a statement with the HAVING clause
/// left as a hole.
struct StatementSketch {
  std::vector<AttrIndex> determinants;  // GIVEN
  AttrIndex dependent = 0;              // ON

  bool operator==(const StatementSketch& other) const {
    return determinants == other.determinants &&
           dependent == other.dependent;
  }
  bool operator<(const StatementSketch& other) const {
    if (dependent != other.dependent) return dependent < other.dependent;
    return determinants < other.determinants;
  }
};

/// FNV-1a over (dependent, determinants) — the statement cache's key hash.
/// Usable as the Hash template argument of unordered containers.
struct StatementSketchHash {
  size_t operator()(const StatementSketch& sketch) const {
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
      h = (h ^ v) * 1099511628211ULL;
    };
    mix(static_cast<uint64_t>(static_cast<uint32_t>(sketch.dependent)));
    for (AttrIndex a : sketch.determinants) {
      mix(static_cast<uint64_t>(static_cast<uint32_t>(a)) + 1);
    }
    return static_cast<size_t>(h);
  }
};

struct ProgramSketch {
  std::vector<StatementSketch> statements;

  bool empty() const { return statements.empty(); }
};

/// Derives the program sketch induced by a DAG (Alg. 2 lines 4-9): one
/// statement sketch GIVEN Parents(a) ON a per node with a non-empty parent
/// set. Determinants are sorted.
ProgramSketch SketchFromDag(const pgm::Dag& dag);

/// "GIVEN a, b ON c HAVING []" rendering for diagnostics.
std::string ToString(const StatementSketch& sketch, const Schema& schema);
std::string ToString(const ProgramSketch& sketch, const Schema& schema);

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_SKETCH_H_
