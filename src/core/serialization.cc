#include "core/serialization.h"

#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/parser.h"
#include "core/printer.h"

namespace guardrail {
namespace core {

namespace {
constexpr char kHeader[] = "# guardrail-program v1";
}  // namespace

std::string SerializeProgram(const Program& program, const Schema& schema,
                             const std::string& comment) {
  std::string out = kHeader;
  out += "\n";
  if (!comment.empty()) {
    for (const std::string& line : StrSplit(comment, '\n')) {
      out += "# " + line + "\n";
    }
  }
  out += ToDsl(program, schema);
  return out;
}

Result<Program> DeserializeProgram(const std::string& text, Schema* schema) {
  GUARDRAIL_FAILPOINT("serialize.load");
  std::string body;
  bool header_seen = false;
  for (const std::string& line : StrSplit(text, '\n')) {
    std::string_view trimmed = StrTrim(line);
    if (StrStartsWith(trimmed, "#")) {
      if (StrStartsWith(trimmed, "# guardrail-program")) {
        if (trimmed != std::string_view(kHeader)) {
          return Status::InvalidArgument(
              "unsupported guardrail-program version: " +
              std::string(trimmed));
        }
        header_seen = true;
      }
      continue;
    }
    body += line;
    body += "\n";
  }
  if (!header_seen) {
    return Status::InvalidArgument(
        "missing '# guardrail-program v1' header");
  }
  return ParseProgram(body, schema);
}

Status SaveProgramToFile(const std::string& path, const Program& program,
                         const Schema& schema, const std::string& comment) {
  GUARDRAIL_FAILPOINT("serialize.save");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << SerializeProgram(program, schema, comment);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<Program> LoadProgramFromFile(const std::string& path, Schema* schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return DeserializeProgram(ss.str(), schema);
}

}  // namespace core
}  // namespace guardrail
