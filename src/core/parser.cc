#include "core/parser.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace guardrail {
namespace core {

namespace {

enum class TokenType {
  kKeyword,     // GIVEN ON HAVING IF THEN AND
  kIdentifier,  // attribute names, bare literals
  kString,      // 'quoted literal'
  kComma,
  kEquals,
  kArrow,  // <-
  kSemicolon,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-';
}

bool IsKeyword(const std::string& upper) {
  return upper == "GIVEN" || upper == "ON" || upper == "HAVING" ||
         upper == "IF" || upper == "THEN" || upper == "AND";
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (c == ',') {
      tok.type = TokenType::kComma;
      ++i;
    } else if (c == '=') {
      tok.type = TokenType::kEquals;
      ++i;
    } else if (c == ';') {
      tok.type = TokenType::kSemicolon;
      ++i;
    } else if (c == '<' && i + 1 < text.size() && text[i + 1] == '-') {
      tok.type = TokenType::kArrow;
      i += 2;
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\\' && i + 1 < text.size()) {
          value += text[i + 1];
          i += 2;
        } else if (text[i] == '\'') {
          ++i;
          closed = true;
          break;
        } else {
          value += text[i];
          ++i;
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
    } else if (IsIdentChar(c)) {
      std::string word;
      while (i < text.size() && IsIdentChar(text[i])) {
        word += text[i];
        ++i;
      }
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (IsKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::move(word);
      }
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(tok));
  }
  tokens.push_back(Token{TokenType::kEnd, "", text.size()});
  return tokens;
}

class ProgramParser {
 public:
  ProgramParser(std::vector<Token> tokens, Schema* schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  Result<Program> Parse() {
    Program program;
    while (!AtEnd()) {
      GUARDRAIL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      program.statements.push_back(std::move(stmt));
    }
    GUARDRAIL_RETURN_NOT_OK(ValidateProgram(program, *schema_));
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) {
      return Status::ParseError("expected " + kw + " at offset " +
                                std::to_string(Peek().offset));
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenType type, const std::string& what) {
    if (Peek().type != type) {
      return Status::ParseError("expected " + what + " at offset " +
                                std::to_string(Peek().offset));
    }
    Advance();
    return Status::OK();
  }

  Result<AttrIndex> ParseAttribute() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected attribute name at offset " +
                                std::to_string(Peek().offset));
    }
    Token tok = Advance();
    AttrIndex attr = schema_->FindAttribute(tok.text);
    if (attr < 0) {
      return Status::NotFound("unknown attribute '" + tok.text + "'");
    }
    return attr;
  }

  Result<ValueId> ParseLiteral(AttrIndex attr) {
    if (Peek().type != TokenType::kString &&
        Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected literal at offset " +
                                std::to_string(Peek().offset));
    }
    Token tok = Advance();
    // Unseen values extend the domain; a constraint may reference a value
    // not present in the current sample.
    return schema_->attribute(attr).GetOrInsert(tok.text);
  }

  // True when the next token is the bare word TRUE (any case) followed by
  // THEN: the printer's spelling of the empty, always-matching condition.
  // The lookahead keeps an attribute actually named "TRUE" usable in
  // equalities (`IF TRUE = 'x' THEN ...` still parses as a comparison).
  bool PeekTrueCondition() const {
    if (Peek().type != TokenType::kIdentifier) return false;
    std::string upper = Peek().text;
    std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
    if (upper != "TRUE") return false;
    const Token& next = tokens_[pos_ + 1];
    return next.type == TokenType::kKeyword && next.text == "THEN";
  }

  Result<Branch> ParseBranch(AttrIndex expected_target) {
    GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("IF"));
    Branch branch;
    if (PeekTrueCondition()) {
      Advance();  // Consume TRUE; the condition stays empty.
    } else {
      while (true) {
        GUARDRAIL_ASSIGN_OR_RETURN(AttrIndex attr, ParseAttribute());
        GUARDRAIL_RETURN_NOT_OK(Expect(TokenType::kEquals, "'='"));
        GUARDRAIL_ASSIGN_OR_RETURN(ValueId value, ParseLiteral(attr));
        branch.condition.equalities.emplace_back(attr, value);
        if (PeekKeyword("AND")) {
          Advance();
          continue;
        }
        break;
      }
    }
    std::sort(branch.condition.equalities.begin(),
              branch.condition.equalities.end());
    GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("THEN"));
    GUARDRAIL_ASSIGN_OR_RETURN(AttrIndex target, ParseAttribute());
    if (target != expected_target) {
      return Status::ParseError(
          "branch assigns '" + schema_->attribute(target).name() +
          "' but the statement's ON attribute is '" +
          schema_->attribute(expected_target).name() + "'");
    }
    branch.target = target;
    GUARDRAIL_RETURN_NOT_OK(Expect(TokenType::kArrow, "'<-'"));
    GUARDRAIL_ASSIGN_OR_RETURN(branch.assignment, ParseLiteral(target));
    GUARDRAIL_RETURN_NOT_OK(Expect(TokenType::kSemicolon, "';'"));
    return branch;
  }

  Result<Statement> ParseStatement() {
    GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("GIVEN"));
    Statement stmt;
    while (true) {
      GUARDRAIL_ASSIGN_OR_RETURN(AttrIndex attr, ParseAttribute());
      stmt.determinants.push_back(attr);
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    std::sort(stmt.determinants.begin(), stmt.determinants.end());
    GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("ON"));
    GUARDRAIL_ASSIGN_OR_RETURN(stmt.dependent, ParseAttribute());
    GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("HAVING"));
    // One or more branches, each starting with IF.
    while (PeekKeyword("IF")) {
      GUARDRAIL_ASSIGN_OR_RETURN(Branch branch, ParseBranch(stmt.dependent));
      stmt.branches.push_back(std::move(branch));
    }
    if (stmt.branches.empty()) {
      return Status::ParseError("statement without branches at offset " +
                                std::to_string(Peek().offset));
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Schema* schema_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text, Schema* schema) {
  GUARDRAIL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  ProgramParser parser(std::move(tokens), schema);
  return parser.Parse();
}

}  // namespace core
}  // namespace guardrail
