#ifndef GUARDRAIL_CORE_AST_H_
#define GUARDRAIL_CORE_AST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "table/schema.h"
#include "table/value.h"

namespace guardrail {
namespace core {

/// The DSL of paper Fig. 2, resolved against a Schema: attributes are
/// attribute indexes and literals are dictionary codes, so interpretation is
/// integer comparisons. The parser/printer (parser.h, printer.h) convert
/// between this form and the human-readable surface syntax.
///
///   p ::= s*
///   s ::= GIVEN a+ ON a HAVING b+
///   b ::= IF c THEN a <- l
///   c ::= a = l | c AND c

/// A conjunction of attribute-equals-literal tests. Kept sorted by attribute
/// index; an attribute appears at most once (a = l1 AND a = l2 with l1 != l2
/// is unsatisfiable and rejected at construction).
struct Condition {
  std::vector<std::pair<AttrIndex, ValueId>> equalities;

  /// True when every equality holds on `row`.
  bool Matches(const Row& row) const {
    for (const auto& [attr, value] : equalities) {
      if (row[static_cast<size_t>(attr)] != value) return false;
    }
    return true;
  }

  bool operator==(const Condition& other) const {
    return equalities == other.equalities;
  }
};

/// IF c THEN target <- assignment.
struct Branch {
  Condition condition;
  AttrIndex target = 0;
  ValueId assignment = kNullValue;
  /// Rows witnessing the condition during synthesis (|D^b| on the training
  /// split). Advisory metadata used by the MAP rectification policy; not
  /// part of program identity.
  int64_t support = 0;
  /// Dependent values observed under this condition during synthesis (the
  /// epsilon-tolerated variation, including the assignment). The rectify
  /// policy leaves a deviation alone when training already witnessed it —
  /// repairing the DGP's own legitimate variation would manufacture errors.
  /// Advisory metadata; not part of program identity.
  std::vector<ValueId> tolerated_values;

  bool operator==(const Branch& other) const {
    return condition == other.condition && target == other.target &&
           assignment == other.assignment;
  }
};

/// GIVEN determinants ON dependent HAVING branches. Every branch targets
/// `dependent` and conditions exactly on `determinants`.
struct Statement {
  std::vector<AttrIndex> determinants;
  AttrIndex dependent = 0;
  std::vector<Branch> branches;

  bool operator==(const Statement& other) const {
    return determinants == other.determinants &&
           dependent == other.dependent && branches == other.branches;
  }
};

/// A whole integrity-constraint program.
struct Program {
  std::vector<Statement> statements;

  bool empty() const { return statements.empty(); }
  int64_t NumBranches() const {
    int64_t n = 0;
    for (const auto& s : statements) n += static_cast<int64_t>(s.branches.size());
    return n;
  }

  bool operator==(const Program& other) const {
    return statements == other.statements;
  }
};

/// Structural validation against a schema: indexes in range, codes in domain,
/// branch conditions consistent with the statement header, no duplicate
/// attribute in a conjunction.
Status ValidateProgram(const Program& program, const Schema& schema);

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_AST_H_
