#ifndef GUARDRAIL_CORE_SKETCH_FILLER_H_
#define GUARDRAIL_CORE_SKETCH_FILLER_H_

#include <cstdint>
#include <optional>

#include "common/deadline.h"
#include "core/ast.h"
#include "core/sketch.h"
#include "table/table.h"

namespace guardrail {
namespace core {

/// Knobs for Alg. 1 (Fill program sketch).
struct FillOptions {
  /// Branch tolerance: keep a branch when loss <= support * epsilon
  /// (Eqn. 3).
  double epsilon = 0.02;
  /// Branches must be witnessed by at least this many rows; guards against
  /// single-row "constraints" that are vacuously epsilon-valid.
  int64_t min_branch_support = 5;
  /// Cap on warranted conditions per statement (the observed combinations of
  /// determinant values); statements with more distinct combinations are
  /// truncated to the most frequent ones.
  int64_t max_conditions_per_statement = 4096;
  /// Parallelism for the row-grouping scan (0 = hardware concurrency via
  /// ThreadPool::DefaultThreads(), 1 = serial). The scan is sharded into
  /// fixed row ranges whose count depends only on the data size — never on
  /// the thread count — and shard results merge by commutative count
  /// addition, so the filled statement is identical for any setting.
  int num_threads = 0;
};

/// Fills a single statement sketch (Alg. 1, FillStmtSketch): enumerates the
/// warranted conditions comb(det) — the observed determinant-value
/// combinations — picks the arg-min-loss assignment for each hole, and keeps
/// epsilon-valid branches. Returns nullopt when no branch qualifies
/// (Alg. 1's bottom).
std::optional<Statement> FillStatementSketch(const StatementSketch& sketch,
                                             const Table& data,
                                             const FillOptions& options);

/// Cancellable variant: polls `cancel` amortized across the data scan and
/// returns Status::Timeout on expiry (a partially grouped statement would
/// understate support, so no partial fill is produced).
Result<std::optional<Statement>> FillStatementSketch(
    const StatementSketch& sketch, const Table& data,
    const FillOptions& options, const CancellationToken& cancel);

/// Fills a whole program sketch (Alg. 1): statements that fill to bottom are
/// dropped.
Program FillProgramSketch(const ProgramSketch& sketch, const Table& data,
                          const FillOptions& options);

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_SKETCH_FILLER_H_
