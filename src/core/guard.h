#ifndef GUARDRAIL_CORE_GUARD_H_
#define GUARDRAIL_CORE_GUARD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/ast.h"
#include "core/interpreter.h"
#include "table/table.h"

namespace guardrail {
namespace core {

/// Error-handling schemes (paper Sec. 7 / Example 1.2), mirroring pandas
/// semantics plus the novel `rectify`:
///   kRaise   — fail on the first violating row.
///   kIgnore  — record violations, leave data untouched.
///   kCoerce  — replace each violating dependent value with NULL.
///   kRectify — repair the row to the most likely correct value entailed by
///              the program: either overwrite the dependent with the fired
///              branch's assignment, or — when the observed dependent value
///              is better explained by a corrupted *determinant* (an
///              alternative branch of the same statement with higher
///              training support assigns exactly the observed value) —
///              repair that determinant instead (MAP repair).
enum class ErrorPolicy { kRaise, kIgnore, kCoerce, kRectify };

const char* ErrorPolicyName(ErrorPolicy policy);

/// Result of guarding a batch of rows.
struct GuardOutcome {
  int64_t rows_checked = 0;
  int64_t rows_flagged = 0;
  int64_t cells_repaired = 0;
  /// Rows whose evaluation itself failed (injected faults, malformed rows).
  /// Under kIgnore / kCoerce / kRectify such rows are skipped untouched and
  /// processing continues; under kRaise the first failure aborts the batch.
  int64_t rows_failed = 0;
  /// The first per-row evaluation error encountered; OK when rows_failed == 0.
  Status first_error;
  /// Per-row violation flag, aligned with the input table.
  std::vector<bool> flagged;
};

/// Runtime guard: vets rows against a synthesized constraint program before
/// they reach downstream consumers (the ML model in Fig. 1).
class Guard {
 public:
  explicit Guard(const Program* program)
      : program_(program), interpreter_(program) {}

  /// Applies the policy to one row. kRaise returns ConstraintViolation on a
  /// violating row; the other policies return the (possibly repaired) row.
  /// Rows narrower than the attributes the program references are rejected
  /// with InvalidArgument under every policy — a malformed row is an input
  /// error, not a constraint violation to ignore or repair.
  Result<Row> ProcessRow(const Row& row, ErrorPolicy policy) const;

  /// Applies the policy to a whole table. With kCoerce / kRectify the table
  /// is modified in place. With kRaise processing stops at the first
  /// violation or evaluation error (the outcome still reports it). Under the
  /// other policies a per-row evaluation failure is isolated: the row is
  /// counted in rows_failed and left untouched, and the batch continues.
  GuardOutcome ProcessTable(Table* table, ErrorPolicy policy) const;

  /// Pure detection: per-row violation flags (Eqn. 1), no mutation.
  std::vector<bool> DetectViolations(const Table& table) const;

  const Interpreter& interpreter() const { return interpreter_; }
  const Program* program() const { return program_; }

 private:
  /// Applies the MAP repair for one violation to `row` (see kRectify).
  void RectifyViolation(const Violation& violation, Row* row) const;

  const Program* program_;
  Interpreter interpreter_;
};

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_GUARD_H_
