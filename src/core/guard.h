#ifndef GUARDRAIL_CORE_GUARD_H_
#define GUARDRAIL_CORE_GUARD_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/ast.h"
#include "core/batch_eval.h"
#include "core/interpreter.h"
#include "table/table.h"

namespace guardrail {
namespace core {

/// Error-handling schemes (paper Sec. 7 / Example 1.2), mirroring pandas
/// semantics plus the novel `rectify`:
///   kRaise   — fail on the first violating row.
///   kIgnore  — record violations, leave data untouched.
///   kCoerce  — replace each violating dependent value with NULL.
///   kRectify — repair the row to the most likely correct value entailed by
///              the program: either overwrite the dependent with the fired
///              branch's assignment, or — when the observed dependent value
///              is better explained by a corrupted *determinant* (an
///              alternative branch of the same statement with higher
///              training support assigns exactly the observed value) —
///              repair that determinant instead (MAP repair).
enum class ErrorPolicy { kRaise, kIgnore, kCoerce, kRectify };

const char* ErrorPolicyName(ErrorPolicy policy);

/// Which evaluation engine table-level guard calls use.
///   kAuto        — compiled batch path when it is safe (table wide enough,
///                  no "interpreter.check" failpoint armed — armed chaos runs
///                  must replay the exact per-row scalar trip sequence),
///                  scalar interpreter otherwise.
///   kInterpreter — always the per-row interpreter (baseline / parity tests).
///   kCompiled    — the batch path whenever usable (tests, benches).
enum class GuardEvalMode { kAuto, kInterpreter, kCompiled };

/// The MAP repair for one violation (see ErrorPolicy::kRectify), applied to
/// `row` in place. Shared by Guard's scalar path and the batch consumers
/// (serve engine, compiled ProcessTable), which repair only flagged rows.
void ApplyRectifyRepair(const Program& program, const Violation& violation,
                        Row* row);

/// Result of guarding a batch of rows.
struct GuardOutcome {
  int64_t rows_checked = 0;
  int64_t rows_flagged = 0;
  int64_t cells_repaired = 0;
  /// Rows whose evaluation itself failed (injected faults, malformed rows).
  /// Under kIgnore / kCoerce / kRectify such rows are skipped untouched and
  /// processing continues; under kRaise the first failure aborts the batch.
  int64_t rows_failed = 0;
  /// The first per-row evaluation error encountered; OK when rows_failed == 0.
  Status first_error;
  /// Per-row violation flag, aligned with the input table.
  std::vector<bool> flagged;
};

/// Runtime guard: vets rows against a synthesized constraint program before
/// they reach downstream consumers (the ML model in Fig. 1).
class Guard {
 public:
  explicit Guard(const Program* program)
      : program_(program), interpreter_(program) {}

  /// Applies the policy to one row. kRaise returns ConstraintViolation on a
  /// violating row; the other policies return the (possibly repaired) row.
  /// Rows narrower than the attributes the program references are rejected
  /// with InvalidArgument under every policy — a malformed row is an input
  /// error, not a constraint violation to ignore or repair.
  Result<Row> ProcessRow(const Row& row, ErrorPolicy policy) const;

  /// Applies the policy to a whole table. With kCoerce / kRectify the table
  /// is modified in place. With kRaise processing stops at the first
  /// violation or evaluation error (the outcome still reports it). Under the
  /// other policies a per-row evaluation failure is isolated: the row is
  /// counted in rows_failed and left untouched, and the batch continues.
  ///
  /// `mode` selects the engine; the default kAuto uses the compiled batch
  /// path when safe. Outcomes (counters, flags, repairs) are byte-identical
  /// across modes — tests/batch_eval_test.cc pins this.
  GuardOutcome ProcessTable(Table* table, ErrorPolicy policy,
                            GuardEvalMode mode = GuardEvalMode::kAuto) const;

  /// Pure detection: per-row violation flags (Eqn. 1), no mutation.
  std::vector<bool> DetectViolations(
      const Table& table, GuardEvalMode mode = GuardEvalMode::kAuto) const;

  /// The lazily built batch evaluator (compiled on first use, thread-safe).
  const CompiledProgram& compiled() const;

  const Interpreter& interpreter() const { return interpreter_; }
  const Program* program() const { return program_; }

 private:
  GuardOutcome ProcessTableScalar(Table* table, ErrorPolicy policy) const;
  GuardOutcome ProcessTableBatched(Table* table, ErrorPolicy policy) const;

  /// Whether the compiled path may serve this table under `mode`.
  bool UseBatch(const Table& table, GuardEvalMode mode) const;

  const Program* program_;
  Interpreter interpreter_;
  // Compiled on demand so scalar-only consumers never pay the build.
  mutable std::once_flag compile_once_;
  mutable std::unique_ptr<const CompiledProgram> compiled_;
};

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_GUARD_H_
