#include "core/synthesizer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/telemetry/telemetry.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/nontriviality.h"
#include "core/normalize.h"
#include "pgm/encoded_data.h"

namespace guardrail {
namespace core {

namespace {

/// Statement-level cache (Sec. 7): DAGs in one MEC share most parent sets,
/// so FillStmtSketch results are memoized on (determinants, dependent).
///
/// Concurrency: lookups go through a mutex-striped shard table (the shard
/// mutex guards only the hash map, never a fill), and each entry carries its
/// own state machine so a statement shared by several concurrently-filling
/// DAGs is filled exactly once — later callers block on the entry until the
/// first fill lands, then read the memoized result.
class StatementCache {
 public:
  /// nullptr means the sketch filled to bottom. Timeouts are propagated and
  /// never cached (the entry may still be fillable by a later caller with a
  /// fresh budget): a failed fill resets the entry and wakes one waiter to
  /// retry.
  Result<const Statement*> GetOrFill(const StatementSketch& sketch,
                                     const Table& data,
                                     const FillOptions& options,
                                     const CancellationToken& cancel) {
    Shard& shard =
        shards_[StatementSketchHash()(sketch) % shards_.size()];
    std::shared_ptr<Entry> entry;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      std::shared_ptr<Entry>& slot = shard.map[sketch];
      if (slot == nullptr) slot = std::make_shared<Entry>();
      entry = slot;
    }

    std::unique_lock<std::mutex> lock(entry->mu);
    for (;;) {
      if (entry->state == Entry::State::kDone) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry->value.has_value() ? &*entry->value : nullptr;
      }
      if (entry->state == Entry::State::kUnfilled) break;
      entry->cv.wait(lock);
    }
    entry->state = Entry::State::kFilling;
    lock.unlock();

    Result<std::optional<Statement>> filled =
        FillStatementSketch(sketch, data, options, cancel);

    lock.lock();
    if (!filled.ok()) {
      entry->state = Entry::State::kUnfilled;
      entry->cv.notify_all();
      return filled.status();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    entry->value = std::move(*filled);
    entry->state = Entry::State::kDone;
    entry->cv.notify_all();
    return entry->value.has_value() ? &*entry->value : nullptr;
  }

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    enum class State { kUnfilled, kFilling, kDone };
    std::mutex mu;
    std::condition_variable cv;
    State state = State::kUnfilled;
    std::optional<Statement> value;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<StatementSketch, std::shared_ptr<Entry>,
                       StatementSketchHash>
        map;
  };

  std::array<Shard, 16> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

/// A token whose deadline spends at most `fraction` of what remains on
/// `cancel` — how the ladder reserves budget for its fallback rungs. With an
/// infinite budget this is `cancel` itself (no behavior change).
CancellationToken SubBudget(const CancellationToken& cancel, double fraction) {
  if (cancel.deadline().is_infinite()) return cancel;
  return cancel.WithDeadline(
      Deadline::AfterSeconds(fraction * cancel.deadline().RemainingSeconds()));
}

}  // namespace

const char* SynthesisRungName(SynthesisRung rung) {
  switch (rung) {
    case SynthesisRung::kFullMec:
      return "full-mec";
    case SynthesisRung::kSingleDag:
      return "single-dag";
    case SynthesisRung::kHillClimb:
      return "hill-climb";
    case SynthesisRung::kTrivial:
      return "trivial";
  }
  return "unknown";
}

std::vector<DomainConstraint> BuildDomainConstraints(const Table& data) {
  std::vector<DomainConstraint> out;
  out.reserve(static_cast<size_t>(data.num_columns()));
  for (AttrIndex a = 0; a < data.num_columns(); ++a) {
    DomainConstraint dc;
    dc.attribute = a;
    dc.domain_size = data.schema().attribute(a).domain_size();
    std::vector<int64_t> counts(
        static_cast<size_t>(std::max(1, dc.domain_size)), 0);
    for (ValueId v : data.column(a)) {
      if (v != kNullValue) ++counts[static_cast<size_t>(v)];
    }
    for (size_t v = 0; v < counts.size(); ++v) {
      if (counts[v] > dc.mode_support) {
        dc.mode_support = counts[v];
        dc.mode = static_cast<ValueId>(v);
      }
    }
    out.push_back(dc);
  }
  return out;
}

std::vector<AttrIndex> DomainViolations(
    const std::vector<DomainConstraint>& constraints, const Row& row) {
  std::vector<AttrIndex> out;
  for (const DomainConstraint& dc : constraints) {
    size_t i = static_cast<size_t>(dc.attribute);
    if (i >= row.size()) {
      out.push_back(dc.attribute);
      continue;
    }
    ValueId v = row[i];
    if (v == kNullValue || v < 0 || v >= dc.domain_size) {
      out.push_back(dc.attribute);
    }
  }
  return out;
}

SynthesisReport Synthesizer::SynthesizeFromMec(const pgm::Pdag& cpdag,
                                               const Table& data) const {
  Result<SynthesisReport> report =
      SynthesizeFromMec(cpdag, data, CancellationToken::Never());
  // Infallible with an infinite budget.
  return std::move(report).value();
}

Result<SynthesisReport> Synthesizer::SynthesizeFromMec(
    const pgm::Pdag& cpdag, const Table& data,
    const CancellationToken& cancel) const {
  SynthesisReport report;
  report.cpdag = cpdag;

  StopWatch total_watch;
  std::vector<pgm::Dag> dags;
  bool enumeration_cut_short = false;
  {
    // The stage span always times (it feeds enumeration_seconds even with
    // telemetry off); the enumerator emits its own nested "mec_enumerate"
    // span per call.
    telemetry::Span enum_span("enumerate", /*always_time=*/true);
    pgm::MecEnumerator::Options enum_options;
    enum_options.max_dags = options_.max_dags;
    // Finite-sample PC can orient conflicting colliders into a directed
    // cycle; repair before enumerating.
    pgm::Pdag working = cpdag;
    pgm::RepairCpdagCycles(&working);
    pgm::MecEnumerator enumerator(enum_options);
    Status enum_status = enumerator.Enumerate(working, cancel, &dags);
    if (!enum_status.ok()) {
      // Budget expired mid-enumeration; whatever members surfaced so far are
      // still valid candidates for Alg. 2's arbitration.
      enumeration_cut_short = true;
    } else if (dags.empty()) {
      // Finite-sample PC output occasionally admits no consistent extension
      // (conflicting colliders). Relax the v-structure validation so Alg. 2's
      // coverage selection can still arbitrate between acyclic orientations.
      enum_options.strict_v_structures = false;
      pgm::MecEnumerator relaxed(enum_options);
      if (!relaxed.Enumerate(working, cancel, &dags).ok()) {
        enumeration_cut_short = true;
      }
    }
    if (dags.empty()) {
      // Last resort: one greedy acyclic orientation (bounded, uncancelled).
      dags.push_back(pgm::BestEffortExtension(working));
    }
    enum_span.AddArg("dags", static_cast<int64_t>(dags.size()));
    enum_span.AddArg("cut_short", enumeration_cut_short);
    report.enumeration_seconds = enum_span.ElapsedSeconds();
  }
  report.num_dags_enumerated = static_cast<int64_t>(dags.size());

  // Alg. 2: fill the sketch of each member DAG; keep max coverage. The
  // per-DAG fills run concurrently — the statement cache guarantees each
  // shared statement is filled exactly once — and the winner is selected in
  // a serial DAG-ordered pass, so the chosen program is identical for any
  // thread count.
  telemetry::Span fill_span("sketch_fill", /*always_time=*/true);
  StatementCache cache;
  struct DagFill {
    bool attempted = false;
    bool complete = false;
    Program program;
    ProgramSketch sketch;
    double coverage = -1.0;
  };
  std::vector<DagFill> fills(dags.size());
  {
    ParallelForOptions pf;
    pf.max_parallelism = ResolveThreads(options_.num_threads);
    pf.cancel = &cancel;
    // Bodies are whole-DAG fills (many row scans each); poll every body.
    pf.cancel_stride = 1;
    Status fill_status = ParallelFor(
        &ThreadPool::Shared(), static_cast<int64_t>(dags.size()),
        [&](int64_t i) {
          DagFill& out = fills[static_cast<size_t>(i)];
          out.attempted = true;
          out.sketch = SketchFromDag(dags[static_cast<size_t>(i)]);
          out.complete = true;
          for (const auto& stmt_sketch : out.sketch.statements) {
            Result<const Statement*> stmt =
                cache.GetOrFill(stmt_sketch, data, options_.fill, cancel);
            if (!stmt.ok()) {
              out.complete = false;
              return;
            }
            if (*stmt != nullptr) out.program.statements.push_back(**stmt);
          }
          out.coverage = ProgramCoverage(out.program, data);
        },
        pf);
    // A cancelled loop is not an error here: cut-short DAGs surface as
    // !attempted in the selection pass below.
    (void)fill_status;
  }

  Program best_program;
  Program ensemble;
  ProgramSketch best_sketch;
  double best_coverage = -1.0;
  size_t dags_filled = 0;
  bool fill_cut_short = false;
  for (DagFill& fill : fills) {
    if (!fill.attempted || !fill.complete) {
      // A half-filled program would understate coverage; drop it and stop —
      // the budget is gone. (Later DAGs may have finished, but the serial
      // ladder stops at the first casualty and so does this merge.)
      fill_cut_short = true;
      break;
    }
    ++dags_filled;
    // Ensemble before the winner steals the statements: the raw union of
    // every complete member program, canonically ordered below so it is
    // byte-identical for any thread count or enumeration order. Members
    // mostly agree — shared sketch statements fill identically through the
    // statement cache, so the union carries exact duplicates — and where
    // finite-sample PC gives a dependent different parent sets the union
    // carries both variants. Deliberately NOT normalized: the minimization
    // rung removes the redundancy with a replayable certificate instead of
    // an uncertified merge rewrite.
    ensemble.statements.insert(ensemble.statements.end(),
                               fill.program.statements.begin(),
                               fill.program.statements.end());
    if (fill.coverage > best_coverage) {
      best_coverage = fill.coverage;
      best_program = std::move(fill.program);
      best_sketch = std::move(fill.sketch);
    }
  }
  GUARDRAIL_COUNTER_ADD("sketch_filler.cache_hits", cache.hits());
  GUARDRAIL_COUNTER_ADD("sketch_filler.cache_misses", cache.misses());
  fill_span.AddArg("dags_filled", static_cast<int64_t>(dags_filled));
  fill_span.AddArg("cache_hits", cache.hits());
  fill_span.AddArg("cache_misses", cache.misses());
  if (dags_filled == 0) {
    return Status::Timeout(
        "sketch filling: budget exhausted before any DAG could be filled");
  }
  report.fill_seconds = fill_span.ElapsedSeconds();
  report.cache_hits = cache.hits();
  report.cache_misses = cache.misses();
  report.program = std::move(best_program);
  report.chosen_sketch = std::move(best_sketch);
  report.coverage = best_coverage < 0.0 ? 0.0 : best_coverage;
  CanonicalizeProgramOrder(&ensemble);
  report.ensemble_program = std::move(ensemble);

  if (enumeration_cut_short || fill_cut_short) {
    report.rung = SynthesisRung::kSingleDag;
    report.budget_expired = true;
    report.degradation_reason =
        "budget expired during " +
        std::string(enumeration_cut_short ? "MEC enumeration" : "sketch fill") +
        "; selected over " + std::to_string(dags_filled) + " of " +
        std::to_string(dags.size()) + " candidate DAG(s)";
  }
  // The rung runs only on non-degraded fills (budget gone = no closures).
  MinimizeEnsemble(data.schema(), &report);
  report.total_seconds = total_watch.ElapsedSeconds();
  return report;
}

Result<SynthesisReport> Synthesizer::FillSingleDag(
    const pgm::Dag& dag, const Table& data,
    const CancellationToken& cancel) const {
  SynthesisReport report;
  report.cpdag = pgm::Pdag::FromDag(dag);
  report.num_dags_enumerated = 1;
  telemetry::Span fill_span("sketch_fill", /*always_time=*/true);
  ProgramSketch sketch = SketchFromDag(dag);
  // Fill the statements concurrently into per-index slots, then assemble the
  // program in sketch order — same bytes as the serial loop.
  struct StmtFill {
    bool attempted = false;
    Status status = Status::OK();
    std::optional<Statement> stmt;
  };
  std::vector<StmtFill> slots(sketch.statements.size());
  ParallelForOptions pf;
  pf.max_parallelism = ResolveThreads(options_.num_threads);
  pf.cancel = &cancel;
  pf.cancel_stride = 1;
  Status pf_status = ParallelFor(
      &ThreadPool::Shared(), static_cast<int64_t>(sketch.statements.size()),
      [&](int64_t i) {
        StmtFill& slot = slots[static_cast<size_t>(i)];
        slot.attempted = true;
        Result<std::optional<Statement>> filled = FillStatementSketch(
            sketch.statements[static_cast<size_t>(i)], data, options_.fill,
            cancel);
        if (filled.ok()) {
          slot.stmt = std::move(*filled);
        } else {
          slot.status = filled.status();
        }
      },
      pf);
  Program program;
  for (StmtFill& slot : slots) {
    if (!slot.attempted) return cancel.CheckTimeout("sketch fill");
    GUARDRAIL_RETURN_NOT_OK(slot.status);
    if (slot.stmt.has_value()) {
      program.statements.push_back(std::move(*slot.stmt));
    }
    ++report.cache_misses;
  }
  (void)pf_status;  // Skipped statements already reported per-slot above.
  GUARDRAIL_COUNTER_ADD("sketch_filler.cache_misses", report.cache_misses);
  report.fill_seconds = fill_span.ElapsedSeconds();
  report.coverage = ProgramCoverage(program, data);
  report.program = std::move(program);
  report.chosen_sketch = std::move(sketch);
  // Single member: the raw union is the program itself, in canonical order.
  report.ensemble_program = report.program;
  CanonicalizeProgramOrder(&report.ensemble_program);
  MinimizeEnsemble(data.schema(), &report);
  return report;
}

SynthesisReport Synthesizer::Synthesize(const Table& data, Rng* rng) const {
  return Synthesize(data, rng, CancellationToken::Never());
}

SynthesisReport Synthesizer::Synthesize(const Table& data, Rng* rng,
                                        const CancellationToken& cancel) const {
  // Root span. `always_time` keeps the wall clock live with telemetry off so
  // report.total_seconds and the exported span come from the same
  // measurement.
  telemetry::Span span("synthesize", /*always_time=*/true);
  SynthesisReport report = SynthesizeImpl(data, rng, cancel);
  VerifyProgram(data, &report);
  report.total_seconds = span.ElapsedSeconds();
  span.AddArg("rung", SynthesisRungName(report.rung));
  span.AddArg("budget_expired", report.budget_expired);
  span.AddArg("ci_tests", report.num_ci_tests);
  span.AddArg("dags", report.num_dags_enumerated);
  GUARDRAIL_COUNTER_INC("synthesize.runs_total");
  if (report.budget_expired) {
    GUARDRAIL_COUNTER_INC("synthesize.degraded_total");
    GUARDRAIL_LOG(WARN) << "synthesis degraded"
                        << telemetry::Kv("rung",
                                         SynthesisRungName(report.rung))
                        << telemetry::Kv("reason", report.degradation_reason);
  }
  return report;
}

void Synthesizer::MinimizeEnsemble(const Schema& schema,
                                   SynthesisReport* report) const {
  if (!options_.minimize || report->ensemble_program.empty() ||
      report->budget_expired) {
    return;
  }
  telemetry::Span min_span("minimize_ensemble", /*always_time=*/true);
  Result<analysis::MinimizationResult> minimized = analysis::MinimizeProgram(
      report->ensemble_program, schema, options_.minimize_options);
  if (!minimized.ok()) {
    GUARDRAIL_COUNTER_INC("synthesize.minimize_failures_total");
    GUARDRAIL_LOG(WARN) << "ensemble minimization failed"
                        << telemetry::Kv("status",
                                         minimized.status().ToString());
    return;
  }
  report->minimization = std::move(*minimized);
  report->minimized = true;
  min_span.AddArg("statements_before",
                  report->minimization.statements_before);
  min_span.AddArg("statements_after", report->minimization.statements_after);
  GUARDRAIL_COUNTER_INC("synthesize.minimize_runs_total");
  GUARDRAIL_COUNTER_ADD(
      "synthesize.minimize_statements_dropped",
      static_cast<int64_t>(report->minimization.dropped.size()));
}

void Synthesizer::VerifyProgram(const Table& data,
                                SynthesisReport* report) const {
  // A degraded run already WARN-logged its rung; re-analyzing a program we
  // know was cut short only adds latency where the budget is gone. Tests
  // running with verify_programs still get the full audit.
  if (report->program.empty() ||
      (report->budget_expired && !options_.verify_programs)) {
    return;
  }
  telemetry::Span verify_span("analysis.post_synthesis");
  analysis::AnalysisOptions aopts;
  aopts.epsilon = options_.fill.epsilon;
  aopts.min_branch_support = options_.fill.min_branch_support;
  // Regions too thin to warrant a branch (below the support floor) are not
  // holes synthesis could have covered; aligning the thresholds keeps a
  // clean synthesis at exactly zero diagnostics.
  aopts.coverage_hole_min_support = options_.fill.min_branch_support;
  // The G-squared LNT/GNT audit costs CI tests; release-mode synthesis
  // skips it and keeps the cheap invariants (structure, satisfiability,
  // contradictions, epsilon-validity, coverage).
  aopts.check_lnt_gnt = options_.verify_programs;
  aopts.ci = options_.gnt_ci;
  analysis::Analyzer analyzer(aopts);
  report->analysis = analyzer.Analyze(report->program, data.schema(), data);

  const int64_t errors =
      report->analysis.CountAtSeverity(analysis::Severity::kError);
  const int64_t warnings =
      report->analysis.CountAtSeverity(analysis::Severity::kWarning);
  GUARDRAIL_COUNTER_INC("analysis.post_synthesis_runs_total");
  if (!report->analysis.empty()) {
    GUARDRAIL_COUNTER_ADD("analysis.post_synthesis_findings_total",
                          static_cast<int64_t>(
                              report->analysis.diagnostics.size()));
    GUARDRAIL_LOG(WARN) << "post-synthesis invariant check found issues"
                        << telemetry::Kv("errors", errors)
                        << telemetry::Kv("warnings", warnings)
                        << telemetry::Kv(
                               "first",
                               report->analysis.diagnostics.front().code + ": " +
                                   report->analysis.diagnostics.front().message);
  }
  if (options_.verify_programs && errors > 0) {
    GUARDRAIL_COUNTER_INC("analysis.post_synthesis_failures_total");
    const analysis::Diagnostic* first_error = nullptr;
    for (const analysis::Diagnostic& d : report->analysis.diagnostics) {
      if (d.severity == analysis::Severity::kError) {
        first_error = &d;
        break;
      }
    }
    report->verification = Status::Internal(
        "synthesized program failed static verification with " +
        std::to_string(errors) + " error(s); first: " + first_error->code +
        " " + first_error->message);
  }
}

SynthesisReport Synthesizer::SynthesizeImpl(
    const Table& data, Rng* rng, const CancellationToken& cancel) const {
  StopWatch total_watch;
  SynthesisReport report;

  // The ladder's floor never fails: one cheap pass, no deadline checks.
  auto degrade_to_trivial = [&](const std::string& reason) {
    SynthesisReport trivial;
    trivial.rung = SynthesisRung::kTrivial;
    trivial.budget_expired = true;
    trivial.degradation_reason = reason;
    trivial.domain_constraints = BuildDomainConstraints(data);
    trivial.sampling_seconds = report.sampling_seconds;
    trivial.structure_seconds = report.structure_seconds;
    trivial.num_ci_tests = report.num_ci_tests;
    trivial.total_seconds = total_watch.ElapsedSeconds();
    return trivial;
  };

  if (cancel.Cancelled()) {
    return degrade_to_trivial("budget exhausted before synthesis began");
  }

  pgm::EncodedData encoded;
  {
    telemetry::Span sample_span("aux_sample", /*always_time=*/true);
    if (options_.use_auxiliary_sampler) {
      encoded = pgm::SampleAuxiliaryDistribution(data, options_.aux, rng);
    } else {
      encoded = pgm::EncodeIdentity(data);
    }
    sample_span.AddArg("variables",
                       static_cast<int64_t>(encoded.num_variables()));
    GUARDRAIL_COUNTER_ADD("aux.variables_sampled", encoded.num_variables());
    report.sampling_seconds = sample_span.ElapsedSeconds();
  }
  if (cancel.Cancelled()) {
    return degrade_to_trivial("budget expired during auxiliary sampling");
  }

  pgm::Pdag cpdag;
  std::string structure_note;
  bool structure_expired = false;
  // When PC blows its budget slice the ladder drops to rung kHillClimb; the
  // learned fallback DAG is kept here so its single-DAG fill runs *after*
  // the structure span has closed (fill time is not structure time).
  std::optional<pgm::HillClimbingLearner::LearnResult> pc_fallback;
  {
    telemetry::Span structure_span("structure", /*always_time=*/true);
    if (options_.structure_method == StructureMethod::kHillClimbing) {
      pgm::HillClimbingLearner learner(options_.hill_climbing);
      pgm::HillClimbingLearner::LearnResult learned =
          learner.Learn(encoded, SubBudget(cancel, 0.5));
      cpdag = pgm::Pdag::FromDag(learned.dag);
      if (learned.timed_out) {
        structure_expired = true;
        structure_note = "hill climbing stopped early at iteration " +
                         std::to_string(learned.iterations);
      }
    } else {
      pgm::PcAlgorithm pc(options_.pc);
      // PC gets half the remaining budget so the fallback rungs keep the
      // rest.
      Result<pgm::PcResult> pc_result =
          pc.Run(encoded, SubBudget(cancel, 0.5));
      if (pc_result.ok()) {
        cpdag = std::move(pc_result->cpdag);
        report.num_ci_tests = pc_result->num_ci_tests;
      } else {
        // Rung kHillClimb: a half-finished PC skeleton is unusable, but the
        // anytime hill climber always has *some* DAG to offer.
        pgm::HillClimbingLearner learner(options_.hill_climbing);
        pc_fallback = learner.Learn(encoded, SubBudget(cancel, 0.5));
      }
    }
    structure_span.AddArg("fell_back", pc_fallback.has_value());
    report.structure_seconds = structure_span.ElapsedSeconds();
  }
  if (pc_fallback.has_value()) {
    Result<SynthesisReport> filled =
        FillSingleDag(pc_fallback->dag, data, cancel);
    if (!filled.ok()) {
      return degrade_to_trivial(
          "pc and the hill-climbing fallback both exceeded the budget (" +
          filled.status().message() + ")");
    }
    SynthesisReport out = std::move(*filled);
    out.rung = SynthesisRung::kHillClimb;
    out.budget_expired = true;
    out.degradation_reason =
        "pc structure learning exceeded its budget slice; fell back to "
        "anytime hill climbing (" +
        std::to_string(pc_fallback->iterations) + " iteration(s))";
    out.sampling_seconds = report.sampling_seconds;
    out.structure_seconds = report.structure_seconds;
    out.num_ci_tests = report.num_ci_tests;
    out.total_seconds = total_watch.ElapsedSeconds();
    return out;
  }

  Result<SynthesisReport> inner = SynthesizeFromMec(cpdag, data, cancel);
  if (!inner.ok()) {
    return degrade_to_trivial("budget expired during sketch filling (" +
                              inner.status().message() + ")");
  }
  double sampling_seconds = report.sampling_seconds;
  double structure_seconds = report.structure_seconds;
  int64_t num_ci_tests = report.num_ci_tests;
  report = std::move(*inner);
  report.sampling_seconds = sampling_seconds;
  report.structure_seconds = structure_seconds;
  report.num_ci_tests = num_ci_tests;
  if (structure_expired) {
    report.budget_expired = true;
    if (!report.degradation_reason.empty()) report.degradation_reason += "; ";
    report.degradation_reason += structure_note;
  }

  if (options_.enforce_gnt && !report.chosen_sketch.empty()) {
    if (cancel.Cancelled()) {
      // The GNT post-filter only ever *drops* statements; skipping it keeps
      // a valid (slightly more permissive) program.
      report.budget_expired = true;
      if (!report.degradation_reason.empty()) report.degradation_reason += "; ";
      report.degradation_reason += "gnt post-filter skipped (budget expired)";
    } else {
      NonTrivialityChecker checker(&data, options_.gnt_ci);
      ProgramSketch kept_sketch;
      Program kept_program;
      for (size_t i = 0; i < report.chosen_sketch.statements.size(); ++i) {
        const StatementSketch& sketch = report.chosen_sketch.statements[i];
        if (checker.IsGloballyNonTrivial(report.chosen_sketch, sketch)) {
          kept_sketch.statements.push_back(sketch);
          // The filled program may have dropped some sketch statements
          // (bottom); match by header.
          for (const auto& stmt : report.program.statements) {
            if (stmt.determinants == sketch.determinants &&
                stmt.dependent == sketch.dependent) {
              kept_program.statements.push_back(stmt);
              break;
            }
          }
        } else {
          ++report.gnt_statements_dropped;
        }
      }
      report.chosen_sketch = std::move(kept_sketch);
      report.program = std::move(kept_program);
      report.coverage = ProgramCoverage(report.program, data);
    }
  }

  report.total_seconds = total_watch.ElapsedSeconds();
  return report;
}

}  // namespace core
}  // namespace guardrail
