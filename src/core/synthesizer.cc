#include "core/synthesizer.h"

#include <utility>

#include "common/timer.h"
#include "core/metrics.h"
#include "core/nontriviality.h"
#include "pgm/encoded_data.h"

namespace guardrail {
namespace core {

namespace {

/// Statement-level cache (Sec. 7): DAGs in one MEC share most parent sets,
/// so FillStmtSketch results are memoized on (determinants, dependent).
class StatementCache {
 public:
  const std::optional<Statement>& GetOrFill(const StatementSketch& sketch,
                                            const Table& data,
                                            const FillOptions& options) {
    auto it = cache_.find(sketch);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    auto [pos, inserted] =
        cache_.emplace(sketch, FillStatementSketch(sketch, data, options));
    (void)inserted;
    return pos->second;
  }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  std::map<StatementSketch, std::optional<Statement>> cache_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace

SynthesisReport Synthesizer::SynthesizeFromMec(const pgm::Pdag& cpdag,
                                               const Table& data) const {
  SynthesisReport report;
  report.cpdag = cpdag;

  StopWatch total_watch;
  StopWatch watch;
  pgm::MecEnumerator::Options enum_options;
  enum_options.max_dags = options_.max_dags;
  // Finite-sample PC can orient conflicting colliders into a directed
  // cycle; repair before enumerating.
  pgm::Pdag working = cpdag;
  pgm::RepairCpdagCycles(&working);
  pgm::MecEnumerator enumerator(enum_options);
  std::vector<pgm::Dag> dags = enumerator.Enumerate(working);
  if (dags.empty()) {
    // Finite-sample PC output occasionally admits no consistent extension
    // (conflicting colliders). Relax the v-structure validation so Alg. 2's
    // coverage selection can still arbitrate between acyclic orientations.
    enum_options.strict_v_structures = false;
    pgm::MecEnumerator relaxed(enum_options);
    dags = relaxed.Enumerate(working);
  }
  if (dags.empty()) {
    // Last resort: one greedy acyclic orientation.
    dags.push_back(pgm::BestEffortExtension(working));
  }
  report.enumeration_seconds = watch.ElapsedSeconds();
  report.num_dags_enumerated = static_cast<int64_t>(dags.size());

  // Alg. 2: fill the sketch of each member DAG; keep max coverage.
  watch.Restart();
  StatementCache cache;
  Program best_program;
  ProgramSketch best_sketch;
  double best_coverage = -1.0;
  for (const pgm::Dag& dag : dags) {
    ProgramSketch sketch = SketchFromDag(dag);
    Program program;
    for (const auto& stmt_sketch : sketch.statements) {
      const std::optional<Statement>& stmt =
          cache.GetOrFill(stmt_sketch, data, options_.fill);
      if (stmt.has_value()) program.statements.push_back(*stmt);
    }
    double coverage = ProgramCoverage(program, data);
    if (coverage > best_coverage) {
      best_coverage = coverage;
      best_program = std::move(program);
      best_sketch = std::move(sketch);
    }
  }
  report.fill_seconds = watch.ElapsedSeconds();
  report.cache_hits = cache.hits();
  report.cache_misses = cache.misses();
  report.program = std::move(best_program);
  report.chosen_sketch = std::move(best_sketch);
  report.coverage = best_coverage < 0.0 ? 0.0 : best_coverage;
  report.total_seconds = total_watch.ElapsedSeconds();
  return report;
}

SynthesisReport Synthesizer::Synthesize(const Table& data, Rng* rng) const {
  StopWatch total_watch;
  StopWatch watch;
  pgm::EncodedData encoded;
  if (options_.use_auxiliary_sampler) {
    encoded = pgm::SampleAuxiliaryDistribution(data, options_.aux, rng);
  } else {
    encoded = pgm::EncodeIdentity(data);
  }
  double sampling_seconds = watch.ElapsedSeconds();

  watch.Restart();
  pgm::Pdag cpdag;
  int64_t num_ci_tests = 0;
  if (options_.structure_method == StructureMethod::kHillClimbing) {
    pgm::HillClimbingLearner learner(options_.hill_climbing);
    pgm::HillClimbingLearner::LearnResult learned = learner.Learn(encoded);
    cpdag = pgm::Pdag::FromDag(learned.dag);
  } else {
    pgm::PcAlgorithm pc(options_.pc);
    pgm::PcResult pc_result = pc.Run(encoded);
    cpdag = std::move(pc_result.cpdag);
    num_ci_tests = pc_result.num_ci_tests;
  }
  double structure_seconds = watch.ElapsedSeconds();

  SynthesisReport report = SynthesizeFromMec(cpdag, data);
  report.sampling_seconds = sampling_seconds;
  report.structure_seconds = structure_seconds;
  report.num_ci_tests = num_ci_tests;

  if (options_.enforce_gnt && !report.chosen_sketch.empty()) {
    NonTrivialityChecker checker(&data, options_.gnt_ci);
    ProgramSketch kept_sketch;
    Program kept_program;
    for (size_t i = 0; i < report.chosen_sketch.statements.size(); ++i) {
      const StatementSketch& sketch = report.chosen_sketch.statements[i];
      if (checker.IsGloballyNonTrivial(report.chosen_sketch, sketch)) {
        kept_sketch.statements.push_back(sketch);
        // The filled program may have dropped some sketch statements
        // (bottom); match by header.
        for (const auto& stmt : report.program.statements) {
          if (stmt.determinants == sketch.determinants &&
              stmt.dependent == sketch.dependent) {
            kept_program.statements.push_back(stmt);
            break;
          }
        }
      } else {
        ++report.gnt_statements_dropped;
      }
    }
    report.chosen_sketch = std::move(kept_sketch);
    report.program = std::move(kept_program);
    report.coverage = ProgramCoverage(report.program, data);
  }

  report.total_seconds = total_watch.ElapsedSeconds();
  return report;
}

}  // namespace core
}  // namespace guardrail
