#include "core/sketch.h"

#include <algorithm>

namespace guardrail {
namespace core {

ProgramSketch SketchFromDag(const pgm::Dag& dag) {
  ProgramSketch sketch;
  for (int32_t node = 0; node < dag.num_nodes(); ++node) {
    const auto& parents = dag.parents(node);
    if (parents.empty()) continue;
    StatementSketch s;
    s.dependent = node;
    s.determinants.assign(parents.begin(), parents.end());
    std::sort(s.determinants.begin(), s.determinants.end());
    sketch.statements.push_back(std::move(s));
  }
  return sketch;
}

std::string ToString(const StatementSketch& sketch, const Schema& schema) {
  std::string out = "GIVEN ";
  for (size_t i = 0; i < sketch.determinants.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute(sketch.determinants[i]).name();
  }
  out += " ON " + schema.attribute(sketch.dependent).name() + " HAVING []";
  return out;
}

std::string ToString(const ProgramSketch& sketch, const Schema& schema) {
  std::string out;
  for (const auto& s : sketch.statements) {
    out += ToString(s, schema) + "\n";
  }
  return out;
}

}  // namespace core
}  // namespace guardrail
