#include "core/batch_eval.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace guardrail {
namespace core {

namespace {

/// Literals above this never get a dense value->index LUT; such statements
/// evaluate in mask form. Keeps per-attribute LUTs at a few MB worst case.
constexpr ValueId kMaxDenseLiteral = ValueId{1} << 22;

/// No-fire sentinel in the fused expected-value tables. Unreachable as a
/// real assignment: literals/codes are bounded below by kNullValue.
constexpr ValueId kNoFire = std::numeric_limits<ValueId>::min();

void ClearMask(std::vector<uint64_t>* mask, int64_t rows) {
  mask->assign(rowmask::Words(rows), 0);
}

/// Sets bits [0, rows) — whole words, then trims the tail word.
void FillMask(std::vector<uint64_t>* mask, int64_t rows) {
  mask->assign(rowmask::Words(rows), ~uint64_t{0});
  if (rows & 63) mask->back() = (uint64_t{1} << (rows & 63)) - 1;
}

bool AnyBit(const std::vector<uint64_t>& mask) {
  for (uint64_t word : mask) {
    if (word != 0) return true;
  }
  return false;
}

/// Compact index of `code` in `lut` (0 = unseen). Codes below kNullValue
/// wrap to a huge unsigned slot and fall off the end -> 0, matching the
/// interpreter: such codes equal no literal.
inline int32_t LookupIndex(const std::vector<int32_t>& lut, ValueId code) {
  uint32_t slot = static_cast<uint32_t>(code + 1);
  return slot < lut.size() ? lut[slot] : 0;
}

}  // namespace

CompiledProgram CompiledProgram::Compile(const Program& program) {
  CompiledProgram compiled;
  compiled.program_ = &program;

  std::vector<AttrIndex> referenced;
  for (const Statement& stmt : program.statements) {
    referenced.push_back(stmt.dependent);
    referenced.insert(referenced.end(), stmt.determinants.begin(),
                      stmt.determinants.end());
    for (const Branch& branch : stmt.branches) {
      referenced.push_back(branch.target);
      for (const auto& [attr, value] : branch.condition.equalities) {
        referenced.push_back(attr);
      }
    }
  }
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  compiled.referenced_attributes_ = std::move(referenced);
  for (AttrIndex a : compiled.referenced_attributes_) {
    compiled.min_row_width_ =
        std::max(compiled.min_row_width_, static_cast<size_t>(a) + 1);
  }

  compiled.statements_.reserve(program.statements.size());
  for (const Statement& stmt : program.statements) {
    CompiledStatement cs;
    cs.dependent = stmt.dependent;
    cs.targets.reserve(stmt.branches.size());
    cs.assignments.reserve(stmt.branches.size());
    for (const Branch& branch : stmt.branches) {
      cs.targets.push_back(branch.target);
      cs.assignments.push_back(branch.assignment);
    }

    // Dispatch eligibility: a non-empty uniform condition-attribute set
    // across branches (equalities are sorted, so the attribute sequences
    // compare directly), a uniform target, and literals in dense range.
    bool eligible = !stmt.branches.empty();
    std::vector<AttrIndex> key_attrs;
    if (eligible) {
      for (const auto& [attr, value] :
           stmt.branches.front().condition.equalities) {
        key_attrs.push_back(attr);
      }
      eligible = !key_attrs.empty();
    }
    for (size_t b = 0; eligible && b < stmt.branches.size(); ++b) {
      const Branch& branch = stmt.branches[b];
      if (branch.target != stmt.dependent ||
          branch.condition.equalities.size() != key_attrs.size()) {
        eligible = false;
        break;
      }
      for (size_t k = 0; k < key_attrs.size(); ++k) {
        ValueId lit = branch.condition.equalities[k].second;
        if (branch.condition.equalities[k].first != key_attrs[k] ||
            lit < kNullValue || lit > kMaxDenseLiteral) {
          eligible = false;
          break;
        }
      }
    }

    if (eligible) {
      // Per key attribute: sorted unique literals -> compact indexes 1..m.
      std::vector<std::vector<ValueId>> values(key_attrs.size());
      for (const Branch& branch : stmt.branches) {
        for (size_t k = 0; k < key_attrs.size(); ++k) {
          values[k].push_back(branch.condition.equalities[k].second);
        }
      }
      int64_t cells = 1;
      for (auto& vals : values) {
        std::sort(vals.begin(), vals.end());
        vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
        cells *= static_cast<int64_t>(vals.size());
        if (cells > kMaxDispatchCells) {
          eligible = false;
          break;
        }
      }
      if (eligible) {
        cs.use_dispatch = true;
        cs.key_attrs = key_attrs;
        cs.value_to_index.resize(key_attrs.size());
        cs.strides.assign(key_attrs.size(), 1);
        for (size_t k = key_attrs.size(); k-- > 1;) {
          cs.strides[k - 1] =
              cs.strides[k] * static_cast<int64_t>(values[k].size());
        }
        for (size_t k = 0; k < key_attrs.size(); ++k) {
          std::vector<int32_t>& lut = cs.value_to_index[k];
          lut.assign(static_cast<size_t>(values[k].back()) + 2, 0);
          for (size_t i = 0; i < values[k].size(); ++i) {
            lut[static_cast<size_t>(values[k][i] + 1)] =
                static_cast<int32_t>(i + 1);
          }
        }
        cs.dispatch.assign(static_cast<size_t>(cells), -1);
        for (size_t b = 0; b < stmt.branches.size(); ++b) {
          int64_t key = 0;
          for (size_t k = 0; k < key_attrs.size(); ++k) {
            int32_t idx = LookupIndex(
                cs.value_to_index[k], stmt.branches[b].condition.equalities[k].second);
            key += static_cast<int64_t>(idx - 1) * cs.strides[k];
          }
          // First branch wins, as in Interpreter::MatchBranch.
          if (cs.dispatch[static_cast<size_t>(key)] < 0) {
            cs.dispatch[static_cast<size_t>(key)] = static_cast<int32_t>(b);
          }
        }
        cs.expected.resize(cs.dispatch.size());
        for (size_t i = 0; i < cs.dispatch.size(); ++i) {
          cs.expected[i] =
              cs.dispatch[i] < 0
                  ? kNoFire
                  : cs.assignments[static_cast<size_t>(cs.dispatch[i])];
        }
        if (key_attrs.size() == 1) {
          const std::vector<int32_t>& lut = cs.value_to_index[0];
          cs.expected_by_slot.assign(lut.size(), kNoFire);
          for (size_t slot = 0; slot < lut.size(); ++slot) {
            if (lut[slot] != 0) {
              cs.expected_by_slot[slot] =
                  cs.expected[static_cast<size_t>(lut[slot] - 1)];
            }
          }
        }
        ++compiled.dispatch_statements_;
      }
    }

    if (!cs.use_dispatch) {
      cs.branches.reserve(stmt.branches.size());
      for (size_t b = 0; b < stmt.branches.size(); ++b) {
        const Branch& branch = stmt.branches[b];
        CompiledBranch cb;
        cb.equalities = branch.condition.equalities;
        cb.assignment = branch.assignment;
        cb.branch_id = static_cast<int32_t>(b);
        cs.branches.push_back(std::move(cb));
      }
      // Dominance probe order: when every branch conditions on the full
      // determinant set with a distinct tuple, conditions are mutually
      // exclusive and at most one branch can match a row — probe order is
      // then free, so probe the highest-support (hottest) branch first and
      // let most rows exit the first-match scan at probe one. branch_id
      // keeps verdicts byte-identical to the interpreter's program order.
      bool order_free = !stmt.branches.empty();
      std::vector<std::vector<std::pair<AttrIndex, ValueId>>> conds;
      for (const Branch& branch : stmt.branches) {
        std::vector<AttrIndex> attrs;
        for (const auto& [attr, value] : branch.condition.equalities) {
          attrs.push_back(attr);
        }
        if (attrs != stmt.determinants) {
          order_free = false;
          break;
        }
        conds.push_back(branch.condition.equalities);
      }
      if (order_free) {
        std::sort(conds.begin(), conds.end());
        order_free =
            std::adjacent_find(conds.begin(), conds.end()) == conds.end();
      }
      if (order_free) {
        std::stable_sort(cs.branches.begin(), cs.branches.end(),
                         [&stmt](const CompiledBranch& a,
                                 const CompiledBranch& b) {
                           return stmt.branches[static_cast<size_t>(
                                      a.branch_id)]
                                      .support >
                                  stmt.branches[static_cast<size_t>(
                                      b.branch_id)]
                                      .support;
                         });
      }
    }
    compiled.statements_.push_back(std::move(cs));
  }
  return compiled;
}

int32_t CompiledProgram::FireBranch(const CompiledStatement& stmt,
                                    const ColumnBatch& batch, int64_t row) {
  if (stmt.use_dispatch) {
    int64_t key = 0;
    for (size_t k = 0; k < stmt.key_attrs.size(); ++k) {
      int32_t idx = LookupIndex(stmt.value_to_index[k],
                                batch.column(stmt.key_attrs[k])[row]);
      if (idx == 0) return -1;
      key += static_cast<int64_t>(idx - 1) * stmt.strides[k];
    }
    return stmt.dispatch[static_cast<size_t>(key)];
  }
  // Probe order may be dominance-sorted (see Compile); when it is, the
  // conditions are mutually exclusive, so returning the first match is
  // still the unique match. branch_id maps back to program order.
  for (const CompiledBranch& cb : stmt.branches) {
    bool match = true;
    for (const auto& [attr, value] : cb.equalities) {
      if (batch.column(attr)[row] != value) {
        match = false;
        break;
      }
    }
    if (match) return cb.branch_id;
  }
  return -1;
}

namespace {

/// Flat inputs for the multi-key dispatch loop, hoisted once per statement.
struct MultiKeyArgs {
  const ValueId* const* keys = nullptr;
  const int32_t* const* luts = nullptr;
  const uint32_t* lut_sizes = nullptr;
  const int64_t* strides = nullptr;
  const ValueId* expected = nullptr;
  const ValueId* dep = nullptr;
  int64_t rows = 0;
  uint64_t* out = nullptr;
};

/// NK > 0 bakes the key count into the instantiation so the inner loop
/// unrolls; NK == 0 keeps it a runtime value (rare wide determinant sets).
/// Dead rows (a key code absent from the LUT) still run all NK lookups —
/// `live` goes branchless, which beats an early exit on real data where
/// almost every row's keys are in-domain.
template <size_t NK>
void MarkDispatchMulti(const MultiKeyArgs& a, size_t nk_dynamic) {
  const size_t nk = NK > 0 ? NK : nk_dynamic;
  for (int64_t base = 0; base < a.rows; base += 64) {
    uint64_t word = 0;
    const int64_t end = std::min<int64_t>(a.rows, base + 64);
    for (int64_t r = base; r < end; ++r) {
      int64_t cell = 0;
      bool live = true;
      for (size_t k = 0; k < nk; ++k) {
        // Same cmov-over-branch clamp as the single-key loop: slot 0 (the
        // kNullValue entry) always exists, so the LUT gather never branches.
        const uint32_t slot = static_cast<uint32_t>(a.keys[k][r] + 1);
        const bool in_range = slot < a.lut_sizes[k];
        const int32_t idx = a.luts[k][in_range ? slot : 0];
        live &= in_range & (idx != 0);
        cell += static_cast<int64_t>(idx - 1) * a.strides[k];
      }
      // `cell` is garbage when !live; it is never dereferenced then.
      if (!live) continue;
      const ValueId e = a.expected[cell];
      if (e == kNoFire || a.dep[r] == e) continue;
      word |= uint64_t{1} << (r - base);
    }
    if (word != 0) a.out[base >> 6] |= word;
  }
}

}  // namespace

void CompiledProgram::MarkViolations(const CompiledStatement& stmt,
                                     const ColumnBatch& batch,
                                     uint64_t* violated) {
  const int64_t rows = batch.num_rows();
  // Both dispatch loops accumulate verdict bits a 64-row word at a time and
  // issue one store per non-zero word, instead of a read-modify-write into
  // the mask per violating row.
  if (stmt.use_dispatch && stmt.key_attrs.size() == 1) {
    // The synthesizer's dominant shape: a single-determinant FD, fused at
    // compile time into one expected-value table — a single branchless
    // gather per row instead of the LUT -> dispatch -> assignments chain.
    const ValueId* expected = stmt.expected_by_slot.data();
    const uint32_t slots = static_cast<uint32_t>(stmt.expected_by_slot.size());
    const ValueId* key = batch.column(stmt.key_attrs[0]);
    const ValueId* dep = batch.column(stmt.dependent);
    uint64_t* out = violated;
    // Clamping out-of-range codes to slot 0 (the kNullValue entry, always
    // present) keeps the gather unconditional: the range check becomes a
    // conditional move instead of a data-dependent branch, which
    // mispredicts on rows whose codes fall outside the literal range.
    auto word_for = [&](int64_t base, int64_t n) {
      uint64_t word = 0;
      for (int64_t i = 0; i < n; ++i) {
        const uint32_t slot = static_cast<uint32_t>(key[base + i] + 1);
        const bool in_range = slot < slots;
        const ValueId e = expected[in_range ? slot : 0];
        const uint64_t viol = static_cast<uint64_t>(
            in_range & (e != kNoFire) & (dep[base + i] != e));
        word |= viol << i;
      }
      return word;
    };
    int64_t base = 0;
    // Full 64-row words run with a constant trip count the compiler can
    // unroll; the tail word takes the variable-count path once.
    for (; base + 64 <= rows; base += 64) {
      const uint64_t word = word_for(base, 64);
      if (word != 0) out[base >> 6] |= word;
    }
    if (base < rows) {
      const uint64_t word = word_for(base, rows - base);
      if (word != 0) out[base >> 6] |= word;
    }
    return;
  }
  if (stmt.use_dispatch) {
    // Multi-determinant dispatch. The per-key column and LUT pointers are
    // hoisted out of the row loop, and the common key counts get a
    // compile-time-sized inner loop (fully unrolled, pointers kept in
    // registers); a dynamic count would reload them per row per key.
    const size_t nk = stmt.key_attrs.size();
    std::vector<const ValueId*> keys(nk);
    std::vector<const int32_t*> luts(nk);
    std::vector<uint32_t> lut_sizes(nk);
    for (size_t k = 0; k < nk; ++k) {
      keys[k] = batch.column(stmt.key_attrs[k]);
      luts[k] = stmt.value_to_index[k].data();
      lut_sizes[k] = static_cast<uint32_t>(stmt.value_to_index[k].size());
    }
    MultiKeyArgs args;
    args.keys = keys.data();
    args.luts = luts.data();
    args.lut_sizes = lut_sizes.data();
    args.strides = stmt.strides.data();
    args.expected = stmt.expected.data();
    args.dep = batch.column(stmt.dependent);
    args.rows = rows;
    args.out = violated;
    switch (nk) {
      case 2:
        MarkDispatchMulti<2>(args, nk);
        break;
      case 3:
        MarkDispatchMulti<3>(args, nk);
        break;
      case 4:
        MarkDispatchMulti<4>(args, nk);
        break;
      default:
        MarkDispatchMulti<0>(args, nk);  // Runtime key count.
        break;
    }
    return;
  }
  for (int64_t r = 0; r < rows; ++r) {
    int32_t b = FireBranch(stmt, batch, r);
    if (b < 0) continue;
    if (batch.column(stmt.targets[static_cast<size_t>(b)])[r] !=
        stmt.assignments[static_cast<size_t>(b)]) {
      violated[r >> 6] |= uint64_t{1} << (r & 63);
    }
  }
}

void CompiledProgram::Evaluate(const ColumnBatch& batch,
                               BatchVerdict* out) const {
  const int64_t rows = batch.num_rows();
  out->num_rows = rows;
  out->violations.clear();
  // Left uninitialized here: the violation path below writes every entry
  // via run-fills, and the violation-free paths zero it in one fill.
  out->offsets.resize(static_cast<size_t>(rows) + 1);
  out->any_violation = false;
  ClearMask(&out->violated, rows);

  // A batch that cannot carry the program at all (too narrow, or missing a
  // referenced column) is entirely the interpreter's problem.
  bool usable = batch.width() >= static_cast<int32_t>(min_row_width_);
  for (size_t i = 0; usable && i < referenced_attributes_.size(); ++i) {
    usable = batch.column(referenced_attributes_[i]) != nullptr;
  }
  if (!usable) {
    FillMask(&out->fallback, rows);
    out->any_fallback = rows > 0;
    std::fill(out->offsets.begin(), out->offsets.end(), 0);
    return;
  }
  if (batch.any_narrow()) {
    out->fallback = batch.narrow();
    out->fallback.resize(rowmask::Words(rows), 0);
    out->any_fallback = true;
  } else {
    ClearMask(&out->fallback, rows);
    out->any_fallback = false;
  }

  // Pass 1: mark rows where any statement's fired branch disagrees. Narrow
  // rows read kNullValue padding, which is safe; their bits are stripped
  // below so they never reach the violated set.
  //
  // Multi-statement programs keep one mask per statement (statement-major in
  // a thread-local scratch so the buffer is reused across calls and across
  // serve worker threads without sharing): pass 2 then probes only the
  // statements that actually flagged a row instead of re-dispatching every
  // statement per violating row — on dirty batches most of pass 2's work.
  const size_t n_stmts = statements_.size();
  const size_t words = rowmask::Words(rows);
  thread_local std::vector<uint64_t> stmt_scratch;
  uint64_t* stmt_masks = nullptr;
  if (n_stmts > 1) {
    stmt_scratch.assign(n_stmts * words, 0);
    stmt_masks = stmt_scratch.data();
  }
  for (size_t s = 0; s < n_stmts; ++s) {
    uint64_t* dst =
        stmt_masks != nullptr ? stmt_masks + s * words : out->violated.data();
    MarkViolations(statements_[s], batch, dst);
  }
  if (stmt_masks != nullptr) {
    uint64_t* violated = out->violated.data();
    for (size_t s = 0; s < n_stmts; ++s) {
      const uint64_t* src = stmt_masks + s * words;
      for (size_t w = 0; w < words; ++w) violated[w] |= src[w];
    }
  }
  if (out->any_fallback) {
    for (size_t w = 0; w < out->violated.size(); ++w) {
      out->violated[w] &= ~out->fallback[w];
    }
  }
  if (!AnyBit(out->violated)) {
    std::fill(out->offsets.begin(), out->offsets.end(), 0);
    return;
  }
  out->any_violation = true;

  // Pass 2: only violating rows (rare) get their violation list built, row
  // ascending then statement ascending — the Interpreter::Check order. CSR
  // offsets between violating rows all carry the same running total, so
  // they are written run-at-a-time instead of with a loop-carried prefix
  // sum over every row.
  int32_t* offsets = out->offsets.data();
  offsets[0] = 0;
  int32_t cum = 0;
  int64_t filled = 0;  // offsets[0..filled] are final.
  for (int64_t r = rowmask::NextSet(out->violated, 0, rows); r >= 0;
       r = rowmask::NextSet(out->violated, r + 1, rows)) {
    size_t before = out->violations.size();
    for (size_t s = 0; s < n_stmts; ++s) {
      if (stmt_masks != nullptr &&
          ((stmt_masks[s * words + (static_cast<size_t>(r) >> 6)] >>
            (r & 63)) &
           1) == 0) {
        continue;
      }
      const CompiledStatement& stmt = statements_[s];
      int32_t b = FireBranch(stmt, batch, r);
      if (b < 0) continue;
      AttrIndex target = stmt.targets[static_cast<size_t>(b)];
      ValueId actual = batch.column(target)[r];
      ValueId expected = stmt.assignments[static_cast<size_t>(b)];
      if (actual == expected) continue;
      Violation v;
      v.statement_index = static_cast<int32_t>(s);
      v.branch_index = b;
      v.attribute = target;
      v.expected = expected;
      v.actual = actual;
      out->violations.push_back(v);
    }
    std::fill(offsets + filled + 1, offsets + r + 1, cum);
    cum += static_cast<int32_t>(out->violations.size() - before);
    offsets[r + 1] = cum;
    filled = r + 1;
  }
  std::fill(offsets + filled + 1, offsets + rows + 1, cum);
}

void CompiledProgram::EvaluateTable(const Table& table, RowIndex begin,
                                    int64_t count, BatchVerdict* out) const {
  Evaluate(ColumnBatch::FromTable(table, begin, count), out);
}

void CompiledProgram::EvaluateRows(const std::vector<Row>& rows, size_t begin,
                                   size_t count, BatchVerdict* out) const {
  Evaluate(ColumnBatch::FromRows(rows, begin, count,
                                 static_cast<int32_t>(min_row_width_),
                                 referenced_attributes_),
           out);
}

}  // namespace core
}  // namespace guardrail
