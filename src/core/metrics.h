#ifndef GUARDRAIL_CORE_METRICS_H_
#define GUARDRAIL_CORE_METRICS_H_

#include <cstdint>

#include "core/ast.h"
#include "table/table.h"

namespace guardrail {
namespace core {

/// Support and loss of a branch on a dataset (paper Eqn. 2): support is
/// |D^b|, the rows matching the branch condition; loss counts matching rows
/// whose dependent value disagrees with the branch assignment.
struct BranchStats {
  int64_t support = 0;
  int64_t loss = 0;
};

BranchStats ComputeBranchStats(const Branch& branch, const Table& data);

/// L(b, D) of Eqn. 2.
int64_t BranchLoss(const Branch& branch, const Table& data);

/// cov(b, D) = |D^b| / |D| (Eqn. 5).
double BranchCoverage(const Branch& branch, const Table& data);

/// cov(s, D) = sum of branch coverages (Eqn. 6). With disjoint equality
/// conditions this equals |D^s| / |D|.
double StatementCoverage(const Statement& stmt, const Table& data);

/// Program coverage: average statement coverage (Sec. 2.2). Empty programs
/// have coverage 0.
double ProgramCoverage(const Program& program, const Table& data);

/// Total loss of a statement / program: sum of branch losses.
int64_t StatementLoss(const Statement& stmt, const Table& data);
int64_t ProgramLoss(const Program& program, const Table& data);

/// Branch-level epsilon-validity (Eqn. 3): L(b, D) <= |D^b| * epsilon.
bool IsBranchEpsilonValid(const Branch& branch, const Table& data,
                          double epsilon);

/// Statement / program epsilon-validity (Eqns. 3-4): every branch valid.
bool IsStatementEpsilonValid(const Statement& stmt, const Table& data,
                             double epsilon);
bool IsProgramEpsilonValid(const Program& program, const Table& data,
                           double epsilon);

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_METRICS_H_
