#ifndef GUARDRAIL_CORE_INTERPRETER_H_
#define GUARDRAIL_CORE_INTERPRETER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/ast.h"
#include "table/table.h"

namespace guardrail {
namespace core {

/// A detected constraint violation: executing the program assigned
/// `expected` to `attribute`, but the row carries `actual` (Eqn. 1).
struct Violation {
  int32_t statement_index = 0;
  int32_t branch_index = 0;
  AttrIndex attribute = 0;
  ValueId expected = kNullValue;
  ValueId actual = kNullValue;
};

/// Denotational semantics of the DSL (paper Fig. 2): [[p]]_t executes each
/// statement in order; within a statement the first branch whose condition
/// matches fires and assigns the dependent attribute.
class Interpreter {
 public:
  explicit Interpreter(const Program* program);

  /// [[p]]_t — returns the updated state t'. The input row is evaluated
  /// against the *original* state for condition matching of each statement
  /// (statements describe the DGP per-attribute; determinant values are the
  /// observed ones), while assignments accumulate into the output.
  Row Execute(const Row& row) const;

  /// The error-detection assertion of Eqn. 1: true iff [[p]]_t == t.
  bool Satisfies(const Row& row) const;

  /// All violations of `row`, one per statement whose fired branch
  /// disagrees with the observed dependent value. The row must be as wide as
  /// the program's schema; Check assumes it (callers on trusted rows).
  std::vector<Violation> Check(const Row& row) const;

  /// Fallible Check for untrusted rows: rejects rows narrower than the
  /// attributes the program references (InvalidArgument) instead of reading
  /// out of bounds, and carries the "interpreter.check" failpoint.
  Result<std::vector<Violation>> CheckedCheck(const Row& row) const;

  /// Widest attribute index referenced by any statement, plus one; the
  /// minimum row width CheckedCheck accepts. 0 for an empty program.
  size_t MinRowWidth() const;

  /// Index of the first branch of `stmt` matching `row`, or -1.
  static int32_t MatchBranch(const Statement& stmt, const Row& row);

 private:
  const Program* program_;
  size_t min_row_width_ = 0;
};

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_INTERPRETER_H_
