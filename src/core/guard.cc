#include "core/guard.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/state.h"

namespace guardrail {
namespace core {

namespace {

/// Rows per compiled-evaluator chunk in table-level calls: small enough to
/// keep verdict scratch in cache, large enough to amortize the mask setup.
constexpr int64_t kGuardBatchRows = 4096;

}  // namespace

const char* ErrorPolicyName(ErrorPolicy policy) {
  switch (policy) {
    case ErrorPolicy::kRaise:
      return "raise";
    case ErrorPolicy::kIgnore:
      return "ignore";
    case ErrorPolicy::kCoerce:
      return "coerce";
    case ErrorPolicy::kRectify:
      return "rectify";
  }
  return "unknown";
}

void ApplyRectifyRepair(const Program& program, const Violation& violation,
                        Row* row) {
  const Statement& stmt =
      program.statements[static_cast<size_t>(violation.statement_index)];
  const Branch& fired =
      stmt.branches[static_cast<size_t>(violation.branch_index)];

  // Deviations the training data itself exhibited under this condition are
  // the epsilon-tolerated variation of the DGP, not errors; leave them.
  if (std::binary_search(fired.tolerated_values.begin(),
                         fired.tolerated_values.end(), violation.actual)) {
    return;
  }

  // Hypothesis A — the dependent cell is the error: repair it to the fired
  // branch's assignment. Plausibility = the support of the observed
  // determinant combination.
  int64_t best_score = fired.support;
  AttrIndex repair_attr = fired.target;
  ValueId repair_value = fired.assignment;

  // Hypotheses B_d — determinant d is the error: some sibling branch that
  // differs from the fired one in exactly the d-th equality assigns exactly
  // the observed dependent value. Plausibility = that branch's support.
  // Ties favor A (the paper's plain dependent repair).
  for (const Branch& sibling : stmt.branches) {
    if (sibling.assignment != violation.actual) continue;
    if (sibling.condition.equalities.size() !=
        fired.condition.equalities.size()) {
      continue;
    }
    int differing = -1;
    bool comparable = true;
    for (size_t i = 0; i < sibling.condition.equalities.size(); ++i) {
      const auto& [attr_s, value_s] = sibling.condition.equalities[i];
      const auto& [attr_f, value_f] = fired.condition.equalities[i];
      if (attr_s != attr_f) {
        comparable = false;
        break;
      }
      if (value_s != value_f) {
        if (differing >= 0) {
          comparable = false;  // More than one corrupted determinant.
          break;
        }
        differing = static_cast<int>(i);
      }
    }
    if (!comparable || differing < 0) continue;
    if (sibling.support > best_score) {
      best_score = sibling.support;
      repair_attr = sibling.condition.equalities[static_cast<size_t>(differing)].first;
      repair_value =
          sibling.condition.equalities[static_cast<size_t>(differing)].second;
    }
  }
  (*row)[static_cast<size_t>(repair_attr)] = repair_value;
}

const CompiledProgram& Guard::compiled() const {
  std::call_once(compile_once_, [this] {
    compiled_ = std::make_unique<const CompiledProgram>(
        CompiledProgram::Compile(*program_));
  });
  return *compiled_;
}

Result<Row> Guard::ProcessRow(const Row& row, ErrorPolicy policy) const {
  // This is the serving hot path: counters only (one relaxed load + branch
  // per macro when telemetry is off), never spans or logs per row.
  GUARDRAIL_COUNTER_INC("guard.rows_checked");
  GUARDRAIL_ASSIGN_OR_RETURN(std::vector<Violation> violations,
                             interpreter_.CheckedCheck(row));
  GUARDRAIL_HISTOGRAM_RECORD("guard.violations_per_row",
                             static_cast<int64_t>(violations.size()));
  if (violations.empty()) return row;
  switch (policy) {
    case ErrorPolicy::kRaise:
      GUARDRAIL_COUNTER_INC("guard.rows_raised");
      return Status::ConstraintViolation(
          "row violates " + std::to_string(violations.size()) +
          " integrity constraint(s)");
    case ErrorPolicy::kIgnore:
      return row;
    case ErrorPolicy::kCoerce: {
      GUARDRAIL_COUNTER_INC("guard.rows_coerced");
      Row out = row;
      for (const auto& v : violations) {
        out[static_cast<size_t>(v.attribute)] = kNullValue;
      }
      return out;
    }
    case ErrorPolicy::kRectify: {
      GUARDRAIL_COUNTER_INC("guard.rows_rectified");
      Row out = row;
      for (const auto& v : violations) ApplyRectifyRepair(*program_, v, &out);
      return out;
    }
  }
  return row;
}

bool Guard::UseBatch(const Table& table, GuardEvalMode mode) const {
  if (mode == GuardEvalMode::kInterpreter) return false;
  // A table narrower than the program's reach cannot take the batch path at
  // all (every row needs the interpreter's width error), and an armed
  // "interpreter.check" failpoint must see its per-row trip sequence.
  if (static_cast<size_t>(table.num_columns()) < interpreter_.MinRowWidth()) {
    return false;
  }
  if (mode == GuardEvalMode::kCompiled) return true;
  return !FailpointRegistry::Instance().IsArmed("interpreter.check");
}

GuardOutcome Guard::ProcessTable(Table* table, ErrorPolicy policy,
                                 GuardEvalMode mode) const {
  return UseBatch(*table, mode) ? ProcessTableBatched(table, policy)
                                : ProcessTableScalar(table, policy);
}

GuardOutcome Guard::ProcessTableScalar(Table* table,
                                       ErrorPolicy policy) const {
  GuardOutcome outcome;
  outcome.flagged.assign(static_cast<size_t>(table->num_rows()), false);
  // Table rows are uniformly schema-wide, so CheckedCheck's per-row width
  // compare is hoisted to this single bound; narrow tables keep the old
  // per-row CheckedCheck to preserve its error and failpoint ordering.
  const bool wide_enough = static_cast<size_t>(table->num_columns()) >=
                           interpreter_.MinRowWidth();
  for (RowIndex r = 0; r < table->num_rows(); ++r) {
    Row row = table->GetRow(r);
    Result<std::vector<Violation>> checked =
        wide_enough ? [&]() -> Result<std::vector<Violation>> {
          GUARDRAIL_FAILPOINT("interpreter.check");
          return interpreter_.Check(row);
        }()
                    : interpreter_.CheckedCheck(row);
    ++outcome.rows_checked;
    GUARDRAIL_COUNTER_INC("guard.rows_checked");
    if (checked.ok()) {
      GUARDRAIL_HISTOGRAM_RECORD("guard.violations_per_row",
                                 static_cast<int64_t>(checked->size()));
    }
    if (!checked.ok()) {
      ++outcome.rows_failed;
      if (outcome.first_error.ok()) outcome.first_error = checked.status();
      // kRaise aborts on the first problem of any kind; the lenient
      // policies isolate the failing row and keep the batch alive.
      if (policy == ErrorPolicy::kRaise) return outcome;
      continue;
    }
    const std::vector<Violation>& violations = *checked;
    if (violations.empty()) continue;
    ++outcome.rows_flagged;
    outcome.flagged[static_cast<size_t>(r)] = true;
    switch (policy) {
      case ErrorPolicy::kRaise:
        GUARDRAIL_COUNTER_INC("guard.rows_raised");
        return outcome;
      case ErrorPolicy::kIgnore:
        break;
      case ErrorPolicy::kCoerce:
        GUARDRAIL_COUNTER_INC("guard.rows_coerced");
        for (const auto& v : violations) {
          table->Set(r, v.attribute, kNullValue);
          ++outcome.cells_repaired;
        }
        break;
      case ErrorPolicy::kRectify: {
        GUARDRAIL_COUNTER_INC("guard.rows_rectified");
        for (const auto& v : violations) ApplyRectifyRepair(*program_, v, &row);
        for (AttrIndex c = 0; c < table->num_columns(); ++c) {
          if (table->Get(r, c) != row[static_cast<size_t>(c)]) {
            table->Set(r, c, row[static_cast<size_t>(c)]);
            ++outcome.cells_repaired;
          }
        }
        break;
      }
    }
  }
  return outcome;
}

GuardOutcome Guard::ProcessTableBatched(Table* table,
                                        ErrorPolicy policy) const {
  const CompiledProgram& prog = compiled();
  GuardOutcome outcome;
  outcome.flagged.assign(static_cast<size_t>(table->num_rows()), false);
  BatchVerdict verdict;
  Row row;
  for (RowIndex begin = 0; begin < table->num_rows();
       begin += kGuardBatchRows) {
    const int64_t count =
        std::min<int64_t>(kGuardBatchRows, table->num_rows() - begin);
    prog.EvaluateTable(*table, begin, count, &verdict);
    // Table rows can never be narrow, so no fallback rows here;
    // rows_failed stays 0 exactly as the scalar path would report.
    int64_t checked = count;
    int64_t raise_at = -1;  // Chunk-local index kRaise stops at.
    if (policy == ErrorPolicy::kRaise && verdict.any_violation) {
      raise_at = rowmask::NextSet(verdict.violated, 0, count);
      checked = raise_at + 1;
    }
    outcome.rows_checked += checked;
    GUARDRAIL_COUNTER_ADD("guard.rows_checked", checked);
    if (telemetry::MetricsEnabled()) {
      for (int64_t r = 0; r < checked; ++r) {
        GUARDRAIL_HISTOGRAM_RECORD("guard.violations_per_row",
                                   verdict.ViolationCount(r));
      }
    }
    if (raise_at >= 0) {
      ++outcome.rows_flagged;
      outcome.flagged[static_cast<size_t>(begin + raise_at)] = true;
      GUARDRAIL_COUNTER_INC("guard.rows_raised");
      return outcome;
    }
    if (!verdict.any_violation) continue;
    for (int64_t r = rowmask::NextSet(verdict.violated, 0, count); r >= 0;
         r = rowmask::NextSet(verdict.violated, r + 1, count)) {
      const RowIndex global = begin + r;
      ++outcome.rows_flagged;
      outcome.flagged[static_cast<size_t>(global)] = true;
      switch (policy) {
        case ErrorPolicy::kRaise:
        case ErrorPolicy::kIgnore:
          break;
        case ErrorPolicy::kCoerce:
          GUARDRAIL_COUNTER_INC("guard.rows_coerced");
          for (const Violation* v = verdict.ViolationsBegin(r);
               v != verdict.ViolationsEnd(r); ++v) {
            table->Set(global, v->attribute, kNullValue);
            ++outcome.cells_repaired;
          }
          break;
        case ErrorPolicy::kRectify: {
          GUARDRAIL_COUNTER_INC("guard.rows_rectified");
          row = table->GetRow(global);
          for (const Violation* v = verdict.ViolationsBegin(r);
               v != verdict.ViolationsEnd(r); ++v) {
            ApplyRectifyRepair(*program_, *v, &row);
          }
          for (AttrIndex c = 0; c < table->num_columns(); ++c) {
            if (table->Get(global, c) != row[static_cast<size_t>(c)]) {
              table->Set(global, c, row[static_cast<size_t>(c)]);
              ++outcome.cells_repaired;
            }
          }
          break;
        }
      }
    }
  }
  return outcome;
}

std::vector<bool> Guard::DetectViolations(const Table& table,
                                          GuardEvalMode mode) const {
  std::vector<bool> flags(static_cast<size_t>(table.num_rows()), false);
  if (UseBatch(table, mode)) {
    const CompiledProgram& prog = compiled();
    BatchVerdict verdict;
    for (RowIndex begin = 0; begin < table.num_rows();
         begin += kGuardBatchRows) {
      const int64_t count =
          std::min<int64_t>(kGuardBatchRows, table.num_rows() - begin);
      prog.EvaluateTable(table, begin, count, &verdict);
      if (!verdict.any_violation) continue;
      for (int64_t r = rowmask::NextSet(verdict.violated, 0, count); r >= 0;
           r = rowmask::NextSet(verdict.violated, r + 1, count)) {
        flags[static_cast<size_t>(begin + r)] = true;
      }
    }
    return flags;
  }
  for (RowIndex r = 0; r < table.num_rows(); ++r) {
    flags[static_cast<size_t>(r)] = !interpreter_.Satisfies(table.GetRow(r));
  }
  return flags;
}

}  // namespace core
}  // namespace guardrail
