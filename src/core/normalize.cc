#include "core/normalize.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace guardrail {
namespace core {

namespace {

// True when every branch of `stmt` conditions on the full determinant set —
// conditions are then mutually exclusive and branch order is irrelevant.
bool BranchesAreDisjoint(const Statement& stmt) {
  for (const auto& branch : stmt.branches) {
    if (branch.condition.equalities.size() != stmt.determinants.size()) {
      return false;
    }
  }
  return true;
}

// Total order on statements: (dependent, determinants, branch list). The
// branch-level tiebreak keeps the order well-defined for any input — a
// comparator with ties would leave std::sort free to order equal-header
// statements by chance, and program-level order must be reproducible
// (minimization certificates and golden files hash the printed text).
bool CanonicalStatementLess(const Statement& a, const Statement& b) {
  if (a.dependent != b.dependent) return a.dependent < b.dependent;
  if (a.determinants != b.determinants) return a.determinants < b.determinants;
  auto branch_key = [](const Branch& x) {
    return std::tie(x.condition.equalities, x.assignment, x.target);
  };
  return std::lexicographical_compare(
      a.branches.begin(), a.branches.end(), b.branches.begin(),
      b.branches.end(), [&](const Branch& x, const Branch& y) {
        return branch_key(x) < branch_key(y);
      });
}

}  // namespace

void CanonicalizeProgramOrder(Program* program) {
  for (auto& stmt : program->statements) {
    std::sort(stmt.determinants.begin(), stmt.determinants.end());
    for (auto& branch : stmt.branches) {
      std::sort(branch.condition.equalities.begin(),
                branch.condition.equalities.end());
    }
  }
  std::sort(program->statements.begin(), program->statements.end(),
            CanonicalStatementLess);
}

NormalizeStats NormalizeProgram(Program* program) {
  NormalizeStats stats;

  // Canonical attribute order inside headers and conditions. Determinant
  // sets and conjunctions are order-free semantically, and the parser emits
  // them sorted — sorting here makes normalize->print->parse a fixpoint and
  // lets the header merge below unify statements that differ only in GIVEN
  // order.
  for (auto& stmt : program->statements) {
    std::sort(stmt.determinants.begin(), stmt.determinants.end());
    for (auto& branch : stmt.branches) {
      std::sort(branch.condition.equalities.begin(),
                branch.condition.equalities.end());
    }
  }

  // Merge statements with identical headers, preserving first-seen order of
  // headers and branch order within.
  std::map<std::pair<std::vector<AttrIndex>, AttrIndex>, size_t> header_index;
  std::vector<Statement> merged;
  for (auto& stmt : program->statements) {
    auto key = std::make_pair(stmt.determinants, stmt.dependent);
    auto it = header_index.find(key);
    if (it == header_index.end()) {
      header_index.emplace(std::move(key), merged.size());
      merged.push_back(std::move(stmt));
    } else {
      Statement& target = merged[it->second];
      for (auto& branch : stmt.branches) {
        target.branches.push_back(std::move(branch));
      }
      ++stats.statements_merged;
    }
  }

  // Remove branches dead under first-match-wins (duplicate conditions).
  for (auto& stmt : merged) {
    std::set<std::vector<std::pair<AttrIndex, ValueId>>> seen;
    std::vector<Branch> kept;
    for (auto& branch : stmt.branches) {
      if (!seen.insert(branch.condition.equalities).second) {
        // Identical condition as an earlier branch: unreachable.
        bool identical_effect = false;
        for (const auto& prior : kept) {
          if (prior.condition == branch.condition) {
            identical_effect = prior.assignment == branch.assignment;
            break;
          }
        }
        if (identical_effect) {
          ++stats.duplicate_branches_removed;
        } else {
          ++stats.dead_branches_removed;
        }
        continue;
      }
      kept.push_back(std::move(branch));
    }
    stmt.branches = std::move(kept);
  }

  // Deterministic branch order where semantics permit.
  for (auto& stmt : merged) {
    if (BranchesAreDisjoint(stmt)) {
      std::sort(stmt.branches.begin(), stmt.branches.end(),
                [](const Branch& a, const Branch& b) {
                  if (a.condition.equalities != b.condition.equalities) {
                    return a.condition.equalities < b.condition.equalities;
                  }
                  return a.assignment < b.assignment;
                });
    }
  }

  // Drop empty statements; order the rest canonically.
  std::vector<Statement> kept;
  for (auto& stmt : merged) {
    if (stmt.branches.empty()) {
      ++stats.empty_statements_removed;
    } else {
      kept.push_back(std::move(stmt));
    }
  }
  // Header keys are unique after the merge above, but CanonicalStatementLess
  // stays well-defined for any input via its branch-level tiebreak.
  std::sort(kept.begin(), kept.end(), CanonicalStatementLess);
  program->statements = std::move(kept);
  return stats;
}

std::string ProgramSummary(const Program& program, const Schema& schema) {
  std::set<AttrIndex> covered;
  for (const auto& stmt : program.statements) covered.insert(stmt.dependent);
  std::string out = std::to_string(program.statements.size()) +
                    " statement(s), " + std::to_string(program.NumBranches()) +
                    " branch(es), constraining {";
  bool first = true;
  for (AttrIndex a : covered) {
    if (!first) out += ", ";
    out += schema.attribute(a).name();
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace core
}  // namespace guardrail
