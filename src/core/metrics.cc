#include "core/metrics.h"

namespace guardrail {
namespace core {

namespace {

// Evaluates a condition against table storage without materializing rows.
bool ConditionMatchesAt(const Condition& condition, const Table& data,
                        RowIndex row) {
  for (const auto& [attr, value] : condition.equalities) {
    if (data.Get(row, attr) != value) return false;
  }
  return true;
}

}  // namespace

BranchStats ComputeBranchStats(const Branch& branch, const Table& data) {
  BranchStats stats;
  for (RowIndex r = 0; r < data.num_rows(); ++r) {
    if (!ConditionMatchesAt(branch.condition, data, r)) continue;
    ++stats.support;
    if (data.Get(r, branch.target) != branch.assignment) ++stats.loss;
  }
  return stats;
}

int64_t BranchLoss(const Branch& branch, const Table& data) {
  return ComputeBranchStats(branch, data).loss;
}

double BranchCoverage(const Branch& branch, const Table& data) {
  if (data.num_rows() == 0) return 0.0;
  return static_cast<double>(ComputeBranchStats(branch, data).support) /
         static_cast<double>(data.num_rows());
}

double StatementCoverage(const Statement& stmt, const Table& data) {
  double cov = 0.0;
  for (const auto& branch : stmt.branches) {
    cov += BranchCoverage(branch, data);
  }
  return cov;
}

double ProgramCoverage(const Program& program, const Table& data) {
  if (program.statements.empty()) return 0.0;
  double total = 0.0;
  for (const auto& stmt : program.statements) {
    total += StatementCoverage(stmt, data);
  }
  return total / static_cast<double>(program.statements.size());
}

int64_t StatementLoss(const Statement& stmt, const Table& data) {
  int64_t loss = 0;
  for (const auto& branch : stmt.branches) loss += BranchLoss(branch, data);
  return loss;
}

int64_t ProgramLoss(const Program& program, const Table& data) {
  int64_t loss = 0;
  for (const auto& stmt : program.statements) loss += StatementLoss(stmt, data);
  return loss;
}

bool IsBranchEpsilonValid(const Branch& branch, const Table& data,
                          double epsilon) {
  BranchStats stats = ComputeBranchStats(branch, data);
  return static_cast<double>(stats.loss) <=
         static_cast<double>(stats.support) * epsilon;
}

bool IsStatementEpsilonValid(const Statement& stmt, const Table& data,
                             double epsilon) {
  for (const auto& branch : stmt.branches) {
    if (!IsBranchEpsilonValid(branch, data, epsilon)) return false;
  }
  return true;
}

bool IsProgramEpsilonValid(const Program& program, const Table& data,
                           double epsilon) {
  for (const auto& stmt : program.statements) {
    if (!IsStatementEpsilonValid(stmt, data, epsilon)) return false;
  }
  return true;
}

}  // namespace core
}  // namespace guardrail
