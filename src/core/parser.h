#ifndef GUARDRAIL_CORE_PARSER_H_
#define GUARDRAIL_CORE_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "core/ast.h"
#include "table/schema.h"

namespace guardrail {
namespace core {

/// Parses the DSL surface syntax (see printer.h) into a resolved Program.
///
/// Attribute names must exist in `schema`. Literal values are resolved to
/// dictionary codes, extending the attribute domain when the value has not
/// been seen (a constraint may lawfully mention a value absent from the
/// current sample). Keywords (GIVEN/ON/HAVING/IF/THEN/AND) are
/// case-insensitive; attribute names are bare identifiers
/// ([A-Za-z_][A-Za-z0-9_.-]*) and literals are single-quoted strings, bare
/// numbers, or true/false.
Result<Program> ParseProgram(std::string_view text, Schema* schema);

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_PARSER_H_
