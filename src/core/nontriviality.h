#ifndef GUARDRAIL_CORE_NONTRIVIALITY_H_
#define GUARDRAIL_CORE_NONTRIVIALITY_H_

#include "core/sketch.h"
#include "pgm/ci_test.h"
#include "table/table.h"

namespace guardrail {
namespace core {

/// Empirical checks of the sketch-quality criteria of paper Sec. 4.1,
/// implemented with the same G-squared machinery that drives PC.
class NonTrivialityChecker {
 public:
  NonTrivialityChecker(const Table* data, pgm::GSquareTest::Options options);

  /// Local non-triviality (Def. 4.1): the dependent attribute is marginally
  /// dependent on its determinant set. Tested pairwise: dependent vs. each
  /// determinant; any detected dependence qualifies.
  bool IsLocallyNonTrivial(const StatementSketch& sketch) const;

  /// Global non-triviality (Def. 4.2), approximated empirically: for every
  /// other statement sketch s', the dependence of this sketch survives
  /// conditioning on s''s determinant set (no vanishing correlation,
  /// cf. Example 4.1).
  bool IsGloballyNonTrivial(const ProgramSketch& program,
                            const StatementSketch& sketch) const;

  /// Whole-program GNT: every member statement passes.
  bool IsGloballyNonTrivial(const ProgramSketch& program) const;

 private:
  bool DependentGiven(AttrIndex x, AttrIndex y,
                      const std::vector<int32_t>& z) const;

  const Table* data_;
  pgm::EncodedData encoded_;
  pgm::GSquareTest test_;
};

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_NONTRIVIALITY_H_
