#ifndef GUARDRAIL_CORE_SERIALIZATION_H_
#define GUARDRAIL_CORE_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "core/ast.h"
#include "table/schema.h"

namespace guardrail {
namespace core {

/// Constraint programs persist as the DSL's surface syntax plus a small
/// header — reviewable, diffable artifacts:
///
///   # guardrail-program v1
///   # <free-form comment lines>
///   GIVEN zip ON city HAVING
///     IF zip = '94704' THEN city <- 'Berkeley';
///
/// Lines starting with '#' are comments. LoadProgram resolves attribute
/// names against `schema` (extending value domains for unseen literals,
/// like the parser).

/// Serializes `program` with the version header and an optional comment.
std::string SerializeProgram(const Program& program, const Schema& schema,
                             const std::string& comment = "");

/// Parses text produced by SerializeProgram (or hand-written DSL with the
/// header). Rejects unknown format versions.
Result<Program> DeserializeProgram(const std::string& text, Schema* schema);

/// File convenience wrappers.
Status SaveProgramToFile(const std::string& path, const Program& program,
                         const Schema& schema,
                         const std::string& comment = "");
Result<Program> LoadProgramFromFile(const std::string& path, Schema* schema);

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_SERIALIZATION_H_
