#include "core/sketch_filler.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/telemetry/metrics.h"

namespace guardrail {
namespace core {

namespace {

/// Per-condition accumulator: the dependent-value histogram of the rows
/// matching one determinant combination.
struct ConditionGroup {
  std::vector<ValueId> determinant_values;  // Aligned with the determinants.
  std::unordered_map<ValueId, int64_t> dependent_histogram;
  int64_t support = 0;
};

}  // namespace

std::optional<Statement> FillStatementSketch(const StatementSketch& sketch,
                                             const Table& data,
                                             const FillOptions& options) {
  Result<std::optional<Statement>> filled =
      FillStatementSketch(sketch, data, options, CancellationToken::Never());
  // Infallible with an infinite budget.
  return std::move(filled).value();
}

Result<std::optional<Statement>> FillStatementSketch(
    const StatementSketch& sketch, const Table& data,
    const FillOptions& options, const CancellationToken& cancel) {
  GUARDRAIL_CHECK(!sketch.determinants.empty());
  DeadlineChecker deadline(&cancel, /*stride=*/1024);
  // One pass over the data groups rows by their determinant combination —
  // this materializes exactly the warranted conditions comb(det) of
  // Alg. 1 line 11 (the Cartesian product restricted to observed support).
  std::unordered_map<uint64_t, ConditionGroup> groups;
  std::vector<uint64_t> radices;
  radices.reserve(sketch.determinants.size());
  bool overflow = false;
  uint64_t space = 1;
  for (AttrIndex a : sketch.determinants) {
    uint64_t card = static_cast<uint64_t>(
        std::max(1, data.schema().attribute(a).domain_size()));
    radices.push_back(card);
    if (space > (1ULL << 62) / card) overflow = true;
    space *= card;
  }

  std::vector<ValueId> combo(sketch.determinants.size());
  for (RowIndex r = 0; r < data.num_rows(); ++r) {
    GUARDRAIL_RETURN_NOT_OK(deadline.Check("sketch fill"));
    bool has_null = false;
    uint64_t key = overflow ? 1469598103934665603ULL : 0;
    for (size_t i = 0; i < sketch.determinants.size(); ++i) {
      ValueId v = data.Get(r, sketch.determinants[i]);
      if (v == kNullValue) {
        has_null = true;
        break;
      }
      combo[i] = v;
      if (overflow) {
        key = (key ^ static_cast<uint64_t>(v + 1)) * 1099511628211ULL;
      } else {
        key = key * radices[i] + static_cast<uint64_t>(v);
      }
    }
    if (has_null) continue;
    ValueId dep = data.Get(r, sketch.dependent);
    if (dep == kNullValue) continue;
    ConditionGroup& group = groups[key];
    if (group.support == 0) group.determinant_values = combo;
    ++group.dependent_histogram[dep];
    ++group.support;
  }

  // Order groups by descending support so the cap keeps the highest-impact
  // conditions (ties by determinant values for determinism).
  std::vector<const ConditionGroup*> ordered;
  ordered.reserve(groups.size());
  for (const auto& [key, group] : groups) ordered.push_back(&group);
  std::sort(ordered.begin(), ordered.end(),
            [](const ConditionGroup* a, const ConditionGroup* b) {
              if (a->support != b->support) return a->support > b->support;
              return a->determinant_values < b->determinant_values;
            });
  if (static_cast<int64_t>(ordered.size()) >
      options.max_conditions_per_statement) {
    ordered.resize(static_cast<size_t>(options.max_conditions_per_statement));
  }

  Statement stmt;
  stmt.determinants = sketch.determinants;
  stmt.dependent = sketch.dependent;
  for (const ConditionGroup* group : ordered) {
    if (group->support < options.min_branch_support) continue;
    // arg-min-loss literal == the mode of the dependent histogram
    // (Alg. 1 line 14). Ties broken toward the smaller code for determinism.
    ValueId best_value = kNullValue;
    int64_t best_count = -1;
    for (const auto& [value, count] : group->dependent_histogram) {
      if (count > best_count ||
          (count == best_count && value < best_value)) {
        best_value = value;
        best_count = count;
      }
    }
    int64_t loss = group->support - best_count;
    // Epsilon-validity check (Alg. 1 line 15).
    if (static_cast<double>(loss) >
        static_cast<double>(group->support) * options.epsilon) {
      continue;
    }
    Branch branch;
    branch.target = sketch.dependent;
    branch.assignment = best_value;
    branch.support = group->support;
    for (const auto& [value, count] : group->dependent_histogram) {
      branch.tolerated_values.push_back(value);
    }
    std::sort(branch.tolerated_values.begin(), branch.tolerated_values.end());
    for (size_t i = 0; i < sketch.determinants.size(); ++i) {
      branch.condition.equalities.emplace_back(sketch.determinants[i],
                                               group->determinant_values[i]);
    }
    std::sort(branch.condition.equalities.begin(),
              branch.condition.equalities.end());
    stmt.branches.push_back(std::move(branch));
  }

  if (stmt.branches.empty()) {
    GUARDRAIL_COUNTER_INC("sketch_filler.statements_bottom");
    return std::optional<Statement>();
  }
  GUARDRAIL_COUNTER_INC("sketch_filler.statements_filled");
  return std::optional<Statement>(std::move(stmt));
}

Program FillProgramSketch(const ProgramSketch& sketch, const Table& data,
                          const FillOptions& options) {
  Program program;
  for (const auto& stmt_sketch : sketch.statements) {
    std::optional<Statement> stmt =
        FillStatementSketch(stmt_sketch, data, options);
    if (stmt.has_value()) program.statements.push_back(std::move(*stmt));
  }
  return program;
}

}  // namespace core
}  // namespace guardrail
