#include "core/sketch_filler.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/telemetry/metrics.h"
#include "common/thread_pool.h"

namespace guardrail {
namespace core {

namespace {

/// Per-condition accumulator: the dependent-value histogram of the rows
/// matching one determinant combination.
struct ConditionGroup {
  std::vector<ValueId> determinant_values;  // Aligned with the determinants.
  std::unordered_map<ValueId, int64_t> dependent_histogram;
  int64_t support = 0;
};

/// Rows per scan shard. The shard count is a pure function of the row count
/// (never of the thread count), so the shard-merge order — and with it the
/// grouped result — is identical whether 1 or 16 threads execute the scan.
constexpr int64_t kFillShardRows = 8192;

/// Groups rows [begin, end) by their determinant combination into `groups`.
/// Key material (radices / FNV overflow fallback) is precomputed by the
/// caller and shared read-only across shards.
Status ScanRowsIntoGroups(const StatementSketch& sketch, const Table& data,
                          const std::vector<uint64_t>& radices, bool overflow,
                          int64_t begin, int64_t end,
                          const CancellationToken& cancel,
                          std::unordered_map<uint64_t, ConditionGroup>* groups) {
  DeadlineChecker deadline(&cancel, /*stride=*/1024);
  std::vector<ValueId> combo(sketch.determinants.size());
  for (RowIndex r = begin; r < end; ++r) {
    GUARDRAIL_RETURN_NOT_OK(deadline.Check("sketch fill"));
    bool has_null = false;
    uint64_t key = overflow ? 1469598103934665603ULL : 0;
    for (size_t i = 0; i < sketch.determinants.size(); ++i) {
      ValueId v = data.Get(r, sketch.determinants[i]);
      if (v == kNullValue) {
        has_null = true;
        break;
      }
      combo[i] = v;
      if (overflow) {
        key = (key ^ static_cast<uint64_t>(v + 1)) * 1099511628211ULL;
      } else {
        key = key * radices[i] + static_cast<uint64_t>(v);
      }
    }
    if (has_null) continue;
    ValueId dep = data.Get(r, sketch.dependent);
    if (dep == kNullValue) continue;
    ConditionGroup& group = (*groups)[key];
    if (group.support == 0) group.determinant_values = combo;
    ++group.dependent_histogram[dep];
    ++group.support;
  }
  return Status::OK();
}

}  // namespace

std::optional<Statement> FillStatementSketch(const StatementSketch& sketch,
                                             const Table& data,
                                             const FillOptions& options) {
  Result<std::optional<Statement>> filled =
      FillStatementSketch(sketch, data, options, CancellationToken::Never());
  // Infallible with an infinite budget.
  return std::move(filled).value();
}

Result<std::optional<Statement>> FillStatementSketch(
    const StatementSketch& sketch, const Table& data,
    const FillOptions& options, const CancellationToken& cancel) {
  GUARDRAIL_CHECK(!sketch.determinants.empty());
  // One pass over the data groups rows by their determinant combination —
  // this materializes exactly the warranted conditions comb(det) of
  // Alg. 1 line 11 (the Cartesian product restricted to observed support).
  std::vector<uint64_t> radices;
  radices.reserve(sketch.determinants.size());
  bool overflow = false;
  uint64_t space = 1;
  for (AttrIndex a : sketch.determinants) {
    uint64_t card = static_cast<uint64_t>(
        std::max(1, data.schema().attribute(a).domain_size()));
    radices.push_back(card);
    if (space > (1ULL << 62) / card) overflow = true;
    space *= card;
  }

  const int64_t num_rows = data.num_rows();
  const int64_t num_shards =
      std::max<int64_t>(1, (num_rows + kFillShardRows - 1) / kFillShardRows);
  std::unordered_map<uint64_t, ConditionGroup> groups;
  const int parallelism = ResolveThreads(options.num_threads);
  if (num_shards == 1 || parallelism <= 1) {
    GUARDRAIL_RETURN_NOT_OK(ScanRowsIntoGroups(
        sketch, data, radices, overflow, 0, num_rows, cancel, &groups));
  } else {
    // Sharded scan: each fixed row range groups into its own map, then the
    // maps merge serially in shard order. Counts add commutatively, so the
    // merged groups match the single-pass scan exactly.
    std::vector<std::unordered_map<uint64_t, ConditionGroup>> shard_groups(
        static_cast<size_t>(num_shards));
    std::vector<Status> shard_status(static_cast<size_t>(num_shards),
                                     Status::OK());
    ParallelForOptions pf;
    pf.max_parallelism = parallelism;
    pf.cancel = &cancel;
    Status pf_status = ParallelFor(
        &ThreadPool::Shared(), num_shards,
        [&](int64_t s) {
          int64_t begin = s * kFillShardRows;
          int64_t end = std::min(begin + kFillShardRows, num_rows);
          shard_status[static_cast<size_t>(s)] = ScanRowsIntoGroups(
              sketch, data, radices, overflow, begin, end, cancel,
              &shard_groups[static_cast<size_t>(s)]);
        },
        pf);
    GUARDRAIL_RETURN_NOT_OK(pf_status);
    for (const Status& status : shard_status) {
      GUARDRAIL_RETURN_NOT_OK(status);
    }
    for (auto& shard : shard_groups) {
      for (auto& [key, src] : shard) {
        ConditionGroup& dst = groups[key];
        if (dst.support == 0) {
          dst = std::move(src);
          continue;
        }
        for (const auto& [value, count] : src.dependent_histogram) {
          dst.dependent_histogram[value] += count;
        }
        dst.support += src.support;
      }
    }
  }

  // Order groups by descending support so the cap keeps the highest-impact
  // conditions (ties by determinant values for determinism).
  std::vector<const ConditionGroup*> ordered;
  ordered.reserve(groups.size());
  for (const auto& [key, group] : groups) ordered.push_back(&group);
  std::sort(ordered.begin(), ordered.end(),
            [](const ConditionGroup* a, const ConditionGroup* b) {
              if (a->support != b->support) return a->support > b->support;
              return a->determinant_values < b->determinant_values;
            });
  if (static_cast<int64_t>(ordered.size()) >
      options.max_conditions_per_statement) {
    ordered.resize(static_cast<size_t>(options.max_conditions_per_statement));
  }

  Statement stmt;
  stmt.determinants = sketch.determinants;
  stmt.dependent = sketch.dependent;
  for (const ConditionGroup* group : ordered) {
    if (group->support < options.min_branch_support) continue;
    // arg-min-loss literal == the mode of the dependent histogram
    // (Alg. 1 line 14). Ties broken toward the smaller code for determinism.
    ValueId best_value = kNullValue;
    int64_t best_count = -1;
    for (const auto& [value, count] : group->dependent_histogram) {
      if (count > best_count ||
          (count == best_count && value < best_value)) {
        best_value = value;
        best_count = count;
      }
    }
    int64_t loss = group->support - best_count;
    // Epsilon-validity check (Alg. 1 line 15).
    if (static_cast<double>(loss) >
        static_cast<double>(group->support) * options.epsilon) {
      continue;
    }
    Branch branch;
    branch.target = sketch.dependent;
    branch.assignment = best_value;
    branch.support = group->support;
    for (const auto& [value, count] : group->dependent_histogram) {
      branch.tolerated_values.push_back(value);
    }
    std::sort(branch.tolerated_values.begin(), branch.tolerated_values.end());
    for (size_t i = 0; i < sketch.determinants.size(); ++i) {
      branch.condition.equalities.emplace_back(sketch.determinants[i],
                                               group->determinant_values[i]);
    }
    std::sort(branch.condition.equalities.begin(),
              branch.condition.equalities.end());
    stmt.branches.push_back(std::move(branch));
  }

  if (stmt.branches.empty()) {
    GUARDRAIL_COUNTER_INC("sketch_filler.statements_bottom");
    return std::optional<Statement>();
  }
  GUARDRAIL_COUNTER_INC("sketch_filler.statements_filled");
  return std::optional<Statement>(std::move(stmt));
}

Program FillProgramSketch(const ProgramSketch& sketch, const Table& data,
                          const FillOptions& options) {
  Program program;
  for (const auto& stmt_sketch : sketch.statements) {
    std::optional<Statement> stmt =
        FillStatementSketch(stmt_sketch, data, options);
    if (stmt.has_value()) program.statements.push_back(std::move(*stmt));
  }
  return program;
}

}  // namespace core
}  // namespace guardrail
