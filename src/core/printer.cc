#include "core/printer.h"

namespace guardrail {
namespace core {

namespace {

// Single-quoted literal with backslash escapes for quote and backslash.
std::string QuoteLiteral(const std::string& value) {
  std::string out = "'";
  for (char c : value) {
    if (c == '\'' || c == '\\') out += '\\';
    out += c;
  }
  out += "'";
  return out;
}

std::string ValueText(const Schema& schema, AttrIndex attr, ValueId value) {
  return QuoteLiteral(schema.attribute(attr).label(value));
}

}  // namespace

std::string ToDsl(const Branch& branch, const Schema& schema) {
  std::string out = "IF ";
  for (size_t i = 0; i < branch.condition.equalities.size(); ++i) {
    const auto& [attr, value] = branch.condition.equalities[i];
    if (i > 0) out += " AND ";
    out += schema.attribute(attr).name() + " = " +
           ValueText(schema, attr, value);
  }
  if (branch.condition.equalities.empty()) out += "TRUE";
  out += " THEN " + schema.attribute(branch.target).name() + " <- " +
         ValueText(schema, branch.target, branch.assignment) + ";";
  return out;
}

std::string ToDsl(const Statement& stmt, const Schema& schema) {
  std::string out = "GIVEN ";
  for (size_t i = 0; i < stmt.determinants.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute(stmt.determinants[i]).name();
  }
  out += " ON " + schema.attribute(stmt.dependent).name() + " HAVING\n";
  for (const auto& branch : stmt.branches) {
    out += "  " + ToDsl(branch, schema) + "\n";
  }
  return out;
}

std::string ToDsl(const Program& program, const Schema& schema) {
  std::string out;
  for (const auto& stmt : program.statements) {
    out += ToDsl(stmt, schema);
  }
  return out;
}

}  // namespace core
}  // namespace guardrail
