#ifndef GUARDRAIL_CORE_BATCH_EVAL_H_
#define GUARDRAIL_CORE_BATCH_EVAL_H_

#include <cstdint>
#include <vector>

#include "core/ast.h"
#include "core/interpreter.h"
#include "table/column_batch.h"
#include "table/table.h"

namespace guardrail {
namespace core {

/// Per-batch verdicts of a CompiledProgram: which rows violate any
/// statement (as a 64-bit-word row bitmask), which rows the compiled path
/// could not evaluate (narrow rows — the caller must run those through
/// Interpreter::CheckedCheck), and the individual violations in CSR layout
/// so repairs touch only violating rows.
///
/// For every non-fallback row, Violations(row) is byte-identical — same
/// order, same fields — to Interpreter::Check on the materialized row; the
/// parity test (tests/batch_eval_test.cc) pins this.
struct BatchVerdict {
  int64_t num_rows = 0;
  /// Rows with >= 1 violation. Fallback rows never appear here.
  std::vector<uint64_t> violated;
  /// Rows the compiled path skipped (narrower than the program's
  /// MinRowWidth); evaluate them with the interpreter instead.
  std::vector<uint64_t> fallback;
  /// CSR offsets into `violations`, size num_rows + 1.
  std::vector<int32_t> offsets;
  /// All violations, grouped by row (ascending), statement-ascending within
  /// a row — the order Interpreter::Check emits.
  std::vector<Violation> violations;
  bool any_violation = false;
  bool any_fallback = false;

  int32_t ViolationCount(int64_t row) const {
    return offsets[static_cast<size_t>(row) + 1] -
           offsets[static_cast<size_t>(row)];
  }
  const Violation* ViolationsBegin(int64_t row) const {
    return violations.data() + offsets[static_cast<size_t>(row)];
  }
  const Violation* ViolationsEnd(int64_t row) const {
    return violations.data() + offsets[static_cast<size_t>(row) + 1];
  }
};

/// A Program lowered once into a flat batch evaluator over dictionary-coded
/// column vectors (ROADMAP item 1; see docs/PERFORMANCE.md).
///
/// Per statement the compiler builds one of two forms:
///
///  - Dispatch form, when every branch conditions on the full determinant
///    set (the shape the synthesizer emits): each determinant's literals are
///    compacted to a small index via a value->index lookup, and a dense
///    determinant-tuple -> branch table resolves the fired branch with one
///    load per row. Codes never seen at compile time (including fresh codes
///    a serve request minted past the compiled dictionary bounds) map to
///    "no branch fires", exactly matching equality semantics.
///  - Mask form, the general fallback (partial-arity conditions such as
///    IF TRUE, literals outside the dense range, or a dispatch table past
///    the size cap): branches are probed first-match-wins directly over the
///    column pointers.
///
/// Either way evaluation reads columns, not rows: no Row materialization,
/// no Value boxing, no per-row virtual calls, results as word bitmasks.
/// The referenced Program must outlive the CompiledProgram.
class CompiledProgram {
 public:
  /// Dense dispatch tables larger than this fall back to mask form.
  static constexpr int64_t kMaxDispatchCells = int64_t{1} << 18;

  static CompiledProgram Compile(const Program& program);

  const Program& program() const { return *program_; }

  /// Same contract as Interpreter::MinRowWidth: rows narrower than this
  /// cannot be evaluated (they take the interpreter fallback).
  size_t min_row_width() const { return min_row_width_; }

  /// Sorted unique attributes any statement reads or targets — the only
  /// columns a ColumnBatch must materialize.
  const std::vector<AttrIndex>& referenced_attributes() const {
    return referenced_attributes_;
  }

  /// How many statements compiled to the dense dispatch form (the rest use
  /// the mask form); exposed for tests and bench labels.
  int32_t dispatch_statements() const { return dispatch_statements_; }

  /// Evaluates every row of `batch`, which must carry every referenced
  /// attribute and have width() >= min_row_width() (otherwise all rows are
  /// reported as fallback). `out` is overwritten; its buffers are reused
  /// across calls.
  void Evaluate(const ColumnBatch& batch, BatchVerdict* out) const;

  /// Convenience: evaluates table rows [begin, begin + count) zero-copy.
  void EvaluateTable(const Table& table, RowIndex begin, int64_t count,
                     BatchVerdict* out) const;

  /// Convenience: evaluates materialized rows [begin, begin + count),
  /// transposing only the referenced columns. Narrow rows land in
  /// out->fallback.
  void EvaluateRows(const std::vector<Row>& rows, size_t begin, size_t count,
                    BatchVerdict* out) const;

 private:
  struct CompiledBranch {
    std::vector<std::pair<AttrIndex, ValueId>> equalities;
    ValueId assignment = kNullValue;
    /// Branch id in the source Statement. Mask-form probing may run in
    /// support (dominance) order rather than program order — see Compile —
    /// but verdicts always report the original id.
    int32_t branch_id = 0;
  };

  struct CompiledStatement {
    AttrIndex dependent = 0;
    /// Per-branch target / assignment, indexed by branch id (both forms).
    std::vector<AttrIndex> targets;
    std::vector<ValueId> assignments;

    // Dispatch form.
    bool use_dispatch = false;
    /// Condition attributes in condition (= sorted) order.
    std::vector<AttrIndex> key_attrs;
    /// Per key attribute: (code + 1) -> compact index in [1, m]; 0 = code
    /// unseen among this attribute's literals (no branch can fire).
    std::vector<std::vector<int32_t>> value_to_index;
    /// Per key attribute: multiplier of its compact index in the flat key.
    std::vector<int64_t> strides;
    /// Flat determinant-tuple key -> branch id, -1 = no branch.
    std::vector<int32_t> dispatch;
    /// Pass-1 fast path: per dispatch cell, the fired branch's assignment,
    /// or the INT32_MIN no-fire sentinel. Collapses the dispatch ->
    /// assignments gather chain to one load; pass 2 still reads `dispatch`
    /// for the branch id.
    std::vector<ValueId> expected;
    /// Single-key statements only: `expected` additionally fused through
    /// the LUT, indexed by code + 1 like value_to_index.
    std::vector<ValueId> expected_by_slot;

    // Mask form.
    std::vector<CompiledBranch> branches;
  };

  /// Pass 1: OR the statement's disagreeing rows into the `violated` word
  /// mask (at least rowmask::Words(batch rows) words).
  static void MarkViolations(const CompiledStatement& stmt,
                             const ColumnBatch& batch, uint64_t* violated);

  /// Branch fired by `stmt` on `row` of `batch`, or -1 (pass 2 / mask form).
  static int32_t FireBranch(const CompiledStatement& stmt,
                            const ColumnBatch& batch, int64_t row);

  const Program* program_ = nullptr;
  size_t min_row_width_ = 0;
  std::vector<AttrIndex> referenced_attributes_;
  std::vector<CompiledStatement> statements_;
  int32_t dispatch_statements_ = 0;
};

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_BATCH_EVAL_H_
