#ifndef GUARDRAIL_CORE_NORMALIZE_H_
#define GUARDRAIL_CORE_NORMALIZE_H_

#include <cstdint>
#include <string>

#include "core/ast.h"
#include "table/schema.h"

namespace guardrail {
namespace core {

/// What NormalizeProgram changed.
struct NormalizeStats {
  int64_t duplicate_branches_removed = 0;
  int64_t dead_branches_removed = 0;
  int64_t statements_merged = 0;
  int64_t empty_statements_removed = 0;

  bool Changed() const {
    return duplicate_branches_removed + dead_branches_removed +
               statements_merged + empty_statements_removed >
           0;
  }
};

/// Puts a program into canonical form without changing its semantics:
///  - statements with the same (GIVEN, ON) header are merged (branch lists
///    concatenated in order; first-match-wins semantics preserved),
///  - branches whose condition is identical to an earlier branch of the
///    same statement are dead under first-match-wins and are removed,
///  - branches that both condition on the full determinant set (mutually
///    exclusive equalities) are sorted for deterministic output,
///  - empty statements are dropped, and statements are ordered by
///    (dependent, determinants).
/// Canonical form makes program equality, diffing, and golden-file tests
/// meaningful.
NormalizeStats NormalizeProgram(Program* program);

/// Deterministic ordering without rewriting: sorts determinant lists and
/// condition conjunctions (order-free semantically), then orders statements
/// by (dependent, determinants, branches). Unlike NormalizeProgram nothing
/// is merged or removed — exact duplicates and weaker variants stay put.
/// This is the canonical form for the synthesis ensemble: redundancy in the
/// member-DAG union is removed by the certified minimizer (with a replayable
/// equivalence proof), not by an uncertified rewrite, so the raw union must
/// survive canonicalization intact. Statement order itself never affects
/// verdicts (statements are independent; only branch order within a
/// statement is semantic), so this is a pure reordering.
void CanonicalizeProgramOrder(Program* program);

/// Human-readable one-line summary: "#stmts / #branches / attrs covered".
std::string ProgramSummary(const Program& program, const Schema& schema);

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_NORMALIZE_H_
