#include "core/ast.h"

#include <algorithm>
#include <set>

namespace guardrail {
namespace core {

namespace {

Status ValidateAttr(AttrIndex attr, const Schema& schema) {
  if (attr < 0 || attr >= schema.num_attributes()) {
    return Status::OutOfRange("attribute index " + std::to_string(attr));
  }
  return Status::OK();
}

Status ValidateValue(AttrIndex attr, ValueId value, const Schema& schema) {
  if (value == kNullValue) return Status::OK();
  if (value < 0 || value >= schema.attribute(attr).domain_size()) {
    return Status::OutOfRange("value code " + std::to_string(value) +
                              " for attribute " + schema.attribute(attr).name());
  }
  return Status::OK();
}

}  // namespace

Status ValidateProgram(const Program& program, const Schema& schema) {
  for (const auto& stmt : program.statements) {
    if (stmt.determinants.empty()) {
      return Status::InvalidArgument("statement with empty GIVEN clause");
    }
    GUARDRAIL_RETURN_NOT_OK(ValidateAttr(stmt.dependent, schema));
    std::set<AttrIndex> det_set;
    for (AttrIndex a : stmt.determinants) {
      GUARDRAIL_RETURN_NOT_OK(ValidateAttr(a, schema));
      if (a == stmt.dependent) {
        return Status::InvalidArgument(
            "dependent attribute appears in its own GIVEN clause");
      }
      if (!det_set.insert(a).second) {
        return Status::InvalidArgument("duplicate determinant attribute");
      }
    }
    if (stmt.branches.empty()) {
      return Status::InvalidArgument("statement with empty HAVING clause");
    }
    for (const auto& branch : stmt.branches) {
      if (branch.target != stmt.dependent) {
        return Status::InvalidArgument(
            "branch target differs from the statement's ON attribute");
      }
      GUARDRAIL_RETURN_NOT_OK(
          ValidateValue(branch.target, branch.assignment, schema));
      if (branch.assignment == kNullValue) {
        return Status::InvalidArgument("branch assigns NULL");
      }
      std::set<AttrIndex> seen;
      for (const auto& [attr, value] : branch.condition.equalities) {
        GUARDRAIL_RETURN_NOT_OK(ValidateAttr(attr, schema));
        GUARDRAIL_RETURN_NOT_OK(ValidateValue(attr, value, schema));
        if (det_set.count(attr) == 0) {
          return Status::InvalidArgument(
              "condition attribute outside the GIVEN clause");
        }
        if (!seen.insert(attr).second) {
          return Status::InvalidArgument(
              "attribute repeated within one conjunction");
        }
      }
      if (!std::is_sorted(branch.condition.equalities.begin(),
                          branch.condition.equalities.end())) {
        return Status::InvalidArgument("condition equalities not sorted");
      }
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace guardrail
