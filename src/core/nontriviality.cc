#include "core/nontriviality.h"

#include <algorithm>

namespace guardrail {
namespace core {

NonTrivialityChecker::NonTrivialityChecker(const Table* data,
                                           pgm::GSquareTest::Options options)
    : data_(data),
      encoded_(pgm::EncodeIdentity(*data)),
      test_(&encoded_, options) {}

bool NonTrivialityChecker::DependentGiven(
    AttrIndex x, AttrIndex y, const std::vector<int32_t>& z) const {
  pgm::CiResult result = test_.Test(x, y, z);
  return result.reliable && !result.independent;
}

bool NonTrivialityChecker::IsLocallyNonTrivial(
    const StatementSketch& sketch) const {
  for (AttrIndex det : sketch.determinants) {
    if (DependentGiven(sketch.dependent, det, {})) return true;
  }
  return false;
}

bool NonTrivialityChecker::IsGloballyNonTrivial(
    const ProgramSketch& program, const StatementSketch& sketch) const {
  if (!IsLocallyNonTrivial(sketch)) return false;
  for (const auto& other : program.statements) {
    if (other == sketch) continue;
    // Conditioning on the other statement's determinants must not make this
    // statement's dependence vanish (Def. 4.2 / Example 4.1). Skip overlap:
    // conditioning on the tested pair itself is meaningless.
    std::vector<int32_t> z;
    for (AttrIndex a : other.determinants) {
      if (a != sketch.dependent &&
          std::find(sketch.determinants.begin(), sketch.determinants.end(),
                    a) == sketch.determinants.end()) {
        z.push_back(a);
      }
    }
    if (z.empty()) continue;
    bool survives = false;
    for (AttrIndex det : sketch.determinants) {
      if (DependentGiven(sketch.dependent, det, z)) {
        survives = true;
        break;
      }
    }
    if (!survives) return false;
  }
  return true;
}

bool NonTrivialityChecker::IsGloballyNonTrivial(
    const ProgramSketch& program) const {
  for (const auto& sketch : program.statements) {
    if (!IsGloballyNonTrivial(program, sketch)) return false;
  }
  return true;
}

}  // namespace core
}  // namespace guardrail
