#ifndef GUARDRAIL_CORE_PRINTER_H_
#define GUARDRAIL_CORE_PRINTER_H_

#include <string>

#include "core/ast.h"
#include "table/schema.h"

namespace guardrail {
namespace core {

/// Renders a program in the paper's surface syntax, e.g.
///
///   GIVEN rel ON marital_status HAVING
///     IF rel = 'Husband' THEN marital_status <- 'Married-civ-spouse';
///     IF rel = 'Wife' THEN marital_status <- 'Married-civ-spouse';
///
/// The output round-trips through ParseProgram (parser.h).
std::string ToDsl(const Program& program, const Schema& schema);
std::string ToDsl(const Statement& stmt, const Schema& schema);
std::string ToDsl(const Branch& branch, const Schema& schema);

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_PRINTER_H_
