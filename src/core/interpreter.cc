#include "core/interpreter.h"

#include "common/logging.h"

namespace guardrail {
namespace core {

int32_t Interpreter::MatchBranch(const Statement& stmt, const Row& row) {
  for (size_t i = 0; i < stmt.branches.size(); ++i) {
    if (stmt.branches[i].condition.Matches(row)) {
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

Row Interpreter::Execute(const Row& row) const {
  Row out = row;
  for (const auto& stmt : program_->statements) {
    int32_t b = MatchBranch(stmt, row);
    if (b < 0) continue;
    const Branch& branch = stmt.branches[static_cast<size_t>(b)];
    out[static_cast<size_t>(branch.target)] = branch.assignment;
  }
  return out;
}

bool Interpreter::Satisfies(const Row& row) const {
  for (const auto& stmt : program_->statements) {
    int32_t b = MatchBranch(stmt, row);
    if (b < 0) continue;
    const Branch& branch = stmt.branches[static_cast<size_t>(b)];
    if (row[static_cast<size_t>(branch.target)] != branch.assignment) {
      return false;
    }
  }
  return true;
}

std::vector<Violation> Interpreter::Check(const Row& row) const {
  std::vector<Violation> out;
  for (size_t s = 0; s < program_->statements.size(); ++s) {
    const Statement& stmt = program_->statements[s];
    int32_t b = MatchBranch(stmt, row);
    if (b < 0) continue;
    const Branch& branch = stmt.branches[static_cast<size_t>(b)];
    ValueId actual = row[static_cast<size_t>(branch.target)];
    if (actual != branch.assignment) {
      Violation v;
      v.statement_index = static_cast<int32_t>(s);
      v.branch_index = b;
      v.attribute = branch.target;
      v.expected = branch.assignment;
      v.actual = actual;
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace core
}  // namespace guardrail
