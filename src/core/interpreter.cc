#include "core/interpreter.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/logging.h"

namespace guardrail {
namespace core {

Interpreter::Interpreter(const Program* program) : program_(program) {
  for (const auto& stmt : program_->statements) {
    min_row_width_ = std::max(min_row_width_,
                              static_cast<size_t>(stmt.dependent) + 1);
    for (AttrIndex a : stmt.determinants) {
      min_row_width_ = std::max(min_row_width_, static_cast<size_t>(a) + 1);
    }
    for (const auto& branch : stmt.branches) {
      min_row_width_ =
          std::max(min_row_width_, static_cast<size_t>(branch.target) + 1);
      for (const auto& [attr, value] : branch.condition.equalities) {
        min_row_width_ =
            std::max(min_row_width_, static_cast<size_t>(attr) + 1);
      }
    }
  }
}

size_t Interpreter::MinRowWidth() const { return min_row_width_; }

Result<std::vector<Violation>> Interpreter::CheckedCheck(const Row& row) const {
  GUARDRAIL_FAILPOINT("interpreter.check");
  if (row.size() < min_row_width_) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) +
        " attribute(s) but the program references attribute index " +
        std::to_string(min_row_width_ - 1));
  }
  return Check(row);
}

int32_t Interpreter::MatchBranch(const Statement& stmt, const Row& row) {
  for (size_t i = 0; i < stmt.branches.size(); ++i) {
    if (stmt.branches[i].condition.Matches(row)) {
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

Row Interpreter::Execute(const Row& row) const {
  Row out = row;
  for (const auto& stmt : program_->statements) {
    int32_t b = MatchBranch(stmt, row);
    if (b < 0) continue;
    const Branch& branch = stmt.branches[static_cast<size_t>(b)];
    out[static_cast<size_t>(branch.target)] = branch.assignment;
  }
  return out;
}

bool Interpreter::Satisfies(const Row& row) const {
  for (const auto& stmt : program_->statements) {
    int32_t b = MatchBranch(stmt, row);
    if (b < 0) continue;
    const Branch& branch = stmt.branches[static_cast<size_t>(b)];
    if (row[static_cast<size_t>(branch.target)] != branch.assignment) {
      return false;
    }
  }
  return true;
}

std::vector<Violation> Interpreter::Check(const Row& row) const {
  std::vector<Violation> out;
  for (size_t s = 0; s < program_->statements.size(); ++s) {
    const Statement& stmt = program_->statements[s];
    int32_t b = MatchBranch(stmt, row);
    if (b < 0) continue;
    const Branch& branch = stmt.branches[static_cast<size_t>(b)];
    ValueId actual = row[static_cast<size_t>(branch.target)];
    if (actual != branch.assignment) {
      // Reserve lazily: the common clean row stays allocation-free, and a
      // dirty row pays one allocation for its worst case (one violation per
      // statement) instead of a doubling sequence.
      if (out.empty()) out.reserve(program_->statements.size());
      Violation v;
      v.statement_index = static_cast<int32_t>(s);
      v.branch_index = b;
      v.attribute = branch.target;
      v.expected = branch.assignment;
      v.actual = actual;
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace core
}  // namespace guardrail
