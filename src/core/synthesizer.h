#ifndef GUARDRAIL_CORE_SYNTHESIZER_H_
#define GUARDRAIL_CORE_SYNTHESIZER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/semantic.h"
#include "common/deadline.h"
#include "common/rng.h"
#include "core/ast.h"
#include "core/sketch.h"
#include "core/sketch_filler.h"
#include "pgm/auxiliary_sampler.h"
#include "pgm/mec_enumerator.h"
#include "pgm/hill_climbing.h"
#include "pgm/pc_algorithm.h"
#include "pgm/ci_test.h"
#include "table/table.h"

namespace guardrail {
namespace core {

/// Which structure learner produces the sketch-level graph.
enum class StructureMethod {
  /// Constraint-based PC (the paper's pipeline).
  kPc,
  /// Score-based greedy hill climbing under BIC; an ablation alternative.
  /// The learned DAG is converted to its CPDAG so the MEC machinery of
  /// Alg. 2 applies unchanged.
  kHillClimbing,
};

/// End-to-end synthesis configuration (paper Secs. 3-4, 7).
struct SynthesisOptions {
  FillOptions fill;
  StructureMethod structure_method = StructureMethod::kPc;
  /// Worker parallelism for the whole pipeline: PC's per-level CI tests, the
  /// concurrent MEC sketch fill, and the row-grouping scans. 0 resolves to
  /// ThreadPool::DefaultThreads() (hardware concurrency, or the
  /// GUARDRAIL_THREADS env var); 1 runs fully serial. Forwarded to
  /// pc.num_threads / fill.num_threads when those are left at their 0
  /// default. The synthesized program is byte-identical for every setting
  /// (see docs/PARALLELISM.md for the determinism argument).
  int num_threads = 0;
  /// Learn the PGM on the auxiliary (binary indicator) sample instead of the
  /// raw data (Sec. 4.6); the Table 8 ablation flips this off.
  bool use_auxiliary_sampler = true;
  pgm::AuxiliarySamplerOptions aux;
  pgm::PcAlgorithm::Options pc;
  pgm::HillClimbingLearner::Options hill_climbing;
  /// Maximal enumeration of DAGs within the MEC (Alg. 2's bound).
  int64_t max_dags = 500;
  /// Post-filter the winning sketch with the empirical GNT check
  /// (Def. 4.2). Theorem 4.1 guarantees MEC-derived sketches are GNT under
  /// faithfulness; with finite samples the guarantee can slip, and this
  /// drops statements whose correlation vanishes when conditioning on the
  /// others' determinants (Example 4.1's redundancy).
  bool enforce_gnt = false;
  /// CI-test configuration for the GNT check (raw-data tests).
  pgm::GSquareTest::Options gnt_ci;
  /// Post-synthesis minimization rung (analysis/semantic.h): build the
  /// ensemble program — the union of every completely filled member-DAG
  /// program, the strongest constraint set the MEC supports — and run the
  /// certified minimizer over it, recording the result in
  /// SynthesisReport::minimization. The chosen `program` is never replaced;
  /// callers opt into serving the minimized ensemble explicitly (it is a
  /// stronger guard than any single member program).
  bool minimize = true;
  /// Row-sample budget of the minimization certificate's replay.
  analysis::MinimizeOptions minimize_options;
  /// Post-synthesis invariant verification (src/analysis). The analyzer
  /// always runs after a non-degraded synthesis and WARN-logs findings plus
  /// `analysis.*` telemetry counters; with verify_programs set, any
  /// error-severity diagnostic additionally fails the run — the report's
  /// `verification` Status turns non-OK. Tests run with this on so a silent
  /// bug in sketch filling, normalization, or MEC selection cannot ship a
  /// program that violates the paper's invariants. Verification also enables
  /// the G-squared LNT/GNT audit, which release mode skips for latency.
  bool verify_programs = false;
};

/// The graceful-degradation ladder: which synthesis strategy ultimately
/// produced the program when running under a time budget. Rungs are ordered
/// from full fidelity to the trivial floor; an unlimited budget always stays
/// on the top rung.
enum class SynthesisRung {
  /// Full pipeline: PC (or configured learner) + complete MEC enumeration +
  /// coverage-maximal selection across all member DAGs.
  kFullMec = 0,
  /// Structure was learned but the budget cut the enumeration or fill short;
  /// the program comes from the best DAG subset that finished (possibly a
  /// single best-effort extension).
  kSingleDag = 1,
  /// PC exceeded its budget slice; structure fell back to anytime greedy
  /// hill climbing and a single-DAG fill.
  kHillClimb = 2,
  /// Budget exhausted before any statement could be synthesized; only the
  /// per-attribute domain constraints remain (program is empty).
  kTrivial = 3,
};

const char* SynthesisRungName(SynthesisRung rung);

/// The ladder's floor: one constraint per attribute restricting values to
/// the dictionary observed at synthesis time. Computable in one cheap pass,
/// so it is always available no matter how little budget remains.
struct DomainConstraint {
  AttrIndex attribute = 0;
  /// Codes in [0, domain_size) were observed at synthesis time.
  int32_t domain_size = 0;
  /// Most frequent observed value and how many rows carried it.
  ValueId mode = kNullValue;
  int64_t mode_support = 0;
};

/// One pass over `data` building the floor constraints.
std::vector<DomainConstraint> BuildDomainConstraints(const Table& data);

/// Attributes of `row` violating the domain constraints (NULL or a code
/// outside the synthesis-time dictionary).
std::vector<AttrIndex> DomainViolations(
    const std::vector<DomainConstraint>& constraints, const Row& row);

/// Everything the pipeline produced, for experiments and diagnostics.
struct SynthesisReport {
  Program program;
  ProgramSketch chosen_sketch;
  pgm::Pdag cpdag;
  int64_t num_dags_enumerated = 0;
  int64_t num_ci_tests = 0;
  double coverage = 0.0;

  // Wall-clock breakdown (seconds).
  double sampling_seconds = 0.0;
  double structure_seconds = 0.0;
  double enumeration_seconds = 0.0;
  double fill_seconds = 0.0;
  double total_seconds = 0.0;

  // Statement-level cache effectiveness (Sec. 7 "Synthesis Optimizations").
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  // Statements removed by the optional GNT post-filter.
  int64_t gnt_statements_dropped = 0;

  // ---- Graceful degradation (deadline-aware synthesis). ----
  /// Ladder rung that produced `program`; kFullMec on unlimited budgets.
  SynthesisRung rung = SynthesisRung::kFullMec;
  /// Human-readable explanation when rung != kFullMec (which stage ran out
  /// of budget and what the ladder fell back to). Empty otherwise.
  std::string degradation_reason;
  /// True when any stage hit the deadline (even if a lower rung recovered).
  bool budget_expired = false;
  /// Populated on the kTrivial rung (and harmless to use on any rung).
  std::vector<DomainConstraint> domain_constraints;

  // ---- Whole-program minimization (analysis/semantic.h). ----
  /// Raw union of every completely filled member-DAG program in canonical
  /// order (CanonicalizeProgramOrder) — byte-identical for any thread count
  /// or DAG enumeration order, but deliberately NOT deduplicated. Members
  /// mostly agree, so the union carries exact duplicates (shared sketch
  /// statements fill identically through the statement cache); where
  /// finite-sample PC gives a dependent different parent sets across
  /// members, it carries both variants. The minimization rung removes that
  /// redundancy with a replayable equivalence certificate — the certified
  /// path replaces an uncertified normalize/merge rewrite. Equals `program`
  /// (reordered) when a single DAG was filled.
  Program ensemble_program;
  /// Certified minimization of `ensemble_program` (when
  /// SynthesisOptions::minimize and the fill was not budget-degraded).
  /// `minimization.program` is the dominance-ordered minimized ensemble and
  /// `minimization.certificate` its machine-checkable equivalence proof.
  analysis::MinimizationResult minimization;
  /// True when `minimization` was computed and its certificate emitted.
  bool minimized = false;

  // ---- Post-synthesis invariant verification (src/analysis). ----
  /// Static-analysis findings on the synthesized program (empty when the
  /// check was skipped because the budget had already expired).
  analysis::DiagnosticReport analysis;
  /// OK unless SynthesisOptions::verify_programs is set and the analyzer
  /// reported error-severity diagnostics.
  Status verification = Status::OK();
};

/// The Guardrail synthesizer: auxiliary sampling -> PC -> MEC enumeration ->
/// sketch filling -> coverage-maximizing selection (Alg. 2).
class Synthesizer {
 public:
  explicit Synthesizer(SynthesisOptions options) : options_(options) {
    // Pipeline-wide parallelism flows into the stages that did not set
    // their own (0 = "inherit").
    if (options_.pc.num_threads == 0) {
      options_.pc.num_threads = options_.num_threads;
    }
    if (options_.fill.num_threads == 0) {
      options_.fill.num_threads = options_.num_threads;
    }
  }

  /// Synthesizes the integrity-constraint program from `data`. `rng` drives
  /// the auxiliary sampler's pairing shuffle only; with
  /// use_auxiliary_sampler == false the pipeline is fully deterministic.
  SynthesisReport Synthesize(const Table& data, Rng* rng) const;

  /// Deadline-aware synthesis. Never hangs, never crashes, never returns
  /// garbage: when `cancel` fires mid-pipeline the degradation ladder steps
  /// down — full MEC -> best-DAG-subset fill -> hill-climbing structure ->
  /// trivial domain constraints — and the report records the rung reached,
  /// why, and the per-stage wall-clock. With an infinite budget the result
  /// is identical to Synthesize(data, rng).
  SynthesisReport Synthesize(const Table& data, Rng* rng,
                             const CancellationToken& cancel) const;

  /// Alg. 2 in isolation: given a CPDAG, enumerate member DAGs, fill each
  /// induced sketch against `data` with a shared statement cache, and return
  /// the concrete program with maximum coverage.
  SynthesisReport SynthesizeFromMec(const pgm::Pdag& cpdag,
                                    const Table& data) const;

  /// Cancellable Alg. 2. Degrades internally to a partial-enumeration /
  /// best-effort-extension fill (rung kSingleDag); returns Status::Timeout
  /// only when not even one DAG could be filled within the budget.
  Result<SynthesisReport> SynthesizeFromMec(
      const pgm::Pdag& cpdag, const Table& data,
      const CancellationToken& cancel) const;

 private:
  /// The ladder body; Synthesize wraps it in the root "synthesize" telemetry
  /// span and stamps total_seconds from that span's clock.
  SynthesisReport SynthesizeImpl(const Table& data, Rng* rng,
                                 const CancellationToken& cancel) const;

  /// Rung kHillClimb / kSingleDag helper: fill the sketch of one DAG.
  Result<SynthesisReport> FillSingleDag(const pgm::Dag& dag, const Table& data,
                                        const CancellationToken& cancel) const;

  /// Post-synthesis invariant check: statically analyzes report->program,
  /// WARN-logs findings, and under verify_programs fails `verification` on
  /// error-severity diagnostics.
  void VerifyProgram(const Table& data, SynthesisReport* report) const;

  /// The minimization rung: certified-minimizes report->ensemble_program
  /// into report->minimization when SynthesisOptions::minimize is set and
  /// the fill was not budget-degraded. Failure never fails synthesis — the
  /// rung WARN-logs and leaves `minimized` false.
  void MinimizeEnsemble(const Schema& schema, SynthesisReport* report) const;

  SynthesisOptions options_;
};

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_SYNTHESIZER_H_
