#ifndef GUARDRAIL_CORE_SYNTHESIZER_H_
#define GUARDRAIL_CORE_SYNTHESIZER_H_

#include <cstdint>
#include <map>
#include <optional>

#include "common/rng.h"
#include "core/ast.h"
#include "core/sketch.h"
#include "core/sketch_filler.h"
#include "pgm/auxiliary_sampler.h"
#include "pgm/mec_enumerator.h"
#include "pgm/hill_climbing.h"
#include "pgm/pc_algorithm.h"
#include "pgm/ci_test.h"
#include "table/table.h"

namespace guardrail {
namespace core {

/// Which structure learner produces the sketch-level graph.
enum class StructureMethod {
  /// Constraint-based PC (the paper's pipeline).
  kPc,
  /// Score-based greedy hill climbing under BIC; an ablation alternative.
  /// The learned DAG is converted to its CPDAG so the MEC machinery of
  /// Alg. 2 applies unchanged.
  kHillClimbing,
};

/// End-to-end synthesis configuration (paper Secs. 3-4, 7).
struct SynthesisOptions {
  FillOptions fill;
  StructureMethod structure_method = StructureMethod::kPc;
  /// Learn the PGM on the auxiliary (binary indicator) sample instead of the
  /// raw data (Sec. 4.6); the Table 8 ablation flips this off.
  bool use_auxiliary_sampler = true;
  pgm::AuxiliarySamplerOptions aux;
  pgm::PcAlgorithm::Options pc;
  pgm::HillClimbingLearner::Options hill_climbing;
  /// Maximal enumeration of DAGs within the MEC (Alg. 2's bound).
  int64_t max_dags = 500;
  /// Post-filter the winning sketch with the empirical GNT check
  /// (Def. 4.2). Theorem 4.1 guarantees MEC-derived sketches are GNT under
  /// faithfulness; with finite samples the guarantee can slip, and this
  /// drops statements whose correlation vanishes when conditioning on the
  /// others' determinants (Example 4.1's redundancy).
  bool enforce_gnt = false;
  /// CI-test configuration for the GNT check (raw-data tests).
  pgm::GSquareTest::Options gnt_ci;
};

/// Everything the pipeline produced, for experiments and diagnostics.
struct SynthesisReport {
  Program program;
  ProgramSketch chosen_sketch;
  pgm::Pdag cpdag;
  int64_t num_dags_enumerated = 0;
  int64_t num_ci_tests = 0;
  double coverage = 0.0;

  // Wall-clock breakdown (seconds).
  double sampling_seconds = 0.0;
  double structure_seconds = 0.0;
  double enumeration_seconds = 0.0;
  double fill_seconds = 0.0;
  double total_seconds = 0.0;

  // Statement-level cache effectiveness (Sec. 7 "Synthesis Optimizations").
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  // Statements removed by the optional GNT post-filter.
  int64_t gnt_statements_dropped = 0;
};

/// The Guardrail synthesizer: auxiliary sampling -> PC -> MEC enumeration ->
/// sketch filling -> coverage-maximizing selection (Alg. 2).
class Synthesizer {
 public:
  explicit Synthesizer(SynthesisOptions options) : options_(options) {}

  /// Synthesizes the integrity-constraint program from `data`. `rng` drives
  /// the auxiliary sampler's pairing shuffle only; with
  /// use_auxiliary_sampler == false the pipeline is fully deterministic.
  SynthesisReport Synthesize(const Table& data, Rng* rng) const;

  /// Alg. 2 in isolation: given a CPDAG, enumerate member DAGs, fill each
  /// induced sketch against `data` with a shared statement cache, and return
  /// the concrete program with maximum coverage.
  SynthesisReport SynthesizeFromMec(const pgm::Pdag& cpdag,
                                    const Table& data) const;

 private:
  SynthesisOptions options_;
};

}  // namespace core
}  // namespace guardrail

#endif  // GUARDRAIL_CORE_SYNTHESIZER_H_
