#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace guardrail {
namespace sql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",   "ORDER",  "AS",
      "CASE",   "WHEN",  "THEN",  "ELSE",  "END",  "AND",    "OR",
      "NOT",    "TRUE",  "FALSE", "NULL",  "ASC",  "DESC",   "HAVING",
      "LIMIT",  "DISTINCT"};
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> LexSql(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      std::string word;
      while (i < text.size() && IsIdentChar(text[i])) word += text[i++];
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (Keywords().count(upper) > 0) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::move(word);
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < text.size() &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::string num;
      bool seen_dot = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              (text[i] == '.' && !seen_dot))) {
        seen_dot = seen_dot || text[i] == '.';
        num += text[i++];
      }
      tok.type = TokenType::kNumber;
      tok.text = std::move(num);
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\'' && i + 1 < text.size() && text[i + 1] == '\'') {
          value += '\'';
          i += 2;
        } else if (text[i] == '\'') {
          ++i;
          closed = true;
          break;
        } else {
          value += text[i++];
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated SQL string at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
    } else {
      // Multi-char operators first.
      auto two = text.substr(i, 2);
      if (two == "!=" || two == "<>" || two == "<=" || two == ">=" ||
          two == "==") {
        tok.type = TokenType::kOperator;
        tok.text = two == "==" ? "=" : std::string(two);
        if (tok.text == "<>") tok.text = "!=";
        i += 2;
      } else if (std::string("=<>+-*/(),.;").find(c) != std::string::npos) {
        tok.type = TokenType::kOperator;
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  tokens.push_back(Token{TokenType::kEnd, "", text.size()});
  return tokens;
}

}  // namespace sql
}  // namespace guardrail
