#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/failpoint.h"
#include "common/telemetry/telemetry.h"
#include "common/timer.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace guardrail {
namespace sql {

namespace {

/// Aggregate accumulator for one (group, aggregate-node) pair.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool has_minmax = false;
  SqlValue min;
  SqlValue max;
};

// Resolves an ORDER BY key to a result-column index: a numeric literal is a
// 1-based position; otherwise the key's text must match a column header
// (alias or expression text).
Result<size_t> ResolveOrderColumn(const Expr* key,
                                  const std::vector<std::string>& columns) {
  if (key->kind == ExprKind::kLiteral && key->literal.is_number()) {
    int64_t position = static_cast<int64_t>(key->literal.number());
    if (position < 1 || position > static_cast<int64_t>(columns.size())) {
      return Status::OutOfRange("ORDER BY position " +
                                std::to_string(position));
    }
    return static_cast<size_t>(position - 1);
  }
  std::string wanted =
      key->kind == ExprKind::kColumnRef ? key->column : key->ToString();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == wanted) return i;
  }
  return Status::NotFound("ORDER BY key '" + wanted +
                          "' matches no output column");
}

// Sorts `result` by the ORDER BY keys and applies `limit` (post-sort).
Status ApplyOrderByAndLimit(const SelectStatement& stmt, QueryResult* result) {
  if (!stmt.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> keys;  // (column, descending)
    for (const auto& key : stmt.order_by) {
      GUARDRAIL_ASSIGN_OR_RETURN(
          size_t column, ResolveOrderColumn(key.expr.get(), result->columns));
      keys.emplace_back(column, key.descending);
    }
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&](const std::vector<SqlValue>& a,
                         const std::vector<SqlValue>& b) {
                       for (const auto& [column, descending] : keys) {
                         const SqlValue& va = a[column];
                         const SqlValue& vb = b[column];
                         // NULLs order last regardless of direction.
                         if (va.is_null() != vb.is_null()) return vb.is_null();
                         if (va.is_null()) continue;
                         int cmp = va.Compare(vb);
                         if (cmp != 0) return descending ? cmp > 0 : cmp < 0;
                       }
                       return false;
                     });
  }
  if (stmt.limit >= 0 &&
      static_cast<int64_t>(result->rows.size()) > stmt.limit) {
    result->rows.resize(static_cast<size_t>(stmt.limit));
  }
  return Status::OK();
}

// Canonical text of the statement for fingerprinting: same shape for the
// same logical query regardless of original whitespace, since it is rebuilt
// from the AST.
std::string CanonicalQueryText(const SelectStatement& stmt) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += stmt.items[i].expr->ToString();
    if (!stmt.items[i].alias.empty()) out += " AS " + stmt.items[i].alias;
  }
  out += " FROM " + stmt.table_name;
  if (stmt.where != nullptr) out += " WHERE " + stmt.where->ToString();
  for (size_t i = 0; i < stmt.group_by.size(); ++i) {
    out += i == 0 ? " GROUP BY " : ", ";
    out += stmt.group_by[i]->ToString();
  }
  if (stmt.having != nullptr) out += " HAVING " + stmt.having->ToString();
  for (size_t i = 0; i < stmt.order_by.size(); ++i) {
    out += i == 0 ? " ORDER BY " : ", ";
    out += stmt.order_by[i].expr->ToString();
    if (stmt.order_by[i].descending) out += " DESC";
  }
  if (stmt.limit >= 0) out += " LIMIT " + std::to_string(stmt.limit);
  return out;
}

std::string QueryFingerprint(const SelectStatement& stmt) {
  // FNV-1a 64 over the canonical text, rendered as fixed-width hex.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : CanonicalQueryText(stmt)) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

std::string QueryResult::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToDisplayString();
    }
    out += "\n";
  }
  return out;
}

/// Per-row expression evaluator. Holds the scan state for the current row:
/// the raw row, the lazily guarded row (guard applied at most once per row),
/// and a finalized-aggregate substitution map for the post-aggregation pass.
class Evaluator {
 public:
  Evaluator(Executor* exec, const Table* table)
      : exec_(exec), table_(table) {}

  void BeginRow(RowIndex index) {
    row_index_ = index;
    raw_row_ = table_->GetRow(index);
    guarded_ready_ = false;
  }

  /// Post-aggregation mode: column refs resolve against `representative` and
  /// aggregate calls resolve through `finalized`.
  void SetAggregateResults(
      const std::map<const Expr*, SqlValue>* finalized) {
    finalized_ = finalized;
  }

  Result<SqlValue> Eval(const Expr* expr) {
    switch (expr->kind) {
      case ExprKind::kLiteral:
        return expr->literal;
      case ExprKind::kColumnRef:
        return EvalColumn(expr->column);
      case ExprKind::kUnary:
        return EvalUnary(expr);
      case ExprKind::kBinary:
        return EvalBinary(expr);
      case ExprKind::kCase:
        return EvalCase(expr);
      case ExprKind::kCall:
        return EvalCall(expr);
    }
    return Status::Internal("unknown expression kind");
  }

  /// The guarded row used for model input (lazily computed). When safe, the
  /// guard runs through the compiled batch evaluator over scanned-table
  /// chunks (one columnar evaluation per kGuardChunkRows rows) instead of
  /// per-row interpreter calls; verdicts, stats, and counters are identical.
  Result<Row> GuardedRow() {
    if (!guarded_ready_) {
      if (exec_->guard_ != nullptr) {
        if (guard_batch_state_ == kGuardBatchUndecided) {
          // Armed failpoints on this path must keep their exact per-row
          // trip sequence, so chaos runs stay on the scalar path wholesale.
          FailpointRegistry& failpoints = FailpointRegistry::Instance();
          bool eligible =
              !failpoints.IsArmed("sql.guard_row") &&
              !failpoints.IsArmed("interpreter.check") &&
              static_cast<size_t>(table_->num_columns()) >=
                  exec_->guard_->interpreter().MinRowWidth();
          guard_batch_state_ =
              eligible ? kGuardBatchCompiled : kGuardBatchScalar;
        }
        if (guard_batch_state_ == kGuardBatchCompiled) {
          GUARDRAIL_RETURN_NOT_OK(GuardRowBatched());
        } else {
          GUARDRAIL_FAILPOINT("sql.guard_row");
          StopWatch watch;
          Result<Row> processed =
              exec_->guard_->ProcessRow(raw_row_, exec_->guard_policy_);
          double guard_seconds = watch.ElapsedSeconds();
          exec_->stats_.guard_seconds += guard_seconds;
          GUARDRAIL_COUNTER_ADD("sql.guard_micros",
                                static_cast<int64_t>(guard_seconds * 1e6));
          if (!processed.ok()) return processed.status();
          if (!(processed.value() == raw_row_)) {
            ++exec_->stats_.rows_guard_flagged;
          }
          guarded_row_ = std::move(processed).value();
        }
      } else {
        guarded_row_ = raw_row_;
      }
      guarded_ready_ = true;
    }
    return guarded_row_;
  }

 private:
  Result<SqlValue> EvalColumn(const std::string& name) {
    AttrIndex attr = table_->schema().FindAttribute(name);
    if (attr < 0) return Status::NotFound("unknown column '" + name + "'");
    ValueId v = raw_row_[static_cast<size_t>(attr)];
    if (v == kNullValue) return SqlValue::MakeNull();
    return SqlValue::String(table_->schema().attribute(attr).label(v));
  }

  Result<SqlValue> EvalUnary(const Expr* expr) {
    GUARDRAIL_ASSIGN_OR_RETURN(SqlValue inner, Eval(expr->left.get()));
    if (expr->op == "NOT") {
      if (inner.is_null()) return SqlValue::MakeNull();
      return SqlValue::Boolean(!inner.Truthy());
    }
    double n = 0;
    if (!inner.ToNumber(&n)) return SqlValue::MakeNull();
    return SqlValue::Number(-n);
  }

  Result<SqlValue> EvalBinary(const Expr* expr) {
    const std::string& op = expr->op;
    if (op == "AND" || op == "OR") {
      GUARDRAIL_ASSIGN_OR_RETURN(SqlValue left, Eval(expr->left.get()));
      bool l = left.Truthy();
      // Short circuit.
      if (op == "AND" && !l) return SqlValue::Boolean(false);
      if (op == "OR" && l) return SqlValue::Boolean(true);
      GUARDRAIL_ASSIGN_OR_RETURN(SqlValue right, Eval(expr->right.get()));
      return SqlValue::Boolean(right.Truthy());
    }
    GUARDRAIL_ASSIGN_OR_RETURN(SqlValue left, Eval(expr->left.get()));
    GUARDRAIL_ASSIGN_OR_RETURN(SqlValue right, Eval(expr->right.get()));
    if (op == "=" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      if (left.is_null() || right.is_null()) return SqlValue::MakeNull();
      int cmp = left.Compare(right);
      bool result = false;
      if (op == "=") result = cmp == 0;
      else if (op == "!=") result = cmp != 0;
      else if (op == "<") result = cmp < 0;
      else if (op == "<=") result = cmp <= 0;
      else if (op == ">") result = cmp > 0;
      else result = cmp >= 0;
      return SqlValue::Boolean(result);
    }
    double a = 0, b = 0;
    if (!left.ToNumber(&a) || !right.ToNumber(&b)) {
      return SqlValue::MakeNull();
    }
    if (op == "+") return SqlValue::Number(a + b);
    if (op == "-") return SqlValue::Number(a - b);
    if (op == "*") return SqlValue::Number(a * b);
    if (op == "/") {
      if (b == 0.0) return SqlValue::MakeNull();
      return SqlValue::Number(a / b);
    }
    return Status::Internal("unknown binary operator " + op);
  }

  Result<SqlValue> EvalCase(const Expr* expr) {
    for (const auto& [when, then] : expr->when_clauses) {
      GUARDRAIL_ASSIGN_OR_RETURN(SqlValue cond, Eval(when.get()));
      if (cond.Truthy()) return Eval(then.get());
    }
    if (expr->else_clause) return Eval(expr->else_clause.get());
    return SqlValue::MakeNull();
  }

  Result<SqlValue> EvalCall(const Expr* expr) {
    const std::string& name = expr->call_name;
    if (name == "ML_PREDICT") {
      if (expr->args.size() != 1 ||
          expr->args[0]->kind != ExprKind::kLiteral ||
          !expr->args[0]->literal.is_string()) {
        return Status::InvalidArgument(
            "ML_PREDICT expects a single string literal model name");
      }
      const std::string& model_name = expr->args[0]->literal.string();
      auto it = exec_->models_.find(model_name);
      if (it == exec_->models_.end()) {
        return Status::NotFound("unregistered model '" + model_name + "'");
      }
      const ml::Model* model = it->second;
      GUARDRAIL_ASSIGN_OR_RETURN(Row input, GuardedRow());
      StopWatch watch;
      ValueId label = model->Predict(input);
      double inference_seconds = watch.ElapsedSeconds();
      exec_->stats_.inference_seconds += inference_seconds;
      GUARDRAIL_COUNTER_ADD("sql.inference_micros",
                            static_cast<int64_t>(inference_seconds * 1e6));
      ++exec_->stats_.predictions_made;
      GUARDRAIL_COUNTER_INC("sql.predictions");
      if (label == kNullValue) return SqlValue::MakeNull();
      return SqlValue::String(
          table_->schema().attribute(model->label_column()).label(label));
    }
    // Aggregates only appear pre-resolved through SetAggregateResults.
    if (finalized_ != nullptr) {
      auto it = finalized_->find(expr);
      if (it != finalized_->end()) return it->second;
    }
    return Status::InvalidArgument(
        "aggregate " + name + " in a non-aggregated context");
  }

  /// Scanned-table rows covered by one compiled guard evaluation.
  static constexpr int64_t kGuardChunkRows = 1024;
  enum GuardBatchState {
    kGuardBatchUndecided = 0,
    kGuardBatchCompiled,
    kGuardBatchScalar,
  };

  /// Compiled-path twin of the scalar ProcessRow call above: ensures the
  /// chunk containing row_index_ is evaluated, then applies the policy to
  /// this row from the chunk's CSR violations. Emits the same guard.*
  /// counters and stats as Guard::ProcessRow would for this row; the chunk
  /// evaluation cost lands on the row that triggered it, so accumulated
  /// guard_seconds stays the true total.
  Status GuardRowBatched() {
    StopWatch watch;
    if (guard_chunk_begin_ < 0 || row_index_ < guard_chunk_begin_ ||
        row_index_ >= guard_chunk_begin_ + guard_chunk_count_) {
      guard_chunk_begin_ = row_index_ - (row_index_ % kGuardChunkRows);
      guard_chunk_count_ =
          std::min<int64_t>(kGuardChunkRows,
                            table_->num_rows() - guard_chunk_begin_);
      exec_->guard_->compiled().EvaluateTable(
          *table_, guard_chunk_begin_, guard_chunk_count_, &guard_verdict_);
    }
    const int64_t local = row_index_ - guard_chunk_begin_;
    GUARDRAIL_COUNTER_INC("guard.rows_checked");
    const int32_t num_violations = guard_verdict_.ViolationCount(local);
    GUARDRAIL_HISTOGRAM_RECORD("guard.violations_per_row",
                               static_cast<int64_t>(num_violations));
    Status result = Status::OK();
    if (num_violations == 0) {
      guarded_row_ = raw_row_;
    } else {
      switch (exec_->guard_policy_) {
        case core::ErrorPolicy::kRaise:
          GUARDRAIL_COUNTER_INC("guard.rows_raised");
          result = Status::ConstraintViolation(
              "row violates " + std::to_string(num_violations) +
              " integrity constraint(s)");
          break;
        case core::ErrorPolicy::kIgnore:
          guarded_row_ = raw_row_;
          break;
        case core::ErrorPolicy::kCoerce:
          GUARDRAIL_COUNTER_INC("guard.rows_coerced");
          guarded_row_ = raw_row_;
          for (const core::Violation* v = guard_verdict_.ViolationsBegin(local);
               v != guard_verdict_.ViolationsEnd(local); ++v) {
            guarded_row_[static_cast<size_t>(v->attribute)] = kNullValue;
          }
          break;
        case core::ErrorPolicy::kRectify:
          GUARDRAIL_COUNTER_INC("guard.rows_rectified");
          guarded_row_ = raw_row_;
          for (const core::Violation* v = guard_verdict_.ViolationsBegin(local);
               v != guard_verdict_.ViolationsEnd(local); ++v) {
            core::ApplyRectifyRepair(*exec_->guard_->program(), *v,
                                     &guarded_row_);
          }
          break;
      }
    }
    double guard_seconds = watch.ElapsedSeconds();
    exec_->stats_.guard_seconds += guard_seconds;
    GUARDRAIL_COUNTER_ADD("sql.guard_micros",
                          static_cast<int64_t>(guard_seconds * 1e6));
    if (result.ok() && !(guarded_row_ == raw_row_)) {
      ++exec_->stats_.rows_guard_flagged;
    }
    return result;
  }

  Executor* exec_;
  const Table* table_;
  RowIndex row_index_ = 0;
  Row raw_row_;
  Row guarded_row_;
  bool guarded_ready_ = false;
  int guard_batch_state_ = kGuardBatchUndecided;
  RowIndex guard_chunk_begin_ = -1;
  int64_t guard_chunk_count_ = 0;
  core::BatchVerdict guard_verdict_;
  const std::map<const Expr*, SqlValue>* finalized_ = nullptr;
};

void Executor::RegisterTable(const std::string& name, const Table* table) {
  tables_[name] = table;
}

void Executor::RegisterModel(const std::string& name, const ml::Model* model) {
  models_[name] = model;
}

void Executor::SetGuard(const core::Guard* guard, core::ErrorPolicy policy) {
  guard_ = guard;
  guard_policy_ = policy;
}

Status Executor::AttachGuard(const core::Guard* guard,
                             core::ErrorPolicy policy, const Schema& schema) {
  if (guard != nullptr) {
    GUARDRAIL_RETURN_NOT_OK(ValidateGuardProgram(*guard->program(), schema));
  }
  SetGuard(guard, policy);
  return Status::OK();
}

Result<QueryResult> Executor::Execute(std::string_view sql) {
  GUARDRAIL_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  return Execute(stmt);
}

Result<QueryResult> Executor::Execute(const SelectStatement& stmt) {
  GUARDRAIL_FAILPOINT("sql.execute");
  auto table_it = tables_.find(stmt.table_name);
  if (table_it == tables_.end()) {
    return Status::NotFound("unregistered table '" + stmt.table_name + "'");
  }
  const Table* table = table_it->second;
  telemetry::Span span("sql.execute");
  span.AddArg("table", stmt.table_name);
  span.AddArg("query_hash", QueryFingerprint(stmt));
  // Deltas against these baselines become span args on success; stats_
  // accumulates across queries on this executor.
  const int64_t scanned_before = stats_.rows_scanned;
  const int64_t pushdown_before = stats_.rows_after_pushdown;
  const int64_t predictions_before = stats_.predictions_made;
  // The guard and model calls inside the scan are O(columns) each, so a
  // small stride keeps expiry latency low at negligible polling cost.
  DeadlineChecker deadline(&cancel_, /*stride=*/32);

  // Column headers.
  QueryResult result;
  for (const auto& item : stmt.items) {
    result.columns.push_back(item.alias.empty() ? item.expr->ToString()
                                                : item.alias);
  }

  // Classify the query: aggregation applies when GROUP BY is present or any
  // select item contains an aggregate call.
  bool has_aggregates = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    has_aggregates = has_aggregates || ContainsAggregate(item.expr.get());
  }

  FilterPlan filter =
      PlanFilter(stmt.where.get(), options_.enable_predicate_pushdown);

  Evaluator eval(this, table);

  if (!has_aggregates) {
    // Plain scan-filter-project.
    for (RowIndex r = 0; r < table->num_rows(); ++r) {
      GUARDRAIL_RETURN_NOT_OK(deadline.Check("sql scan"));
      GUARDRAIL_FAILPOINT("sql.scan_row");
      ++stats_.rows_scanned;
      GUARDRAIL_COUNTER_INC("sql.rows_scanned");
      eval.BeginRow(r);
      bool pass = true;
      for (const Expr* conjunct : filter.base_conjuncts) {
        GUARDRAIL_ASSIGN_OR_RETURN(SqlValue v, eval.Eval(conjunct));
        if (!v.Truthy()) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      ++stats_.rows_after_pushdown;
      for (const Expr* conjunct : filter.ml_conjuncts) {
        GUARDRAIL_ASSIGN_OR_RETURN(SqlValue v, eval.Eval(conjunct));
        if (!v.Truthy()) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      std::vector<SqlValue> out_row;
      for (const auto& item : stmt.items) {
        GUARDRAIL_ASSIGN_OR_RETURN(SqlValue v, eval.Eval(item.expr.get()));
        out_row.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out_row));
      // Early exit only when no ORDER BY needs the full result set.
      if (stmt.order_by.empty() && stmt.limit >= 0 &&
          static_cast<int64_t>(result.rows.size()) >= stmt.limit) {
        break;
      }
    }
    GUARDRAIL_RETURN_NOT_OK(ApplyOrderByAndLimit(stmt, &result));
    span.AddArg("rows_scanned", stats_.rows_scanned - scanned_before);
    span.AddArg("rows_after_pushdown",
                stats_.rows_after_pushdown - pushdown_before);
    span.AddArg("predictions", stats_.predictions_made - predictions_before);
    span.AddArg("rows_out", static_cast<int64_t>(result.rows.size()));
    return result;
  }

  // ---- Aggregation path ----
  std::vector<const Expr*> agg_nodes;
  for (const auto& item : stmt.items) {
    CollectAggregates(item.expr.get(), &agg_nodes);
  }
  // Aggregates referenced only by HAVING still need per-group state.
  CollectAggregates(stmt.having.get(), &agg_nodes);

  struct Group {
    std::vector<SqlValue> keys;
    std::vector<AggState> states;
    RowIndex representative = -1;
  };
  std::map<std::string, Group> groups;

  for (RowIndex r = 0; r < table->num_rows(); ++r) {
    GUARDRAIL_RETURN_NOT_OK(deadline.Check("sql aggregation scan"));
    GUARDRAIL_FAILPOINT("sql.scan_row");
    ++stats_.rows_scanned;
    GUARDRAIL_COUNTER_INC("sql.rows_scanned");
    eval.BeginRow(r);
    bool pass = true;
    for (const Expr* conjunct : filter.base_conjuncts) {
      GUARDRAIL_ASSIGN_OR_RETURN(SqlValue v, eval.Eval(conjunct));
      if (!v.Truthy()) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    ++stats_.rows_after_pushdown;
    for (const Expr* conjunct : filter.ml_conjuncts) {
      GUARDRAIL_ASSIGN_OR_RETURN(SqlValue v, eval.Eval(conjunct));
      if (!v.Truthy()) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;

    // Group key.
    std::string key;
    std::vector<SqlValue> key_values;
    for (const auto& g : stmt.group_by) {
      GUARDRAIL_ASSIGN_OR_RETURN(SqlValue v, eval.Eval(g.get()));
      key += v.ToDisplayString();
      key += '\x1f';
      key_values.push_back(std::move(v));
    }
    Group& group = groups[key];
    if (group.representative < 0) {
      group.representative = r;
      group.keys = std::move(key_values);
      group.states.resize(agg_nodes.size());
    }

    // Update aggregate states.
    for (size_t i = 0; i < agg_nodes.size(); ++i) {
      const Expr* agg = agg_nodes[i];
      AggState& state = group.states[i];
      if (agg->star) {
        ++state.count;
        continue;
      }
      if (agg->args.size() != 1) {
        return Status::InvalidArgument(agg->call_name +
                                       " expects one argument");
      }
      GUARDRAIL_ASSIGN_OR_RETURN(SqlValue v, eval.Eval(agg->args[0].get()));
      if (v.is_null()) continue;
      ++state.count;
      double n = 0;
      if (v.ToNumber(&n)) state.sum += n;
      if (!state.has_minmax) {
        state.min = v;
        state.max = v;
        state.has_minmax = true;
      } else {
        if (v.Compare(state.min) < 0) state.min = v;
        if (v.Compare(state.max) > 0) state.max = v;
      }
    }
  }

  // Finalize each group.
  for (auto& [key, group] : groups) {
    (void)key;
    std::map<const Expr*, SqlValue> finalized;
    for (size_t i = 0; i < agg_nodes.size(); ++i) {
      const Expr* agg = agg_nodes[i];
      const AggState& state = group.states[i];
      SqlValue v;
      if (agg->call_name == "COUNT") {
        v = SqlValue::Number(static_cast<double>(state.count));
      } else if (agg->call_name == "SUM") {
        v = state.count > 0 ? SqlValue::Number(state.sum)
                            : SqlValue::MakeNull();
      } else if (agg->call_name == "AVG") {
        v = state.count > 0
                ? SqlValue::Number(state.sum / static_cast<double>(state.count))
                : SqlValue::MakeNull();
      } else if (agg->call_name == "MIN") {
        v = state.has_minmax ? state.min : SqlValue::MakeNull();
      } else {
        v = state.has_minmax ? state.max : SqlValue::MakeNull();
      }
      finalized.emplace(agg, std::move(v));
    }
    eval.BeginRow(group.representative);
    eval.SetAggregateResults(&finalized);
    if (stmt.having != nullptr) {
      GUARDRAIL_ASSIGN_OR_RETURN(SqlValue keep, eval.Eval(stmt.having.get()));
      if (!keep.Truthy()) {
        eval.SetAggregateResults(nullptr);
        continue;
      }
    }
    std::vector<SqlValue> out_row;
    for (const auto& item : stmt.items) {
      GUARDRAIL_ASSIGN_OR_RETURN(SqlValue v, eval.Eval(item.expr.get()));
      out_row.push_back(std::move(v));
    }
    eval.SetAggregateResults(nullptr);
    result.rows.push_back(std::move(out_row));
  }
  GUARDRAIL_RETURN_NOT_OK(ApplyOrderByAndLimit(stmt, &result));
  span.AddArg("rows_scanned", stats_.rows_scanned - scanned_before);
  span.AddArg("rows_after_pushdown",
              stats_.rows_after_pushdown - pushdown_before);
  span.AddArg("predictions", stats_.predictions_made - predictions_before);
  span.AddArg("rows_out", static_cast<int64_t>(result.rows.size()));
  return result;
}

}  // namespace sql
}  // namespace guardrail
