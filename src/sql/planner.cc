#include "sql/planner.h"

#include "analysis/checker.h"

namespace guardrail {
namespace sql {

namespace {

bool IsAggregateName(const std::string& name) {
  return name == "COUNT" || name == "SUM" || name == "AVG" ||
         name == "MIN" || name == "MAX";
}

template <typename Fn>
void VisitExpr(const Expr* expr, const Fn& fn) {
  if (expr == nullptr) return;
  fn(expr);
  VisitExpr(expr->left.get(), fn);
  VisitExpr(expr->right.get(), fn);
  for (const auto& [when, then] : expr->when_clauses) {
    VisitExpr(when.get(), fn);
    VisitExpr(then.get(), fn);
  }
  VisitExpr(expr->else_clause.get(), fn);
  for (const auto& arg : expr->args) VisitExpr(arg.get(), fn);
}

}  // namespace

Status ValidateGuardProgram(const core::Program& program,
                            const Schema& schema) {
  analysis::AnalysisOptions options;
  // Schema-level passes only: the planner has no data sample at attach time,
  // and Analyze(program, schema) skips the data-dependent audits anyway.
  analysis::Analyzer analyzer(options);
  analysis::DiagnosticReport report = analyzer.Analyze(program, schema);
  if (!report.HasErrors()) return Status::OK();
  const analysis::Diagnostic* first = nullptr;
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.severity == analysis::Severity::kError) {
      first = &d;
      break;
    }
  }
  return Status::InvalidArgument(
      "guard program rejected: " +
      std::to_string(report.CountAtSeverity(analysis::Severity::kError)) +
      " error-severity diagnostic(s); first: " + first->code + " " +
      first->message);
}

std::vector<const Expr*> SplitConjuncts(const Expr* expr) {
  std::vector<const Expr*> out;
  if (expr == nullptr) return out;
  if (expr->kind == ExprKind::kBinary && expr->op == "AND") {
    auto left = SplitConjuncts(expr->left.get());
    auto right = SplitConjuncts(expr->right.get());
    out.insert(out.end(), left.begin(), left.end());
    out.insert(out.end(), right.begin(), right.end());
    return out;
  }
  out.push_back(expr);
  return out;
}

bool ContainsMlPredict(const Expr* expr) {
  bool found = false;
  VisitExpr(expr, [&](const Expr* e) {
    if (e->kind == ExprKind::kCall && e->call_name == "ML_PREDICT") {
      found = true;
    }
  });
  return found;
}

bool ContainsAggregate(const Expr* expr) {
  bool found = false;
  VisitExpr(expr, [&](const Expr* e) {
    if (e->kind == ExprKind::kCall && IsAggregateName(e->call_name)) {
      found = true;
    }
  });
  return found;
}

void CollectAggregates(const Expr* expr, std::vector<const Expr*>* out) {
  VisitExpr(expr, [&](const Expr* e) {
    if (e->kind == ExprKind::kCall && IsAggregateName(e->call_name)) {
      out->push_back(e);
    }
  });
}

FilterPlan PlanFilter(const Expr* where, bool enable_pushdown) {
  FilterPlan plan;
  for (const Expr* conjunct : SplitConjuncts(where)) {
    if (enable_pushdown && !ContainsMlPredict(conjunct)) {
      plan.base_conjuncts.push_back(conjunct);
    } else {
      plan.ml_conjuncts.push_back(conjunct);
    }
  }
  return plan;
}

std::string ExplainPlan(const SelectStatement& stmt, bool enable_pushdown) {
  std::string out = "Scan(" + stmt.table_name + ")\n";
  FilterPlan plan = PlanFilter(stmt.where.get(), enable_pushdown);
  auto join_exprs = [](const std::vector<const Expr*>& exprs) {
    std::string text;
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (i > 0) text += " AND ";
      text += exprs[i]->ToString();
    }
    return text;
  };
  if (!plan.base_conjuncts.empty()) {
    out += "  Filter[pre-inference]: " + join_exprs(plan.base_conjuncts) + "\n";
  }
  if (!plan.ml_conjuncts.empty()) {
    out += "  Filter[post-inference]: " + join_exprs(plan.ml_conjuncts) + "\n";
  }
  bool has_aggregates = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    has_aggregates = has_aggregates || ContainsAggregate(item.expr.get());
  }
  if (has_aggregates) {
    out += "  Aggregate: group by [";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.group_by[i]->ToString();
    }
    out += "] computing [";
    std::vector<const Expr*> aggs;
    for (const auto& item : stmt.items) {
      CollectAggregates(item.expr.get(), &aggs);
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (i > 0) out += ", ";
      out += aggs[i]->ToString();
    }
    out += "]\n";
    if (stmt.having != nullptr) {
      out += "  Having: " + stmt.having->ToString() + "\n";
    }
  }
  if (!stmt.order_by.empty()) {
    out += "  OrderBy: [";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.order_by[i].expr->ToString();
      if (stmt.order_by[i].descending) out += " DESC";
    }
    out += "]\n";
  }
  if (stmt.limit >= 0) {
    out += "  Limit: " + std::to_string(stmt.limit) + "\n";
  }
  out += "  Project: [";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += stmt.items[i].alias.empty() ? stmt.items[i].expr->ToString()
                                       : stmt.items[i].alias;
  }
  out += "]\n";
  return out;
}

}  // namespace sql
}  // namespace guardrail
