#include "sql/parser.h"

#include <algorithm>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace guardrail {
namespace sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelectStatement() {
    GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SelectStatement stmt;
    while (true) {
      GUARDRAIL_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
      if (!ConsumeOperator(",")) break;
    }
    GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected table name at offset " +
                                std::to_string(Peek().offset));
    }
    stmt.table_name = Advance().text;
    // Optional alias-style qualification "t.col" is handled at the lexer
    // level by the '.' operator; we accept and ignore a bare alias here.
    if (Peek().type == TokenType::kIdentifier) Advance();

    if (ConsumeKeyword("WHERE")) {
      GUARDRAIL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (!ConsumeOperator(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      if (stmt.group_by.empty()) {
        return Status::ParseError("HAVING requires GROUP BY");
      }
      GUARDRAIL_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderKey key;
        GUARDRAIL_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          key.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
        if (!ConsumeOperator(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != TokenType::kNumber) {
        return Status::ParseError("expected number after LIMIT");
      }
      double n = 0;
      ParseDouble(Advance().text, &n);
      stmt.limit = static_cast<int64_t>(n);
    }
    ConsumeOperator(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(Peek().offset));
    }
    return stmt;
  }

  Result<ExprPtr> ParseStandaloneExpr() {
    GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(Peek().offset));
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!ConsumeKeyword(kw)) {
      return Status::ParseError("expected " + kw + " at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  bool PeekOperator(const std::string& op) const {
    return Peek().type == TokenType::kOperator && Peek().text == op;
  }
  bool ConsumeOperator(const std::string& op) {
    if (!PeekOperator(op)) return false;
    Advance();
    return true;
  }
  Status ExpectOperator(const std::string& op) {
    if (!ConsumeOperator(op)) {
      return Status::ParseError("expected '" + op + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    GUARDRAIL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (ConsumeKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::ParseError("expected alias after AS");
      }
      item.alias = Advance().text;
    }
    return item;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary("OR", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (ConsumeKeyword("AND")) {
      GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary("AND", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "NOT";
      e->left = std::move(inner);
      return e;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    static const char* kOps[] = {"=", "!=", "<=", ">=", "<", ">"};
    for (const char* op : kOps) {
      if (PeekOperator(op)) {
        Advance();
        GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (PeekOperator("+") || PeekOperator("-")) {
      std::string op = Advance().text;
      GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (PeekOperator("*") || PeekOperator("/")) {
      std::string op = Advance().text;
      GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeOperator("-")) {
      GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      // Canonicalize unary minus of a numeric literal into a negative
      // literal, so "-15" round-trips through the printer unchanged.
      if (inner->kind == ExprKind::kLiteral && inner->literal.is_number()) {
        inner->literal = SqlValue::Number(-inner->literal.number());
        return inner;
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "-";
      e->left = std::move(inner);
      return e;
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.type == TokenType::kNumber) {
      double n = 0;
      ParseDouble(Advance().text, &n);
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLiteral;
      e->literal = SqlValue::Number(n);
      return e;
    }
    if (tok.type == TokenType::kString) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLiteral;
      e->literal = SqlValue::String(Advance().text);
      return e;
    }
    if (PeekKeyword("TRUE") || PeekKeyword("FALSE")) {
      bool b = Advance().text == "TRUE";
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLiteral;
      e->literal = SqlValue::Boolean(b);
      return e;
    }
    if (PeekKeyword("NULL")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLiteral;
      e->literal = SqlValue::MakeNull();
      return e;
    }
    if (ConsumeKeyword("CASE")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCase;
      while (ConsumeKeyword("WHEN")) {
        GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
        GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("THEN"));
        GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
        e->when_clauses.emplace_back(std::move(when), std::move(then));
      }
      if (e->when_clauses.empty()) {
        return Status::ParseError("CASE without WHEN clauses");
      }
      if (ConsumeKeyword("ELSE")) {
        GUARDRAIL_ASSIGN_OR_RETURN(e->else_clause, ParseExpr());
      }
      GUARDRAIL_RETURN_NOT_OK(ExpectKeyword("END"));
      return e;
    }
    if (ConsumeOperator("(")) {
      GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      GUARDRAIL_RETURN_NOT_OK(ExpectOperator(")"));
      return inner;
    }
    if (tok.type == TokenType::kIdentifier) {
      std::string name = Advance().text;
      // Qualified column "table.column": keep the column part.
      if (ConsumeOperator(".")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::ParseError("expected column after '.'");
        }
        name = Advance().text;
      }
      if (ConsumeOperator("(")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCall;
        e->call_name = name;
        std::transform(e->call_name.begin(), e->call_name.end(),
                       e->call_name.begin(), ::toupper);
        if (ConsumeOperator("*")) {
          e->star = true;
        } else if (!PeekOperator(")")) {
          while (true) {
            GUARDRAIL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            e->args.push_back(std::move(arg));
            if (!ConsumeOperator(",")) break;
          }
        }
        GUARDRAIL_RETURN_NOT_OK(ExpectOperator(")"));
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kColumnRef;
      e->column = std::move(name);
      return e;
    }
    return Status::ParseError("unexpected token at offset " +
                              std::to_string(tok.offset));
  }

  static ExprPtr MakeBinary(std::string op, ExprPtr left, ExprPtr right) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->op = std::move(op);
    e->left = std::move(left);
    e->right = std::move(right);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(std::string_view text) {
  GUARDRAIL_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(text));
  Parser parser(std::move(tokens));
  return parser.ParseSelectStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  GUARDRAIL_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpr();
}

}  // namespace sql
}  // namespace guardrail
