#include "sql/materialized_view.h"

#include <unordered_map>
#include <unordered_set>

namespace guardrail {
namespace sql {

Result<Table> MaterializeJoin(const Table& left, const std::string& left_key,
                              const Table& right, const std::string& right_key,
                              const JoinOptions& options) {
  AttrIndex left_attr = left.schema().FindAttribute(left_key);
  if (left_attr < 0) {
    return Status::NotFound("left join key '" + left_key + "'");
  }
  AttrIndex right_attr = right.schema().FindAttribute(right_key);
  if (right_attr < 0) {
    return Status::NotFound("right join key '" + right_key + "'");
  }

  // Output schema: all left columns, then right columns except the key,
  // prefixing names that collide with a left column.
  std::unordered_set<std::string> left_names;
  Schema schema;
  for (AttrIndex c = 0; c < left.num_columns(); ++c) {
    const std::string& name = left.schema().attribute(c).name();
    left_names.insert(name);
    GUARDRAIL_RETURN_NOT_OK(schema.AddAttribute(Attribute(name)));
  }
  std::vector<AttrIndex> right_columns;
  for (AttrIndex c = 0; c < right.num_columns(); ++c) {
    if (c == right_attr) continue;
    std::string name = right.schema().attribute(c).name();
    if (left_names.count(name) > 0) name = options.collision_prefix + name;
    GUARDRAIL_RETURN_NOT_OK(schema.AddAttribute(Attribute(name)));
    right_columns.push_back(c);
  }

  // Index the right side by key label (labels, not codes: the two tables
  // may have different dictionaries).
  std::unordered_map<std::string, RowIndex> right_index;
  right_index.reserve(static_cast<size_t>(right.num_rows()) * 2);
  for (RowIndex r = 0; r < right.num_rows(); ++r) {
    ValueId v = right.Get(r, right_attr);
    if (v == kNullValue) continue;  // NULL keys never match.
    auto [it, inserted] =
        right_index.emplace(right.schema().attribute(right_attr).label(v), r);
    if (!inserted) {
      return Status::InvalidArgument(
          "duplicate right-side key '" + it->first +
          "'; materialized views require a many-to-one join");
    }
  }

  Table out(std::move(schema));
  for (RowIndex r = 0; r < left.num_rows(); ++r) {
    ValueId key = left.Get(r, left_attr);
    auto match = key == kNullValue
                     ? right_index.end()
                     : right_index.find(
                           left.schema().attribute(left_attr).label(key));
    if (match == right_index.end() && !options.left_outer) continue;

    Row row(static_cast<size_t>(out.num_columns()), kNullValue);
    for (AttrIndex c = 0; c < left.num_columns(); ++c) {
      ValueId v = left.Get(r, c);
      if (v != kNullValue) {
        row[static_cast<size_t>(c)] = out.mutable_schema().attribute(c).GetOrInsert(
            left.schema().attribute(c).label(v));
      }
    }
    if (match != right_index.end()) {
      for (size_t i = 0; i < right_columns.size(); ++i) {
        ValueId v = right.Get(match->second, right_columns[i]);
        if (v == kNullValue) continue;
        AttrIndex dst = left.num_columns() + static_cast<AttrIndex>(i);
        row[static_cast<size_t>(dst)] =
            out.mutable_schema().attribute(dst).GetOrInsert(
                right.schema().attribute(right_columns[i]).label(v));
      }
    }
    GUARDRAIL_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

}  // namespace sql
}  // namespace guardrail
