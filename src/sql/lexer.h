#ifndef GUARDRAIL_SQL_LEXER_H_
#define GUARDRAIL_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace guardrail {
namespace sql {

enum class TokenType {
  kKeyword,     // SELECT FROM WHERE GROUP BY AS CASE WHEN THEN ELSE END ...
  kIdentifier,  // table / column / function names
  kNumber,
  kString,      // 'single quoted'
  kOperator,    // = != <> < <= > >= + - * / ( ) , . ; *
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // Keywords upper-cased; identifiers verbatim.
  size_t offset = 0;
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively.
Result<std::vector<Token>> LexSql(std::string_view text);

}  // namespace sql
}  // namespace guardrail

#endif  // GUARDRAIL_SQL_LEXER_H_
