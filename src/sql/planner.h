#ifndef GUARDRAIL_SQL_PLANNER_H_
#define GUARDRAIL_SQL_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/ast.h"
#include "sql/ast.h"
#include "table/schema.h"

namespace guardrail {
namespace sql {

/// Splits an expression into its top-level AND conjuncts (returns pointers
/// into the tree; no ownership transfer).
std::vector<const Expr*> SplitConjuncts(const Expr* expr);

/// True when the expression (transitively) calls ML_PREDICT.
bool ContainsMlPredict(const Expr* expr);

/// True when the expression contains an aggregate call
/// (COUNT/SUM/AVG/MIN/MAX).
bool ContainsAggregate(const Expr* expr);

/// Collects aggregate call nodes in evaluation order.
void CollectAggregates(const Expr* expr, std::vector<const Expr*>* out);

/// Physical filter plan for a single-table scan: predicate pushdown
/// (paper Sec. 7) evaluates the conjuncts that do not depend on model
/// predictions *before* invoking the ML backend, so rows filtered out by
/// cheap base predicates never pay guard or inference cost.
struct FilterPlan {
  std::vector<const Expr*> base_conjuncts;  // Evaluated pre-prediction.
  std::vector<const Expr*> ml_conjuncts;    // Evaluated post-prediction.
};

/// Builds the pushdown plan from an optional WHERE expression. With
/// `enable_pushdown` false every conjunct is treated as ML-dependent
/// (the ablation baseline).
FilterPlan PlanFilter(const Expr* where, bool enable_pushdown);

/// Planner-side vetting of a constraint program before it may intercept
/// query rows: runs the static analyzer's schema-level passes (type/domain,
/// satisfiability, pairwise contradictions, and the whole-program semantic
/// pass whose closure engine catches transitive GRL702 contradictions —
/// src/analysis) and rejects programs carrying error-severity diagnostics
/// with InvalidArgument. A broken guard silently corrupts every query it
/// vets, so the check sits on the attach path (Executor::AttachGuard), not
/// the per-row path.
Status ValidateGuardProgram(const core::Program& program,
                            const Schema& schema);

/// Human-readable physical plan sketch for a statement:
///
///   Scan(t)
///     Filter[pre-inference]: (a = 'x')
///     Filter[post-inference]: (ML_PREDICT('m') = 'y')
///     Aggregate: group by [a] computing [COUNT(*)]
///     OrderBy/Limit: ...
std::string ExplainPlan(const SelectStatement& stmt, bool enable_pushdown);

}  // namespace sql
}  // namespace guardrail

#endif  // GUARDRAIL_SQL_PLANNER_H_
