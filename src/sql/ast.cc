#include "sql/ast.h"

#include <cmath>

#include "common/string_util.h"

namespace guardrail {
namespace sql {

bool SqlValue::Truthy() const {
  if (is_boolean()) return boolean();
  if (is_number()) return number() != 0.0;
  if (is_string()) return StrEqualsIgnoreCase(string(), "true");
  return false;
}

bool SqlValue::ToNumber(double* out) const {
  if (is_number()) {
    *out = number();
    return true;
  }
  if (is_boolean()) {
    *out = boolean() ? 1.0 : 0.0;
    return true;
  }
  if (is_string()) return ParseDouble(string(), out);
  return false;
}

std::string SqlValue::ToDisplayString() const {
  if (is_null()) return "NULL";
  if (is_boolean()) return boolean() ? "true" : "false";
  if (is_number()) return FormatDouble(number(), 10);
  return string();
}

int SqlValue::Compare(const SqlValue& other) const {
  double a, b;
  if (ToNumber(&a) && other.ToNumber(&b)) {
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  std::string sa = ToDisplayString(), sb = other.ToDisplayString();
  if (sa < sb) return -1;
  if (sa > sb) return 1;
  return 0;
}

bool SqlValue::Equals(const SqlValue& other) const {
  if (is_null() || other.is_null()) return false;
  return Compare(other) == 0;
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->column = column;
  out->op = op;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  for (const auto& [when, then] : when_clauses) {
    out->when_clauses.emplace_back(when->Clone(), then->Clone());
  }
  if (else_clause) out->else_clause = else_clause->Clone();
  out->call_name = call_name;
  for (const auto& arg : args) out->args.push_back(arg->Clone());
  out->star = star;
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_string()) return "'" + literal.string() + "'";
      return literal.ToDisplayString();
    case ExprKind::kColumnRef:
      return column;
    case ExprKind::kUnary:
      // Fully parenthesized so unary expressions stay valid operands
      // anywhere (e.g. `(NOT a) >= b` — a bare NOT cannot appear on the
      // right of a comparison in the grammar).
      return op == "NOT" ? "(NOT " + left->ToString() + ")"
                         : "(-" + left->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + op + " " + right->ToString() + ")";
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (const auto& [when, then] : when_clauses) {
        out += " WHEN " + when->ToString() + " THEN " + then->ToString();
      }
      if (else_clause) out += " ELSE " + else_clause->ToString();
      out += " END";
      return out;
    }
    case ExprKind::kCall: {
      std::string out = call_name + "(";
      if (star) {
        out += "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToString();
        }
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace sql
}  // namespace guardrail
