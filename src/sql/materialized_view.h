#ifndef GUARDRAIL_SQL_MATERIALIZED_VIEW_H_
#define GUARDRAIL_SQL_MATERIALIZED_VIEW_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace guardrail {
namespace sql {

/// The paper's executor has no native JOIN (Sec. 7): "one can use the
/// materialized views to pre-compute the results and use our query executor
/// over multiple tables." This helper builds those views: an equi-join of
/// two tables materialized into a single Table that the Executor (and the
/// Guard) then treat like any base relation.
struct JoinOptions {
  /// Inner join (drop unmatched left rows) vs. left outer join (keep them
  /// with NULL right columns).
  bool left_outer = false;
  /// Prefix applied to right-side column names that collide with a left
  /// column (the join key itself is emitted once, from the left side).
  std::string collision_prefix = "right_";
};

/// Joins `left` and `right` on left.`left_key` == right.`right_key`
/// (equality of value *labels*, so the tables need not share dictionaries).
/// Right rows must be unique per key ("many-to-one", the lookup-table shape
/// materialized views are used for here); duplicate right keys are an
/// InvalidArgument.
Result<Table> MaterializeJoin(const Table& left, const std::string& left_key,
                              const Table& right, const std::string& right_key,
                              const JoinOptions& options = JoinOptions());

}  // namespace sql
}  // namespace guardrail

#endif  // GUARDRAIL_SQL_MATERIALIZED_VIEW_H_
