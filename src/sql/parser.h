#ifndef GUARDRAIL_SQL_PARSER_H_
#define GUARDRAIL_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace guardrail {
namespace sql {

/// Parses one SELECT statement:
///
///   SELECT item [, item]* FROM table
///     [WHERE expr] [GROUP BY expr [, expr]*] [HAVING expr]
///     [ORDER BY key [ASC|DESC] [, ...]] [LIMIT n] [;]
///
/// Expressions support literals, column references, arithmetic, comparisons,
/// AND/OR/NOT, CASE WHEN, aggregate calls (COUNT/SUM/AVG/MIN/MAX, COUNT(*)),
/// and the ML UDF ML_PREDICT('model_name').
Result<SelectStatement> ParseSelect(std::string_view text);

/// Parses a standalone expression (used by tests).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace sql
}  // namespace guardrail

#endif  // GUARDRAIL_SQL_PARSER_H_
