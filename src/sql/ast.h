#ifndef GUARDRAIL_SQL_AST_H_
#define GUARDRAIL_SQL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace guardrail {
namespace sql {

/// Runtime value of SQL expressions: NULL, number, string, or boolean.
class SqlValue {
 public:
  SqlValue() : value_(Null{}) {}
  static SqlValue MakeNull() { return SqlValue(); }
  static SqlValue Number(double n) {
    SqlValue v;
    v.value_ = n;
    return v;
  }
  static SqlValue String(std::string s) {
    SqlValue v;
    v.value_ = std::move(s);
    return v;
  }
  static SqlValue Boolean(bool b) {
    SqlValue v;
    v.value_ = b;
    return v;
  }

  bool is_null() const { return std::holds_alternative<Null>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_boolean() const { return std::holds_alternative<bool>(value_); }

  double number() const { return std::get<double>(value_); }
  const std::string& string() const { return std::get<std::string>(value_); }
  bool boolean() const { return std::get<bool>(value_); }

  /// Truthiness for WHERE: non-zero number / true boolean; NULL and strings
  /// are false except "true".
  bool Truthy() const;

  /// Numeric coercion: numbers verbatim, booleans 0/1, numeric-looking
  /// strings parsed; returns false when impossible (or NULL).
  bool ToNumber(double* out) const;

  /// Display form (NULL -> "NULL").
  std::string ToDisplayString() const;

  /// SQL comparison: numeric when both sides coerce to numbers, string
  /// comparison otherwise. Returns 0/-1/+1; NULL handled by callers.
  int Compare(const SqlValue& other) const;

  bool Equals(const SqlValue& other) const;

 private:
  struct Null {};
  std::variant<Null, double, std::string, bool> value_;
};

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,      // - , NOT
  kBinary,     // + - * / = != < <= > >= AND OR
  kCase,       // CASE WHEN ... THEN ... [ELSE ...] END
  kCall,       // function call: aggregates, ML_PREDICT
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression tree node. A deliberately flat struct (RocksDB-style plain
/// data) — the evaluator switches on `kind`.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  SqlValue literal;

  // kColumnRef
  std::string column;

  // kUnary / kBinary: op is "-", "NOT", "+", "*", "/", "=", "!=", "<", "<=",
  // ">", ">=", "AND", "OR".
  std::string op;
  ExprPtr left;
  ExprPtr right;

  // kCase
  std::vector<std::pair<ExprPtr, ExprPtr>> when_clauses;
  ExprPtr else_clause;

  // kCall: name upper-cased; `star` marks COUNT(*).
  std::string call_name;
  std::vector<ExprPtr> args;
  bool star = false;

  /// Deep copy.
  ExprPtr Clone() const;

  /// Unparsed (canonical) form, for plan explanation and test assertions.
  std::string ToString() const;
};

/// One SELECT output column.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // Empty = derived from the expression text.
};

/// One ORDER BY key: an output column referenced by alias, expression text,
/// or 1-based position, plus a direction.
struct OrderKey {
  ExprPtr expr;
  bool descending = false;
};

/// A parsed SELECT statement over a single table (the paper's research
/// prototype supports no native JOIN; multi-table queries go through
/// materialized views, see Sec. 7).
struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table_name;
  ExprPtr where;                  // Optional.
  std::vector<ExprPtr> group_by;   // Optional.
  ExprPtr having;                  // Optional; filters groups post-aggregation.
  std::vector<OrderKey> order_by;  // Optional; sorts the result set.
  int64_t limit = -1;              // Optional; -1 = none.
};

}  // namespace sql
}  // namespace guardrail

#endif  // GUARDRAIL_SQL_AST_H_
