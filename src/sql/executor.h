#ifndef GUARDRAIL_SQL_EXECUTOR_H_
#define GUARDRAIL_SQL_EXECUTOR_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/guard.h"
#include "ml/model.h"
#include "sql/ast.h"
#include "table/table.h"

namespace guardrail {
namespace sql {

/// Result set of a query.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<SqlValue>> rows;

  std::string ToString() const;
};

/// Execution statistics, including the guard / inference breakdown of paper
/// Table 6 and the pushdown effectiveness counters.
struct ExecStats {
  int64_t rows_scanned = 0;
  int64_t rows_after_pushdown = 0;
  int64_t predictions_made = 0;
  int64_t rows_guard_flagged = 0;
  double guard_seconds = 0.0;
  double inference_seconds = 0.0;
};

/// ML-integrated SQL executor over single-table scans (the paper's research
/// prototype, Sec. 7): parses and runs SELECT queries whose expressions may
/// call ML_PREDICT('model'), optionally vetting each row with a Guardrail
/// guard before it reaches the model.
class Executor {
 public:
  struct Options {
    bool enable_predicate_pushdown = true;
  };

  Executor() : options_() {}
  explicit Executor(Options options) : options_(options) {}

  /// Registers a table; the pointer must outlive the executor.
  void RegisterTable(const std::string& name, const Table* table);

  /// Registers an ML model callable as ML_PREDICT('<name>').
  void RegisterModel(const std::string& name, const ml::Model* model);

  /// Installs the Guardrail interception hook: every row is processed with
  /// `policy` before any model sees it. Pass nullptr to disable.
  ///
  /// Prefer AttachGuard: SetGuard is the unchecked low-level hook (kept for
  /// trusted in-process programs and tests that need to install broken
  /// guards on purpose).
  void SetGuard(const core::Guard* guard, core::ErrorPolicy policy);

  /// Checked attach: vets the guard's program with the static analyzer's
  /// schema-level passes (sql::ValidateGuardProgram) and rejects programs
  /// carrying error-severity diagnostics — a broken guard would silently
  /// mis-vet every subsequent query. `schema` is the schema of the table(s)
  /// the guard will see. Passing nullptr detaches and always succeeds.
  Status AttachGuard(const core::Guard* guard, core::ErrorPolicy policy,
                     const Schema& schema);

  /// Installs a cancellation token honored by subsequent Execute calls: the
  /// scan checks it per row (amortized) and returns Status::Timeout when it
  /// fires. Defaults to never-cancelled.
  void SetCancellation(CancellationToken cancel) {
    cancel_ = std::move(cancel);
  }

  /// Parses and executes `sql`.
  Result<QueryResult> Execute(std::string_view sql);
  Result<QueryResult> Execute(const SelectStatement& stmt);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  friend class Evaluator;

  Options options_;
  std::unordered_map<std::string, const Table*> tables_;
  std::unordered_map<std::string, const ml::Model*> models_;
  const core::Guard* guard_ = nullptr;
  core::ErrorPolicy guard_policy_ = core::ErrorPolicy::kIgnore;
  CancellationToken cancel_ = CancellationToken::Never();
  ExecStats stats_;
};

}  // namespace sql
}  // namespace guardrail

#endif  // GUARDRAIL_SQL_EXECUTOR_H_
