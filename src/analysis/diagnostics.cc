#include "analysis/diagnostics.h"

#include <algorithm>
#include <tuple>

#include "common/telemetry/telemetry.h"

namespace guardrail {
namespace analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

int64_t DiagnosticReport::CountAtSeverity(Severity severity) const {
  int64_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

void DiagnosticReport::Sort() {
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.statement_index, a.branch_index, a.code,
                              a.attribute, a.message) <
                     std::tie(b.statement_index, b.branch_index, b.code,
                              b.attribute, b.message);
            });
}

std::string DiagnosticReport::ToText() const {
  if (diagnostics.empty()) return "no diagnostics\n";
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += SeverityName(d.severity);
    out += ' ';
    out += d.code;
    if (d.statement_index >= 0) {
      out += " [stmt " + std::to_string(d.statement_index);
      if (d.branch_index >= 0) {
        out += " branch " + std::to_string(d.branch_index);
      }
      out += "]";
    }
    if (!d.attribute.empty()) out += " (" + d.attribute + ")";
    out += ": " + d.message + "\n";
  }
  out += std::to_string(CountAtSeverity(Severity::kError)) + " error(s), " +
         std::to_string(CountAtSeverity(Severity::kWarning)) +
         " warning(s), " + std::to_string(CountAtSeverity(Severity::kInfo)) +
         " info\n";
  return out;
}

std::string DiagnosticReport::ToJson() const {
  std::string out = "{\"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    if (!first) out += ", ";
    first = false;
    out += "{\"code\": \"";
    telemetry::AppendJsonEscaped(d.code, &out);
    out += "\", \"severity\": \"";
    out += SeverityName(d.severity);
    out += "\", \"statement\": " + std::to_string(d.statement_index);
    out += ", \"branch\": " + std::to_string(d.branch_index);
    out += ", \"attribute\": \"";
    telemetry::AppendJsonEscaped(d.attribute, &out);
    out += "\", \"message\": \"";
    telemetry::AppendJsonEscaped(d.message, &out);
    out += "\"}";
  }
  out += "], \"counts\": {\"error\": " +
         std::to_string(CountAtSeverity(Severity::kError)) +
         ", \"warning\": " + std::to_string(CountAtSeverity(Severity::kWarning)) +
         ", \"info\": " + std::to_string(CountAtSeverity(Severity::kInfo)) +
         "}}";
  return out;
}

}  // namespace analysis
}  // namespace guardrail
