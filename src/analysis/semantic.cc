#include "analysis/semantic.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>

#include "analysis/implication.h"
#include "analysis/passes/passes.h"
#include "core/interpreter.h"
#include "core/parser.h"
#include "core/printer.h"

namespace guardrail {
namespace analysis {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers: hashing, the certificate's deterministic row sampler, and
// canonical statement forms.
// ---------------------------------------------------------------------------

uint64_t Fnv1a(std::string_view bytes, uint64_t h = 0xcbf29ce484222325ULL) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string HashHex(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

/// SplitMix64 — pinned here so certificates replay identically forever,
/// independent of any library RNG changing its stream.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One sampled row: per attribute a value in [-1, domain], covering NULL,
/// every dictionary code, and one out-of-dictionary code.
Row SampleRow(uint64_t* state, const std::vector<int64_t>& domains) {
  Row row(domains.size(), kNullValue);
  for (size_t a = 0; a < domains.size(); ++a) {
    const int64_t span = domains[a] + 2;  // [-1, domain] inclusive.
    row[a] = static_cast<ValueId>(
        static_cast<int64_t>(NextRand(state) % static_cast<uint64_t>(span)) -
        1);
  }
  return row;
}

int64_t TotalSupport(const core::Statement& stmt) {
  int64_t s = 0;
  for (const auto& branch : stmt.branches) s += branch.support;
  return s;
}

/// Full-arity unique conditions: branches are mutually exclusive and their
/// order is semantically free.
bool BranchOrderFree(const core::Statement& stmt) {
  std::vector<const core::Condition*> conds;
  for (const auto& branch : stmt.branches) {
    if (branch.condition.equalities.size() != stmt.determinants.size()) {
      return false;
    }
    conds.push_back(&branch.condition);
  }
  std::sort(conds.begin(), conds.end(),
            [](const core::Condition* a, const core::Condition* b) {
              return a->equalities < b->equalities;
            });
  for (size_t i = 1; i < conds.size(); ++i) {
    if (conds[i]->equalities == conds[i - 1]->equalities) return false;
  }
  return true;
}

core::Statement WithSortedBranches(const core::Statement& stmt) {
  core::Statement out = stmt;
  std::sort(out.branches.begin(), out.branches.end(),
            [](const core::Branch& a, const core::Branch& b) {
              if (a.condition.equalities != b.condition.equalities) {
                return a.condition.equalities < b.condition.equalities;
              }
              return a.assignment < b.assignment;
            });
  return out;
}

const std::pair<AttrIndex, ValueId>* RegionBinding(const Region& region,
                                                   AttrIndex attr) {
  for (const auto& binding : region) {
    if (binding.first == attr) return &binding;
    if (binding.first > attr) break;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Certificate JSON: emitted and parsed by this file only, so the grammar is
// deliberately small — flat object, string/integer/int-array fields, strings
// escaped with \" \\ \n \r \t and \u00XX for other control bytes.
// ---------------------------------------------------------------------------

void AppendEscaped(const std::string& s, std::string* out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

bool FindField(const std::string& json, const std::string& key,
               size_t* value_pos) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  *value_pos = at + needle.size();
  return true;
}

bool ParseStringField(const std::string& json, const std::string& key,
                      std::string* out) {
  size_t pos = 0;
  if (!FindField(json, key, &pos) || pos >= json.size() || json[pos] != '"') {
    return false;
  }
  ++pos;
  out->clear();
  while (pos < json.size()) {
    const char c = json[pos];
    if (c == '"') return true;
    if (c != '\\') {
      out->push_back(c);
      ++pos;
      continue;
    }
    if (pos + 1 >= json.size()) return false;
    const char esc = json[pos + 1];
    pos += 2;
    switch (esc) {
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'u': {
        if (pos + 4 > json.size()) return false;
        unsigned code = 0;
        if (std::sscanf(json.c_str() + pos, "%4x", &code) != 1) return false;
        out->push_back(static_cast<char>(code));
        pos += 4;
        break;
      }
      default:
        return false;
    }
  }
  return false;
}

bool ParseUintField(const std::string& json, const std::string& key,
                    uint64_t* out) {
  size_t pos = 0;
  if (!FindField(json, key, &pos)) return false;
  uint64_t value = 0;
  bool any = false;
  while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(json[pos] - '0');
    ++pos;
    any = true;
  }
  if (!any) return false;
  *out = value;
  return true;
}

bool ParseIndexArrayField(const std::string& json, const std::string& key,
                          std::vector<size_t>* out) {
  size_t pos = 0;
  if (!FindField(json, key, &pos) || pos >= json.size() || json[pos] != '[') {
    return false;
  }
  ++pos;
  out->clear();
  while (pos < json.size() && json[pos] != ']') {
    if (json[pos] == ',' || json[pos] == ' ') {
      ++pos;
      continue;
    }
    size_t value = 0;
    bool any = false;
    while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
      value = value * 10 + static_cast<size_t>(json[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) return false;
    out->push_back(value);
  }
  return pos < json.size();
}

std::string JoinIndices(const std::vector<size_t>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(v[i]);
  }
  out += "]";
  return out;
}

constexpr const char* kCertificateFormat =
    "guardrail-minimization-certificate-v1";

}  // namespace

uint64_t CanonicalProgramHash(const core::Program& program,
                              const Schema& schema) {
  return Fnv1a(core::ToDsl(program, schema));
}

bool HasMinimizedMarker(const std::string& program_text) {
  const std::string marker(kMinimizedMarker);
  size_t pos = 0;
  while (pos <= program_text.size()) {
    if (program_text.compare(pos, marker.size(), marker) == 0) return true;
    const size_t nl = program_text.find('\n', pos);
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  return false;
}

Result<MinimizationResult> MinimizeProgram(const core::Program& program,
                                           const Schema& schema,
                                           const MinimizeOptions& options) {
  const size_t n = program.statements.size();
  MinimizationResult res;
  res.statements_before = static_cast<int64_t>(n);
  res.branches_before = program.NumBranches();

  // Weakest candidates first: a statement with a larger determinant set (a
  // more specific restatement) or lower observed support should fall before
  // the general, hot statement that implies it — keeping the survivors the
  // ones worth probing. Index descending as the final tiebreak keeps the
  // first member of an equivalence class (e.g. exact duplicates) alive.
  std::vector<size_t> candidates(n);
  std::iota(candidates.begin(), candidates.end(), size_t{0});
  std::sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
    const auto& sa = program.statements[a];
    const auto& sb = program.statements[b];
    if (sa.determinants.size() != sb.determinants.size()) {
      return sa.determinants.size() > sb.determinants.size();
    }
    const int64_t wa = TotalSupport(sa);
    const int64_t wb = TotalSupport(sb);
    if (wa != wb) return wa < wb;
    return a > b;
  });

  std::vector<char> active(n, 1);
  for (size_t j : candidates) {
    ImplicationProof proof = StatementImpliedBy(program, j, active);
    if (!proof.implied) continue;
    active[j] = 0;
    res.dropped.push_back(j);
    res.impliers.push_back(std::move(proof.impliers));
  }

  std::vector<size_t> survivors;
  for (size_t i = 0; i < n; ++i) {
    if (active[i]) survivors.push_back(i);
  }
  if (options.reorder) {
    // Dominance order: the statements that matched the most training rows
    // go first, so the compiled engine's first-match probes and the
    // interpreter's statement loop hit the hot constraint earliest.
    std::stable_sort(survivors.begin(), survivors.end(),
                     [&](size_t a, size_t b) {
                       const int64_t wa = TotalSupport(program.statements[a]);
                       const int64_t wb = TotalSupport(program.statements[b]);
                       if (wa != wb) return wa > wb;
                       return a < b;
                     });
  }
  for (size_t i : survivors) {
    core::Statement stmt = program.statements[i];
    if (options.reorder && BranchOrderFree(stmt)) {
      // Mutually exclusive branches: hot conditions first is free.
      std::stable_sort(stmt.branches.begin(), stmt.branches.end(),
                       [](const core::Branch& a, const core::Branch& b) {
                         if (a.support != b.support) {
                           return a.support > b.support;
                         }
                         return a.condition.equalities <
                                b.condition.equalities;
                       });
    }
    res.program.statements.push_back(std::move(stmt));
  }
  res.order = survivors;
  res.statements_after = static_cast<int64_t>(res.program.statements.size());
  res.branches_after = res.program.NumBranches();

  // ---- Sampled replay (emit-side check + checksum for the certificate).
  std::vector<int64_t> domains;
  {
    const core::Interpreter orig_interp(&program);
    size_t width = std::max(static_cast<size_t>(schema.num_attributes()),
                            orig_interp.MinRowWidth());
    for (size_t a = 0; a < width; ++a) {
      domains.push_back(a < static_cast<size_t>(schema.num_attributes())
                            ? schema.attribute(static_cast<AttrIndex>(a))
                                  .domain_size()
                            : 2);
    }
  }
  uint64_t rng = options.sample_seed;
  uint64_t checksum = 0xcbf29ce484222325ULL;
  {
    const core::Interpreter orig_interp(&program);
    const core::Interpreter min_interp(&res.program);
    for (int64_t r = 0; r < options.sample_rows; ++r) {
      const Row row = SampleRow(&rng, domains);
      const bool orig_ok = orig_interp.Satisfies(row);
      const bool min_ok = min_interp.Satisfies(row);
      if (orig_ok != min_ok) {
        return Status::Internal(
            "minimization produced a verdict divergence on sampled row " +
            std::to_string(r) +
            " (implication engine bug); refusing to emit a certificate");
      }
      const char bit = orig_ok ? 1 : 0;
      checksum = Fnv1a(std::string_view(&bit, 1), checksum);
    }
  }

  // ---- Certificate assembly.
  const std::string original_dsl = core::ToDsl(program, schema);
  const std::string minimized_dsl = core::ToDsl(res.program, schema);
  std::string impliers_flat;
  for (size_t k = 0; k < res.impliers.size(); ++k) {
    if (k > 0) impliers_flat += ";";
    for (size_t i = 0; i < res.impliers[k].size(); ++i) {
      if (i > 0) impliers_flat += " ";
      impliers_flat += std::to_string(res.impliers[k][i]);
    }
  }
  std::string cert = "{\n";
  cert += "  \"format\": \"" + std::string(kCertificateFormat) + "\",\n";
  cert += "  \"original_hash\": \"" + HashHex(Fnv1a(original_dsl)) + "\",\n";
  cert += "  \"minimized_hash\": \"" + HashHex(Fnv1a(minimized_dsl)) + "\",\n";
  cert += "  \"original_statements\": " + std::to_string(n) + ",\n";
  cert += "  \"minimized_statements\": " +
          std::to_string(res.statements_after) + ",\n";
  cert += "  \"dropped\": " + JoinIndices(res.dropped) + ",\n";
  cert += "  \"impliers\": \"";
  AppendEscaped(impliers_flat, &cert);
  cert += "\",\n";
  cert += "  \"order\": " + JoinIndices(res.order) + ",\n";
  cert += "  \"sample_seed\": " + std::to_string(options.sample_seed) + ",\n";
  cert += "  \"sample_rows\": " + std::to_string(options.sample_rows) + ",\n";
  cert += "  \"sample_domains\": ";
  {
    std::string doms = "[";
    for (size_t a = 0; a < domains.size(); ++a) {
      if (a > 0) doms += ", ";
      doms += std::to_string(domains[a]);
    }
    doms += "]";
    cert += doms + ",\n";
  }
  cert += "  \"verdict_checksum\": \"" + HashHex(checksum) + "\",\n";
  cert += "  \"original_dsl\": \"";
  AppendEscaped(original_dsl, &cert);
  cert += "\"\n}\n";
  res.certificate = std::move(cert);
  return res;
}

Status VerifyCertificate(const std::string& certificate_json,
                         const core::Program& minimized,
                         const Schema& schema) {
  std::string format;
  if (!ParseStringField(certificate_json, "format", &format) ||
      format != kCertificateFormat) {
    return Status::InvalidArgument("certificate: missing or unknown format");
  }
  std::string original_hash;
  std::string minimized_hash;
  std::string impliers_flat;
  std::string verdict_checksum;
  std::string original_dsl;
  uint64_t sample_seed = 0;
  uint64_t sample_rows = 0;
  std::vector<size_t> dropped;
  std::vector<size_t> order;
  std::vector<size_t> sample_domains;
  if (!ParseStringField(certificate_json, "original_hash", &original_hash) ||
      !ParseStringField(certificate_json, "minimized_hash", &minimized_hash) ||
      !ParseStringField(certificate_json, "impliers", &impliers_flat) ||
      !ParseStringField(certificate_json, "verdict_checksum",
                        &verdict_checksum) ||
      !ParseStringField(certificate_json, "original_dsl", &original_dsl) ||
      !ParseUintField(certificate_json, "sample_seed", &sample_seed) ||
      !ParseUintField(certificate_json, "sample_rows", &sample_rows) ||
      !ParseIndexArrayField(certificate_json, "dropped", &dropped) ||
      !ParseIndexArrayField(certificate_json, "order", &order) ||
      !ParseIndexArrayField(certificate_json, "sample_domains",
                            &sample_domains)) {
    return Status::InvalidArgument("certificate: malformed field(s)");
  }

  // The embedded original is the certificate's ground truth; parse it
  // against a scratch copy of the schema (the parser may extend domains for
  // literals this schema instance has not seen).
  Schema scratch = schema;
  Result<core::Program> parsed = core::ParseProgram(original_dsl, &scratch);
  if (!parsed.ok()) {
    return Status::InvalidArgument("certificate: embedded original does not parse: " +
                                   parsed.status().ToString());
  }
  const core::Program original = std::move(*parsed);
  if (HashHex(Fnv1a(core::ToDsl(original, scratch))) != original_hash) {
    return Status::InvalidArgument(
        "certificate: original program hash mismatch");
  }
  if (HashHex(Fnv1a(core::ToDsl(minimized, scratch))) != minimized_hash) {
    return Status::InvalidArgument(
        "certificate: minimized program hash mismatch (program is not the "
        "one this certificate covers)");
  }

  // dropped + order must partition the original's statement indices.
  const size_t n = original.statements.size();
  std::vector<char> seen(n, 0);
  for (size_t j : dropped) {
    if (j >= n || seen[j]) {
      return Status::InvalidArgument("certificate: bad dropped index");
    }
    seen[j] = 1;
  }
  for (size_t j : order) {
    if (j >= n || seen[j]) {
      return Status::InvalidArgument("certificate: bad survivor index");
    }
    seen[j] = 1;
  }
  if (dropped.size() + order.size() != n ||
      order.size() != minimized.statements.size()) {
    return Status::InvalidArgument(
        "certificate: dropped+order do not partition the original");
  }
  for (size_t i = 0; i < order.size(); ++i) {
    const core::Statement& orig_stmt = original.statements[order[i]];
    const core::Statement& min_stmt = minimized.statements[i];
    if (orig_stmt == min_stmt) continue;
    // A reordered branch list is only acceptable where order is provably
    // free (full-arity, mutually exclusive conditions).
    if (!BranchOrderFree(orig_stmt) ||
        !(WithSortedBranches(orig_stmt) == WithSortedBranches(min_stmt))) {
      return Status::InvalidArgument(
          "certificate: survivor " + std::to_string(i) +
          " does not match original statement " + std::to_string(order[i]));
    }
  }

  // Re-derive every drop claim with the implication engine, in drop order —
  // the certificate's listed impliers are informative; the proof is redone
  // from scratch against the statements still standing.
  std::vector<char> active(n, 1);
  for (size_t j : dropped) {
    ImplicationProof proof = StatementImpliedBy(original, j, active);
    if (!proof.implied) {
      return Status::InvalidArgument(
          "certificate: drop of statement " + std::to_string(j) +
          " is not derivable; refusing");
    }
    active[j] = 0;
  }

  // Sampled interpreter replay: the end-to-end behavioral check.
  std::vector<int64_t> domains(sample_domains.begin(), sample_domains.end());
  {
    const core::Interpreter orig_interp(&original);
    const core::Interpreter min_interp(&minimized);
    const size_t need = std::max(orig_interp.MinRowWidth(),
                                 min_interp.MinRowWidth());
    if (domains.size() < need) {
      return Status::InvalidArgument(
          "certificate: sample_domains narrower than the programs");
    }
    uint64_t rng = sample_seed;
    uint64_t checksum = 0xcbf29ce484222325ULL;
    for (uint64_t r = 0; r < sample_rows; ++r) {
      const Row row = SampleRow(&rng, domains);
      const bool orig_ok = orig_interp.Satisfies(row);
      const bool min_ok = min_interp.Satisfies(row);
      if (orig_ok != min_ok) {
        return Status::InvalidArgument(
            "certificate: verdict divergence on sampled row " +
            std::to_string(r));
      }
      const char bit = orig_ok ? 1 : 0;
      checksum = Fnv1a(std::string_view(&bit, 1), checksum);
    }
    if (HashHex(checksum) != verdict_checksum) {
      return Status::InvalidArgument("certificate: verdict checksum mismatch");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Pass 6 (GRL6xx/GRL7xx): whole-program implication findings.
// ---------------------------------------------------------------------------

void RunSemanticPass(const PassContext& ctx, DiagnosticReport* report) {
  const core::Program& program = *ctx.program;
  const Schema& schema = *ctx.schema;
  const size_t n = program.statements.size();
  auto attr_name = [&](AttrIndex a) {
    return a >= 0 && a < schema.num_attributes()
               ? schema.attribute(a).name()
               : std::string();
  };
  auto name_list = [](const std::vector<size_t>& v) {
    std::string out;
    const size_t limit = std::min<size_t>(v.size(), 4);
    for (size_t i = 0; i < limit; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(v[i]);
    }
    if (v.size() > limit) {
      out += ", +" + std::to_string(v.size() - limit) + " more";
    }
    return out;
  };

  const ImplicationLattice lattice = BuildImplicationLattice(program);
  for (size_t j = 0; j < n; ++j) {
    const std::string dep = attr_name(program.statements[j].dependent);
    if (lattice.duplicate_of[j] != ImplicationLattice::kNoDuplicate) {
      report->Add({"GRL602", Severity::kWarning, static_cast<int32_t>(j), -1,
                   dep,
                   "exact duplicate of statement " +
                       std::to_string(lattice.duplicate_of[j]) +
                       " (advisory metadata aside); first-match evaluation "
                       "pays its probes twice for identical verdicts"});
      continue;
    }
    if (lattice.implied[j] && !lattice.proofs[j].impliers.empty()) {
      report->Add(
          {"GRL601", Severity::kWarning, static_cast<int32_t>(j), -1, dep,
           "implied by statement(s) " + name_list(lattice.proofs[j].impliers) +
               ": every row it flags is already flagged by them; "
               "minimization (analyze --minimize) can drop it with a "
               "certificate"});
    }
  }

  const std::vector<char> all_active(n, 1);
  for (size_t j = 0; j < n; ++j) {
    const core::Statement& stmt = program.statements[j];
    for (size_t b = 0; b < stmt.branches.size(); ++b) {
      const core::Branch& branch = stmt.branches[b];
      Region seed(branch.condition.equalities);
      // Intra-statement shadowing is GRL2xx territory.
      if (PreemptedInRegion(stmt, b, seed)) continue;
      const ClosureResult closure =
          ComputeClosure(std::move(seed), program, all_active, j);
      if (closure.contradiction) {
        report->Add(
            {"GRL701", Severity::kWarning, static_cast<int32_t>(j),
             static_cast<int32_t>(b),
             attr_name(closure.conflict_attribute),
             "unreachable under the program: statement(s) " +
                 name_list(closure.fired) +
                 " force conflicting values on '" +
                 attr_name(closure.conflict_attribute) +
                 "' across this branch's whole region, so every matching "
                 "row is flagged before this branch matters"});
        continue;
      }
      const auto* bound = RegionBinding(closure.region, branch.target);
      if (bound == nullptr || bound->second == branch.assignment) continue;
      // Which closure fire pinned the branch's own target? Depth 1 means a
      // single statement whose condition the branch region directly implies
      // — the pairwise GRL301 scan already reports that exact conflict.
      int depth = 0;
      for (size_t f = 0; f < closure.fired.size(); ++f) {
        if (program.statements[closure.fired[f]].dependent == branch.target) {
          depth = closure.fire_depth[f];
          break;
        }
      }
      if (depth <= 1) continue;
      report->Add(
          {"GRL702", Severity::kError, static_cast<int32_t>(j),
           static_cast<int32_t>(b), attr_name(branch.target),
           "transitive contradiction: statement(s) " +
               name_list(closure.fired) + " force '" +
               attr_name(branch.target) +
               "' to a different value on every row matching this "
               "condition; every such row violates one statement or the "
               "other no matter its data"});
    }
  }
}

}  // namespace analysis
}  // namespace guardrail
