#ifndef GUARDRAIL_ANALYSIS_CHECKER_H_
#define GUARDRAIL_ANALYSIS_CHECKER_H_

#include <cstdint>

#include "analysis/diagnostics.h"
#include "core/ast.h"
#include "core/guard.h"
#include "pgm/ci_test.h"
#include "table/schema.h"
#include "table/table.h"

namespace guardrail {
namespace analysis {

/// Configuration of the pass pipeline. Passes 1-3 need only the schema;
/// passes 4-5 are skipped when no data table is supplied.
struct AnalysisOptions {
  /// Pass 1: type/domain checking — structural validity plus every condition
  /// literal and assignment lying in the attribute's observed domain with a
  /// label type consistent with the column.
  bool check_types = true;
  /// Pass 2: satisfiability and dead-branch detection — conflicting
  /// conjunctions, duplicate/shadowed branches, zero-support conditions.
  bool check_satisfiability = true;
  /// Pass 3: intra-program contradiction detection — two statements forcing
  /// different values on the same attribute over a satisfiable row region.
  bool check_contradictions = true;
  /// Pass 4: non-triviality audit — empirical LNT/GNT (Defs. 4.1-4.2, reusing
  /// core/nontriviality) and Alg. 1 warranted-condition well-formedness plus
  /// epsilon-validity. Needs data; the LNT/GNT part runs G-squared CI tests,
  /// so deployment hot paths may prefer to disable it.
  bool check_nontriviality = true;
  /// Sub-switch of pass 4: run the G-squared LNT/GNT tests. Off leaves the
  /// cheap Alg. 1 branch invariants (GRL403-405) in place — the
  /// configuration the synthesizer's release-mode invariant check uses.
  bool check_lnt_gnt = true;
  /// Pass 5: coverage-hole reporting — observed determinant regions no
  /// branch covers. Needs data.
  bool check_coverage = true;
  /// Pass 6: whole-program implication analysis — implied/duplicate
  /// statements (GRL601/602), branches unreachable under the program
  /// (GRL701), transitive cross-statement contradictions (GRL702).
  /// Schema-only, so deployment gates (registry publish, SQL planner) get it
  /// for free.
  bool check_semantic = true;

  /// Branch tolerance for the epsilon-validity re-check (Eqn. 3); mirror the
  /// FillOptions::epsilon the program was synthesized with.
  double epsilon = 0.02;
  /// Branches below this support draw a warning (mirror
  /// FillOptions::min_branch_support).
  int64_t min_branch_support = 5;
  /// Coverage holes are reported only when the uncovered determinant
  /// combination is witnessed by at least this many rows.
  int64_t coverage_hole_min_support = 1;
  /// Per-statement cap on individually reported holes; the pass adds a
  /// summary diagnostic naming how many were elided (never a silent cut).
  int64_t max_holes_per_statement = 8;
  /// The enforcement scheme the coverage pass annotates holes with: under
  /// kRaise / kRectify a hole silently admits exactly the errors the guard
  /// exists to stop, so holes escalate from info to warning.
  core::ErrorPolicy scheme = core::ErrorPolicy::kRaise;
  /// CI-test configuration for the LNT/GNT audit (raw-data tests).
  pgm::GSquareTest::Options ci;
};

/// Static analyzer over Guardrail DSL programs: runs the configured pass
/// pipeline and returns every finding, sorted deterministically. The
/// analyzer never mutates the program and never aborts on malformed input —
/// structurally broken programs come back as error diagnostics, which is the
/// point.
class Analyzer {
 public:
  Analyzer() = default;
  explicit Analyzer(AnalysisOptions options) : options_(options) {}

  /// Schema-only analysis: passes 1-3. Use when no sample of the relation is
  /// at hand (e.g. vetting a program before attaching it to a query plan).
  DiagnosticReport Analyze(const core::Program& program,
                           const Schema& schema) const;

  /// Full analysis: passes 1-3 plus the data-dependent audits 4-5.
  DiagnosticReport Analyze(const core::Program& program, const Schema& schema,
                           const Table& data) const;

  const AnalysisOptions& options() const { return options_; }

 private:
  DiagnosticReport Run(const core::Program& program, const Schema& schema,
                       const Table* data) const;

  AnalysisOptions options_;
};

}  // namespace analysis
}  // namespace guardrail

#endif  // GUARDRAIL_ANALYSIS_CHECKER_H_
