#include "analysis/checker.h"

#include "analysis/passes/passes.h"
#include "common/telemetry/telemetry.h"

namespace guardrail {
namespace analysis {

DiagnosticReport Analyzer::Analyze(const core::Program& program,
                                   const Schema& schema) const {
  return Run(program, schema, /*data=*/nullptr);
}

DiagnosticReport Analyzer::Analyze(const core::Program& program,
                                   const Schema& schema,
                                   const Table& data) const {
  return Run(program, schema, &data);
}

DiagnosticReport Analyzer::Run(const core::Program& program,
                               const Schema& schema, const Table* data) const {
  telemetry::Span span("analysis");
  DiagnosticReport report;
  PassContext ctx;
  ctx.program = &program;
  ctx.schema = &schema;
  ctx.data = data;
  ctx.options = &options_;

  if (options_.check_types) {
    telemetry::Span pass_span("analysis.type_domain");
    RunTypeDomainPass(ctx, &report);
    report.passes_run.emplace_back("type_domain");
  }
  if (options_.check_satisfiability) {
    telemetry::Span pass_span("analysis.satisfiability");
    RunSatisfiabilityPass(ctx, &report);
    report.passes_run.emplace_back("satisfiability");
  }
  if (options_.check_contradictions) {
    telemetry::Span pass_span("analysis.contradiction");
    RunContradictionPass(ctx, &report);
    report.passes_run.emplace_back("contradiction");
  }
  if (options_.check_semantic) {
    telemetry::Span pass_span("analysis.semantic");
    RunSemanticPass(ctx, &report);
    report.passes_run.emplace_back("semantic");
  }
  if (options_.check_nontriviality && data != nullptr) {
    telemetry::Span pass_span("analysis.nontriviality");
    RunNonTrivialityPass(ctx, &report);
    report.passes_run.emplace_back("nontriviality");
  }
  if (options_.check_coverage && data != nullptr) {
    telemetry::Span pass_span("analysis.coverage");
    RunCoveragePass(ctx, &report);
    report.passes_run.emplace_back("coverage");
  }

  report.Sort();
  span.AddArg("diagnostics", static_cast<int64_t>(report.diagnostics.size()));
  span.AddArg("errors", report.CountAtSeverity(Severity::kError));
  GUARDRAIL_COUNTER_INC("analysis.runs_total");
  GUARDRAIL_COUNTER_ADD("analysis.diagnostics_total",
                        static_cast<int64_t>(report.diagnostics.size()));
  GUARDRAIL_COUNTER_ADD("analysis.errors_total",
                        report.CountAtSeverity(Severity::kError));
  GUARDRAIL_COUNTER_ADD("analysis.warnings_total",
                        report.CountAtSeverity(Severity::kWarning));
  return report;
}

}  // namespace analysis
}  // namespace guardrail
