#ifndef GUARDRAIL_ANALYSIS_IMPLICATION_H_
#define GUARDRAIL_ANALYSIS_IMPLICATION_H_

/// Whole-program implication engine: abstract interpretation of DSL programs
/// over partial-valuation regions. Where the pairwise passes (GRL2xx/3xx)
/// reason about one statement or one statement pair, this module asks what a
/// *program* forces: starting from a branch's condition region, which other
/// statements determinately fire, what values they pin, and what that closure
/// proves — statements implied by the rest of the program, branches whose
/// whole region is already flagged, and transitive cross-statement
/// contradictions no pairwise scan can see (zip→city ∧ city→state composing
/// against a conflicting zip→state).
///
/// Everything here is *sound but incomplete*: a claim of implication or
/// contradiction is a theorem about the DSL semantics (interpreter.h); a
/// failure to claim is merely "not provable by determinate-fire closure".
/// The certified minimizer (semantic.h) leans on soundness — it only drops
/// what the closure proves implied — and backstops it with a sampled
/// interpreter replay in the certificate.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/ast.h"
#include "table/schema.h"

namespace guardrail {
namespace analysis {

/// A satisfiable row region: a sorted (by attribute, at most once each)
/// partial valuation. Rows "in" the region are exactly those matching every
/// binding; unbound attributes are free.
using Region = std::vector<std::pair<AttrIndex, ValueId>>;

/// Merges two sorted equality conjunctions. Returns false when they bind the
/// same attribute to different values (the joint region is empty); otherwise
/// fills `out` with the union of constraints.
bool MergeConditions(const core::Condition& a, const core::Condition& b,
                     Region* out);

/// True when `cond` holds everywhere in the (satisfiable) region: every
/// equality of `cond` is one of the region's bindings.
bool ConditionImpliedByRegion(const core::Condition& cond,
                              const Region& region);

/// True when no row of the region can match `cond`: some equality of `cond`
/// binds an attribute the region pins to a different value.
bool ConditionContradictsRegion(const core::Condition& cond,
                                const Region& region);

/// Whether an earlier branch of `stmt` preempts `branch_index` throughout
/// `region`: under first-match-wins the branch only fires on rows no earlier
/// branch matches, so if some earlier branch matches *everywhere* in the
/// region, this branch never fires there.
bool PreemptedInRegion(const core::Statement& stmt, size_t branch_index,
                       const Region& region);

/// First-match analysis of one statement against a region.
///   >= 0          — this branch fires on *every* row of the region (its
///                   condition is implied; all earlier ones are contradicted).
///   kNoBranch     — no branch can match any row of the region.
///   kUndetermined — which branch (if any) fires depends on unbound
///                   attributes; nothing is forced region-wide.
inline constexpr int kNoBranch = -1;
inline constexpr int kUndetermined = -2;
int DeterminateFireBranch(const core::Statement& stmt, const Region& region);

/// Result of closing a region under the determinate-fire consequences of a
/// statement subset.
struct ClosureResult {
  /// The seed region plus every forced dependent=assignment binding.
  Region region;
  /// The closure derived a=v while the region already pins a to a different
  /// value: no row of the *seed* region satisfies all active statements —
  /// every such row is flagged by at least one of them.
  bool contradiction = false;
  /// Statement whose forced assignment collided (valid when contradiction).
  size_t conflict_statement = 0;
  AttrIndex conflict_attribute = 0;
  /// Statements that determinately fired, in fire order. On contradiction the
  /// conflicting statement is included as the last entry.
  std::vector<size_t> fired;
  /// Fixpoint iteration (1-based) at which each fired statement fired; a
  /// statement firing at depth 1 needed only the seed region, deeper fires
  /// are transitive. Parallel to `fired`.
  std::vector<int> fire_depth;
};

/// Closes `seed` under every statement of `program` whose index has
/// active[i] != 0 (pass an empty vector for "all active"), except
/// `skip_statement` (pass program.statements.size() to skip none). Sound:
/// every row matching `seed` that satisfies all active statements also
/// matches every binding of the returned region; when `contradiction` is set
/// no such row exists at all.
ClosureResult ComputeClosure(Region seed, const core::Program& program,
                             const std::vector<char>& active,
                             size_t skip_statement);

/// Proof that statement `j` adds nothing to the active subset: dropping it
/// cannot change any row's verdict.
struct ImplicationProof {
  bool implied = false;
  /// Statements participating in some branch's proof, sorted and deduplicated.
  std::vector<size_t> impliers;
};

/// Sound implication test: true iff every row satisfying all active
/// statements (excluding `j`) provably satisfies statement `j` — i.e. for
/// every branch b of j, either b can never fire, or the closure of b's
/// condition region under the others forces b.target = b.assignment, or that
/// region is contradictory (already all-flagged). Rows where no branch of j
/// fires never violate j, so this per-branch obligation is exhaustive.
ImplicationProof StatementImpliedBy(const core::Program& program, size_t j,
                                    const std::vector<char>& active);

/// Per-attribute value sets mentioned by a program — the abstract domains the
/// lattice is built over. `assigned` holds every value some branch can write
/// to the attribute (its consequent domain); `tested` every value some
/// condition compares it against. Both sorted, deduplicated.
struct AttributeValueSets {
  std::vector<ValueId> assigned;
  std::vector<ValueId> tested;
};

/// Indexed by attribute; attributes the program never mentions have empty
/// sets. Sized to the widest attribute referenced, plus one.
std::vector<AttributeValueSets> ComputeProgramDomains(
    const core::Program& program);

/// The implication/subsumption structure of a whole program. `implied[j]`
/// holds iff statement j is provably implied by the *other* statements
/// (transitively: the closure engine composes chains, so zip→state implied
/// by zip→city ∧ city→state is an edge here even though no single statement
/// subsumes it). `duplicate_of[j]` names the first earlier statement equal
/// to j modulo advisory metadata (support / tolerated values), or
/// kNoDuplicate.
struct ImplicationLattice {
  static constexpr size_t kNoDuplicate = static_cast<size_t>(-1);
  std::vector<char> implied;
  std::vector<ImplicationProof> proofs;  // parallel to implied
  std::vector<size_t> duplicate_of;
};

ImplicationLattice BuildImplicationLattice(const core::Program& program);

}  // namespace analysis
}  // namespace guardrail

#endif  // GUARDRAIL_ANALYSIS_IMPLICATION_H_
