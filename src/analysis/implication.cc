#include "analysis/implication.h"

#include <algorithm>
#include <map>

namespace guardrail {
namespace analysis {

bool MergeConditions(const core::Condition& a, const core::Condition& b,
                     Region* out) {
  out->clear();
  size_t i = 0;
  size_t j = 0;
  while (i < a.equalities.size() && j < b.equalities.size()) {
    const auto& ea = a.equalities[i];
    const auto& eb = b.equalities[j];
    if (ea.first < eb.first) {
      out->push_back(ea);
      ++i;
    } else if (eb.first < ea.first) {
      out->push_back(eb);
      ++j;
    } else {
      if (ea.second != eb.second) return false;
      out->push_back(ea);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.equalities.begin() + static_cast<long>(i),
              a.equalities.end());
  out->insert(out->end(), b.equalities.begin() + static_cast<long>(j),
              b.equalities.end());
  return true;
}

bool ConditionImpliedByRegion(const core::Condition& cond,
                              const Region& region) {
  size_t j = 0;
  for (const auto& eq : cond.equalities) {
    while (j < region.size() && region[j].first < eq.first) ++j;
    if (j >= region.size() || region[j] != eq) return false;
    ++j;
  }
  return true;
}

bool ConditionContradictsRegion(const core::Condition& cond,
                                const Region& region) {
  size_t j = 0;
  for (const auto& eq : cond.equalities) {
    while (j < region.size() && region[j].first < eq.first) ++j;
    if (j < region.size() && region[j].first == eq.first &&
        region[j].second != eq.second) {
      return true;
    }
  }
  return false;
}

bool PreemptedInRegion(const core::Statement& stmt, size_t branch_index,
                       const Region& region) {
  for (size_t e = 0; e < branch_index; ++e) {
    if (ConditionImpliedByRegion(stmt.branches[e].condition, region)) {
      return true;
    }
  }
  return false;
}

int DeterminateFireBranch(const core::Statement& stmt, const Region& region) {
  for (size_t b = 0; b < stmt.branches.size(); ++b) {
    const core::Condition& cond = stmt.branches[b].condition;
    if (ConditionImpliedByRegion(cond, region)) return static_cast<int>(b);
    if (!ConditionContradictsRegion(cond, region)) return kUndetermined;
  }
  return kNoBranch;
}

namespace {

/// Binding of `attr` in the sorted region, or nullptr.
const std::pair<AttrIndex, ValueId>* FindBinding(const Region& region,
                                                 AttrIndex attr) {
  auto it = std::lower_bound(
      region.begin(), region.end(), attr,
      [](const std::pair<AttrIndex, ValueId>& e, AttrIndex a) {
        return e.first < a;
      });
  if (it == region.end() || it->first != attr) return nullptr;
  return &*it;
}

void InsertBinding(Region* region, AttrIndex attr, ValueId value) {
  auto it = std::lower_bound(
      region->begin(), region->end(), attr,
      [](const std::pair<AttrIndex, ValueId>& e, AttrIndex a) {
        return e.first < a;
      });
  region->insert(it, {attr, value});
}

}  // namespace

ClosureResult ComputeClosure(Region seed, const core::Program& program,
                             const std::vector<char>& active,
                             size_t skip_statement) {
  ClosureResult out;
  out.region = std::move(seed);
  const size_t n = program.statements.size();
  // kNoBranch and a determinate fire are both monotone under region growth
  // (bindings are only added, never removed), so each statement is visited
  // until it resolves one way and then retired; only kUndetermined re-polls.
  std::vector<char> resolved(n, 0);
  int depth = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++depth;
    for (size_t i = 0; i < n; ++i) {
      if (resolved[i] || i == skip_statement) continue;
      if (!active.empty() && !active[i]) continue;
      const core::Statement& stmt = program.statements[i];
      const int fire = DeterminateFireBranch(stmt, out.region);
      if (fire == kUndetermined) continue;
      resolved[i] = 1;
      if (fire == kNoBranch) continue;
      const core::Branch& branch =
          stmt.branches[static_cast<size_t>(fire)];
      out.fired.push_back(i);
      out.fire_depth.push_back(depth);
      const auto* bound = FindBinding(out.region, branch.target);
      if (bound == nullptr) {
        InsertBinding(&out.region, branch.target, branch.assignment);
        changed = true;
      } else if (bound->second != branch.assignment) {
        out.contradiction = true;
        out.conflict_statement = i;
        out.conflict_attribute = branch.target;
        return out;
      }
      // Binding already present with the same value: the fire confirms it
      // and the statement retires without growing the region.
    }
  }
  return out;
}

ImplicationProof StatementImpliedBy(const core::Program& program, size_t j,
                                    const std::vector<char>& active) {
  ImplicationProof proof;
  if (j >= program.statements.size()) return proof;
  const core::Statement& stmt = program.statements[j];
  // Fast path: an exact structural duplicate of an active statement flags
  // precisely the rows its twin flags — no closure needed. This matters at
  // scale: the synthesis ensemble is a raw member-DAG union where most
  // statements are duplicates, and proving each via fixpoint closure over
  // the whole program would make minimization quadratic in union size.
  for (size_t k = 0; k < program.statements.size(); ++k) {
    if (k == j || (!active.empty() && !active[k])) continue;
    if (program.statements[k] == stmt) {
      proof.implied = true;
      proof.impliers.push_back(k);
      return proof;
    }
  }
  std::vector<size_t> impliers;
  for (size_t b = 0; b < stmt.branches.size(); ++b) {
    const core::Branch& branch = stmt.branches[b];
    const Region seed(branch.condition.equalities);
    // A branch an earlier sibling preempts everywhere never fires: vacuous.
    if (PreemptedInRegion(stmt, b, seed)) continue;
    ClosureResult closure = ComputeClosure(seed, program, active, j);
    if (closure.contradiction) {
      // Every row of the branch's region violates one of the active
      // statements already; the branch cannot be any row's sole flagger.
      impliers.insert(impliers.end(), closure.fired.begin(),
                      closure.fired.end());
      continue;
    }
    const auto* bound = FindBinding(closure.region, branch.target);
    if (bound != nullptr && bound->second == branch.assignment) {
      // Rows of the region satisfying the active statements carry exactly
      // the value this branch asserts, so a row this branch flags is
      // already flagged by whoever forced the binding.
      impliers.insert(impliers.end(), closure.fired.begin(),
                      closure.fired.end());
      continue;
    }
    return proof;  // Not provable for this branch.
  }
  proof.implied = true;
  std::sort(impliers.begin(), impliers.end());
  impliers.erase(std::unique(impliers.begin(), impliers.end()),
                 impliers.end());
  proof.impliers = std::move(impliers);
  return proof;
}

std::vector<AttributeValueSets> ComputeProgramDomains(
    const core::Program& program) {
  AttrIndex widest = -1;
  for (const auto& stmt : program.statements) {
    widest = std::max(widest, stmt.dependent);
    for (AttrIndex a : stmt.determinants) widest = std::max(widest, a);
    for (const auto& branch : stmt.branches) {
      widest = std::max(widest, branch.target);
      for (const auto& [attr, value] : branch.condition.equalities) {
        (void)value;
        widest = std::max(widest, attr);
      }
    }
  }
  std::vector<AttributeValueSets> domains(
      static_cast<size_t>(widest < 0 ? 0 : widest + 1));
  for (const auto& stmt : program.statements) {
    for (const auto& branch : stmt.branches) {
      if (branch.target >= 0) {
        domains[static_cast<size_t>(branch.target)].assigned.push_back(
            branch.assignment);
      }
      for (const auto& [attr, value] : branch.condition.equalities) {
        if (attr >= 0) {
          domains[static_cast<size_t>(attr)].tested.push_back(value);
        }
      }
    }
  }
  for (auto& d : domains) {
    std::sort(d.assigned.begin(), d.assigned.end());
    d.assigned.erase(std::unique(d.assigned.begin(), d.assigned.end()),
                     d.assigned.end());
    std::sort(d.tested.begin(), d.tested.end());
    d.tested.erase(std::unique(d.tested.begin(), d.tested.end()),
                   d.tested.end());
  }
  return domains;
}

ImplicationLattice BuildImplicationLattice(const core::Program& program) {
  const size_t n = program.statements.size();
  ImplicationLattice lattice;
  lattice.implied.assign(n, 0);
  lattice.proofs.resize(n);
  lattice.duplicate_of.assign(n, ImplicationLattice::kNoDuplicate);
  const std::vector<char> all_active(n, 1);
  for (size_t j = 0; j < n; ++j) {
    ImplicationProof proof = StatementImpliedBy(program, j, all_active);
    lattice.implied[j] = proof.implied ? 1 : 0;
    lattice.proofs[j] = std::move(proof);
    for (size_t i = 0; i < j; ++i) {
      // Statement equality ignores advisory support/tolerated metadata, the
      // right notion for "identical constraint synthesized twice".
      if (program.statements[i] == program.statements[j]) {
        lattice.duplicate_of[j] = i;
        break;
      }
    }
  }
  return lattice;
}

}  // namespace analysis
}  // namespace guardrail
