#ifndef GUARDRAIL_ANALYSIS_DIAGNOSTICS_H_
#define GUARDRAIL_ANALYSIS_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace guardrail {
namespace analysis {

/// Severity policy (docs/ANALYSIS.md):
///   kError   — the program is unsafe to enforce: it will flag or repair rows
///              the data-generating process considers legitimate, or it is
///              structurally broken. Deployment surfaces (the SQL planner,
///              SynthesisOptions::verify_programs) reject on error.
///   kWarning — the program is enforceable but a synthesis invariant slipped
///              (dead branch, failed non-triviality, under-supported branch);
///              worth a human look before trusting the guard.
///   kInfo    — advisory facts about enforcement behavior (coverage holes
///              under a permissive scheme).
enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

const char* SeverityName(Severity severity);

/// One finding of the static analyzer. `code` is stable and machine-readable
/// (catalog in docs/ANALYSIS.md): GRL1xx type/domain, GRL2xx satisfiability,
/// GRL3xx contradiction, GRL4xx non-triviality, GRL5xx coverage.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kInfo;
  /// Location within the program; -1 means "whole program" / "whole
  /// statement" respectively.
  int32_t statement_index = -1;
  int32_t branch_index = -1;
  /// Name of the attribute the finding concerns, or empty.
  std::string attribute;
  std::string message;

  bool operator==(const Diagnostic& other) const {
    return code == other.code && severity == other.severity &&
           statement_index == other.statement_index &&
           branch_index == other.branch_index &&
           attribute == other.attribute && message == other.message;
  }
};

/// The analyzer's output: every finding, plus which passes ran.
struct DiagnosticReport {
  std::vector<Diagnostic> diagnostics;
  /// Names of the passes that executed, in pipeline order.
  std::vector<std::string> passes_run;

  bool empty() const { return diagnostics.empty(); }
  int64_t CountAtSeverity(Severity severity) const;
  bool HasErrors() const { return CountAtSeverity(Severity::kError) > 0; }

  void Add(Diagnostic diagnostic) {
    diagnostics.push_back(std::move(diagnostic));
  }

  /// Deterministic order: (statement, branch, code, attribute, message).
  /// Both renderers require a sorted report; Analyzer::Analyze returns one.
  void Sort();

  /// Human-readable rendering, one line per diagnostic:
  ///   error GRL102 [stmt 0 branch 1] (city): value code 7 ...
  std::string ToText() const;

  /// Stable machine-readable rendering (golden-file tested; keep field order
  /// and spacing unchanged):
  ///   {"diagnostics": [{"code": ..., "severity": ..., "statement": N,
  ///     "branch": N, "attribute": ..., "message": ...}, ...],
  ///    "counts": {"error": N, "warning": N, "info": N}}
  std::string ToJson() const;
};

}  // namespace analysis
}  // namespace guardrail

#endif  // GUARDRAIL_ANALYSIS_DIAGNOSTICS_H_
