#ifndef GUARDRAIL_ANALYSIS_SEMANTIC_H_
#define GUARDRAIL_ANALYSIS_SEMANTIC_H_

/// Whole-program semantic analysis and the certified minimizer.
///
/// The semantic pass (pass 6, GRL6xx/GRL7xx) runs the implication engine
/// (implication.h) over the full program: statements the rest of the program
/// provably implies (GRL601), statements synthesized twice (GRL602),
/// branches whose whole region the program has already condemned (GRL701),
/// and transitive cross-statement contradictions the pairwise GRL301 scan
/// cannot see (GRL702).
///
/// `MinimizeProgram` turns the GRL601/602 findings into a smaller,
/// verdict-identical program: implied statements are dropped one at a time
/// (each drop proven against the statements still standing, so soundness
/// composes), survivors are reordered hottest-first for the first-match
/// probe loops, and the whole transformation is recorded in a
/// machine-checkable JSON certificate. `VerifyCertificate` re-derives every
/// drop with the implication engine and replays seeded random rows through
/// `Interpreter::Check` on both programs — the serving registry refuses to
/// publish a minimized program without a certificate that passes it.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ast.h"
#include "table/schema.h"

namespace guardrail {
namespace analysis {

struct MinimizeOptions {
  /// Reorder surviving statements by total branch support (hottest
  /// first-match probes first) and, within disjoint statements, branches by
  /// support. Off keeps the input order for byte-stable comparisons.
  bool reorder = true;
  /// Sampled-replay budget baked into the certificate. Rows are drawn
  /// uniformly per attribute from [-1, domain_size]: every legitimate code,
  /// NULL, and one out-of-dictionary code.
  int64_t sample_rows = 512;
  uint64_t sample_seed = 0x6772646cULL;
};

/// A minimization and its proof artifacts. `program` is verdict-equivalent
/// to the input: for every row, the minimized program flags it iff the
/// original does (violation *lists* shrink with the dropped statements;
/// the flag bit — Interpreter::Satisfies — is preserved exactly).
struct MinimizationResult {
  core::Program program;
  /// Original statement indices dropped, in drop order (each proven implied
  /// by the statements still active at that point).
  std::vector<size_t> dropped;
  /// Per drop: the statements whose closure proved it, original indices.
  std::vector<std::vector<size_t>> impliers;
  /// Survivors' original indices in emitted (dominance) order.
  std::vector<size_t> order;
  /// Self-contained JSON equivalence certificate (docs/ANALYSIS.md).
  std::string certificate;
  int64_t statements_before = 0;
  int64_t statements_after = 0;
  int64_t branches_before = 0;
  int64_t branches_after = 0;
};

/// Minimizes `program` and emits its certificate. Never unsound: a statement
/// is dropped only when the implication engine proves the remaining
/// statements flag every row it would have flagged, and the sampled replay
/// is run at emit time too — an engine bug surfaces as an error here, not as
/// a bad certificate. Statement indices in the certificate refer to
/// `program` as passed; canonicalize first (core::NormalizeProgram) when the
/// certificate must be reproducible across synthesis runs.
Result<MinimizationResult> MinimizeProgram(const core::Program& program,
                                           const Schema& schema,
                                           const MinimizeOptions& options = {});

/// Replays a certificate against the minimized program it claims to certify:
/// checks both canonical-text hashes, re-parses the embedded original,
/// checks drops+survivors partition it, re-derives every drop claim with the
/// implication engine, and replays the seeded row sample through the
/// interpreter verifying per-row verdict equality plus the checksum. OK iff
/// everything holds.
Status VerifyCertificate(const std::string& certificate_json,
                         const core::Program& minimized,
                         const Schema& schema);

/// FNV-1a over the canonical DSL rendering (printer.h ToDsl) — the program
/// identity the certificate pins. Comments and advisory metadata do not
/// participate.
uint64_t CanonicalProgramHash(const core::Program& program,
                              const Schema& schema);

/// Marker comment line (`# guardrail-minimized`) carried by serialized
/// minimized programs; the registry's publish gate keys off it.
inline constexpr const char* kMinimizedMarker = "# guardrail-minimized";

/// True when any line of `program_text` starts with the marker.
bool HasMinimizedMarker(const std::string& program_text);

}  // namespace analysis
}  // namespace guardrail

#endif  // GUARDRAIL_ANALYSIS_SEMANTIC_H_
