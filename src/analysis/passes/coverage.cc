#include <map>
#include <string>
#include <vector>

#include "analysis/passes/passes.h"

namespace guardrail {
namespace analysis {

namespace {

struct ComboStats {
  int64_t support = 0;
  bool covered = false;
};

}  // namespace

void RunCoveragePass(const PassContext& ctx, DiagnosticReport* report) {
  const core::Program& program = *ctx.program;
  const Schema& schema = *ctx.schema;
  const Table& data = *ctx.data;
  const AnalysisOptions& options = *ctx.options;

  const Severity hole_severity = options.scheme == core::ErrorPolicy::kIgnore
                                     ? Severity::kInfo
                                     : Severity::kWarning;
  const char* scheme_note =
      options.scheme == core::ErrorPolicy::kIgnore
          ? "under the 'ignore' scheme the hole only under-reports"
          : "dangerous under the current scheme: erroneous rows in this "
            "region pass the guard silently instead of being raised or "
            "repaired";

  for (size_t si = 0; si < program.statements.size(); ++si) {
    const core::Statement& stmt = program.statements[si];
    const int32_t stmt_index = static_cast<int32_t>(si);

    // Determinants must be real columns to group on; pass 1 reported any
    // out-of-range index already.
    bool indexable = !stmt.determinants.empty() && stmt.dependent >= 0 &&
                     stmt.dependent < schema.num_attributes();
    for (AttrIndex a : stmt.determinants) {
      if (a < 0 || a >= data.num_columns()) indexable = false;
    }
    if (!indexable) continue;
    std::vector<const core::Branch*> usable_branches;
    for (const core::Branch& branch : stmt.branches) {
      if (BranchIndexableOnData(branch, data)) {
        usable_branches.push_back(&branch);
      }
    }

    // Group rows by their determinant-value tuple; a combination is covered
    // when at least one of its rows fires a branch (first match or not —
    // coverage asks "does any branch speak for this region at all").
    std::map<std::vector<ValueId>, ComboStats> combos;
    std::vector<ValueId> key(stmt.determinants.size());
    for (RowIndex r = 0; r < data.num_rows(); ++r) {
      for (size_t d = 0; d < stmt.determinants.size(); ++d) {
        key[d] = data.Get(r, stmt.determinants[d]);
      }
      ComboStats& combo = combos[key];
      ++combo.support;
      if (!combo.covered) {
        Row row = data.GetRow(r);
        for (const core::Branch* branch : usable_branches) {
          if (branch->condition.Matches(row)) {
            combo.covered = true;
            break;
          }
        }
      }
    }

    int64_t holes_reported = 0;
    int64_t holes_elided = 0;
    for (const auto& [combo_key, combo] : combos) {
      if (combo.covered || combo.support < options.coverage_hole_min_support) {
        continue;
      }
      if (holes_reported >= options.max_holes_per_statement) {
        ++holes_elided;
        continue;
      }
      ++holes_reported;
      std::string region;
      for (size_t d = 0; d < stmt.determinants.size(); ++d) {
        if (d > 0) region += " AND ";
        const Attribute& attr = schema.attribute(stmt.determinants[d]);
        region += attr.name() + " = ";
        region += combo_key[d] == kNullValue
                      ? "<null>"
                      : "'" + attr.label(combo_key[d]) + "'";
      }
      report->Add({"GRL501", hole_severity, stmt_index, -1,
                   schema.attribute(stmt.dependent).name(),
                   "coverage hole: " + std::to_string(combo.support) +
                       " row(s) with " + region +
                       " fire no branch; " + scheme_note});
    }
    if (holes_elided > 0) {
      report->Add({"GRL502", Severity::kInfo, stmt_index, -1,
                   schema.attribute(stmt.dependent).name(),
                   std::to_string(holes_elided) +
                       " further coverage hole(s) elided (cap " +
                       std::to_string(options.max_holes_per_statement) +
                       " per statement)"});
    }
  }
}

}  // namespace analysis
}  // namespace guardrail
