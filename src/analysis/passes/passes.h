#ifndef GUARDRAIL_ANALYSIS_PASSES_PASSES_H_
#define GUARDRAIL_ANALYSIS_PASSES_PASSES_H_

/// Internal pass interface of the static analyzer. Each pass is a free
/// function appending findings to the report; the checker owns ordering,
/// telemetry, and the final sort. To add a pass: implement it here (one file
/// under passes/), give its diagnostics a fresh GRLxxx range, register it in
/// checker.cc, and document it in docs/ANALYSIS.md.

#include "analysis/checker.h"
#include "analysis/diagnostics.h"
#include "core/ast.h"
#include "table/schema.h"
#include "table/table.h"

namespace guardrail {
namespace analysis {

/// Everything a pass may look at. `data` is null for schema-only analysis;
/// data-dependent passes are not invoked without it.
struct PassContext {
  const core::Program* program = nullptr;
  const Schema* schema = nullptr;
  const Table* data = nullptr;
  const AnalysisOptions* options = nullptr;
};

/// True when every attribute the branch references exists as a column of
/// `data`. Data-dependent passes must check this before computing branch
/// statistics: Table::Get is unchecked, and the analyzer's whole job is to
/// survive corrupted programs (pass 1 reports the bad index separately).
inline bool BranchIndexableOnData(const core::Branch& branch,
                                  const Table& data) {
  auto in_range = [&](AttrIndex a) {
    return a >= 0 && a < data.num_columns();
  };
  if (!in_range(branch.target)) return false;
  for (const auto& [attr, value] : branch.condition.equalities) {
    (void)value;
    if (!in_range(attr)) return false;
  }
  return true;
}

/// Pass 1 (GRL1xx): structural validity and type/domain checking. Every
/// attribute index in range, every literal inside its attribute's domain and
/// type-consistent with the column, conditions sorted and confined to the
/// GIVEN clause. When this pass reports errors the later passes still run —
/// they index-check defensively — but their findings on a broken program are
/// best-effort.
void RunTypeDomainPass(const PassContext& ctx, DiagnosticReport* report);

/// Pass 2 (GRL2xx): satisfiability and dead branches. Conflicting
/// equalities, duplicate conditions, branches shadowed by an earlier
/// more-general branch, and (with data) branches no observed row can fire.
void RunSatisfiabilityPass(const PassContext& ctx, DiagnosticReport* report);

/// Pass 3 (GRL3xx): intra-program contradictions. Two statements that force
/// conflicting values on the same attribute for a jointly satisfiable row
/// region — such rows violate at least one statement no matter their value.
void RunContradictionPass(const PassContext& ctx, DiagnosticReport* report);

/// Pass 4 (GRL4xx, needs data): non-triviality audit. Empirical LNT/GNT of
/// the statement set (Defs. 4.1-4.2) plus the Alg. 1 branch invariants:
/// warranted conditions bind the full determinant set, branches are
/// epsilon-valid and sufficiently supported.
void RunNonTrivialityPass(const PassContext& ctx, DiagnosticReport* report);

/// Pass 5 (GRL5xx, needs data): coverage holes. Observed determinant-value
/// combinations no branch covers, annotated with the enforcement scheme that
/// makes the hole dangerous.
void RunCoveragePass(const PassContext& ctx, DiagnosticReport* report);

/// Pass 6 (GRL6xx/GRL7xx): whole-program implication analysis. Statements
/// the rest of the program provably implies (GRL601), exact duplicates
/// (GRL602), branches whose whole region the program already condemns
/// (GRL701), and transitive cross-statement contradictions beyond GRL301's
/// pairwise scan (GRL702). Implemented in analysis/semantic.cc over the
/// closure engine of analysis/implication.h.
void RunSemanticPass(const PassContext& ctx, DiagnosticReport* report);

}  // namespace analysis
}  // namespace guardrail

#endif  // GUARDRAIL_ANALYSIS_PASSES_PASSES_H_
