#include <string>
#include <vector>

#include "analysis/implication.h"
#include "analysis/passes/passes.h"

namespace guardrail {
namespace analysis {

// Region algebra (MergeConditions / ConditionImpliedByRegion /
// PreemptedInRegion) lives in analysis/implication.h, shared with the
// whole-program semantic pass; this pass keeps the pairwise same-dependent
// scan that pins findings to a concrete statement pair.
void RunContradictionPass(const PassContext& ctx, DiagnosticReport* report) {
  const core::Program& program = *ctx.program;
  const Schema& schema = *ctx.schema;
  Region region;

  for (size_t s1 = 0; s1 < program.statements.size(); ++s1) {
    const core::Statement& stmt1 = program.statements[s1];
    for (size_t s2 = s1 + 1; s2 < program.statements.size(); ++s2) {
      const core::Statement& stmt2 = program.statements[s2];
      if (stmt1.dependent != stmt2.dependent) continue;

      bool reported_pair = false;
      for (size_t b1 = 0; b1 < stmt1.branches.size() && !reported_pair; ++b1) {
        const core::Branch& br1 = stmt1.branches[b1];
        for (size_t b2 = 0; b2 < stmt2.branches.size(); ++b2) {
          const core::Branch& br2 = stmt2.branches[b2];
          if (br1.assignment == br2.assignment) continue;
          if (!MergeConditions(br1.condition, br2.condition, &region)) {
            continue;  // Jointly unsatisfiable; no shared row region.
          }
          // Both branches must actually fire somewhere in the region:
          // first-match-wins can hand the region to an earlier branch.
          if (PreemptedInRegion(stmt1, b1, region) ||
              PreemptedInRegion(stmt2, b2, region)) {
            continue;
          }
          const std::string dep_name =
              stmt1.dependent >= 0 && stmt1.dependent < schema.num_attributes()
                  ? schema.attribute(stmt1.dependent).name()
                  : std::string();
          report->Add(
              {"GRL301", Severity::kError, static_cast<int32_t>(s1),
               static_cast<int32_t>(b1), dep_name,
               "contradicts statement " + std::to_string(s2) + " branch " +
                   std::to_string(b2) +
                   ": both fire on a satisfiable row region but force "
                   "different values on '" +
                   dep_name + "'; every such row violates one of them"});
          // One witness per statement pair keeps the report readable (a
          // conflicting statement pair usually disagrees on many branches).
          reported_pair = true;
          break;
        }
      }
    }
  }
}

}  // namespace analysis
}  // namespace guardrail
