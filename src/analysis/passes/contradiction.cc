#include <string>
#include <utility>
#include <vector>

#include "analysis/passes/passes.h"

namespace guardrail {
namespace analysis {

namespace {

/// Merges two sorted equality conjunctions. Returns false when they bind the
/// same attribute to different values (the joint region is empty); otherwise
/// fills `out` with the union of constraints.
bool MergeConditions(const core::Condition& a, const core::Condition& b,
                     std::vector<std::pair<AttrIndex, ValueId>>* out) {
  out->clear();
  size_t i = 0;
  size_t j = 0;
  while (i < a.equalities.size() && j < b.equalities.size()) {
    const auto& ea = a.equalities[i];
    const auto& eb = b.equalities[j];
    if (ea.first < eb.first) {
      out->push_back(ea);
      ++i;
    } else if (eb.first < ea.first) {
      out->push_back(eb);
      ++j;
    } else {
      if (ea.second != eb.second) return false;
      out->push_back(ea);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.equalities.begin() + static_cast<long>(i),
              a.equalities.end());
  out->insert(out->end(), b.equalities.begin() + static_cast<long>(j),
              b.equalities.end());
  return true;
}

/// True when `cond` holds everywhere in the (satisfiable) region described by
/// the sorted constraint set `region`: every equality of `cond` is one of the
/// region's constraints.
bool ConditionImpliedByRegion(
    const core::Condition& cond,
    const std::vector<std::pair<AttrIndex, ValueId>>& region) {
  size_t j = 0;
  for (const auto& eq : cond.equalities) {
    while (j < region.size() && region[j].first < eq.first) ++j;
    if (j >= region.size() || region[j] != eq) return false;
    ++j;
  }
  return true;
}

/// Whether an earlier branch of `stmt` preempts `branch_index` throughout
/// `region`: under first-match-wins the branch only fires on rows no earlier
/// branch matches, so if some earlier branch matches *everywhere* in the
/// region, this branch never fires there.
bool PreemptedInRegion(
    const core::Statement& stmt, size_t branch_index,
    const std::vector<std::pair<AttrIndex, ValueId>>& region) {
  for (size_t e = 0; e < branch_index; ++e) {
    if (ConditionImpliedByRegion(stmt.branches[e].condition, region)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void RunContradictionPass(const PassContext& ctx, DiagnosticReport* report) {
  const core::Program& program = *ctx.program;
  const Schema& schema = *ctx.schema;
  std::vector<std::pair<AttrIndex, ValueId>> region;

  for (size_t s1 = 0; s1 < program.statements.size(); ++s1) {
    const core::Statement& stmt1 = program.statements[s1];
    for (size_t s2 = s1 + 1; s2 < program.statements.size(); ++s2) {
      const core::Statement& stmt2 = program.statements[s2];
      if (stmt1.dependent != stmt2.dependent) continue;

      bool reported_pair = false;
      for (size_t b1 = 0; b1 < stmt1.branches.size() && !reported_pair; ++b1) {
        const core::Branch& br1 = stmt1.branches[b1];
        for (size_t b2 = 0; b2 < stmt2.branches.size(); ++b2) {
          const core::Branch& br2 = stmt2.branches[b2];
          if (br1.assignment == br2.assignment) continue;
          if (!MergeConditions(br1.condition, br2.condition, &region)) {
            continue;  // Jointly unsatisfiable; no shared row region.
          }
          // Both branches must actually fire somewhere in the region:
          // first-match-wins can hand the region to an earlier branch.
          if (PreemptedInRegion(stmt1, b1, region) ||
              PreemptedInRegion(stmt2, b2, region)) {
            continue;
          }
          const std::string dep_name =
              stmt1.dependent >= 0 && stmt1.dependent < schema.num_attributes()
                  ? schema.attribute(stmt1.dependent).name()
                  : std::string();
          report->Add(
              {"GRL301", Severity::kError, static_cast<int32_t>(s1),
               static_cast<int32_t>(b1), dep_name,
               "contradicts statement " + std::to_string(s2) + " branch " +
                   std::to_string(b2) +
                   ": both fire on a satisfiable row region but force "
                   "different values on '" +
                   dep_name + "'; every such row violates one of them"});
          // One witness per statement pair keeps the report readable (a
          // conflicting statement pair usually disagrees on many branches).
          reported_pair = true;
          break;
        }
      }
    }
  }
}

}  // namespace analysis
}  // namespace guardrail
