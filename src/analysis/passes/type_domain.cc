#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/passes/passes.h"
#include "common/string_util.h"

namespace guardrail {
namespace analysis {

namespace {

bool AttrInRange(const Schema& schema, AttrIndex attr) {
  return attr >= 0 && attr < schema.num_attributes();
}

std::string AttrName(const Schema& schema, AttrIndex attr) {
  return AttrInRange(schema, attr) ? schema.attribute(attr).name()
                                   : std::string();
}

/// Lazily computed per-attribute facts: which codes the data actually
/// witnesses (the schema domain can be wider — parsing a program extends it
/// for literals unseen in the sample) and whether every witnessed label
/// parses as a number (the column's inferred type).
class DomainFacts {
 public:
  DomainFacts(const Schema& schema, const Table* data)
      : schema_(schema), data_(data) {}

  bool Observed(AttrIndex attr, ValueId value) {
    if (data_ == nullptr) return true;  // No sample: schema domain rules.
    return Facts(attr).observed.count(value) > 0;
  }

  bool NumericColumn(AttrIndex attr) { return Facts(attr).numeric; }

 private:
  struct AttrFacts {
    std::unordered_set<ValueId> observed;
    bool numeric = false;
  };

  AttrFacts& Facts(AttrIndex attr) {
    auto it = cache_.find(attr);
    if (it != cache_.end()) return it->second;
    AttrFacts facts;
    if (data_ != nullptr && attr < data_->num_columns()) {
      for (ValueId v : data_->column(attr)) {
        if (v != kNullValue) facts.observed.insert(v);
      }
    }
    facts.numeric = !facts.observed.empty();
    for (ValueId v : facts.observed) {
      double unused;
      if (!ParseDouble(schema_.attribute(attr).label(v), &unused)) {
        facts.numeric = false;
        break;
      }
    }
    return cache_.emplace(attr, std::move(facts)).first->second;
  }

  const Schema& schema_;
  const Table* data_;
  std::unordered_map<AttrIndex, AttrFacts> cache_;
};

}  // namespace

void RunTypeDomainPass(const PassContext& ctx, DiagnosticReport* report) {
  const core::Program& program = *ctx.program;
  const Schema& schema = *ctx.schema;
  DomainFacts facts(schema, ctx.data);

  auto check_value = [&](AttrIndex attr, ValueId value, int32_t stmt_index,
                         int32_t branch_index, const char* what) {
    // `attr` was range-checked by the caller.
    if (value == kNullValue) {
      report->Add({"GRL107", Severity::kError, stmt_index, branch_index,
                   AttrName(schema, attr),
                   std::string(what) + " is NULL"});
      return;
    }
    if (value < 0 || value >= schema.attribute(attr).domain_size()) {
      report->Add({"GRL102", Severity::kError, stmt_index, branch_index,
                   AttrName(schema, attr),
                   std::string(what) + " code " + std::to_string(value) +
                       " is outside the domain of '" +
                       schema.attribute(attr).name() + "' (size " +
                       std::to_string(schema.attribute(attr).domain_size()) +
                       ")"});
      return;
    }
    const std::string& label = schema.attribute(attr).label(value);
    if (ctx.data != nullptr && !facts.Observed(attr, value)) {
      report->Add({"GRL111", Severity::kWarning, stmt_index, branch_index,
                   AttrName(schema, attr),
                   std::string(what) + " '" + label +
                       "' is never observed in the data for attribute '" +
                       schema.attribute(attr).name() + "'"});
    }
    if (ctx.data != nullptr && facts.NumericColumn(attr)) {
      double unused;
      if (!ParseDouble(label, &unused)) {
        report->Add({"GRL110", Severity::kError, stmt_index, branch_index,
                     AttrName(schema, attr),
                     std::string(what) + " '" + label +
                         "' is not numeric but every observed value of '" +
                         schema.attribute(attr).name() + "' is"});
      }
    }
  };

  for (size_t si = 0; si < program.statements.size(); ++si) {
    const core::Statement& stmt = program.statements[si];
    const int32_t stmt_index = static_cast<int32_t>(si);

    if (stmt.determinants.empty()) {
      report->Add({"GRL108", Severity::kError, stmt_index, -1, "",
                   "statement has an empty GIVEN clause"});
    }
    if (stmt.branches.empty()) {
      report->Add({"GRL109", Severity::kError, stmt_index, -1, "",
                   "statement has an empty HAVING clause"});
    }
    if (!AttrInRange(schema, stmt.dependent)) {
      report->Add({"GRL101", Severity::kError, stmt_index, -1, "",
                   "ON attribute index " + std::to_string(stmt.dependent) +
                       " is out of range"});
      continue;  // Branch checks below need a valid dependent.
    }

    std::set<AttrIndex> det_set;
    for (AttrIndex a : stmt.determinants) {
      if (!AttrInRange(schema, a)) {
        report->Add({"GRL101", Severity::kError, stmt_index, -1, "",
                     "GIVEN attribute index " + std::to_string(a) +
                         " is out of range"});
        continue;
      }
      if (a == stmt.dependent) {
        report->Add({"GRL105", Severity::kError, stmt_index, -1,
                     AttrName(schema, a),
                     "dependent attribute appears in its own GIVEN clause"});
      }
      if (!det_set.insert(a).second) {
        report->Add({"GRL104", Severity::kError, stmt_index, -1,
                     AttrName(schema, a),
                     "duplicate determinant attribute '" +
                         schema.attribute(a).name() + "'"});
      }
    }

    for (size_t bi = 0; bi < stmt.branches.size(); ++bi) {
      const core::Branch& branch = stmt.branches[bi];
      const int32_t branch_index = static_cast<int32_t>(bi);
      if (branch.target != stmt.dependent) {
        report->Add({"GRL106", Severity::kError, stmt_index, branch_index,
                     AttrName(schema, branch.target),
                     "branch target differs from the statement's ON "
                     "attribute '" +
                         schema.attribute(stmt.dependent).name() + "'"});
      } else {
        check_value(branch.target, branch.assignment, stmt_index, branch_index,
                    "assignment literal");
      }
      std::set<AttrIndex> seen;
      for (const auto& [attr, value] : branch.condition.equalities) {
        if (!AttrInRange(schema, attr)) {
          report->Add({"GRL101", Severity::kError, stmt_index, branch_index,
                       "",
                       "condition attribute index " + std::to_string(attr) +
                           " is out of range"});
          continue;
        }
        if (det_set.count(attr) == 0) {
          report->Add({"GRL103", Severity::kError, stmt_index, branch_index,
                       AttrName(schema, attr),
                       "condition attribute '" + schema.attribute(attr).name() +
                           "' is outside the GIVEN clause"});
        }
        if (!seen.insert(attr).second) {
          report->Add({"GRL104", Severity::kError, stmt_index, branch_index,
                       AttrName(schema, attr),
                       "attribute '" + schema.attribute(attr).name() +
                           "' repeated within one conjunction"});
        }
        check_value(attr, value, stmt_index, branch_index,
                    "condition literal");
      }
      if (!std::is_sorted(branch.condition.equalities.begin(),
                          branch.condition.equalities.end())) {
        report->Add({"GRL112", Severity::kError, stmt_index, branch_index, "",
                     "condition equalities are not sorted by attribute"});
      }
    }
  }
}

}  // namespace analysis
}  // namespace guardrail
