#include <string>
#include <vector>

#include "analysis/passes/passes.h"
#include "core/metrics.h"

namespace guardrail {
namespace analysis {

namespace {

/// True when every equality of `sub` appears in `super` (both sorted by
/// attribute, the AST invariant). An earlier branch whose condition is a
/// subset of a later branch's condition matches every row the later one
/// does, so the later branch is dead under first-match-wins.
bool ConditionSubset(const core::Condition& sub, const core::Condition& super) {
  size_t j = 0;
  for (const auto& eq : sub.equalities) {
    while (j < super.equalities.size() && super.equalities[j].first < eq.first) {
      ++j;
    }
    if (j >= super.equalities.size() || super.equalities[j] != eq) return false;
    ++j;
  }
  return true;
}

/// Self-conflict: the same attribute constrained to two different values.
/// Constructible only through corruption (Condition keeps attributes unique),
/// which is exactly what the analyzer exists to catch.
bool SelfConflicting(const core::Condition& condition) {
  for (size_t i = 1; i < condition.equalities.size(); ++i) {
    if (condition.equalities[i].first == condition.equalities[i - 1].first &&
        condition.equalities[i].second != condition.equalities[i - 1].second) {
      return true;
    }
  }
  return false;
}

}  // namespace

void RunSatisfiabilityPass(const PassContext& ctx, DiagnosticReport* report) {
  const core::Program& program = *ctx.program;
  const Schema& schema = *ctx.schema;

  for (size_t si = 0; si < program.statements.size(); ++si) {
    const core::Statement& stmt = program.statements[si];
    const int32_t stmt_index = static_cast<int32_t>(si);
    const std::string dep_name =
        stmt.dependent >= 0 && stmt.dependent < schema.num_attributes()
            ? schema.attribute(stmt.dependent).name()
            : std::string();

    for (size_t bi = 0; bi < stmt.branches.size(); ++bi) {
      const core::Branch& branch = stmt.branches[bi];
      const int32_t branch_index = static_cast<int32_t>(bi);

      if (SelfConflicting(branch.condition)) {
        report->Add({"GRL201", Severity::kError, stmt_index, branch_index,
                     dep_name,
                     "condition constrains one attribute to two different "
                     "values; no row can satisfy it"});
        continue;  // Shadowing/support of an unsatisfiable branch is moot.
      }

      // First-match-wins: an earlier branch with a subset condition fires on
      // every row this branch would, so this branch is unreachable.
      for (size_t ei = 0; ei < bi; ++ei) {
        const core::Branch& earlier = stmt.branches[ei];
        if (SelfConflicting(earlier.condition)) continue;
        if (!ConditionSubset(earlier.condition, branch.condition)) continue;
        const bool identical = earlier.condition == branch.condition;
        const bool same_effect = earlier.assignment == branch.assignment;
        report->Add(
            {identical ? "GRL203" : "GRL202", Severity::kWarning, stmt_index,
             branch_index, dep_name,
             std::string(identical ? "duplicate condition: " : "shadowed: ") +
                 "branch " + std::to_string(ei) +
                 (identical ? " has the identical condition"
                            : "'s more general condition matches first") +
                 (same_effect ? " (same assignment; dead but harmless)"
                              : " with a different assignment; this branch "
                                "never fires")});
        break;  // One witness is enough.
      }

      if (ctx.data != nullptr && BranchIndexableOnData(branch, *ctx.data)) {
        core::BranchStats stats = core::ComputeBranchStats(branch, *ctx.data);
        if (stats.support == 0) {
          report->Add({"GRL204", Severity::kWarning, stmt_index, branch_index,
                       dep_name,
                       "no observed row satisfies this branch's condition "
                       "(support 0); the branch is unexercisable on the "
                       "analyzed data"});
        }
      }
    }
  }
}

}  // namespace analysis
}  // namespace guardrail
