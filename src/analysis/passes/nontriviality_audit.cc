#include <algorithm>
#include <string>
#include <vector>

#include "analysis/passes/passes.h"
#include "core/metrics.h"
#include "core/sketch.h"
#include "pgm/ci_test.h"
#include "pgm/encoded_data.h"

namespace guardrail {
namespace analysis {

namespace {

/// A statement participates in the G-squared audit only when every attribute
/// it names is a real column; out-of-range indexes were already reported by
/// pass 1 and would make the CI tests read out of bounds.
bool StatementIndexableOnData(const core::Statement& stmt, const Table& data) {
  auto in_range = [&](AttrIndex a) {
    return a >= 0 && a < data.num_columns();
  };
  if (!in_range(stmt.dependent)) return false;
  for (AttrIndex a : stmt.determinants) {
    if (!in_range(a)) return false;
  }
  return true;
}

/// Alg. 1's warranted conditions are *observed determinant-value
/// combinations*: every branch binds the full determinant set. A condition
/// that binds only a subset fires over a widened region the synthesis
/// procedure never warranted.
bool BindsFullDeterminantSet(const core::Statement& stmt,
                             const core::Branch& branch) {
  if (branch.condition.equalities.size() != stmt.determinants.size()) {
    return false;
  }
  std::vector<AttrIndex> dets = stmt.determinants;
  std::sort(dets.begin(), dets.end());
  for (size_t i = 0; i < dets.size(); ++i) {
    if (branch.condition.equalities[i].first != dets[i]) return false;
  }
  return true;
}

}  // namespace

void RunNonTrivialityPass(const PassContext& ctx, DiagnosticReport* report) {
  const core::Program& program = *ctx.program;
  const Schema& schema = *ctx.schema;
  const Table& data = *ctx.data;
  const AnalysisOptions& options = *ctx.options;

  // ---- Alg. 1 branch invariants: warranted conditions, epsilon-validity,
  // ---- support floor.
  for (size_t si = 0; si < program.statements.size(); ++si) {
    const core::Statement& stmt = program.statements[si];
    const int32_t stmt_index = static_cast<int32_t>(si);
    const std::string dep_name =
        stmt.dependent >= 0 && stmt.dependent < schema.num_attributes()
            ? schema.attribute(stmt.dependent).name()
            : std::string();

    for (size_t bi = 0; bi < stmt.branches.size(); ++bi) {
      const core::Branch& branch = stmt.branches[bi];
      const int32_t branch_index = static_cast<int32_t>(bi);

      if (!BindsFullDeterminantSet(stmt, branch)) {
        report->Add(
            {"GRL403", Severity::kWarning, stmt_index, branch_index, dep_name,
             "condition does not bind the full GIVEN set; Alg. 1's "
             "warranted conditions are complete determinant-value "
             "combinations, so this branch fires over an unwarranted "
             "region"});
      }

      if (!BranchIndexableOnData(branch, data)) continue;
      core::BranchStats stats = core::ComputeBranchStats(branch, data);
      if (static_cast<double>(stats.loss) >
          static_cast<double>(stats.support) * options.epsilon) {
        report->Add(
            {"GRL404", Severity::kError, stmt_index, branch_index, dep_name,
             "branch is not epsilon-valid on the analyzed data (loss " +
                 std::to_string(stats.loss) + " > " +
                 std::to_string(options.epsilon) + " * support " +
                 std::to_string(stats.support) +
                 "); enforcing it would repair legitimate rows"});
      } else if (stats.support > 0 &&
                 stats.support < options.min_branch_support) {
        report->Add({"GRL405", Severity::kWarning, stmt_index, branch_index,
                     dep_name,
                     "branch support " + std::to_string(stats.support) +
                         " is below the synthesis floor of " +
                         std::to_string(options.min_branch_support) +
                         "; the branch may be a single-row coincidence"});
      }
    }
  }

  // ---- Empirical LNT/GNT of the statement set (Defs. 4.1-4.2), with the
  // ---- same G-squared machinery PC used. Synthesis learns structure on the
  // ---- auxiliary sample where the tests are well-powered; re-testing on the
  // ---- raw relation can be underpowered, and an underpowered (unreliable)
  // ---- verdict is NOT evidence of triviality — the linter only reports when
  // ---- every determinant shows *reliable* independence.
  if (!options.check_lnt_gnt) return;
  core::ProgramSketch sketch;
  std::vector<int32_t> sketch_to_statement;
  for (size_t si = 0; si < program.statements.size(); ++si) {
    const core::Statement& stmt = program.statements[si];
    if (!StatementIndexableOnData(stmt, data) || stmt.determinants.empty()) {
      continue;
    }
    core::StatementSketch s;
    s.determinants = stmt.determinants;
    std::sort(s.determinants.begin(), s.determinants.end());
    s.dependent = stmt.dependent;
    sketch.statements.push_back(std::move(s));
    sketch_to_statement.push_back(static_cast<int32_t>(si));
  }
  if (sketch.empty()) return;

  pgm::EncodedData encoded = pgm::EncodeIdentity(data);
  pgm::GSquareTest test(&encoded, options.ci);
  auto reliably_trivial = [&](const core::StatementSketch& s,
                              const std::vector<int32_t>& z) {
    for (AttrIndex det : s.determinants) {
      pgm::CiResult r = test.Test(s.dependent, det, z);
      if (!r.reliable || !r.independent) return false;
    }
    return true;
  };
  for (size_t k = 0; k < sketch.statements.size(); ++k) {
    const core::StatementSketch& s = sketch.statements[k];
    const int32_t stmt_index = sketch_to_statement[k];
    const std::string dep_name = schema.attribute(s.dependent).name();
    if (reliably_trivial(s, {})) {
      report->Add(
          {"GRL401", Severity::kWarning, stmt_index, -1, dep_name,
           "statement fails local non-triviality (Def. 4.1): '" + dep_name +
               "' shows no detectable dependence on its determinants"});
      continue;
    }
    // GNT (Def. 4.2 / Example 4.1): conditioning on another statement's
    // determinants must not reliably extinguish this statement's dependence.
    for (size_t j = 0; j < sketch.statements.size(); ++j) {
      if (j == k) continue;
      const core::StatementSketch& other = sketch.statements[j];
      std::vector<int32_t> z;
      for (AttrIndex a : other.determinants) {
        if (a != s.dependent &&
            std::find(s.determinants.begin(), s.determinants.end(), a) ==
                s.determinants.end()) {
          z.push_back(a);
        }
      }
      if (z.empty()) continue;
      if (reliably_trivial(s, z)) {
        report->Add(
            {"GRL402", Severity::kWarning, stmt_index, -1, dep_name,
             "statement fails global non-triviality (Def. 4.2): its "
             "dependence vanishes when conditioning on another statement's "
             "determinants (Example 4.1 redundancy)"});
        break;
      }
    }
  }
}

}  // namespace analysis
}  // namespace guardrail
