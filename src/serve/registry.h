#ifndef GUARDRAIL_SERVE_REGISTRY_H_
#define GUARDRAIL_SERVE_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/ast.h"
#include "core/batch_eval.h"
#include "table/schema.h"

namespace guardrail {
namespace serve {

/// One immutable published program version. Snapshots are handed out as
/// shared_ptr<const>; once published nothing ever mutates them, so any
/// number of request threads can validate against one while a reload swaps
/// in its successor.
struct ProgramSnapshot {
  std::string dataset;
  /// Monotonically increasing per dataset, starting at 1.
  uint64_t version = 0;
  /// FNV-1a over the program text (and the companion schema CSV when one was
  /// used); the registry skips reloads whose sources hash identically.
  uint64_t source_hash = 0;
  /// Wall-clock load time (microseconds since the Unix epoch), for operator
  /// visibility — ordering guarantees come from `version`, never from this.
  int64_t load_unix_micros = 0;
  std::string source_path;
  core::Program program;
  /// The schema the program was resolved against (attribute order defines
  /// the wire row layout for this dataset).
  Schema schema;
  /// Batch evaluator compiled once at publication, pointing into `program`
  /// (which is heap-stable for the snapshot's lifetime). Every request on
  /// this snapshot shares it; the engine falls back to the interpreter when
  /// it is absent or a chaos failpoint is armed.
  std::unique_ptr<const core::CompiledProgram> compiled;

  int32_t statement_count() const {
    return static_cast<int32_t>(program.statements.size());
  }
};

/// Versioned, hot-reloadable store of analyzer-clean constraint programs,
/// keyed by dataset id.
///
/// Publication is RCU-style: the registry holds one shared_ptr per dataset
/// behind a mutex; Get copies the pointer (a refcount bump) and a reload
/// swaps it. In-flight requests keep the snapshot they started with — and
/// report its version — for as long as they hold the pointer; the old
/// version is freed when the last request drops it.
///
/// Every load runs the static analyzer's schema-level passes (type/domain,
/// satisfiability, contradiction; see docs/ANALYSIS.md) and rejects programs
/// with error-severity diagnostics: a broken program must never become
/// servable, and a broken *reload* must never displace a good live version.
class ProgramRegistry {
 public:
  ProgramRegistry() = default;
  ProgramRegistry(const ProgramRegistry&) = delete;
  ProgramRegistry& operator=(const ProgramRegistry&) = delete;

  /// Parses `program_text` (the `# guardrail-program v1` format) against a
  /// copy of `base_schema`, analyzes it, and — if clean — publishes it as
  /// the dataset's next version. Returns the new version number.
  ///
  /// Minimized programs (text carrying the `# guardrail-minimized` marker,
  /// see analysis/semantic.h) are additionally gated on their equivalence
  /// certificate: `certificate_text` must hold a certificate that
  /// analysis::VerifyCertificate accepts for this exact program, or the
  /// publish is refused. A minimizer (or an operator editing a minimized
  /// file by hand) must never ship a weaker guard than the original without
  /// a replayable proof that the verdicts are identical.
  Result<uint64_t> LoadFromText(const std::string& dataset,
                                const std::string& program_text,
                                const Schema& base_schema,
                                const std::string& source_path = "",
                                const std::string& certificate_text = "");

  /// The dataset's current snapshot, or nullptr when it has none.
  std::shared_ptr<const ProgramSnapshot> Get(const std::string& dataset) const;

  /// Every live snapshot, sorted by dataset id.
  std::vector<std::shared_ptr<const ProgramSnapshot>> List() const;

  /// Scans `dir` for `<dataset>.grl` program files, each with an optional
  /// companion `<dataset>.csv` whose header (and rows, when present) seeds
  /// the schema the program is resolved against, and an optional companion
  /// `<dataset>.cert.json` minimization certificate (required when the
  /// program text carries the minimized marker — see LoadFromText).
  /// (Re)loads every file whose combined content hash changed since the last
  /// poll. A file that fails to parse, analyze, or certify is skipped with a
  /// WARN log — the previous version (if any) stays live; a daemon must not
  /// die, or lose a good program, because one reload was bad.
  ///
  /// Returns the number of versions published by this poll.
  Result<int> PollDirectory(const std::string& dir);

  /// Total versions ever published (across all datasets).
  int64_t versions_published() const;

  /// Evicts superseded snapshots whose external refcount has drained (no
  /// in-flight request still pins them), returning how many were freed. A
  /// snapshot still held by a request survives — its verdicts are being
  /// computed against it — and is retried next GC. Runs automatically on
  /// every publish and every PollDirectory; callable directly for tests and
  /// health probes.
  int GcSuperseded();

  /// Superseded snapshots still retained (drained or pinned) — the health
  /// frame's gauge. Run GcSuperseded() first for the pinned-only number.
  int superseded_live() const;

  /// Datasets with a live snapshot.
  int live_datasets() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const ProgramSnapshot>>
      live_;
  /// Superseded-but-retained snapshots: a hot reload moves the displaced
  /// version here so operators can see how many old versions in-flight
  /// requests still pin (RCU grace period made observable). GcSuperseded
  /// drops the drained ones.
  std::vector<std::shared_ptr<const ProgramSnapshot>> superseded_;
  /// dataset -> combined source hash of the last *attempted* load, so a
  /// persistently broken file is not re-parsed (and re-logged) every poll.
  std::unordered_map<std::string, uint64_t> attempted_hash_;
  int64_t versions_published_ = 0;
};

/// FNV-1a 64-bit content hash used for reload change detection.
uint64_t HashBytes(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace serve
}  // namespace guardrail

#endif  // GUARDRAIL_SERVE_REGISTRY_H_
