#include "serve/registry.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/checker.h"
#include "analysis/semantic.h"
#include "common/failpoint.h"
#include "common/telemetry/telemetry.h"
#include "core/serialization.h"
#include "table/table.h"

namespace guardrail {
namespace serve {

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int64_t NowUnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

uint64_t HashBytes(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Result<uint64_t> ProgramRegistry::LoadFromText(
    const std::string& dataset, const std::string& program_text,
    const Schema& base_schema, const std::string& source_path,
    const std::string& certificate_text) {
  GUARDRAIL_FAILPOINT("serve.registry_load");
  telemetry::Span span("serve.load_program");
  span.AddArg("dataset", dataset);

  auto snapshot = std::make_shared<ProgramSnapshot>();
  snapshot->dataset = dataset;
  snapshot->schema = base_schema;
  snapshot->source_path = source_path;
  snapshot->source_hash = HashBytes(program_text);
  if (!certificate_text.empty()) {
    // The certificate is part of the published identity: editing only the
    // certificate must look like a new source to the reload change check.
    snapshot->source_hash =
        HashBytes(certificate_text, snapshot->source_hash);
  }
  GUARDRAIL_ASSIGN_OR_RETURN(
      snapshot->program,
      core::DeserializeProgram(program_text, &snapshot->schema));

  // Certified-minimization gate: a program that claims to be minimized must
  // prove it. The certificate re-derives every dropped statement with the
  // implication engine and replays seeded rows through the interpreter
  // against the embedded original — no proof, no publish.
  if (analysis::HasMinimizedMarker(program_text)) {
    if (certificate_text.empty()) {
      GUARDRAIL_COUNTER_INC("serve.registry.rejected_uncertified");
      return Status::InvalidArgument(
          "program for dataset '" + dataset +
          "' carries the minimized marker but no equivalence certificate; "
          "refusing to publish an unproven minimization");
    }
    Status certified = analysis::VerifyCertificate(
        certificate_text, snapshot->program, snapshot->schema);
    if (!certified.ok()) {
      GUARDRAIL_COUNTER_INC("serve.registry.rejected_uncertified");
      return Status::InvalidArgument(
          "minimization certificate for dataset '" + dataset +
          "' failed verification: " + certified.ToString());
    }
  }

  // Gate on the analyzer's schema-level passes. Error diagnostics mean the
  // program would mis-vet rows; refuse to publish it.
  analysis::Analyzer analyzer;
  analysis::DiagnosticReport report =
      analyzer.Analyze(snapshot->program, snapshot->schema);
  if (report.HasErrors()) {
    GUARDRAIL_COUNTER_INC("serve.registry.rejected_programs");
    return Status::InvalidArgument(
        "program for dataset '" + dataset + "' rejected by the analyzer (" +
        std::to_string(report.CountAtSeverity(analysis::Severity::kError)) +
        " error(s)):\n" + report.ToText());
  }

  // Compile the batch evaluator once, after the analyzer gate: every
  // request served from this snapshot shares it. The program it points into
  // lives inside the same heap-allocated snapshot, so the pointer stays
  // valid exactly as long as any request holds the snapshot.
  snapshot->compiled = std::make_unique<const core::CompiledProgram>(
      core::CompiledProgram::Compile(snapshot->program));

  snapshot->load_unix_micros = NowUnixMicros();
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(dataset);
    version = it == live_.end() ? 1 : it->second->version + 1;
    snapshot->version = version;
    // RCU publish: readers holding the old shared_ptr keep their version;
    // new Get calls see this one. The displaced version moves to the
    // superseded roster until its last reader drains (GcSuperseded).
    if (it != live_.end()) superseded_.push_back(std::move(it->second));
    live_[dataset] = std::move(snapshot);
    ++versions_published_;
  }
  GcSuperseded();
  GUARDRAIL_COUNTER_INC("serve.registry.versions_published");
  span.AddArg("version", static_cast<int64_t>(version));
  GUARDRAIL_LOG(INFO) << "published program version"
                      << telemetry::Kv("dataset", dataset)
                      << telemetry::Kv("version",
                                       static_cast<int64_t>(version));
  return version;
}

std::shared_ptr<const ProgramSnapshot> ProgramRegistry::Get(
    const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(dataset);
  return it == live_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const ProgramSnapshot>> ProgramRegistry::List()
    const {
  std::vector<std::shared_ptr<const ProgramSnapshot>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(live_.size());
    for (const auto& [dataset, snapshot] : live_) out.push_back(snapshot);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a->dataset < b->dataset; });
  return out;
}

Result<int> ProgramRegistry::PollDirectory(const std::string& dir) {
  namespace fs = std::filesystem;
  telemetry::Span span("serve.reload_poll");
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot scan program directory " + dir + ": " +
                           ec.message());
  }

  // Deterministic load order (directory iteration order is unspecified).
  std::vector<fs::path> program_files;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".grl") {
      program_files.push_back(entry.path());
    }
  }
  std::sort(program_files.begin(), program_files.end());

  int published = 0;
  for (const fs::path& path : program_files) {
    std::string dataset = path.stem().string();
    auto program_text = ReadFileBytes(path.string());
    if (!program_text.ok()) {
      GUARDRAIL_LOG(WARN) << "skipping unreadable program file"
                          << telemetry::Kv("path", path.string());
      continue;
    }

    // Companion schema CSV: header names the attributes (wire row layout);
    // any data rows pre-populate domains, mirroring the offline flow where
    // the relation is loaded before the program.
    fs::path csv_path = path;
    csv_path.replace_extension(".csv");
    std::string csv_text;
    bool has_csv = fs::is_regular_file(csv_path, ec);
    if (has_csv) {
      auto csv = ReadFileBytes(csv_path.string());
      if (!csv.ok()) {
        GUARDRAIL_LOG(WARN) << "skipping program with unreadable schema CSV"
                            << telemetry::Kv("path", csv_path.string());
        continue;
      }
      csv_text = std::move(csv).value();
    }

    // Companion minimization certificate (required by LoadFromText when the
    // program text carries the minimized marker).
    fs::path cert_path = path;
    cert_path.replace_extension(".cert.json");
    std::string cert_text;
    if (fs::is_regular_file(cert_path, ec)) {
      auto cert = ReadFileBytes(cert_path.string());
      if (!cert.ok()) {
        GUARDRAIL_LOG(WARN)
            << "skipping program with unreadable certificate"
            << telemetry::Kv("path", cert_path.string());
        continue;
      }
      cert_text = std::move(cert).value();
    }

    uint64_t combined =
        HashBytes(cert_text, HashBytes(csv_text, HashBytes(*program_text)));
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto seen = attempted_hash_.find(dataset);
      if (seen != attempted_hash_.end() && seen->second == combined) continue;
      attempted_hash_[dataset] = combined;
    }

    Schema schema;
    if (has_csv) {
      auto doc = ParseCsv(csv_text);
      if (!doc.ok()) {
        GUARDRAIL_COUNTER_INC("serve.registry.load_errors");
        GUARDRAIL_LOG(WARN) << "bad schema CSV"
                            << telemetry::Kv("path", csv_path.string())
                            << telemetry::Kv("error",
                                             doc.status().ToString());
        continue;
      }
      auto table = Table::FromCsv(*doc);
      if (!table.ok()) {
        GUARDRAIL_COUNTER_INC("serve.registry.load_errors");
        GUARDRAIL_LOG(WARN) << "bad schema CSV"
                            << telemetry::Kv("path", csv_path.string())
                            << telemetry::Kv("error",
                                             table.status().ToString());
        continue;
      }
      schema = table->schema();
    }

    auto version = LoadFromText(dataset, *program_text, schema, path.string(),
                                cert_text);
    if (!version.ok()) {
      GUARDRAIL_COUNTER_INC("serve.registry.load_errors");
      GUARDRAIL_LOG(WARN) << "program load failed; previous version stays live"
                          << telemetry::Kv("dataset", dataset)
                          << telemetry::Kv("error",
                                           version.status().ToString());
      continue;
    }
    ++published;
  }
  if (published > 0) {
    span.AddArg("published", static_cast<int64_t>(published));
  }
  GcSuperseded();
  return published;
}

int64_t ProgramRegistry::versions_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_published_;
}

int ProgramRegistry::GcSuperseded() {
  int evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto keep = superseded_.begin();
    for (auto it = superseded_.begin(); it != superseded_.end(); ++it) {
      // use_count == 1 means the roster holds the only reference: every
      // in-flight request that pinned this version has finished.
      if (it->use_count() == 1) {
        ++evicted;
      } else {
        *keep++ = std::move(*it);
      }
    }
    superseded_.erase(keep, superseded_.end());
  }
  if (evicted > 0) {
    GUARDRAIL_COUNTER_ADD("serve.registry.snapshots_evicted", evicted);
  }
  return evicted;
}

int ProgramRegistry::superseded_live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(superseded_.size());
}

int ProgramRegistry::live_datasets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(live_.size());
}

}  // namespace serve
}  // namespace guardrail
