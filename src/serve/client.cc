#include "serve/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>

namespace guardrail {
namespace serve {

namespace {

Status SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t r =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status RecvAll(int fd, uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = recv(fd, buf + got, n - got, 0);
    if (r == 0) return Status::IoError("connection closed by server");
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, int port,
                               int timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }

  if (timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IoError("connect to " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    close(fd);
    return st;
  }
  return Client(fd);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Result<std::string> Client::RoundTrip(const std::string& frame) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  GUARDRAIL_RETURN_NOT_OK(SendAll(fd_, frame));

  uint8_t prefix[kFramePrefixBytes];
  GUARDRAIL_RETURN_NOT_OK(RecvAll(fd_, prefix, sizeof(prefix)));
  uint64_t payload_size = DecodeFramePrefix(prefix);
  GUARDRAIL_RETURN_NOT_OK(CheckFrameSize(payload_size));

  std::string payload(payload_size, '\0');
  GUARDRAIL_RETURN_NOT_OK(RecvAll(
      fd_, reinterpret_cast<uint8_t*>(payload.data()), payload.size()));
  return payload;
}

Result<ValidateResponse> Client::Validate(const ValidateRequest& request) {
  GUARDRAIL_ASSIGN_OR_RETURN(std::string payload,
                             RoundTrip(EncodeValidateRequest(request)));
  ValidateResponse response;
  GUARDRAIL_RETURN_NOT_OK(DecodeValidateResponse(payload, &response));
  return response;
}

Result<PingResponse> Client::Ping() {
  GUARDRAIL_ASSIGN_OR_RETURN(std::string payload,
                             RoundTrip(EncodePingRequest()));
  PingResponse response;
  GUARDRAIL_RETURN_NOT_OK(DecodePingResponse(payload, &response));
  return response;
}

Result<HealthResponse> Client::Health() {
  GUARDRAIL_ASSIGN_OR_RETURN(std::string payload,
                             RoundTrip(EncodeHealthRequest()));
  HealthResponse response;
  GUARDRAIL_RETURN_NOT_OK(DecodeHealthResponse(payload, &response));
  return response;
}

Result<IngestResponse> Client::Ingest(const IngestRequest& request) {
  GUARDRAIL_ASSIGN_OR_RETURN(std::string payload,
                             RoundTrip(EncodeIngestRequest(request)));
  IngestResponse response;
  GUARDRAIL_RETURN_NOT_OK(DecodeIngestResponse(payload, &response));
  return response;
}

}  // namespace serve
}  // namespace guardrail
