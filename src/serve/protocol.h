#ifndef GUARDRAIL_SERVE_PROTOCOL_H_
#define GUARDRAIL_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/guard.h"

namespace guardrail {
namespace serve {

/// Wire protocol of the guard-serving daemon (docs/SERVING.md): a stream of
/// length-prefixed frames over TCP. Every multi-byte integer on the wire is
/// explicit little-endian — encode/decode go through the byte-at-a-time
/// helpers below, never through a host-order memcpy.
///
///   frame   := u32 payload_size | payload
///   payload := u8 msg_type | body
///   string  := u32 size | bytes
///
/// The size prefix covers the payload only. A prefix larger than
/// kMaxFrameBytes is rejected before any allocation; a payload shorter than
/// its declared fields decodes to InvalidArgument ("truncated"), and a
/// payload with bytes left over after its last field likewise — the decoder
/// never trusts the peer.

inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB
inline constexpr uint32_t kFramePrefixBytes = 4;
/// v2 added the client-assigned request id, the retry-after / duplicate
/// response fields, and the Health frames. v3 added the streaming Ingest
/// frames (docs/STREAMING.md).
inline constexpr uint32_t kProtocolVersion = 3;

enum class MsgType : uint8_t {
  kValidateRequest = 1,
  kValidateResponse = 2,
  kPingRequest = 3,
  kPingResponse = 4,
  kHealthRequest = 5,
  kHealthResponse = 6,
  kIngestRequest = 7,
  kIngestResponse = 8,
};

/// How the rows of a ValidateRequest payload are encoded.
enum class RowFormat : uint8_t {
  /// RFC-4180 CSV; the first record is a header that must name the dataset's
  /// attributes in schema order. Empty fields are ordinary empty-string
  /// labels, exactly as Table::FromCsv treats them offline.
  kCsv = 0,
  /// JSON array of flat objects, one per row: [{"attr": "label", ...}, ...].
  /// Every schema attribute must be present; JSON null maps to the NULL
  /// value (a missing cell).
  kJson = 1,
};

const char* RowFormatName(RowFormat format);

/// One batch of rows to vet against a dataset's current program version.
struct ValidateRequest {
  std::string dataset;
  core::ErrorPolicy scheme = core::ErrorPolicy::kRaise;
  RowFormat format = RowFormat::kCsv;
  /// 0 = no deadline; otherwise the server stops validating after this many
  /// milliseconds and answers StatusCode::kTimeout.
  uint32_t deadline_ms = 0;
  /// Client-assigned idempotency key; 0 = unassigned. A server remembers
  /// recently answered ids in a bounded dedup window and replays the cached
  /// response for a retransmit, so a retry after a lost response can never
  /// re-apply a coerce/rectify verdict (docs/SERVING.md, "Resilience").
  uint64_t request_id = 0;
  /// The rows, encoded per `format`.
  std::string payload;
};

enum class RowVerdict : uint8_t {
  kOk = 0,         // The row satisfies every constraint.
  kViolation = 1,  // At least one statement disagrees with the row.
  kFailed = 2,     // The row could not be evaluated (fault, malformed row).
};

struct RowResult {
  RowVerdict verdict = RowVerdict::kOk;
  /// Number of violated statements (0 unless kViolation).
  uint16_t violations = 0;
  /// Under kViolation with scheme coerce/rectify: the repaired row as one
  /// CSV record (empty when the repair left the row unchanged). Under
  /// kFailed: the evaluation error text. Empty otherwise.
  std::string detail;

  bool operator==(const RowResult& other) const {
    return verdict == other.verdict && violations == other.violations &&
           detail == other.detail;
  }
};

struct ValidateResponse {
  /// kOk when the batch was processed (individual rows may still carry
  /// kViolation / kFailed verdicts); a request-level failure otherwise
  /// (kNotFound dataset, kInvalidArgument payload, kResourceExhausted
  /// overload, kTimeout deadline, ...), with `rows` empty.
  StatusCode code = StatusCode::kOk;
  std::string error;  // Populated when code != kOk.
  /// With kResourceExhausted: how long the shedding server suggests the
  /// client wait before retrying (graceful load shedding instead of
  /// accept-then-time-out). 0 = no hint.
  uint32_t retry_after_ms = 0;
  /// True when this response was replayed from the server's dedup window
  /// rather than recomputed (the request id had already been answered).
  bool duplicate = false;
  /// The program version the verdicts were computed against — the version
  /// that was live when the request started, even if a hot reload swapped in
  /// a newer one mid-flight.
  uint64_t program_version = 0;
  std::vector<RowResult> rows;
};

/// One batch of trusted rows feeding a dataset's streaming synthesizer
/// (protocol v3; served only when the daemon runs with --ingest). Unlike
/// ValidateRequest, these rows *teach* the stream — they update sufficient
/// statistics and may trigger a resynthesis under the server's policy.
struct IngestRequest {
  std::string dataset;
  RowFormat format = RowFormat::kCsv;
  /// Skip the drift gate and force a full resynthesis after this batch.
  bool force_refresh = false;
  /// The rows, encoded per `format`.
  std::string payload;
};

/// What a refresh attempt did, on the wire. Mirrors stream::RefreshAction;
/// kept as explicit ids so the C++ enum can evolve without moving bytes.
enum class IngestAction : uint8_t {
  kNone = 0,         // No refresh attempted (policy said wait, or window small).
  kNoop = 1,         // Drift scored clean; served program untouched.
  kIncremental = 2,  // Localized drift; affected statements re-filled.
  kFull = 3,         // Full resynthesis from accumulated data.
};

struct IngestResponse {
  /// kOk when the batch was ingested (whether or not a refresh ran);
  /// kNotImplemented when the server runs without --ingest.
  StatusCode code = StatusCode::kOk;
  std::string error;  // Populated when code != kOk.
  /// Rows accepted into the stream from this batch.
  uint64_t rows_ingested = 0;
  IngestAction action = IngestAction::kNone;
  /// Max per-pair drift G² statistic scored this attempt (bit-cast double;
  /// 0.0 when no drift scoring ran).
  double drift_score = 0.0;
  /// The dataset's served program version after this batch (0 when the
  /// stream has not published yet).
  uint64_t program_version = 0;
  /// True when this batch's refresh published a new program version.
  bool published = false;
};

struct DatasetInfo {
  std::string dataset;
  uint64_t version = 0;
  uint64_t source_hash = 0;
  uint32_t statements = 0;
};

struct PingResponse {
  uint32_t protocol_version = kProtocolVersion;
  bool draining = false;
  std::vector<DatasetInfo> datasets;
};

/// Active health probe (ReplicaPool sends these between requests). Cheaper
/// than Ping — no per-dataset list — and carries the load signals a
/// balancer needs: registry freshness and in-flight pressure.
struct HealthResponse {
  uint32_t protocol_version = kProtocolVersion;
  bool draining = false;
  /// Requests currently admitted by the engine.
  uint32_t inflight = 0;
  /// The engine's admission limit (inflight == max_inflight means the next
  /// arrival is shed).
  uint32_t max_inflight = 0;
  /// Total program versions ever published by this node's registry; a
  /// replica lagging the fleet shows a smaller number.
  uint64_t registry_versions = 0;
  /// Datasets currently servable.
  uint32_t live_datasets = 0;
  /// Superseded snapshots still pinned by in-flight requests (the registry
  /// GC gauge; see ProgramRegistry::superseded_live_count).
  uint32_t superseded_snapshots = 0;
};

// ---- Little-endian primitives ------------------------------------------

void PutU8(uint8_t v, std::string* out);
void PutU16(uint16_t v, std::string* out);
void PutU32(uint32_t v, std::string* out);
void PutU64(uint64_t v, std::string* out);
void PutString(std::string_view s, std::string* out);

/// Decodes the 4-byte frame prefix (little-endian payload size).
uint32_t DecodeFramePrefix(const uint8_t* bytes);

/// Validates a decoded frame prefix: nonzero and within kMaxFrameBytes.
Status CheckFrameSize(uint64_t payload_size);

/// Bounds-checked sequential reader over one frame payload. Every getter
/// fails with InvalidArgument instead of reading past the end, and Finish()
/// rejects trailing bytes, so a malformed or truncated payload can never
/// crash the decoder or smuggle extra data.
class WireReader {
 public:
  explicit WireReader(std::string_view payload) : data_(payload) {}

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetString(std::string* out);

  size_t remaining() const { return data_.size() - pos_; }

  /// OK iff the payload was consumed exactly.
  Status Finish() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---- Message encode / decode -------------------------------------------
// Encoders return a complete frame (prefix included), ready to write to the
// socket. Decoders take one frame's payload (prefix stripped) and validate
// exhaustively: unknown message types, out-of-range scheme / format /
// verdict ids, truncated bodies, and trailing bytes are all clean
// InvalidArgument.

std::string EncodeValidateRequest(const ValidateRequest& request);
std::string EncodeValidateResponse(const ValidateResponse& response);
std::string EncodePingRequest();
std::string EncodePingResponse(const PingResponse& response);
std::string EncodeHealthRequest();
std::string EncodeHealthResponse(const HealthResponse& response);
std::string EncodeIngestRequest(const IngestRequest& request);
std::string EncodeIngestResponse(const IngestResponse& response);

/// First byte of the payload as a message type (not yet range-checked
/// against the known types; decoders do that).
Status PeekMsgType(std::string_view payload, MsgType* out);

Status DecodeValidateRequest(std::string_view payload, ValidateRequest* out);
Status DecodeValidateResponse(std::string_view payload, ValidateResponse* out);
Status DecodePingRequest(std::string_view payload);
Status DecodePingResponse(std::string_view payload, PingResponse* out);
Status DecodeHealthRequest(std::string_view payload);
Status DecodeHealthResponse(std::string_view payload, HealthResponse* out);
Status DecodeIngestRequest(std::string_view payload, IngestRequest* out);
Status DecodeIngestResponse(std::string_view payload, IngestResponse* out);

}  // namespace serve
}  // namespace guardrail

#endif  // GUARDRAIL_SERVE_PROTOCOL_H_
