#include "serve/pool.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <utility>

#include "common/rng.h"
#include "common/telemetry/telemetry.h"

namespace guardrail {
namespace serve {

namespace {

/// Sleep granularity of the probe loop: how quickly the pool destructor can
/// stop the prober, not a probing-rate knob.
constexpr int64_t kProbeSliceMs = 20;

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<std::vector<Endpoint>> ParseEndpoints(const std::string& spec) {
  std::vector<Endpoint> endpoints;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t comma = spec.find(',', begin);
    std::string item = spec.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    begin = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    // Trim surrounding whitespace.
    size_t first = item.find_first_not_of(" \t");
    size_t last = item.find_last_not_of(" \t");
    if (first == std::string::npos) continue;  // Empty segment.
    item = item.substr(first, last - first + 1);

    size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon + 1 >= item.size()) {
      return Status::InvalidArgument("endpoint '" + item +
                                     "' is not host:port");
    }
    Endpoint ep;
    ep.host = item.substr(0, colon);
    if (ep.host.empty()) ep.host = "127.0.0.1";
    try {
      ep.port = std::stoi(item.substr(colon + 1));
    } catch (...) {
      return Status::InvalidArgument("endpoint '" + item +
                                     "' has a non-numeric port");
    }
    if (ep.port <= 0 || ep.port > 65535) {
      return Status::InvalidArgument("endpoint '" + item +
                                     "' port out of range");
    }
    endpoints.push_back(std::move(ep));
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("no endpoints in '" + spec + "'");
  }
  return endpoints;
}

ReplicaPool::ReplicaPool(std::vector<Endpoint> endpoints, PoolOptions options)
    : options_(options) {
  replicas_.reserve(endpoints.size());
  for (Endpoint& ep : endpoints) {
    auto replica = std::make_unique<Replica>();
    replica->endpoint = std::move(ep);
    replicas_.push_back(std::move(replica));
  }
  // Random 64-bit starting point + sequential increments. The base mixes
  // clock and address entropy on top of the seed: ids are the server-side
  // dedup key, so two pools (e.g. consecutive CLI invocations) must never
  // replay each other's id stream, or the second would be answered from the
  // first's dedup window.
  uint64_t base = options_.seed;
  base ^= static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  base ^= static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this)) << 17;
  Rng rng(base);
  next_request_id_.store(rng.NextUint64() | 1, std::memory_order_relaxed);
  if (options_.health_probe_interval_ms > 0 && !replicas_.empty()) {
    prober_ = std::thread([this] { ProbeLoop(); });
  }
}

ReplicaPool::~ReplicaPool() {
  stop_probe_.store(true, std::memory_order_release);
  if (prober_.joinable()) prober_.join();
}

uint64_t ReplicaPool::NextRequestId() {
  uint64_t id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  // 0 means "unassigned" on the wire; skip it on wrap-around.
  if (id == 0) id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

size_t ReplicaPool::PickReplica() {
  const size_t n = replicas_.size();
  const size_t start = rr_next_.fetch_add(1, std::memory_order_relaxed) % n;
  const int64_t now = NowMillis();
  for (size_t i = 0; i < n; ++i) {
    size_t idx = (start + i) % n;
    Replica& r = *replicas_[idx];
    if (now < r.open_until_ms.load(std::memory_order_acquire)) continue;
    if (r.draining.load(std::memory_order_acquire)) continue;
    return idx;
  }
  // Everything open or draining: send the round-robin choice anyway — the
  // elapsed breakers' half-open probes are the only way back to health.
  return start;
}

void ReplicaPool::RecordSuccess(size_t replica) {
  Replica& r = *replicas_[replica];
  r.consecutive_failures.store(0, std::memory_order_release);
  r.open_until_ms.store(0, std::memory_order_release);
}

void ReplicaPool::RecordFailure(size_t replica) {
  Replica& r = *replicas_[replica];
  r.failures.fetch_add(1, std::memory_order_relaxed);
  int consecutive =
      r.consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (consecutive >= options_.breaker_failure_threshold) {
    r.open_until_ms.store(NowMillis() + options_.breaker_open_ms,
                          std::memory_order_release);
    GUARDRAIL_COUNTER_INC("pool.breaker_opened");
  }
}

Result<ValidateResponse> ReplicaPool::AttemptPooled(
    size_t replica, const ValidateRequest& request) {
  Replica& r = *replicas_[replica];
  r.requests.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(r.mu);
  if (!r.client.has_value()) {
    Result<Client> connected = Client::Connect(
        r.endpoint.host, r.endpoint.port, options_.connect_timeout_ms);
    if (!connected.ok()) {
      RecordFailure(replica);
      return connected.status();
    }
    r.client.emplace(std::move(*connected));
  }
  Result<ValidateResponse> response = r.client->Validate(request);
  if (!response.ok()) {
    // The stream may be desynchronized (half-written frame, half-read
    // response); drop the connection so the next attempt starts clean.
    r.client.reset();
    RecordFailure(replica);
    return response;
  }
  RecordSuccess(replica);
  return response;
}

Result<ValidateResponse> ReplicaPool::AttemptHedged(
    size_t primary, const ValidateRequest& request) {
  // Hedge attempts run on one-shot connections owned by detached threads:
  // every captured value is a copy or lives in the shared_ptr state, so a
  // slow loser can finish (or time out) after this call — and even after
  // the pool — without touching freed memory.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    int pending = 0;
    bool decided = false;
    Result<ValidateResponse> result =
        Status::IoError("hedge: no attempt completed");
    std::vector<std::pair<size_t, bool>> outcomes;  // (replica, transport ok)
  };
  auto shared = std::make_shared<Shared>();

  auto fire = [&](size_t idx) {
    Endpoint ep = replicas_[idx]->endpoint;
    replicas_[idx]->requests.fetch_add(1, std::memory_order_relaxed);
    int timeout_ms = options_.connect_timeout_ms;
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      ++shared->pending;
    }
    std::thread([shared, ep, idx, timeout_ms, request] {
      Result<ValidateResponse> attempt = [&]() -> Result<ValidateResponse> {
        GUARDRAIL_ASSIGN_OR_RETURN(
            Client client, Client::Connect(ep.host, ep.port, timeout_ms));
        return client.Validate(request);
      }();
      std::lock_guard<std::mutex> lock(shared->mu);
      --shared->pending;
      shared->outcomes.emplace_back(idx, attempt.ok());
      // First transport-level success is decisive (the server answered, and
      // thanks to the dedup window both hedges carry the same verdicts);
      // otherwise remember the failure in case nothing succeeds.
      if (!shared->decided && (attempt.ok() || shared->pending == 0)) {
        shared->decided = attempt.ok();
        shared->result = std::move(attempt);
      }
      shared->cv.notify_all();
    }).detach();
  };

  fire(primary);
  std::unique_lock<std::mutex> lock(shared->mu);
  bool answered = shared->cv.wait_for(
      lock, std::chrono::milliseconds(options_.hedge_ms),
      [&] { return shared->decided; });
  if (!answered && replicas_.size() > 1) {
    // Pick a different replica for the hedge.
    size_t secondary = PickReplica();
    if (secondary == primary) secondary = (primary + 1) % replicas_.size();
    GUARDRAIL_COUNTER_INC("pool.hedges");
    lock.unlock();
    fire(secondary);
    lock.lock();
  }
  shared->cv.wait(lock,
                  [&] { return shared->decided || shared->pending == 0; });
  // Apply whatever outcomes have landed to the breakers (a loser finishing
  // after this point just misses its bookkeeping).
  std::vector<std::pair<size_t, bool>> outcomes;
  outcomes.swap(shared->outcomes);
  Result<ValidateResponse> result = shared->result;
  lock.unlock();
  for (const auto& [idx, ok] : outcomes) {
    if (ok) {
      RecordSuccess(idx);
    } else {
      RecordFailure(idx);
    }
  }
  return result;
}

Result<ValidateResponse> ReplicaPool::Validate(ValidateRequest request) {
  if (replicas_.empty()) {
    return Status::InvalidArgument("replica pool has no endpoints");
  }
  if (request.request_id == 0) request.request_id = NextRequestId();
  Deadline deadline = options_.total_deadline_ms > 0
                          ? Deadline::AfterMillis(options_.total_deadline_ms)
                          : Deadline::Infinite();
  RetrySchedule schedule(options_.retry);
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  Result<ValidateResponse> last =
      Status::Timeout("deadline expired before the first attempt");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (deadline.Expired()) break;
    size_t idx = PickReplica();
    GUARDRAIL_COUNTER_INC("pool.attempts");
    last = options_.hedge_ms > 0 ? AttemptHedged(idx, request)
                                 : AttemptPooled(idx, request);
    if (last.ok()) {
      // Transport worked: the server's answer is authoritative unless it is
      // itself a retryable condition (shed / per-attempt timeout).
      if (last->code == StatusCode::kOk ||
          !IsRetryableStatusCode(last->code)) {
        return last;
      }
      GUARDRAIL_COUNTER_INC("pool.server_retryable");
    } else if (!IsRetryableStatus(last.status())) {
      return last;
    }
    if (attempt + 1 >= max_attempts) break;
    int64_t backoff_ms = schedule.NextBackoffMillis();
    // A shedding server's retry-after hint is a floor on our own backoff.
    if (last.ok() &&
        static_cast<int64_t>(last->retry_after_ms) > backoff_ms) {
      backoff_ms = last->retry_after_ms;
    }
    if (static_cast<double>(backoff_ms) >=
        deadline.RemainingSeconds() * 1000.0) {
      break;
    }
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    GUARDRAIL_COUNTER_INC("pool.retries");
  }
  return last;
}

Result<HealthResponse> ReplicaPool::Health(size_t replica) {
  if (replica >= replicas_.size()) {
    return Status::OutOfRange("no replica " + std::to_string(replica));
  }
  Replica& r = *replicas_[replica];
  // One-shot connection: probing must not contend with a long validation
  // holding the pooled connection's lock.
  Result<HealthResponse> health = [&]() -> Result<HealthResponse> {
    GUARDRAIL_ASSIGN_OR_RETURN(
        Client client, Client::Connect(r.endpoint.host, r.endpoint.port,
                                       options_.connect_timeout_ms));
    return client.Health();
  }();
  if (!health.ok()) {
    RecordFailure(replica);
    return health;
  }
  r.draining.store(health->draining, std::memory_order_release);
  RecordSuccess(replica);
  return health;
}

void ReplicaPool::ProbeLoop() {
  int64_t next_probe = NowMillis();
  while (!stop_probe_.load(std::memory_order_acquire)) {
    if (NowMillis() < next_probe) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kProbeSliceMs));
      continue;
    }
    next_probe = NowMillis() + options_.health_probe_interval_ms;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (stop_probe_.load(std::memory_order_acquire)) return;
      Result<HealthResponse> health = Health(i);
      GUARDRAIL_COUNTER_INC(health.ok() ? "pool.probe_ok"
                                        : "pool.probe_failed");
    }
  }
}

std::vector<ReplicaPool::ReplicaStats> ReplicaPool::Stats() const {
  std::vector<ReplicaStats> out;
  out.reserve(replicas_.size());
  const int64_t now = NowMillis();
  for (const auto& replica : replicas_) {
    ReplicaStats stats;
    stats.endpoint = replica->endpoint.ToString();
    stats.requests = replica->requests.load(std::memory_order_relaxed);
    stats.failures = replica->failures.load(std::memory_order_relaxed);
    stats.consecutive_failures =
        replica->consecutive_failures.load(std::memory_order_acquire);
    stats.breaker_open =
        now < replica->open_until_ms.load(std::memory_order_acquire);
    stats.draining = replica->draining.load(std::memory_order_acquire);
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace serve
}  // namespace guardrail
