#ifndef GUARDRAIL_SERVE_ENGINE_H_
#define GUARDRAIL_SERVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace guardrail {
namespace serve {

/// Bounded admission for the request engine: at most `limit` requests may be
/// in flight at once; an arrival past the limit is rejected immediately so
/// overload surfaces as ResourceExhausted backpressure on the wire instead
/// of an unbounded queue eating memory and blowing every deadline.
class AdmissionController {
 public:
  explicit AdmissionController(int limit) : limit_(limit < 1 ? 1 : limit) {}

  bool TryAcquire() {
    int inflight = inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (inflight >= limit_) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    return true;
  }

  void Release() { inflight_.fetch_sub(1, std::memory_order_acq_rel); }

  int inflight() const { return inflight_.load(std::memory_order_acquire); }
  int limit() const { return limit_; }

 private:
  std::atomic<int> inflight_{0};
  const int limit_;
};

struct EngineOptions {
  /// Concurrent requests admitted; arrivals beyond this get
  /// ResourceExhausted responses (see AdmissionController).
  int max_inflight = 64;
  /// Per-request row cap; larger batches are rejected as InvalidArgument
  /// before any work.
  int64_t max_batch_rows = 1 << 20;
  /// Applied when a request carries no deadline; 0 = unlimited.
  uint32_t default_deadline_ms = 0;
  /// Batches at least this large validate via the shared thread pool's
  /// sharded ParallelFor (the PR-3 row-scan pattern); smaller ones run
  /// inline on the request thread.
  int64_t parallel_batch_threshold = 2048;
  /// Rows per ParallelFor shard.
  int64_t rows_per_shard = 1024;
  /// Completed responses remembered per engine, keyed by client-assigned
  /// request id, for exactly-once retries (0 disables dedup). Sizing: must
  /// cover retries-in-flight across the pool, not total throughput — see
  /// docs/SERVING.md "Resilience".
  int dedup_window = 1024;
  /// retry_after_ms hint attached to ResourceExhausted shed responses.
  uint32_t retry_after_hint_ms = 25;
  /// Validate row blocks with the snapshot's compiled batch evaluator
  /// (core/batch_eval.h) instead of per-row interpreter calls. Rows the
  /// compiled path cannot judge (narrow rows) and whole requests while the
  /// "interpreter.check" chaos failpoint is armed still take the scalar
  /// path, so verdict bytes and chaos replays are unchanged. False forces
  /// the scalar path everywhere (parity tests, interpreter baselines).
  bool use_batch_eval = true;
};

/// Bounded FIFO memory of answered request ids. A retransmitted id replays
/// the remembered response instead of re-running validation, which is what
/// makes coerce/rectify verdicts exactly-once under client retries: the
/// first execution's bytes are returned again, never a second execution.
/// Only kOk responses are remembered — a shed or failed request must really
/// retry.
///
/// Entries are scoped by the program version they were computed against: a
/// retry that spans a hot reload re-runs under the live program instead of
/// replaying a superseded-program verdict (its repairs would be stale
/// against the constraints now being enforced), and the re-run's response
/// displaces the stale entry. Thread-safe.
class ResponseDedupWindow {
 public:
  explicit ResponseDedupWindow(int capacity)
      : capacity_(capacity < 0 ? 0 : capacity) {}

  /// True (and *out filled, with duplicate=true) when `request_id` was
  /// already answered by a response computed against `live_version`. An
  /// entry from a superseded version misses, so the caller recomputes.
  bool Lookup(uint64_t request_id, uint64_t live_version,
              ValidateResponse* out) const;

  /// Remembers a completed response, evicting the oldest id past capacity.
  /// First answer wins within a program version; a response computed
  /// against a newer version than the remembered one displaces it.
  void Remember(uint64_t request_id, const ValidateResponse& response);

  int size() const;
  int capacity() const { return capacity_; }

 private:
  const int capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, ValidateResponse> by_id_;
  std::deque<uint64_t> order_;  // Oldest first.
};

/// The serving request engine: resolves a dataset's current program
/// snapshot, decodes the request's rows, and vets each row with the offline
/// `core::Guard` semantics under the requested enforcement scheme.
///
/// Contract: Handle never fails at the transport level. Every outcome —
/// including overload, unknown datasets, malformed payloads, injected
/// faults, and deadline expiry — is a ValidateResponse with a status code,
/// and a failure in one request leaves the engine fully serviceable for the
/// next (per-request isolation).
class ValidationEngine {
 public:
  ValidationEngine(ProgramRegistry* registry, EngineOptions options)
      : registry_(registry),
        options_(options),
        admission_(options.max_inflight),
        dedup_(options.dedup_window) {}

  ValidationEngine(const ValidationEngine&) = delete;
  ValidationEngine& operator=(const ValidationEngine&) = delete;

  ValidateResponse Handle(const ValidateRequest& request);

  const EngineOptions& options() const { return options_; }
  AdmissionController& admission() { return admission_; }
  const ResponseDedupWindow& dedup() const { return dedup_; }

 private:
  ValidateResponse HandleAdmitted(const ValidateRequest& request);

  ProgramRegistry* registry_;
  EngineOptions options_;
  AdmissionController admission_;
  ResponseDedupWindow dedup_;
};

/// Decodes request rows (labels, per RowFormat) into dictionary-coded rows
/// under `schema`, extending attribute domains for unseen labels exactly as
/// the offline CSV path does. Exposed for tests.
Result<std::vector<Row>> DecodeRows(RowFormat format,
                                    const std::string& payload,
                                    Schema* schema, int64_t max_rows);

}  // namespace serve
}  // namespace guardrail

#endif  // GUARDRAIL_SERVE_ENGINE_H_
