#include "serve/engine.h"

#include <optional>
#include <utility>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/telemetry/telemetry.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/guard.h"
#include "core/interpreter.h"

namespace guardrail {
namespace serve {

namespace {

/// Minimal JSON reader for the serve row format: an array of flat objects
/// whose values are strings or null. Anything else — nested structures,
/// numbers, booleans, syntax errors — is InvalidArgument with a byte
/// offset. Kept local to the engine: this is a wire format, not a general
/// JSON library.
class JsonRowsParser {
 public:
  explicit JsonRowsParser(std::string_view text) : text_(text) {}

  Status Parse(const Schema& schema, std::vector<std::vector<
                   std::pair<AttrIndex, std::optional<std::string>>>>* rows) {
    SkipWs();
    GUARDRAIL_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return ExpectEnd();
    }
    while (true) {
      rows->emplace_back();
      GUARDRAIL_RETURN_NOT_OK(ParseObject(schema, &rows->back()));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      GUARDRAIL_RETURN_NOT_OK(Expect(']'));
      return ExpectEnd();
    }
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON rows: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  Status Expect(char c) {
    if (Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectEnd() {
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing content");
    return Status::OK();
  }

  Status ParseObject(
      const Schema& schema,
      std::vector<std::pair<AttrIndex, std::optional<std::string>>>* row) {
    SkipWs();
    GUARDRAIL_RETURN_NOT_OK(Expect('{'));
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      GUARDRAIL_RETURN_NOT_OK(ParseString(&key));
      AttrIndex attr = schema.FindAttribute(key);
      if (attr < 0) return Fail("unknown attribute '" + key + "'");
      SkipWs();
      GUARDRAIL_RETURN_NOT_OK(Expect(':'));
      SkipWs();
      if (Peek() == 'n') {
        GUARDRAIL_RETURN_NOT_OK(ExpectLiteral("null"));
        row->emplace_back(attr, std::nullopt);
      } else {
        std::string value;
        GUARDRAIL_RETURN_NOT_OK(ParseString(&value));
        row->emplace_back(attr, std::move(value));
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  Status ExpectLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    GUARDRAIL_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          GUARDRAIL_RETURN_NOT_OK(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (text_.substr(pos_, 2) != "\\u") {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            GUARDRAIL_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<std::vector<Row>> DecodeCsvRows(const std::string& payload,
                                       Schema* schema, int64_t max_rows) {
  GUARDRAIL_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(payload));
  if (static_cast<int64_t>(doc.rows.size()) > max_rows) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(doc.rows.size()) +
        " row(s) exceeds the per-request cap of " + std::to_string(max_rows));
  }
  // The header is the contract: it must name this dataset's attributes in
  // schema order, so a client compiled against a stale schema fails loudly
  // instead of silently validating shifted columns.
  if (static_cast<int32_t>(doc.header.size()) != schema->num_attributes()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(doc.header.size()) +
        " column(s), dataset schema has " +
        std::to_string(schema->num_attributes()));
  }
  for (AttrIndex c = 0; c < schema->num_attributes(); ++c) {
    if (doc.header[static_cast<size_t>(c)] != schema->attribute(c).name()) {
      return Status::InvalidArgument(
          "CSV header column " + std::to_string(c + 1) + " is '" +
          doc.header[static_cast<size_t>(c)] + "', expected '" +
          schema->attribute(c).name() + "'");
    }
  }
  std::vector<Row> rows;
  rows.reserve(doc.rows.size());
  for (const auto& record : doc.rows) {
    Row row(static_cast<size_t>(schema->num_attributes()), kNullValue);
    for (AttrIndex c = 0; c < schema->num_attributes(); ++c) {
      // Empty fields are ordinary labels, exactly as Table::FromCsv treats
      // them — serving must agree with offline byte for byte.
      row[static_cast<size_t>(c)] =
          schema->attribute(c).GetOrInsert(record[static_cast<size_t>(c)]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<Row>> DecodeJsonRows(const std::string& payload,
                                        Schema* schema, int64_t max_rows) {
  std::vector<std::vector<std::pair<AttrIndex, std::optional<std::string>>>>
      parsed;
  JsonRowsParser parser(payload);
  GUARDRAIL_RETURN_NOT_OK(parser.Parse(*schema, &parsed));
  if (static_cast<int64_t>(parsed.size()) > max_rows) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(parsed.size()) +
        " row(s) exceeds the per-request cap of " + std::to_string(max_rows));
  }
  std::vector<Row> rows;
  rows.reserve(parsed.size());
  for (size_t r = 0; r < parsed.size(); ++r) {
    Row row(static_cast<size_t>(schema->num_attributes()), kNullValue);
    std::vector<bool> seen(row.size(), false);
    for (auto& [attr, label] : parsed[r]) {
      if (seen[static_cast<size_t>(attr)]) {
        return Status::InvalidArgument(
            "JSON row " + std::to_string(r + 1) + " repeats attribute '" +
            schema->attribute(attr).name() + "'");
      }
      seen[static_cast<size_t>(attr)] = true;
      if (label.has_value()) {
        row[static_cast<size_t>(attr)] =
            schema->attribute(attr).GetOrInsert(*label);
      }
    }
    for (AttrIndex c = 0; c < schema->num_attributes(); ++c) {
      if (!seen[static_cast<size_t>(c)]) {
        return Status::InvalidArgument(
            "JSON row " + std::to_string(r + 1) + " is missing attribute '" +
            schema->attribute(c).name() + "' (use null for a missing cell)");
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Renders a repaired row as one CSV record, with the same field convention
/// as Table::ToCsv (NULL cells become empty fields).
std::string RowToCsvRecord(const Schema& schema, const Row& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (AttrIndex c = 0; c < schema.num_attributes(); ++c) {
    ValueId v = row[static_cast<size_t>(c)];
    fields.push_back(v == kNullValue ? "" : schema.attribute(c).label(v));
  }
  return WriteCsvRecord(fields);
}

/// Vets one row with the offline Guard semantics. The verdict comes from
/// Interpreter::CheckedCheck — the same call Guard::ProcessRow makes — so
/// online and offline agree by construction; the repaired row (coerce /
/// rectify) is produced by Guard::ProcessRow itself.
RowResult ValidateOneRow(const core::Guard& guard, const Schema& schema,
                         const Row& row, core::ErrorPolicy scheme) {
  RowResult out;
  Result<std::vector<core::Violation>> checked =
      guard.interpreter().CheckedCheck(row);
  if (!checked.ok()) {
    out.verdict = RowVerdict::kFailed;
    out.detail = checked.status().ToString();
    return out;
  }
  if (checked->empty()) return out;
  out.verdict = RowVerdict::kViolation;
  out.violations = static_cast<uint16_t>(
      checked->size() > 0xFFFF ? 0xFFFF : checked->size());
  if (scheme == core::ErrorPolicy::kCoerce ||
      scheme == core::ErrorPolicy::kRectify) {
    Result<Row> processed = guard.ProcessRow(row, scheme);
    if (!processed.ok()) {
      out.verdict = RowVerdict::kFailed;
      out.detail = processed.status().ToString();
      return out;
    }
    if (!(*processed == row)) out.detail = RowToCsvRecord(schema, *processed);
  }
  return out;
}

/// Vets rows [begin, begin + count) through the snapshot's compiled batch
/// evaluator, writing results into out[0..count). Clean rows (the vast
/// majority) are never materialized or touched beyond the columnar scan;
/// violating rows replicate ValidateOneRow's verdict bytes and guard
/// counters; rows the evaluator routes to fallback (narrow rows) go through
/// ValidateOneRow itself so their error text is identical.
void ValidateRowBlock(const core::CompiledProgram& compiled,
                      const core::Guard& guard, const Schema& schema,
                      const std::vector<Row>& rows, int64_t begin,
                      int64_t count, core::ErrorPolicy scheme,
                      RowResult* out) {
  core::BatchVerdict verdict;
  compiled.EvaluateRows(rows, static_cast<size_t>(begin),
                        static_cast<size_t>(count), &verdict);
  if (!verdict.any_violation && !verdict.any_fallback) return;  // All kOk.
  const bool repairing = scheme == core::ErrorPolicy::kCoerce ||
                         scheme == core::ErrorPolicy::kRectify;
  for (int64_t r = 0; r < count; ++r) {
    if (verdict.any_fallback && rowmask::Test(verdict.fallback, r)) {
      out[r] = ValidateOneRow(guard, schema,
                              rows[static_cast<size_t>(begin + r)], scheme);
      continue;
    }
    int32_t nviol = verdict.ViolationCount(r);
    if (nviol == 0) continue;  // Default-constructed kOk.
    RowResult& res = out[r];
    res.verdict = RowVerdict::kViolation;
    res.violations = static_cast<uint16_t>(nviol > 0xFFFF ? 0xFFFF : nviol);
    if (!repairing) continue;
    // Same counters Guard::ProcessRow emits on the scalar path; clean rows
    // never reach ProcessRow there either.
    GUARDRAIL_COUNTER_INC("guard.rows_checked");
    GUARDRAIL_HISTOGRAM_RECORD("guard.violations_per_row",
                               static_cast<int64_t>(nviol));
    const Row& original = rows[static_cast<size_t>(begin + r)];
    Row repaired = original;
    if (scheme == core::ErrorPolicy::kCoerce) {
      GUARDRAIL_COUNTER_INC("guard.rows_coerced");
      for (const core::Violation* v = verdict.ViolationsBegin(r);
           v != verdict.ViolationsEnd(r); ++v) {
        repaired[static_cast<size_t>(v->attribute)] = kNullValue;
      }
    } else {
      GUARDRAIL_COUNTER_INC("guard.rows_rectified");
      for (const core::Violation* v = verdict.ViolationsBegin(r);
           v != verdict.ViolationsEnd(r); ++v) {
        core::ApplyRectifyRepair(*guard.program(), *v, &repaired);
      }
    }
    if (!(repaired == original)) res.detail = RowToCsvRecord(schema, repaired);
  }
}

}  // namespace

Result<std::vector<Row>> DecodeRows(RowFormat format,
                                    const std::string& payload,
                                    Schema* schema, int64_t max_rows) {
  switch (format) {
    case RowFormat::kCsv:
      return DecodeCsvRows(payload, schema, max_rows);
    case RowFormat::kJson:
      return DecodeJsonRows(payload, schema, max_rows);
  }
  return Status::InvalidArgument("unknown row format");
}

bool ResponseDedupWindow::Lookup(uint64_t request_id, uint64_t live_version,
                                 ValidateResponse* out) const {
  if (request_id == 0 || capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(request_id);
  if (it == by_id_.end()) return false;
  // A hot reload superseded the program this entry's verdicts were computed
  // against: miss, so the retry re-runs under the live version.
  if (it->second.program_version != live_version) return false;
  *out = it->second;
  out->duplicate = true;
  return true;
}

void ResponseDedupWindow::Remember(uint64_t request_id,
                                   const ValidateResponse& response) {
  if (request_id == 0 || capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = by_id_.try_emplace(request_id, response);
  if (!inserted) {
    // First answer wins within a program version; a recompute under a newer
    // version displaces the stale entry (its FIFO slot is unchanged).
    if (it->second.program_version != response.program_version) {
      it->second = response;
    }
    return;
  }
  order_.push_back(request_id);
  while (static_cast<int>(order_.size()) > capacity_) {
    by_id_.erase(order_.front());
    order_.pop_front();
  }
}

int ResponseDedupWindow::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(order_.size());
}

ValidateResponse ValidationEngine::Handle(const ValidateRequest& request) {
  GUARDRAIL_COUNTER_INC("serve.requests");
  // Retransmit of an already-answered id: replay the remembered bytes
  // before admission — a replay is free and must not be shed, or a retry
  // storm could starve the very retries it caused. The replay is scoped to
  // the dataset's live program version (a cheap snapshot refcount bump): a
  // retry spanning a hot reload recomputes instead of replaying verdicts
  // from the superseded program.
  ValidateResponse response;
  uint64_t live_version = 0;
  if (auto snapshot = registry_->Get(request.dataset)) {
    live_version = snapshot->version;
  }
  if (dedup_.Lookup(request.request_id, live_version, &response)) {
    GUARDRAIL_COUNTER_INC("serve.dedup_hits");
    return response;
  }
  if (!admission_.TryAcquire()) {
    GUARDRAIL_COUNTER_INC("serve.rejected_overload");
    response.code = StatusCode::kResourceExhausted;
    response.error = "server overloaded: " +
                     std::to_string(admission_.limit()) +
                     " request(s) already in flight";
    // Graceful shedding: tell the client when to come back instead of
    // letting it hammer or time out.
    response.retry_after_ms = options_.retry_after_hint_ms;
    return response;
  }
  struct Release {
    AdmissionController* admission;
    ~Release() { admission->Release(); }
  } release{&admission_};
  response = HandleAdmitted(request);
  // Only a processed batch is remembered: its verdicts (including any
  // coerce/rectify repairs) are now "applied" and must never be recomputed
  // for the same id. Errors stay forgettable so a real retry re-runs.
  if (response.code == StatusCode::kOk) {
    dedup_.Remember(request.request_id, response);
  }
  return response;
}

ValidateResponse ValidationEngine::HandleAdmitted(
    const ValidateRequest& request) {
  ValidateResponse response;
  StopWatch watch;
  telemetry::Span span("serve.request");
  span.AddArg("dataset", request.dataset);
  span.AddArg("scheme", core::ErrorPolicyName(request.scheme));

  auto fail = [&](Status status) {
    response.code = status.code();
    response.error = status.message();
    response.rows.clear();
    GUARDRAIL_COUNTER_INC("serve.request_errors");
    GUARDRAIL_HISTOGRAM_RECORD("serve.request_micros",
                               static_cast<int64_t>(watch.ElapsedMicros()));
    return response;
  };

  // Per-request fault isolation: an injected failure answers this request
  // with a clean error and leaves the engine untouched for the next one.
  Status injected = FailpointTrip("serve.handle_request");
  if (!injected.ok()) return fail(injected);

  // The snapshot pins this request's program version: a hot reload swapping
  // in a newer one mid-flight cannot change these verdicts.
  std::shared_ptr<const ProgramSnapshot> snapshot =
      registry_->Get(request.dataset);
  if (snapshot == nullptr) {
    return fail(Status::NotFound("unknown dataset '" + request.dataset + "'"));
  }
  response.program_version = snapshot->version;

  // Unseen request labels get fresh codes in a request-private schema copy;
  // the snapshot's schema (and the codes the program references) never
  // change after publication.
  Schema working = snapshot->schema;
  Result<std::vector<Row>> rows = DecodeRows(
      request.format, request.payload, &working, options_.max_batch_rows);
  if (!rows.ok()) return fail(rows.status());

  uint32_t deadline_ms = request.deadline_ms != 0
                             ? request.deadline_ms
                             : options_.default_deadline_ms;
  CancellationToken cancel =
      deadline_ms != 0 ? CancellationToken::WithBudgetMillis(deadline_ms)
                       : CancellationToken::Never();

  core::Guard guard(&snapshot->program);
  // The compiled batch evaluator serves whole row blocks; armed
  // "interpreter.check" chaos must replay its exact per-row scalar trip
  // sequence, so such runs (and engines configured scalar) skip it.
  const core::CompiledProgram* compiled =
      options_.use_batch_eval && snapshot->compiled != nullptr &&
              !FailpointRegistry::Instance().IsArmed("interpreter.check")
          ? snapshot->compiled.get()
          : nullptr;
  const int64_t n = static_cast<int64_t>(rows->size());
  span.AddArg("rows", n);
  response.rows.resize(static_cast<size_t>(n));

  Status scan = Status::OK();
  ThreadPool& pool = ThreadPool::Shared();
  if (n >= options_.parallel_batch_threshold && pool.num_workers() > 0) {
    // The PR-3 sharded row scan: contiguous shards over the shared pool,
    // each body writing only its own row slots, so the result is identical
    // to the serial loop for any thread count.
    const int64_t per_shard = options_.rows_per_shard < 1
                                  ? 1
                                  : options_.rows_per_shard;
    const int64_t num_shards = (n + per_shard - 1) / per_shard;
    ParallelForOptions pf;
    pf.cancel = &cancel;
    scan = ParallelFor(
        &pool, num_shards,
        [&](int64_t shard) {
          const int64_t begin = shard * per_shard;
          const int64_t end = begin + per_shard < n ? begin + per_shard : n;
          if (compiled != nullptr) {
            ValidateRowBlock(*compiled, guard, working, *rows, begin,
                             end - begin, request.scheme,
                             response.rows.data() + begin);
            return;
          }
          for (int64_t r = begin; r < end; ++r) {
            response.rows[static_cast<size_t>(r)] = ValidateOneRow(
                guard, working, (*rows)[static_cast<size_t>(r)],
                request.scheme);
          }
        },
        pf);
  } else if (compiled != nullptr) {
    // Inline batch path: blocks of shard size, deadline checked between
    // blocks (a block is far cheaper than 64 scalar rows ever were).
    const int64_t per_block =
        options_.rows_per_shard < 1 ? 1 : options_.rows_per_shard;
    for (int64_t begin = 0; begin < n; begin += per_block) {
      if (cancel.Cancelled()) {
        scan = cancel.CheckTimeout("serve.validate");
        break;
      }
      const int64_t count = begin + per_block < n ? per_block : n - begin;
      ValidateRowBlock(*compiled, guard, working, *rows, begin, count,
                       request.scheme, response.rows.data() + begin);
    }
  } else {
    DeadlineChecker checker(&cancel, /*stride=*/64);
    for (int64_t r = 0; r < n; ++r) {
      if (checker.Expired()) {
        scan = cancel.CheckTimeout("serve.validate");
        break;
      }
      response.rows[static_cast<size_t>(r)] = ValidateOneRow(
          guard, working, (*rows)[static_cast<size_t>(r)], request.scheme);
    }
  }
  if (!scan.ok()) {
    GUARDRAIL_COUNTER_INC("serve.deadline_expired");
    telemetry::InstantEvent("serve.deadline_expired");
    return fail(scan);
  }

  int64_t flagged = 0;
  int64_t failed = 0;
  for (const RowResult& row : response.rows) {
    flagged += row.verdict == RowVerdict::kViolation ? 1 : 0;
    failed += row.verdict == RowVerdict::kFailed ? 1 : 0;
  }
  GUARDRAIL_COUNTER_ADD("serve.rows_validated", n);
  GUARDRAIL_COUNTER_ADD("serve.rows_flagged", flagged);
  GUARDRAIL_COUNTER_ADD("serve.rows_failed", failed);
  GUARDRAIL_HISTOGRAM_RECORD("serve.batch_rows", n);
  GUARDRAIL_HISTOGRAM_RECORD("serve.request_micros",
                             static_cast<int64_t>(watch.ElapsedMicros()));
  span.AddArg("flagged", flagged);
  response.code = StatusCode::kOk;
  return response;
}

}  // namespace serve
}  // namespace guardrail
