#ifndef GUARDRAIL_SERVE_SERVER_H_
#define GUARDRAIL_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/engine.h"
#include "serve/registry.h"

namespace guardrail {
namespace serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port; read it back via port() after Start().
  int port = 0;
  /// Directory of `<dataset>.grl` (+ companion `<dataset>.csv`) program
  /// files to hot-reload from; empty disables the watcher thread.
  std::string watch_dir;
  int reload_interval_ms = 500;
  /// Concurrent connections; arrivals past this are accepted and closed
  /// immediately so the peer sees a clean EOF rather than a hung connect.
  int max_connections = 128;
  /// Handler for protocol-v3 IngestBatch frames (`guardrail serve --ingest`
  /// wires stream::StreamService::HandleIngest here). Null answers every
  /// ingest with kNotImplemented — the serve layer itself never depends on
  /// the streaming subsystem.
  std::function<IngestResponse(const IngestRequest&)> ingest_handler;
};

/// Framed-TCP front end of the guard-serving daemon: one thread per
/// connection, each multiplexing Validate / Ping frames into the
/// ValidationEngine. All loops are poll()-driven so Drain() can stop the
/// world without yanking in-flight requests: accepting stops first, frames
/// already being processed run to completion and get their responses, idle
/// connections are closed, and only then do the threads join.
class Server {
 public:
  Server(ProgramRegistry* registry, ValidationEngine* engine,
         ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor (and watcher, if configured).
  Status Start();

  /// The bound port (useful with options.port == 0).
  int port() const { return port_; }

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Graceful shutdown: stop accepting, finish in-flight frames, close
  /// connections, join every thread. Idempotent; also run by the destructor.
  void Drain();

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);
  void WatchLoop();

  /// Handles one decoded frame payload, returning the response frame to
  /// write back. Never fails: malformed payloads become error responses.
  std::string HandlePayload(std::string_view payload);

  ProgramRegistry* registry_;
  ValidationEngine* engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<int> active_connections_{0};

  std::thread acceptor_;
  std::thread watcher_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace serve
}  // namespace guardrail

#endif  // GUARDRAIL_SERVE_SERVER_H_
