#ifndef GUARDRAIL_SERVE_CLIENT_H_
#define GUARDRAIL_SERVE_CLIENT_H_

#include <string>

#include "common/status.h"
#include "serve/protocol.h"

namespace guardrail {
namespace serve {

/// Blocking client for the guard-serving wire protocol: one TCP connection,
/// request/response frames in lock step. Move-only; the socket closes with
/// the object.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, int port,
                                int timeout_ms = 5000);

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends a Validate frame and decodes the response. A non-OK Result means
  /// the transport failed; server-side failures come back as an OK Result
  /// whose ValidateResponse carries a non-kOk code.
  Result<ValidateResponse> Validate(const ValidateRequest& request);

  Result<PingResponse> Ping();

  /// Health probe: registry freshness + in-flight load (ReplicaPool uses
  /// this to judge replica liveness between requests).
  Result<HealthResponse> Health();

  /// Feeds a batch of trusted rows to the server's streaming synthesizer
  /// (protocol v3; the server must run with --ingest).
  Result<IngestResponse> Ingest(const IngestRequest& request);

  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Writes `frame`, then reads one complete response frame payload.
  Result<std::string> RoundTrip(const std::string& frame);

  int fd_ = -1;
};

}  // namespace serve
}  // namespace guardrail

#endif  // GUARDRAIL_SERVE_CLIENT_H_
