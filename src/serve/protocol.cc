#include "serve/protocol.h"

#include <bit>

namespace guardrail {
namespace serve {

namespace {

/// Numeric wire ids for ErrorPolicy. Kept explicit (not a cast of the enum)
/// so reordering the C++ enum can never silently change the protocol.
Status SchemeToWire(core::ErrorPolicy scheme, uint8_t* out) {
  switch (scheme) {
    case core::ErrorPolicy::kRaise:
      *out = 0;
      return Status::OK();
    case core::ErrorPolicy::kIgnore:
      *out = 1;
      return Status::OK();
    case core::ErrorPolicy::kCoerce:
      *out = 2;
      return Status::OK();
    case core::ErrorPolicy::kRectify:
      *out = 3;
      return Status::OK();
  }
  return Status::InvalidArgument("unknown enforcement scheme");
}

Status SchemeFromWire(uint8_t wire, core::ErrorPolicy* out) {
  switch (wire) {
    case 0:
      *out = core::ErrorPolicy::kRaise;
      return Status::OK();
    case 1:
      *out = core::ErrorPolicy::kIgnore;
      return Status::OK();
    case 2:
      *out = core::ErrorPolicy::kCoerce;
      return Status::OK();
    case 3:
      *out = core::ErrorPolicy::kRectify;
      return Status::OK();
    default:
      return Status::InvalidArgument("unknown scheme id " +
                                     std::to_string(wire));
  }
}

Status FormatFromWire(uint8_t wire, RowFormat* out) {
  switch (wire) {
    case 0:
      *out = RowFormat::kCsv;
      return Status::OK();
    case 1:
      *out = RowFormat::kJson;
      return Status::OK();
    default:
      return Status::InvalidArgument("unknown row format id " +
                                     std::to_string(wire));
  }
}

Status VerdictFromWire(uint8_t wire, RowVerdict* out) {
  if (wire > 2) {
    return Status::InvalidArgument("unknown row verdict id " +
                                   std::to_string(wire));
  }
  *out = static_cast<RowVerdict>(wire);
  return Status::OK();
}

/// Status codes cross the wire as their numeric value; reject ids beyond the
/// enum so a corrupt byte cannot masquerade as a valid code.
Status StatusCodeFromWire(uint8_t wire, StatusCode* out) {
  if (wire > static_cast<uint8_t>(StatusCode::kTimeout)) {
    return Status::InvalidArgument("unknown status code id " +
                                   std::to_string(wire));
  }
  *out = static_cast<StatusCode>(wire);
  return Status::OK();
}

Status ExpectMsgType(WireReader* reader, MsgType expected) {
  uint8_t raw = 0;
  GUARDRAIL_RETURN_NOT_OK(reader->GetU8(&raw));
  if (raw != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument("unexpected message type " +
                                   std::to_string(raw));
  }
  return Status::OK();
}

}  // namespace

const char* RowFormatName(RowFormat format) {
  switch (format) {
    case RowFormat::kCsv:
      return "csv";
    case RowFormat::kJson:
      return "json";
  }
  return "unknown";
}

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(uint16_t v, std::string* out) {
  PutU8(static_cast<uint8_t>(v & 0xFF), out);
  PutU8(static_cast<uint8_t>(v >> 8), out);
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xFF), out);
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xFF), out);
  }
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

uint32_t DecodeFramePrefix(const uint8_t* bytes) {
  return static_cast<uint32_t>(bytes[0]) |
         (static_cast<uint32_t>(bytes[1]) << 8) |
         (static_cast<uint32_t>(bytes[2]) << 16) |
         (static_cast<uint32_t>(bytes[3]) << 24);
}

Status CheckFrameSize(uint64_t payload_size) {
  if (payload_size == 0) {
    return Status::InvalidArgument("empty frame");
  }
  if (payload_size > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame size " + std::to_string(payload_size) + " exceeds the " +
        std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  return Status::OK();
}

Status WireReader::GetU8(uint8_t* out) {
  if (remaining() < 1) return Status::InvalidArgument("truncated frame (u8)");
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status WireReader::GetU16(uint16_t* out) {
  if (remaining() < 2) return Status::InvalidArgument("truncated frame (u16)");
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<uint16_t>(
        v | static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
                << (8 * i));
  }
  pos_ += 2;
  *out = v;
  return Status::OK();
}

Status WireReader::GetU32(uint32_t* out) {
  if (remaining() < 4) return Status::InvalidArgument("truncated frame (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status WireReader::GetU64(uint64_t* out) {
  if (remaining() < 8) return Status::InvalidArgument("truncated frame (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status WireReader::GetString(std::string* out) {
  uint32_t size = 0;
  GUARDRAIL_RETURN_NOT_OK(GetU32(&size));
  if (remaining() < size) {
    return Status::InvalidArgument("truncated frame (string of " +
                                   std::to_string(size) + " bytes)");
  }
  out->assign(data_.data() + pos_, size);
  pos_ += size;
  return Status::OK();
}

Status WireReader::Finish() const {
  if (remaining() != 0) {
    return Status::InvalidArgument(std::to_string(remaining()) +
                                   " trailing byte(s) after message");
  }
  return Status::OK();
}

namespace {

/// Prepends the little-endian length prefix to a finished payload.
std::string FinishFrame(std::string payload) {
  std::string frame;
  frame.reserve(kFramePrefixBytes + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), &frame);
  frame += payload;
  return frame;
}

}  // namespace

std::string EncodeValidateRequest(const ValidateRequest& request) {
  std::string payload;
  PutU8(static_cast<uint8_t>(MsgType::kValidateRequest), &payload);
  uint8_t scheme = 0;
  // Encoding a malformed in-memory enum is a programming error; the switch
  // covers every enumerator so this cannot fail in practice.
  (void)SchemeToWire(request.scheme, &scheme);
  PutU8(scheme, &payload);
  PutU8(static_cast<uint8_t>(request.format), &payload);
  PutU32(request.deadline_ms, &payload);
  PutU64(request.request_id, &payload);
  PutString(request.dataset, &payload);
  PutString(request.payload, &payload);
  return FinishFrame(std::move(payload));
}

std::string EncodeValidateResponse(const ValidateResponse& response) {
  std::string payload;
  PutU8(static_cast<uint8_t>(MsgType::kValidateResponse), &payload);
  PutU8(static_cast<uint8_t>(response.code), &payload);
  PutString(response.error, &payload);
  PutU32(response.retry_after_ms, &payload);
  PutU8(response.duplicate ? 1 : 0, &payload);
  PutU64(response.program_version, &payload);
  PutU32(static_cast<uint32_t>(response.rows.size()), &payload);
  for (const RowResult& row : response.rows) {
    PutU8(static_cast<uint8_t>(row.verdict), &payload);
    PutU16(row.violations, &payload);
    PutString(row.detail, &payload);
  }
  return FinishFrame(std::move(payload));
}

std::string EncodePingRequest() {
  std::string payload;
  PutU8(static_cast<uint8_t>(MsgType::kPingRequest), &payload);
  return FinishFrame(std::move(payload));
}

std::string EncodePingResponse(const PingResponse& response) {
  std::string payload;
  PutU8(static_cast<uint8_t>(MsgType::kPingResponse), &payload);
  PutU32(response.protocol_version, &payload);
  PutU8(response.draining ? 1 : 0, &payload);
  PutU32(static_cast<uint32_t>(response.datasets.size()), &payload);
  for (const DatasetInfo& info : response.datasets) {
    PutString(info.dataset, &payload);
    PutU64(info.version, &payload);
    PutU64(info.source_hash, &payload);
    PutU32(info.statements, &payload);
  }
  return FinishFrame(std::move(payload));
}

std::string EncodeHealthRequest() {
  std::string payload;
  PutU8(static_cast<uint8_t>(MsgType::kHealthRequest), &payload);
  return FinishFrame(std::move(payload));
}

std::string EncodeHealthResponse(const HealthResponse& response) {
  std::string payload;
  PutU8(static_cast<uint8_t>(MsgType::kHealthResponse), &payload);
  PutU32(response.protocol_version, &payload);
  PutU8(response.draining ? 1 : 0, &payload);
  PutU32(response.inflight, &payload);
  PutU32(response.max_inflight, &payload);
  PutU64(response.registry_versions, &payload);
  PutU32(response.live_datasets, &payload);
  PutU32(response.superseded_snapshots, &payload);
  return FinishFrame(std::move(payload));
}

Status PeekMsgType(std::string_view payload, MsgType* out) {
  if (payload.empty()) return Status::InvalidArgument("empty frame payload");
  uint8_t raw = static_cast<uint8_t>(payload[0]);
  if (raw < static_cast<uint8_t>(MsgType::kValidateRequest) ||
      raw > static_cast<uint8_t>(MsgType::kIngestResponse)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(raw));
  }
  *out = static_cast<MsgType>(raw);
  return Status::OK();
}

Status DecodeValidateRequest(std::string_view payload, ValidateRequest* out) {
  WireReader reader(payload);
  GUARDRAIL_RETURN_NOT_OK(ExpectMsgType(&reader, MsgType::kValidateRequest));
  uint8_t scheme = 0;
  uint8_t format = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&scheme));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&format));
  GUARDRAIL_RETURN_NOT_OK(SchemeFromWire(scheme, &out->scheme));
  GUARDRAIL_RETURN_NOT_OK(FormatFromWire(format, &out->format));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&out->deadline_ms));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU64(&out->request_id));
  GUARDRAIL_RETURN_NOT_OK(reader.GetString(&out->dataset));
  GUARDRAIL_RETURN_NOT_OK(reader.GetString(&out->payload));
  return reader.Finish();
}

Status DecodeValidateResponse(std::string_view payload,
                              ValidateResponse* out) {
  WireReader reader(payload);
  GUARDRAIL_RETURN_NOT_OK(ExpectMsgType(&reader, MsgType::kValidateResponse));
  uint8_t code = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&code));
  GUARDRAIL_RETURN_NOT_OK(StatusCodeFromWire(code, &out->code));
  GUARDRAIL_RETURN_NOT_OK(reader.GetString(&out->error));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&out->retry_after_ms));
  uint8_t duplicate = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&duplicate));
  out->duplicate = duplicate != 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU64(&out->program_version));
  uint32_t n_rows = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&n_rows));
  // Each row costs at least 7 payload bytes (verdict + violations + string
  // size); reject counts the payload cannot possibly hold before reserving.
  if (static_cast<uint64_t>(n_rows) * 7 > reader.remaining()) {
    return Status::InvalidArgument("row count " + std::to_string(n_rows) +
                                   " exceeds frame capacity");
  }
  out->rows.clear();
  out->rows.reserve(n_rows);
  for (uint32_t i = 0; i < n_rows; ++i) {
    RowResult row;
    uint8_t verdict = 0;
    GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&verdict));
    GUARDRAIL_RETURN_NOT_OK(VerdictFromWire(verdict, &row.verdict));
    GUARDRAIL_RETURN_NOT_OK(reader.GetU16(&row.violations));
    GUARDRAIL_RETURN_NOT_OK(reader.GetString(&row.detail));
    out->rows.push_back(std::move(row));
  }
  return reader.Finish();
}

Status DecodePingRequest(std::string_view payload) {
  WireReader reader(payload);
  GUARDRAIL_RETURN_NOT_OK(ExpectMsgType(&reader, MsgType::kPingRequest));
  return reader.Finish();
}

Status DecodePingResponse(std::string_view payload, PingResponse* out) {
  WireReader reader(payload);
  GUARDRAIL_RETURN_NOT_OK(ExpectMsgType(&reader, MsgType::kPingResponse));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&out->protocol_version));
  uint8_t draining = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&draining));
  out->draining = draining != 0;
  uint32_t n_datasets = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&n_datasets));
  if (static_cast<uint64_t>(n_datasets) * 24 > reader.remaining()) {
    return Status::InvalidArgument("dataset count " +
                                   std::to_string(n_datasets) +
                                   " exceeds frame capacity");
  }
  out->datasets.clear();
  out->datasets.reserve(n_datasets);
  for (uint32_t i = 0; i < n_datasets; ++i) {
    DatasetInfo info;
    GUARDRAIL_RETURN_NOT_OK(reader.GetString(&info.dataset));
    GUARDRAIL_RETURN_NOT_OK(reader.GetU64(&info.version));
    GUARDRAIL_RETURN_NOT_OK(reader.GetU64(&info.source_hash));
    GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&info.statements));
    out->datasets.push_back(std::move(info));
  }
  return reader.Finish();
}

Status DecodeHealthRequest(std::string_view payload) {
  WireReader reader(payload);
  GUARDRAIL_RETURN_NOT_OK(ExpectMsgType(&reader, MsgType::kHealthRequest));
  return reader.Finish();
}

std::string EncodeIngestRequest(const IngestRequest& request) {
  std::string payload;
  PutU8(static_cast<uint8_t>(MsgType::kIngestRequest), &payload);
  PutU8(static_cast<uint8_t>(request.format), &payload);
  PutU8(request.force_refresh ? 1 : 0, &payload);
  PutString(request.dataset, &payload);
  PutString(request.payload, &payload);
  return FinishFrame(std::move(payload));
}

std::string EncodeIngestResponse(const IngestResponse& response) {
  std::string payload;
  PutU8(static_cast<uint8_t>(MsgType::kIngestResponse), &payload);
  PutU8(static_cast<uint8_t>(response.code), &payload);
  PutString(response.error, &payload);
  PutU64(response.rows_ingested, &payload);
  PutU8(static_cast<uint8_t>(response.action), &payload);
  PutU64(std::bit_cast<uint64_t>(response.drift_score), &payload);
  PutU64(response.program_version, &payload);
  PutU8(response.published ? 1 : 0, &payload);
  return FinishFrame(std::move(payload));
}

Status DecodeIngestRequest(std::string_view payload, IngestRequest* out) {
  WireReader reader(payload);
  GUARDRAIL_RETURN_NOT_OK(ExpectMsgType(&reader, MsgType::kIngestRequest));
  uint8_t format = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&format));
  GUARDRAIL_RETURN_NOT_OK(FormatFromWire(format, &out->format));
  uint8_t force = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&force));
  out->force_refresh = force != 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetString(&out->dataset));
  GUARDRAIL_RETURN_NOT_OK(reader.GetString(&out->payload));
  return reader.Finish();
}

Status DecodeIngestResponse(std::string_view payload, IngestResponse* out) {
  WireReader reader(payload);
  GUARDRAIL_RETURN_NOT_OK(ExpectMsgType(&reader, MsgType::kIngestResponse));
  uint8_t code = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&code));
  GUARDRAIL_RETURN_NOT_OK(StatusCodeFromWire(code, &out->code));
  GUARDRAIL_RETURN_NOT_OK(reader.GetString(&out->error));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU64(&out->rows_ingested));
  uint8_t action = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&action));
  if (action > static_cast<uint8_t>(IngestAction::kFull)) {
    return Status::InvalidArgument("unknown ingest action id " +
                                   std::to_string(action));
  }
  out->action = static_cast<IngestAction>(action);
  uint64_t score_bits = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU64(&score_bits));
  out->drift_score = std::bit_cast<double>(score_bits);
  GUARDRAIL_RETURN_NOT_OK(reader.GetU64(&out->program_version));
  uint8_t published = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&published));
  out->published = published != 0;
  return reader.Finish();
}

Status DecodeHealthResponse(std::string_view payload, HealthResponse* out) {
  WireReader reader(payload);
  GUARDRAIL_RETURN_NOT_OK(ExpectMsgType(&reader, MsgType::kHealthResponse));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&out->protocol_version));
  uint8_t draining = 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU8(&draining));
  out->draining = draining != 0;
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&out->inflight));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&out->max_inflight));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU64(&out->registry_versions));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&out->live_datasets));
  GUARDRAIL_RETURN_NOT_OK(reader.GetU32(&out->superseded_snapshots));
  return reader.Finish();
}

}  // namespace serve
}  // namespace guardrail
