#ifndef GUARDRAIL_SERVE_POOL_H_
#define GUARDRAIL_SERVE_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace guardrail {
namespace serve {

/// One replica address of the validation fleet.
struct Endpoint {
  std::string host;
  int port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port,host:port,..." (the CLI's --endpoints value).
Result<std::vector<Endpoint>> ParseEndpoints(const std::string& spec);

struct PoolOptions {
  /// Per-connection socket timeout (connect + send/recv).
  int connect_timeout_ms = 5000;
  /// Retry policy across the fleet: attempts rotate over replicas, so
  /// max_attempts also bounds how many distinct replicas one logical
  /// request can touch. The seeded jitter keeps chaos runs replayable.
  RetryPolicy retry;
  /// Whole-operation budget across all attempts and backoffs; 0 = only the
  /// per-attempt socket timeouts bound the call.
  int64_t total_deadline_ms = 0;
  /// Consecutive failures that open a replica's circuit breaker.
  int breaker_failure_threshold = 3;
  /// How long an open breaker rejects the replica before one half-open
  /// probe request is allowed through.
  int64_t breaker_open_ms = 250;
  /// > 0: after this many milliseconds without a response, fire the same
  /// request (same request id — the server dedup window makes the duplicate
  /// harmless) at a second replica and take the first decisive answer.
  int64_t hedge_ms = 0;
  /// > 0: a background thread probes every replica's Health frame at this
  /// interval, opening/closing breakers and noticing draining nodes without
  /// spending a real request to find out.
  int64_t health_probe_interval_ms = 0;
  /// Seeds the request-id sequence (and any future randomized choice);
  /// fixed seed -> replayable id stream for the soak harness.
  uint64_t seed = 0xF1EE7ULL;
};

/// Client-side resilience layer over N validation replicas: round-robin
/// load balancing, per-endpoint circuit breakers, transparent failover with
/// deadline-capped backoff (common/retry), optional hedging, and optional
/// active health probes. Exactly-once: every Validate carries a pool-unique
/// request id, so a retry that lands after a replica already processed the
/// lost response replays the original bytes from the server's dedup window
/// instead of re-applying verdicts.
///
/// Error contract mirrors Client::Validate — a non-OK Result is a transport
/// failure (every replica exhausted); a server's own answer, even a failed
/// one, comes back as an OK Result once it is authoritative (non-retryable).
class ReplicaPool {
 public:
  ReplicaPool(std::vector<Endpoint> endpoints, PoolOptions options);
  ~ReplicaPool();

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// Validates one batch somewhere on the fleet. Assigns a request id when
  /// the request carries none; a caller-set id is preserved (retrying a
  /// previously failed call with its old id is safe and exactly-once).
  Result<ValidateResponse> Validate(ValidateRequest request);

  /// Health of one replica by index (probes on demand; does not require the
  /// background prober).
  Result<HealthResponse> Health(size_t replica);

  size_t num_replicas() const { return replicas_.size(); }

  struct ReplicaStats {
    std::string endpoint;
    uint64_t requests = 0;      // Attempts routed here.
    uint64_t failures = 0;      // Transport-level failures observed.
    int consecutive_failures = 0;
    bool breaker_open = false;
    bool draining = false;      // Last health/ping signal, if any.
  };
  std::vector<ReplicaStats> Stats() const;

 private:
  struct Replica {
    Endpoint endpoint;
    /// Serializes use of the pooled connection.
    std::mutex mu;
    std::optional<Client> client;  // Lazily (re)connected under mu.
    std::atomic<int> consecutive_failures{0};
    /// Steady-clock ms until which the breaker rejects this replica; a
    /// request arriving after this instant is the half-open probe.
    std::atomic<int64_t> open_until_ms{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<bool> draining{false};
  };

  uint64_t NextRequestId();

  /// Round-robin pick skipping open breakers and draining nodes; when every
  /// replica is rejected, returns the round-robin choice anyway (a fleet
  /// that is all-open must still probe its way back to health).
  size_t PickReplica();

  /// One attempt on the pooled connection of `replica`.
  Result<ValidateResponse> AttemptPooled(size_t replica,
                                         const ValidateRequest& request);

  /// One attempt with hedging: primary fires on a one-shot connection; if
  /// no answer lands within hedge_ms, a second replica gets the same
  /// request id. First decisive answer wins.
  Result<ValidateResponse> AttemptHedged(size_t primary,
                                         const ValidateRequest& request);

  void RecordSuccess(size_t replica);
  void RecordFailure(size_t replica);
  void ProbeLoop();

  const PoolOptions options_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<size_t> rr_next_{0};
  std::atomic<uint64_t> next_request_id_;
  std::atomic<bool> stop_probe_{false};
  std::thread prober_;
};

}  // namespace serve
}  // namespace guardrail

#endif  // GUARDRAIL_SERVE_POOL_H_
