#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/failpoint.h"
#include "common/telemetry/telemetry.h"
#include "serve/protocol.h"

namespace guardrail {
namespace serve {

namespace {

// Poll granularity for every blocking loop: how quickly stop / drain flags
// are noticed, not a performance knob.
constexpr int kPollMillis = 100;

enum class IoResult {
  kOk,
  kClosed,  // Peer EOF, or drain requested before any byte arrived.
  kError,
};

/// Reads exactly `n` bytes. If `abort_on_drain` is set and the drain flag
/// flips before the first byte arrives, gives up cleanly (kClosed) — that is
/// how idle connections notice shutdown without cutting off a frame that has
/// already started.
IoResult ReadFull(int fd, uint8_t* buf, size_t n,
                  const std::atomic<bool>& draining, bool abort_on_drain) {
  size_t got = 0;
  while (got < n) {
    if (abort_on_drain && got == 0 &&
        draining.load(std::memory_order_acquire)) {
      return IoResult::kClosed;
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    int rc = poll(&pfd, 1, kPollMillis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoResult::kError;
    }
    if (rc == 0) continue;  // Timeout: re-check flags.
    ssize_t r = recv(fd, buf + got, n - got, 0);
    if (r == 0) return IoResult::kClosed;
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoResult::kError;
    }
    got += static_cast<size_t>(r);
  }
  return IoResult::kOk;
}

IoResult WriteFull(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    int rc = poll(&pfd, 1, kPollMillis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoResult::kError;
    }
    if (rc == 0) continue;
    ssize_t r = send(fd, bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoResult::kError;
    }
    sent += static_cast<size_t>(r);
  }
  return IoResult::kOk;
}

std::string ErrorFrame(StatusCode code, std::string error) {
  ValidateResponse response;
  response.code = code;
  response.error = std::move(error);
  return EncodeValidateResponse(response);
}

}  // namespace

Server::Server(ProgramRegistry* registry, ValidationEngine* engine,
               ServerOptions options)
    : registry_(registry), engine_(engine), options_(std::move(options)) {}

Server::~Server() { Drain(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }

  // Load whatever is in the watched directory before opening the port, so
  // "listening" implies the initial programs are live.
  if (!options_.watch_dir.empty()) {
    auto loaded = registry_->PollDirectory(options_.watch_dir);
    if (!loaded.ok()) return loaded.status();
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    Status st = Status::IoError(std::string("bind: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (listen(listen_fd_, 128) < 0) {
    Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  acceptor_ = std::thread([this] { AcceptLoop(); });
  if (!options_.watch_dir.empty()) {
    watcher_ = std::thread([this] { WatchLoop(); });
  }
  GUARDRAIL_LOG(INFO) << "serve listening"
                      << telemetry::Kv("host", options_.host)
                      << telemetry::Kv("port", static_cast<int64_t>(port_));
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int rc = poll(&pfd, 1, kPollMillis);
    if (rc <= 0) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (draining_.load(std::memory_order_acquire) ||
        active_connections_.load(std::memory_order_acquire) >=
            options_.max_connections) {
      GUARDRAIL_COUNTER_INC("serve.connections_rejected");
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    GUARDRAIL_COUNTER_INC("serve.connections_accepted");
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void Server::ConnectionLoop(int fd) {
  while (true) {
    uint8_t prefix[kFramePrefixBytes];
    // Abort between frames on drain; a frame whose prefix landed is
    // in-flight and runs to completion below.
    IoResult r = ReadFull(fd, prefix, sizeof(prefix), draining_,
                          /*abort_on_drain=*/true);
    if (r != IoResult::kOk) break;

    uint64_t payload_size = DecodeFramePrefix(prefix);
    Status size_ok = CheckFrameSize(payload_size);
    if (!size_ok.ok()) {
      // An oversized or zero prefix means we can no longer find frame
      // boundaries on this stream: answer, then hang up.
      GUARDRAIL_COUNTER_INC("serve.bad_frames");
      WriteFull(fd, ErrorFrame(StatusCode::kInvalidArgument,
                               size_ok.message()));
      break;
    }

    std::string payload(payload_size, '\0');
    r = ReadFull(fd, reinterpret_cast<uint8_t*>(payload.data()),
                 payload.size(), draining_, /*abort_on_drain=*/false);
    if (r != IoResult::kOk) break;

    GUARDRAIL_COUNTER_INC("serve.frames");
    // Chaos hook: a tripped failpoint hangs up after the request was read
    // but before any response — the client sees a dead node mid-request and
    // must retry (with the same request id) against the fleet.
    if (!FailpointTrip("serve.connection_drop").ok()) {
      GUARDRAIL_COUNTER_INC("serve.chaos_drops");
      break;
    }
    std::string response = HandlePayload(payload);
    if (WriteFull(fd, response) != IoResult::kOk) break;

    if (draining_.load(std::memory_order_acquire)) break;
  }
  close(fd);
  active_connections_.fetch_sub(1, std::memory_order_acq_rel);
}

std::string Server::HandlePayload(std::string_view payload) {
  MsgType type;
  Status st = PeekMsgType(payload, &type);
  if (!st.ok()) {
    GUARDRAIL_COUNTER_INC("serve.bad_frames");
    return ErrorFrame(StatusCode::kInvalidArgument, st.message());
  }
  switch (type) {
    case MsgType::kPingRequest: {
      st = DecodePingRequest(payload);
      if (!st.ok()) {
        GUARDRAIL_COUNTER_INC("serve.bad_frames");
        return ErrorFrame(StatusCode::kInvalidArgument, st.message());
      }
      PingResponse pong;
      pong.draining = draining_.load(std::memory_order_acquire);
      for (const auto& snapshot : registry_->List()) {
        DatasetInfo info;
        info.dataset = snapshot->dataset;
        info.version = snapshot->version;
        info.source_hash = snapshot->source_hash;
        info.statements = static_cast<uint32_t>(snapshot->statement_count());
        pong.datasets.push_back(std::move(info));
      }
      return EncodePingResponse(pong);
    }
    case MsgType::kHealthRequest: {
      st = DecodeHealthRequest(payload);
      if (!st.ok()) {
        GUARDRAIL_COUNTER_INC("serve.bad_frames");
        return ErrorFrame(StatusCode::kInvalidArgument, st.message());
      }
      registry_->GcSuperseded();  // Report only still-pinned snapshots.
      HealthResponse health;
      health.draining = draining_.load(std::memory_order_acquire);
      int inflight = engine_->admission().inflight();
      health.inflight = inflight < 0 ? 0 : static_cast<uint32_t>(inflight);
      health.max_inflight =
          static_cast<uint32_t>(engine_->admission().limit());
      health.registry_versions =
          static_cast<uint64_t>(registry_->versions_published());
      health.live_datasets =
          static_cast<uint32_t>(registry_->live_datasets());
      health.superseded_snapshots =
          static_cast<uint32_t>(registry_->superseded_live());
      return EncodeHealthResponse(health);
    }
    case MsgType::kValidateRequest: {
      ValidateRequest request;
      st = DecodeValidateRequest(payload, &request);
      if (!st.ok()) {
        GUARDRAIL_COUNTER_INC("serve.bad_frames");
        return ErrorFrame(StatusCode::kInvalidArgument, st.message());
      }
      return EncodeValidateResponse(engine_->Handle(request));
    }
    case MsgType::kIngestRequest: {
      IngestRequest request;
      st = DecodeIngestRequest(payload, &request);
      if (!st.ok()) {
        GUARDRAIL_COUNTER_INC("serve.bad_frames");
        return ErrorFrame(StatusCode::kInvalidArgument, st.message());
      }
      IngestResponse response;
      if (!options_.ingest_handler) {
        response.code = StatusCode::kNotImplemented;
        response.error = "this server does not accept ingest (run with --ingest)";
      } else {
        response = options_.ingest_handler(request);
      }
      return EncodeIngestResponse(response);
    }
    default:
      GUARDRAIL_COUNTER_INC("serve.bad_frames");
      return ErrorFrame(StatusCode::kInvalidArgument,
                        "unexpected message type from client");
  }
}

void Server::WatchLoop() {
  using Clock = std::chrono::steady_clock;
  auto next = Clock::now() + std::chrono::milliseconds(
                                 options_.reload_interval_ms);
  while (!draining_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        kPollMillis < options_.reload_interval_ms ? kPollMillis
                                                  : options_.reload_interval_ms));
    if (Clock::now() < next) continue;
    next = Clock::now() +
           std::chrono::milliseconds(options_.reload_interval_ms);
    auto loaded = registry_->PollDirectory(options_.watch_dir);
    if (!loaded.ok()) {
      GUARDRAIL_LOG(WARN) << "program reload poll failed"
                          << telemetry::Kv("error",
                                           loaded.status().ToString());
    }
  }
}

void Server::Drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    // A concurrent or earlier Drain owns shutdown; wait for it.
    while (!drained_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return;
  }

  if (acceptor_.joinable()) acceptor_.join();
  if (watcher_.joinable()) watcher_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  GUARDRAIL_LOG(INFO) << "serve drained"
                      << telemetry::Kv("port", static_cast<int64_t>(port_));
  drained_.store(true, std::memory_order_release);
}

}  // namespace serve
}  // namespace guardrail
