#ifndef GUARDRAIL_EXP_QUERY_WORKLOAD_H_
#define GUARDRAIL_EXP_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "sql/executor.h"
#include "table/dataset_repository.h"

namespace guardrail {
namespace exp {

/// One ML-integrated SQL query of the evaluation workload.
struct WorkloadQuery {
  int dataset_id = 0;
  int query_index = 0;  // 0..3 within the dataset.
  std::string sql;
};

/// Generates the paper's 48-query workload shape: four ML-integrated queries
/// per dataset with varied structure (filtered aggregate over a CASE WHEN on
/// the prediction; group-by counts of predicted positives; prediction
/// histogram; attribute rate among a predicted class). Attribute and value
/// choices are deterministic per dataset. `table_name` and `model_name` must
/// match the executor registrations; queries assume the model predicts the
/// dataset's label column.
std::vector<WorkloadQuery> GenerateWorkload(const DatasetBundle& bundle,
                                            const std::string& table_name,
                                            const std::string& model_name);

/// Normalized L1 distance between two query results (paper Sec. 8.2):
/// |dirty - clean|_1 over matching group keys, divided by |clean|_1. Rows
/// are aligned on their non-numeric leading cells; missing groups count with
/// full weight. The norm is smoothed by +1 and the result capped at 1.0
/// (see the implementation note); returns 0 when both sides are empty.
double RelativeQueryError(const sql::QueryResult& clean,
                          const sql::QueryResult& dirty);

}  // namespace exp
}  // namespace guardrail

#endif  // GUARDRAIL_EXP_QUERY_WORKLOAD_H_
