#include "exp/detection_metrics.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace guardrail {
namespace exp {

ConfusionCounts CountConfusion(const std::vector<bool>& predicted,
                               const std::vector<bool>& truth) {
  GUARDRAIL_CHECK_EQ(predicted.size(), truth.size());
  ConfusionCounts c;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] && truth[i]) ++c.tp;
    else if (predicted[i] && !truth[i]) ++c.fp;
    else if (!predicted[i] && truth[i]) ++c.fn;
    else ++c.tn;
  }
  return c;
}

double F1(const ConfusionCounts& c) { return F1Score(c.tp, c.fp, c.fn); }

double Mcc(const ConfusionCounts& c) {
  return MatthewsCorrelation(c.tp, c.fp, c.tn, c.fn);
}

bool IsMccDefined(const ConfusionCounts& c) {
  return (c.tp + c.fp) > 0 && (c.tp + c.fn) > 0 && (c.tn + c.fp) > 0 &&
         (c.tn + c.fn) > 0;
}

}  // namespace exp
}  // namespace guardrail
