#ifndef GUARDRAIL_EXP_DETECTION_METRICS_H_
#define GUARDRAIL_EXP_DETECTION_METRICS_H_

#include <cstdint>
#include <vector>

namespace guardrail {
namespace exp {

/// Binary confusion counts for row-level error detection.
struct ConfusionCounts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;
};

/// Compares predicted flags against ground truth (same length).
ConfusionCounts CountConfusion(const std::vector<bool>& predicted,
                               const std::vector<bool>& truth);

/// F1 = 2 TP / (2 TP + FP + FN); 0 when undefined.
double F1(const ConfusionCounts& c);

/// Matthews correlation coefficient; 0 when undefined (the paper prints NaN
/// for degenerate detectors — IsMccDefined distinguishes the two).
double Mcc(const ConfusionCounts& c);
bool IsMccDefined(const ConfusionCounts& c);

}  // namespace exp
}  // namespace guardrail

#endif  // GUARDRAIL_EXP_DETECTION_METRICS_H_
