#include "exp/pipeline.h"

#include <utility>

#include "common/telemetry/telemetry.h"
#include "ml/automl.h"

namespace guardrail {
namespace exp {

Result<std::unique_ptr<PreparedDataset>> PrepareDataset(
    int id, const ExperimentConfig& config) {
  auto prepared = std::make_unique<PreparedDataset>();
  prepared->bundle = DatasetRepository::Build(id, config.row_limit);

  Rng rng(config.seed ^ (static_cast<uint64_t>(id) * 0x9E3779B9ULL));
  auto [train, test] = prepared->bundle.clean.Split(config.train_fraction, &rng);
  prepared->train = std::move(train);
  prepared->test_clean = std::move(test);

  // Constraints from the error-free split.
  core::Synthesizer synthesizer(config.synthesis);
  Rng synth_rng = rng.Fork();
  prepared->synthesis = synthesizer.Synthesize(prepared->train, &synth_rng);

  // Model trained on clean data (the paper buys the model; errors live in
  // the serving data, not the training data). A trainer failure degrades to
  // the constraints-only ladder — `model` stays null and the synthesized
  // program above still guards the data — instead of aborting the whole
  // pipeline: the paper's constraint path never depended on the model.
  if (config.train_model) {
    ml::AutoMlTrainer trainer;
    Result<std::unique_ptr<ml::Model>> model =
        trainer.Train(prepared->train, prepared->bundle.label_column);
    if (model.ok()) {
      prepared->model = std::move(*model);
    } else {
      GUARDRAIL_COUNTER_INC("exp.model_training_degraded");
      GUARDRAIL_LOG(WARN)
          << "model training failed; continuing constraints-only"
          << telemetry::Kv("dataset", static_cast<int64_t>(id))
          << telemetry::Kv("error", model.status().ToString());
    }
  }

  // Errors injected into the serving split; the label column is protected so
  // mis-predictions trace back to corrupted *inputs*.
  ErrorInjectionOptions injection = config.injection;
  injection.protected_columns.push_back(prepared->bundle.label_column);
  if (config.restrict_errors_to_constrained) {
    std::vector<bool> constrained(
        static_cast<size_t>(prepared->test_clean.num_columns()), false);
    for (const auto& stmt : prepared->synthesis.program.statements) {
      constrained[static_cast<size_t>(stmt.dependent)] = true;
    }
    for (AttrIndex c = 0; c < prepared->test_clean.num_columns(); ++c) {
      if (!constrained[static_cast<size_t>(c)]) {
        injection.protected_columns.push_back(c);
      }
    }
  }
  Rng inject_rng = rng.Fork();
  ErrorInjectionResult injected =
      InjectErrors(prepared->test_clean, injection, &inject_rng);
  prepared->test_dirty = std::move(injected.dirty);
  prepared->errors = std::move(injected.errors);
  prepared->row_has_error = std::move(injected.row_has_error);
  return prepared;
}

std::vector<bool> ComputeMispredictions(const ml::Model& model,
                                        const Table& clean,
                                        const Table& dirty,
                                        AttrIndex label_column) {
  (void)label_column;
  std::vector<bool> flags(static_cast<size_t>(clean.num_rows()), false);
  for (RowIndex r = 0; r < clean.num_rows(); ++r) {
    ValueId on_clean = model.Predict(clean.GetRow(r));
    ValueId on_dirty = model.Predict(dirty.GetRow(r));
    flags[static_cast<size_t>(r)] = on_clean != on_dirty;
  }
  return flags;
}

}  // namespace exp
}  // namespace guardrail
