#ifndef GUARDRAIL_EXP_PIPELINE_H_
#define GUARDRAIL_EXP_PIPELINE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/guard.h"
#include "core/synthesizer.h"
#include "ml/model.h"
#include "table/dataset_repository.h"
#include "table/error_injector.h"

namespace guardrail {
namespace exp {

/// Shared experiment configuration. Defaults follow the paper's setup:
/// constraints discovered on an error-free split, detection evaluated on an
/// error-injected split (Sec. 8.1), 1% error rate with a 30-error floor/cap
/// for small data.
struct ExperimentConfig {
  /// 0 = use each dataset's full Table-2 row count.
  int64_t row_limit = 0;
  double train_fraction = 0.6;
  core::SynthesisOptions synthesis;
  ErrorInjectionOptions injection;
  uint64_t seed = 0xE9A1ULL;
  /// Train the ML model (needed by Tables 1, 5, 6 and Fig. 6; RQ1 skips it).
  bool train_model = true;
  /// RQ2 setup (paper Sec. 8.2): "we focus on errors that are caused by the
  /// integrity constraints to isolate the impact of undetectable errors" —
  /// inject errors only into columns the synthesized program constrains
  /// (statement dependents).
  bool restrict_errors_to_constrained = false;
};

/// A dataset prepared end-to-end: synthesized constraints on the clean train
/// split, a trained model, and an error-injected test split with ground
/// truth.
struct PreparedDataset {
  DatasetBundle bundle;
  Table train;
  Table test_clean;
  Table test_dirty;
  std::vector<InjectedError> errors;
  std::vector<bool> row_has_error;
  core::SynthesisReport synthesis;
  /// Null when train_model is false, or when training failed and the
  /// pipeline degraded to constraints-only (see PrepareDataset).
  std::unique_ptr<ml::Model> model;
};

/// Runs the shared pipeline for dataset `id`.
Result<std::unique_ptr<PreparedDataset>> PrepareDataset(
    int id, const ExperimentConfig& config);

/// Per-row mis-prediction flags: model prediction on the dirty row differs
/// from its prediction on the clean row (errors changed the model's output).
std::vector<bool> ComputeMispredictions(const ml::Model& model,
                                        const Table& clean,
                                        const Table& dirty,
                                        AttrIndex label_column);

}  // namespace exp
}  // namespace guardrail

#endif  // GUARDRAIL_EXP_PIPELINE_H_
