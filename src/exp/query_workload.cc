#include "exp/query_workload.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"

namespace guardrail {
namespace exp {

namespace {

/// Most frequent value label of a column (deterministic tie-break).
std::string ModeLabel(const Table& table, AttrIndex attr) {
  const Attribute& a = table.schema().attribute(attr);
  std::vector<int64_t> counts(static_cast<size_t>(a.domain_size()), 0);
  for (ValueId v : table.column(attr)) {
    if (v != kNullValue) ++counts[static_cast<size_t>(v)];
  }
  ValueId best = 0;
  for (size_t v = 1; v < counts.size(); ++v) {
    if (counts[v] > counts[static_cast<size_t>(best)]) {
      best = static_cast<ValueId>(v);
    }
  }
  return a.label(best);
}

/// Picks up to `k` distinct non-label attributes for grouping and filtering,
/// preferring (a) attributes that are not functional dependents in the
/// ground-truth SEM — grouping by an attribute that integrity constraints
/// actively govern makes the query's own group structure a moving target
/// under rectification, which the paper's hand-vetted queries avoid — and
/// (b) low cardinality (bigger segments, smaller GROUP BY results).
std::vector<AttrIndex> PickAttributes(const DatasetBundle& bundle, int k) {
  std::vector<AttrIndex> candidates;
  for (AttrIndex a = 0; a < bundle.clean.num_columns(); ++a) {
    if (a == bundle.label_column) continue;
    candidates.push_back(a);
  }
  auto is_constrained = [&](AttrIndex a) {
    const SemNode& node = bundle.sem->nodes()[static_cast<size_t>(a)];
    return !node.parents.empty() && node.noise <= 0.02;
  };
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](AttrIndex x, AttrIndex y) {
                     bool cx = is_constrained(x), cy = is_constrained(y);
                     if (cx != cy) return !cx;  // Unconstrained first.
                     return bundle.clean.schema().attribute(x).domain_size() <
                            bundle.clean.schema().attribute(y).domain_size();
                   });
  if (static_cast<int>(candidates.size()) > k) candidates.resize(k);
  return candidates;
}

}  // namespace

std::vector<WorkloadQuery> GenerateWorkload(const DatasetBundle& bundle,
                                            const std::string& table_name,
                                            const std::string& model_name) {
  const Table& data = bundle.clean;
  const Attribute& label = data.schema().attribute(bundle.label_column);
  GUARDRAIL_CHECK_GE(label.domain_size(), 2);
  // Aggregate against the *majority* label so every rate has a sizable
  // population behind it (a skewed model may predict a minority class a
  // handful of times, which would make relative errors degenerate).
  const std::string label0 = ModeLabel(data, bundle.label_column);

  std::vector<AttrIndex> attrs = PickAttributes(bundle, 3);
  GUARDRAIL_CHECK_GE(attrs.size(), 1u);
  AttrIndex a0 = attrs[0];
  AttrIndex a1 = attrs.size() > 1 ? attrs[1] : attrs[0];
  AttrIndex a2 = attrs.size() > 2 ? attrs[2] : attrs[0];
  const std::string a0_name = data.schema().attribute(a0).name();
  const std::string a1_name = data.schema().attribute(a1).name();
  const std::string a2_name = data.schema().attribute(a2).name();
  const std::string a0_mode = ModeLabel(data, a0);
  const std::string a2_mode = ModeLabel(data, a2);
  const std::string predict = "ML_PREDICT('" + model_name + "')";

  std::vector<WorkloadQuery> out;
  // The paper's authors hand-wrote four queries per dataset and
  // "cross-checked that they are meaningful"; the equivalent mechanical
  // guarantee here is that every query aggregates over populations whose
  // clean result has a well-bounded L1 norm (no single near-empty segment
  // or never-predicted class in a denominator).
  //
  // Q0: predicted-majority rate within a base segment (the Fig. 1 "average
  // likelihood per floor" shape: raw attributes appear in *filters*, where a
  // corrupted cell merely drops out of the segment, never as a group key).
  out.push_back({bundle.spec.id, 0,
                 "SELECT AVG(CASE WHEN " + predict + " = '" + label0 +
                     "' THEN 1 ELSE 0 END) AS positive_rate FROM " +
                     table_name + " WHERE " + a0_name + " = '" + a0_mode +
                     "'"});
  // Q1: counts per segment among predicted positives (ML-dependent WHERE,
  // exercises pushdown planning).
  out.push_back({bundle.spec.id, 1,
                 "SELECT " + a1_name + ", COUNT(*) AS n FROM " + table_name +
                     " WHERE " + predict + " = '" + label0 + "' GROUP BY " +
                     a1_name});
  // Q2: prediction histogram.
  out.push_back({bundle.spec.id, 2,
                 "SELECT " + predict + " AS pred, COUNT(*) AS n FROM " +
                     table_name + " GROUP BY " + predict});
  // Q3: per-prediction count of a base-attribute property (SUM keeps the
  // result norm on the row-count scale, so a sparsely predicted class
  // cannot dominate the relative error).
  out.push_back({bundle.spec.id, 3,
                 "SELECT " + predict + " AS pred, SUM(CASE WHEN " + a2_name +
                     " = '" + a2_mode + "' THEN 1 ELSE 0 END) AS n FROM " +
                     table_name + " GROUP BY " + predict});
  return out;
}

double RelativeQueryError(const sql::QueryResult& clean,
                          const sql::QueryResult& dirty) {
  // Split each row into a string key (non-numeric cells) and numeric values.
  auto index_rows = [](const sql::QueryResult& result) {
    std::map<std::string, std::vector<double>> out;
    for (const auto& row : result.rows) {
      std::string key;
      std::vector<double> values;
      for (const auto& cell : row) {
        double n = 0;
        if (!cell.is_null() && cell.is_number()) {
          values.push_back(cell.number());
        } else if (!cell.is_null() && cell.ToNumber(&n) && !cell.is_string()) {
          values.push_back(n);
        } else {
          key += cell.ToDisplayString();
          key += '\x1f';
        }
      }
      auto [it, inserted] = out.emplace(key, std::move(values));
      if (!inserted) {
        // Duplicate key: accumulate (defensive; GROUP BY keys are unique).
        for (size_t i = 0; i < it->second.size() && i < values.size(); ++i) {
          it->second[i] += values[i];
        }
      }
    }
    return out;
  };

  auto clean_rows = index_rows(clean);
  auto dirty_rows = index_rows(dirty);

  double abs_error = 0.0;
  double clean_norm = 0.0;
  for (const auto& [key, cvals] : clean_rows) {
    for (double v : cvals) clean_norm += std::fabs(v);
    auto it = dirty_rows.find(key);
    if (it == dirty_rows.end()) {
      for (double v : cvals) abs_error += std::fabs(v);
      continue;
    }
    const auto& dvals = it->second;
    size_t n = std::max(cvals.size(), dvals.size());
    for (size_t i = 0; i < n; ++i) {
      double c = i < cvals.size() ? cvals[i] : 0.0;
      double d = i < dvals.size() ? dvals[i] : 0.0;
      abs_error += std::fabs(c - d);
    }
  }
  for (const auto& [key, dvals] : dirty_rows) {
    if (clean_rows.count(key) == 0) {
      for (double v : dvals) abs_error += std::fabs(v);
    }
  }
  // Additive smoothing plus a cap: the paper's hand-written queries were
  // cross-checked to be "meaningful", i.e. no near-zero clean outcome ever
  // sits in a denominator. A generated workload cannot make that promise,
  // so one unit of result mass is added to the norm (negligible for count
  // queries whose norms are in the thousands, decisive for a rate query
  // whose clean result happens to be ~0), and errors are clipped to [0, 1]
  // in the spirit of the min-max normalization of Sec. 8.2.
  return std::min(1.0, abs_error / (clean_norm + 1.0));
}

}  // namespace exp
}  // namespace guardrail
