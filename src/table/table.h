#ifndef GUARDRAIL_TABLE_TABLE_H_
#define GUARDRAIL_TABLE_TABLE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/rng.h"
#include "common/status.h"
#include "table/schema.h"
#include "table/value.h"

namespace guardrail {

/// A column-major, dictionary-encoded categorical relation. Cheap to copy
/// column slices, O(1) cell access, and all synthesis-time statistics operate
/// directly on the dense codes.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  int64_t num_rows() const { return num_rows_; }
  int32_t num_columns() const { return schema_.num_attributes(); }

  /// Cell access; `row` in [0, num_rows), `col` in [0, num_columns).
  ValueId Get(RowIndex row, AttrIndex col) const {
    return columns_[static_cast<size_t>(col)][static_cast<size_t>(row)];
  }
  void Set(RowIndex row, AttrIndex col, ValueId value) {
    columns_[static_cast<size_t>(col)][static_cast<size_t>(row)] = value;
  }

  /// Whole-column access for vectorized statistics.
  const std::vector<ValueId>& column(AttrIndex col) const {
    return columns_[static_cast<size_t>(col)];
  }

  /// Materializes row `row`.
  Row GetRow(RowIndex row) const;

  /// Appends a row; must have one code per attribute and codes must be valid
  /// for each attribute's domain (or kNullValue).
  Status AppendRow(const Row& row);

  /// Appends a row given human-readable labels, extending domains as needed.
  void AppendRowLabels(const std::vector<std::string>& labels);

  /// Human-readable label of a cell ("<null>" for kNullValue).
  std::string GetLabel(RowIndex row, AttrIndex col) const;

  /// Returns a new table containing the given rows, sharing the schema.
  Table Select(const std::vector<RowIndex>& rows) const;

  /// Returns a new table with the first `n` rows.
  Table Head(int64_t n) const;

  /// Splits rows into (train, test) with `train_fraction` going to train,
  /// after a deterministic shuffle driven by `rng`.
  std::pair<Table, Table> Split(double train_fraction, Rng* rng) const;

  /// CSV conversion: every attribute becomes a string column.
  CsvDocument ToCsv() const;
  static Result<Table> FromCsv(const CsvDocument& doc);

 private:
  Schema schema_;
  std::vector<std::vector<ValueId>> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace guardrail

#endif  // GUARDRAIL_TABLE_TABLE_H_
