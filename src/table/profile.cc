#include "table/profile.h"

#include <cmath>
#include <cstdio>
#include <vector>

namespace guardrail {

std::vector<AttrIndex> TableProfile::ConstantColumns() const {
  std::vector<AttrIndex> out;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].cardinality <= 1) out.push_back(static_cast<AttrIndex>(c));
  }
  return out;
}

std::vector<AttrIndex> TableProfile::KeyLikeColumns(double ratio) const {
  std::vector<AttrIndex> out;
  for (size_t c = 0; c < columns.size(); ++c) {
    int64_t non_null = num_rows - columns[c].null_count;
    if (non_null > 0 &&
        static_cast<double>(columns[c].cardinality) >=
            ratio * static_cast<double>(non_null)) {
      out.push_back(static_cast<AttrIndex>(c));
    }
  }
  return out;
}

TableProfile ProfileTable(const Table& table) {
  TableProfile profile;
  profile.num_rows = table.num_rows();
  for (AttrIndex c = 0; c < table.num_columns(); ++c) {
    const Attribute& attr = table.schema().attribute(c);
    ColumnProfile column;
    column.name = attr.name();
    std::vector<int64_t> counts(static_cast<size_t>(attr.domain_size()), 0);
    for (ValueId v : table.column(c)) {
      if (v == kNullValue) {
        ++column.null_count;
      } else {
        ++counts[static_cast<size_t>(v)];
      }
    }
    int64_t non_null = profile.num_rows - column.null_count;
    for (size_t v = 0; v < counts.size(); ++v) {
      if (counts[v] == 0) continue;
      ++column.cardinality;
      if (counts[v] > column.mode_count) {
        column.mode_count = counts[v];
        column.mode = static_cast<ValueId>(v);
      }
      double p = static_cast<double>(counts[v]) /
                 static_cast<double>(non_null);
      column.entropy_bits -= p * std::log2(p);
    }
    column.mode_fraction =
        non_null > 0 ? static_cast<double>(column.mode_count) /
                           static_cast<double>(non_null)
                     : 0.0;
    profile.columns.push_back(std::move(column));
  }
  return profile;
}

std::string ToString(const TableProfile& profile) {
  std::string out = "rows: " + std::to_string(profile.num_rows) + "\n";
  char buf[160];
  for (const auto& column : profile.columns) {
    std::snprintf(buf, sizeof(buf),
                  "%-24s card=%-6d nulls=%-6lld entropy=%5.2fb mode=%.0f%%\n",
                  column.name.c_str(), column.cardinality,
                  static_cast<long long>(column.null_count),
                  column.entropy_bits, 100.0 * column.mode_fraction);
    out += buf;
  }
  return out;
}

}  // namespace guardrail
