#include "table/table.h"

#include <algorithm>
#include <numeric>

#include "common/failpoint.h"
#include "common/logging.h"

namespace guardrail {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(static_cast<size_t>(schema_.num_attributes()));
}

Row Table::GetRow(RowIndex row) const {
  Row out(static_cast<size_t>(num_columns()));
  for (AttrIndex c = 0; c < num_columns(); ++c) {
    out[static_cast<size_t>(c)] = Get(row, c);
  }
  return out;
}

Status Table::AppendRow(const Row& row) {
  GUARDRAIL_FAILPOINT("table.append_row");
  if (static_cast<int32_t>(row.size()) != num_columns()) {
    return Status::InvalidArgument("row width mismatch");
  }
  for (AttrIndex c = 0; c < num_columns(); ++c) {
    ValueId v = row[static_cast<size_t>(c)];
    if (v != kNullValue &&
        (v < 0 || v >= schema_.attribute(c).domain_size())) {
      return Status::OutOfRange("value code out of domain for attribute " +
                                schema_.attribute(c).name());
    }
    columns_[static_cast<size_t>(c)].push_back(v);
  }
  ++num_rows_;
  return Status::OK();
}

void Table::AppendRowLabels(const std::vector<std::string>& labels) {
  GUARDRAIL_CHECK_EQ(static_cast<int32_t>(labels.size()), num_columns());
  for (AttrIndex c = 0; c < num_columns(); ++c) {
    ValueId v = schema_.attribute(c).GetOrInsert(labels[static_cast<size_t>(c)]);
    columns_[static_cast<size_t>(c)].push_back(v);
  }
  ++num_rows_;
}

std::string Table::GetLabel(RowIndex row, AttrIndex col) const {
  ValueId v = Get(row, col);
  if (v == kNullValue) return "<null>";
  return schema_.attribute(col).label(v);
}

Table Table::Select(const std::vector<RowIndex>& rows) const {
  Table out(schema_);
  for (auto& col : out.columns_) col.reserve(rows.size());
  for (AttrIndex c = 0; c < num_columns(); ++c) {
    auto& dst = out.columns_[static_cast<size_t>(c)];
    const auto& src = columns_[static_cast<size_t>(c)];
    for (RowIndex r : rows) {
      GUARDRAIL_CHECK_GE(r, 0);
      GUARDRAIL_CHECK_LT(r, num_rows_);
      dst.push_back(src[static_cast<size_t>(r)]);
    }
  }
  out.num_rows_ = static_cast<int64_t>(rows.size());
  return out;
}

Table Table::Head(int64_t n) const {
  n = std::min(n, num_rows_);
  std::vector<RowIndex> rows(static_cast<size_t>(n));
  std::iota(rows.begin(), rows.end(), 0);
  return Select(rows);
}

std::pair<Table, Table> Table::Split(double train_fraction, Rng* rng) const {
  GUARDRAIL_CHECK_GE(train_fraction, 0.0);
  GUARDRAIL_CHECK_LE(train_fraction, 1.0);
  std::vector<RowIndex> order(static_cast<size_t>(num_rows_));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  auto cut = static_cast<size_t>(train_fraction * static_cast<double>(num_rows_));
  std::vector<RowIndex> train(order.begin(), order.begin() + cut);
  std::vector<RowIndex> test(order.begin() + cut, order.end());
  return {Select(train), Select(test)};
}

CsvDocument Table::ToCsv() const {
  CsvDocument doc;
  doc.header = schema_.AttributeNames();
  doc.rows.reserve(static_cast<size_t>(num_rows_));
  for (RowIndex r = 0; r < num_rows_; ++r) {
    std::vector<std::string> record;
    record.reserve(static_cast<size_t>(num_columns()));
    for (AttrIndex c = 0; c < num_columns(); ++c) {
      ValueId v = Get(r, c);
      record.push_back(v == kNullValue ? "" : schema_.attribute(c).label(v));
    }
    doc.rows.push_back(std::move(record));
  }
  return doc;
}

Result<Table> Table::FromCsv(const CsvDocument& doc) {
  GUARDRAIL_FAILPOINT("table.from_csv");
  Schema schema;
  for (const auto& name : doc.header) {
    GUARDRAIL_RETURN_NOT_OK(schema.AddAttribute(Attribute(name)));
  }
  Table table(std::move(schema));
  size_t row_number = 1;
  for (const auto& record : doc.rows) {
    ++row_number;
    if (record.size() != doc.header.size()) {
      return Status::InvalidArgument(
          "CSV record width mismatch at row " + std::to_string(row_number) +
          ": " + std::to_string(record.size()) + " field(s), expected " +
          std::to_string(doc.header.size()));
    }
    table.AppendRowLabels(record);
  }
  return table;
}

}  // namespace guardrail
