#ifndef GUARDRAIL_TABLE_ERROR_INJECTOR_H_
#define GUARDRAIL_TABLE_ERROR_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "table/table.h"

namespace guardrail {

/// One injected error: the cell that was corrupted and its original value.
struct InjectedError {
  RowIndex row = 0;
  AttrIndex column = 0;
  ValueId original_value = kNullValue;
  ValueId corrupted_value = kNullValue;
};

/// How a selected cell is corrupted.
enum class CorruptionMode {
  /// Replace the value with a fresh out-of-domain token ("Berkeley" ->
  /// "gibbon", paper Example 2.1): the corrupted value is a random string
  /// that never occurs in clean data. The paper's random error injection.
  kRandomString,
  /// Replace the value with a *different valid* domain value — a harder,
  /// plausible-swap regime kept for stress tests and ablations.
  kDomainSwap,
};

/// Configuration matching the paper's setup (Sec. 8.1): a fixed cell error
/// rate of 1%, raised for small datasets so that at least `min_errors` cells
/// are corrupted, and capped at `max_errors_small` when raising.
struct ErrorInjectionOptions {
  CorruptionMode mode = CorruptionMode::kRandomString;
  double error_rate = 0.01;
  int64_t min_errors = 30;
  /// The paper caps the raised count at 30 errors for small datasets.
  int64_t cap_for_small_datasets = 30;
  /// Columns that must not be corrupted (e.g., the ML label column, so that
  /// mis-predictions are caused by input errors only). Empty = all columns.
  std::vector<AttrIndex> protected_columns;
};

/// Result of an injection pass: the corrupted table plus ground truth.
struct ErrorInjectionResult {
  Table dirty;
  std::vector<InjectedError> errors;
  /// row -> true when any cell of the row was corrupted.
  std::vector<bool> row_has_error;
};

/// Randomly corrupts cells of `clean` according to `options.mode`. The
/// dirty table's schema grows by the injected out-of-domain tokens in
/// kRandomString mode (labels "corrupted_<k>").
ErrorInjectionResult InjectErrors(const Table& clean,
                                  const ErrorInjectionOptions& options,
                                  Rng* rng);

}  // namespace guardrail

#endif  // GUARDRAIL_TABLE_ERROR_INJECTOR_H_
