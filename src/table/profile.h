#ifndef GUARDRAIL_TABLE_PROFILE_H_
#define GUARDRAIL_TABLE_PROFILE_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace guardrail {

/// Summary statistics of one categorical column.
struct ColumnProfile {
  std::string name;
  int32_t cardinality = 0;     // Distinct non-null values observed.
  int64_t null_count = 0;
  ValueId mode = kNullValue;   // Most frequent value (kNullValue if empty).
  int64_t mode_count = 0;
  double entropy_bits = 0.0;   // Shannon entropy of the value distribution.
  /// Fraction of rows carrying the mode; 1.0 marks a constant column.
  double mode_fraction = 0.0;
};

/// Summary of a whole table; the raw material of data-profiling passes
/// (cardinality screens for CORDS, constant-column detection for synthesis,
/// entropy budgets for CI-test power heuristics).
struct TableProfile {
  int64_t num_rows = 0;
  std::vector<ColumnProfile> columns;

  /// Columns with at most one distinct value (no constraint can fire on or
  /// from them).
  std::vector<AttrIndex> ConstantColumns() const;

  /// Columns whose distinct-count is at least `ratio` of the row count —
  /// key-like attributes that trivially "determine" everything and should
  /// be excluded from determinant sets.
  std::vector<AttrIndex> KeyLikeColumns(double ratio = 0.9) const;
};

/// Computes the profile in a single pass per column.
TableProfile ProfileTable(const Table& table);

/// Fixed-width text rendering for logs and examples.
std::string ToString(const TableProfile& profile);

}  // namespace guardrail

#endif  // GUARDRAIL_TABLE_PROFILE_H_
