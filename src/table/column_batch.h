#ifndef GUARDRAIL_TABLE_COLUMN_BATCH_H_
#define GUARDRAIL_TABLE_COLUMN_BATCH_H_

#include <cstdint>
#include <vector>

#include "table/table.h"
#include "table/value.h"

namespace guardrail {

/// Word-granular row bitmask helpers shared by the batch evaluator: masks
/// are plain std::vector<uint64_t> with bit i = row i, LSB-first within a
/// word, so consumers can AND/OR whole words on the hot path.
namespace rowmask {

inline size_t Words(int64_t rows) {
  return static_cast<size_t>((rows + 63) / 64);
}

inline void Set(std::vector<uint64_t>* mask, int64_t row) {
  (*mask)[static_cast<size_t>(row >> 6)] |= uint64_t{1} << (row & 63);
}

inline bool Test(const std::vector<uint64_t>& mask, int64_t row) {
  size_t word = static_cast<size_t>(row >> 6);
  if (word >= mask.size()) return false;
  return (mask[word] >> (row & 63)) & 1;
}

int64_t Count(const std::vector<uint64_t>& mask);

/// Index of the first set bit at or after `from`, or -1 when none before
/// `rows`.
int64_t NextSet(const std::vector<uint64_t>& mask, int64_t from, int64_t rows);

}  // namespace rowmask

/// A columnar view (or transposed copy) of a block of rows, the unit the
/// compiled guard engine (core/batch_eval.h) evaluates. Two sources:
///
///  - FromTable: zero-copy pointers into a Table's dictionary-coded column
///    vectors — the offline Guard and the SQL executor batch scanned chunks
///    this way without materializing a single Row.
///  - FromRows: a transpose of already-materialized rows (a serve request's
///    decoded block), gathering only the attributes the compiled program
///    references. Rows narrower than `width` are recorded in narrow() — the
///    compiled path must hand those to the scalar interpreter fallback —
///    and their missing cells read as kNullValue so vectorized passes never
///    touch out-of-bounds memory.
class ColumnBatch {
 public:
  ColumnBatch() = default;

  /// Zero-copy view of table rows [begin, begin + count).
  static ColumnBatch FromTable(const Table& table, RowIndex begin,
                               int64_t count);

  /// Transposes rows [begin, begin + count) of `rows` into owned columns,
  /// materializing only `attrs` (each < width). A row with fewer than
  /// `width` cells is flagged narrow.
  static ColumnBatch FromRows(const std::vector<Row>& rows, size_t begin,
                              size_t count, int32_t width,
                              const std::vector<AttrIndex>& attrs);

  int64_t num_rows() const { return num_rows_; }

  /// Attribute indexes [0, width) are addressable; column() may still be
  /// nullptr for attributes the batch did not materialize.
  int32_t width() const { return width_; }

  /// Pointer to `num_rows()` contiguous codes for attribute `attr`, or
  /// nullptr when the batch does not carry that column.
  const ValueId* column(AttrIndex attr) const {
    size_t i = static_cast<size_t>(attr);
    return i < views_.size() ? views_[i] : nullptr;
  }

  /// Bitmask of rows narrower than width(); empty when none are.
  const std::vector<uint64_t>& narrow() const { return narrow_; }
  bool any_narrow() const { return any_narrow_; }

 private:
  std::vector<const ValueId*> views_;
  std::vector<std::vector<ValueId>> owned_;
  std::vector<uint64_t> narrow_;
  bool any_narrow_ = false;
  int64_t num_rows_ = 0;
  int32_t width_ = 0;
};

}  // namespace guardrail

#endif  // GUARDRAIL_TABLE_COLUMN_BATCH_H_
