#include "table/error_injector.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace guardrail {

ErrorInjectionResult InjectErrors(const Table& clean,
                                  const ErrorInjectionOptions& options,
                                  Rng* rng) {
  ErrorInjectionResult result;
  result.dirty = clean;
  result.row_has_error.assign(static_cast<size_t>(clean.num_rows()), false);

  std::unordered_set<AttrIndex> protected_cols(
      options.protected_columns.begin(), options.protected_columns.end());
  std::vector<AttrIndex> eligible_cols;
  for (AttrIndex c = 0; c < clean.num_columns(); ++c) {
    // Attributes with a single value cannot be corrupted to a different one.
    if (protected_cols.count(c) == 0 &&
        clean.schema().attribute(c).domain_size() > 1) {
      eligible_cols.push_back(c);
    }
  }
  if (eligible_cols.empty() || clean.num_rows() == 0) return result;

  const int64_t total_cells =
      clean.num_rows() * static_cast<int64_t>(eligible_cols.size());
  int64_t target = static_cast<int64_t>(options.error_rate *
                                        static_cast<double>(total_cells));
  if (target < options.min_errors) {
    // "slightly higher for datasets with fewer rows; capped at 30 errors".
    target = std::min(options.cap_for_small_datasets, total_cells);
  }
  target = std::min(target, total_cells);

  // Choose distinct cells via sampling without replacement over the flat
  // (row, eligible-column) index space.
  std::vector<size_t> cells = rng->SampleWithoutReplacement(
      static_cast<size_t>(total_cells), static_cast<size_t>(target));

  int64_t token_counter = 0;
  for (size_t cell : cells) {
    RowIndex row = static_cast<RowIndex>(cell / eligible_cols.size());
    AttrIndex col = eligible_cols[cell % eligible_cols.size()];
    ValueId original = clean.Get(row, col);
    ValueId corrupted;
    if (options.mode == CorruptionMode::kRandomString) {
      // A fresh token outside the clean domain, unique per corruption.
      corrupted = result.dirty.mutable_schema().attribute(col).GetOrInsert(
          "corrupted_" + std::to_string(token_counter++) + "_" +
          std::to_string(rng->NextUint64(1000000)));
    } else {
      int32_t domain = clean.schema().attribute(col).domain_size();
      // Uniform over the other values of the domain.
      corrupted = static_cast<ValueId>(
          rng->NextUint64(static_cast<uint64_t>(domain - 1)));
      if (corrupted >= original && original != kNullValue) ++corrupted;
    }
    result.dirty.Set(row, col, corrupted);
    result.errors.push_back({row, col, original, corrupted});
    result.row_has_error[static_cast<size_t>(row)] = true;
  }
  return result;
}

}  // namespace guardrail
