#include "table/value.h"

#include "common/string_util.h"

namespace guardrail {

std::string Literal::ToString() const {
  if (is_string()) return string_value();
  if (is_boolean()) return boolean_value() ? "true" : "false";
  double n = number_value();
  // Integral doubles print without a trailing ".0" so they unify with
  // integer-looking strings in dictionary domains.
  if (n == static_cast<int64_t>(n) && n >= -1e15 && n <= 1e15) {
    return std::to_string(static_cast<int64_t>(n));
  }
  return FormatDouble(n, 12);
}

bool Literal::operator==(const Literal& other) const {
  return ToString() == other.ToString();
}

}  // namespace guardrail
