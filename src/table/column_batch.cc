#include "table/column_batch.h"

#include <bit>

namespace guardrail {

namespace rowmask {

int64_t Count(const std::vector<uint64_t>& mask) {
  int64_t n = 0;
  for (uint64_t word : mask) n += std::popcount(word);
  return n;
}

int64_t NextSet(const std::vector<uint64_t>& mask, int64_t from, int64_t rows) {
  if (from < 0) from = 0;
  for (int64_t row = from; row < rows;) {
    size_t word = static_cast<size_t>(row >> 6);
    if (word >= mask.size()) return -1;
    uint64_t bits = mask[word] >> (row & 63);
    if (bits != 0) {
      int64_t hit = row + std::countr_zero(bits);
      return hit < rows ? hit : -1;
    }
    row = (row | 63) + 1;  // Next word boundary.
  }
  return -1;
}

}  // namespace rowmask

ColumnBatch ColumnBatch::FromTable(const Table& table, RowIndex begin,
                                   int64_t count) {
  ColumnBatch batch;
  batch.num_rows_ = count;
  batch.width_ = table.num_columns();
  batch.views_.resize(static_cast<size_t>(batch.width_));
  for (AttrIndex c = 0; c < batch.width_; ++c) {
    batch.views_[static_cast<size_t>(c)] =
        table.column(c).data() + static_cast<size_t>(begin);
  }
  return batch;
}

ColumnBatch ColumnBatch::FromRows(const std::vector<Row>& rows, size_t begin,
                                  size_t count, int32_t width,
                                  const std::vector<AttrIndex>& attrs) {
  ColumnBatch batch;
  batch.num_rows_ = static_cast<int64_t>(count);
  batch.width_ = width;
  batch.views_.resize(static_cast<size_t>(width), nullptr);
  batch.owned_.reserve(attrs.size());
  for (AttrIndex attr : attrs) {
    std::vector<ValueId>& col = batch.owned_.emplace_back();
    col.resize(count, kNullValue);
    size_t a = static_cast<size_t>(attr);
    for (size_t r = 0; r < count; ++r) {
      const Row& row = rows[begin + r];
      if (a < row.size()) col[r] = row[a];
    }
    batch.views_[a] = col.data();
  }
  for (size_t r = 0; r < count; ++r) {
    if (rows[begin + r].size() < static_cast<size_t>(width)) {
      if (batch.narrow_.empty()) {
        batch.narrow_.assign(rowmask::Words(batch.num_rows_), 0);
      }
      rowmask::Set(&batch.narrow_, static_cast<int64_t>(r));
      batch.any_narrow_ = true;
    }
  }
  return batch;
}

}  // namespace guardrail
