#ifndef GUARDRAIL_TABLE_SCHEMA_H_
#define GUARDRAIL_TABLE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "table/value.h"

namespace guardrail {

/// A categorical attribute: a name plus an ordered domain of distinct value
/// labels. Cell values are stored as dense indexes (ValueId) into the domain.
class Attribute {
 public:
  explicit Attribute(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Number of distinct values (the attribute's cardinality).
  int32_t domain_size() const { return static_cast<int32_t>(domain_.size()); }

  /// Label for a code; `code` must be a valid index (not kNullValue).
  const std::string& label(ValueId code) const;

  /// Code for a label, or kNullValue if the label is not in the domain.
  ValueId Lookup(const std::string& label) const;

  /// Code for a label, inserting it into the domain if absent.
  ValueId GetOrInsert(const std::string& label);

  const std::vector<std::string>& domain() const { return domain_; }

 private:
  std::string name_;
  std::vector<std::string> domain_;
  std::unordered_map<std::string, ValueId> index_;
};

/// An ordered collection of attributes with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  int32_t num_attributes() const {
    return static_cast<int32_t>(attributes_.size());
  }

  const Attribute& attribute(AttrIndex i) const;
  Attribute& attribute(AttrIndex i);

  /// Index of the attribute with this name, or -1 if absent.
  AttrIndex FindAttribute(const std::string& name) const;

  /// Appends a new attribute; the name must be unique.
  Status AddAttribute(Attribute attribute);

  std::vector<std::string> AttributeNames() const;

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, AttrIndex> by_name_;
};

}  // namespace guardrail

#endif  // GUARDRAIL_TABLE_SCHEMA_H_
