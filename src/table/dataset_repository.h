#ifndef GUARDRAIL_TABLE_DATASET_REPOSITORY_H_
#define GUARDRAIL_TABLE_DATASET_REPOSITORY_H_

#include <memory>
#include <string>
#include <vector>

#include "table/sem_generator.h"
#include "table/table.h"

namespace guardrail {

/// Static description of one of the 12 evaluation datasets (paper Table 2).
/// The real datasets (UCI / OpenML / Kaggle / bnlearn) are not available
/// offline, so each is simulated by a ground-truth SEM with the same name,
/// attribute count, and row count; see DESIGN.md "Substitutions".
struct DatasetSpec {
  int id = 0;
  std::string name;
  std::string category;
  int32_t num_attributes = 0;
  int64_t num_rows = 0;
  int32_t min_cardinality = 2;
  int32_t max_cardinality = 6;
  uint64_t seed = 0;
};

/// A fully materialized dataset: the generating SEM, a clean sample, and the
/// designated ML label column (always the last attribute, named "label").
struct DatasetBundle {
  DatasetSpec spec;
  std::shared_ptr<const SemModel> sem;
  Table clean;
  AttrIndex label_column = 0;
};

/// Registry of the 12 evaluation datasets.
class DatasetRepository {
 public:
  /// The 12 specs, ids 1..12, mirroring paper Table 2.
  static const std::vector<DatasetSpec>& Specs();

  static const DatasetSpec& Spec(int id);

  /// Builds (generates + samples) dataset `id`. Deterministic per spec seed.
  /// `row_limit` > 0 caps the sample size (used by fast unit tests).
  static DatasetBundle Build(int id, int64_t row_limit = 0);
};

}  // namespace guardrail

#endif  // GUARDRAIL_TABLE_DATASET_REPOSITORY_H_
