#include "table/dataset_repository.h"

#include <algorithm>

#include "common/logging.h"

namespace guardrail {

const std::vector<DatasetSpec>& DatasetRepository::Specs() {
  // Names / attribute counts / row counts follow paper Table 2. Cardinality
  // ranges are chosen so that the small medical/demographic datasets (#4-#6)
  // carry high-cardinality attributes relative to their row counts — the
  // regime where raw-data structure learning degrades and the auxiliary
  // sampler is needed (paper Table 8).
  static const std::vector<DatasetSpec>* kSpecs = new std::vector<DatasetSpec>{
      {1, "Adult", "Demographic", 15, 48842, 4, 24, 0xA0001},
      {2, "Lung Cancer", "Medical", 5, 20000, 2, 4, 0xA0002},
      {3, "Cylinder Bands", "Manufacturing", 40, 540, 2, 6, 0xA0003},
      {4, "Diabetes", "Medical", 9, 520, 6, 12, 0xA0004},
      {5, "Contraceptive Method Choice", "Demographic", 10, 1473, 6, 12,
       0xA0005},
      {6, "Blood Transfusion Service Center", "Medical", 4, 748, 8, 14,
       0xA0006},
      {7, "Steel Plates Faults", "Manufacturing", 28, 1941, 2, 6, 0xA0007},
      {8, "Jungle Chess", "Game", 7, 44819, 4, 12, 0xA0008},
      {9, "Telco Customer Churn", "Business", 21, 7043, 4, 14, 0xA0009},
      {10, "Bank Marketing", "Business", 17, 45211, 4, 16, 0xA000A},
      {11, "Phishing Websites", "Security", 31, 11055, 2, 3, 0xA000B},
      {12, "Hotel Reservations", "Business", 18, 36275, 4, 14, 0xA000C},
  };
  return *kSpecs;
}

const DatasetSpec& DatasetRepository::Spec(int id) {
  GUARDRAIL_CHECK_GE(id, 1);
  GUARDRAIL_CHECK_LE(id, static_cast<int>(Specs().size()));
  return Specs()[static_cast<size_t>(id - 1)];
}

DatasetBundle DatasetRepository::Build(int id, int64_t row_limit) {
  const DatasetSpec& spec = Spec(id);
  Rng rng(spec.seed);

  RandomSemOptions options;
  options.num_nodes = spec.num_attributes;
  options.min_cardinality = spec.min_cardinality;
  options.max_cardinality = spec.max_cardinality;

  SemModel base = BuildRandomSem(options, &rng);

  // Re-shape the last node into the ML label: give it parents (predictive
  // signal), moderate exogenous noise (a learnable but non-trivial task),
  // and a small domain (a classification target). The parents are drawn
  // from *functional* (constraint-bearing) attributes where possible: real
  // deployments point models at structured attributes, and this is what
  // gives the paper its Sec. 5 observation — errors that flip predictions
  // live in the constrained subspace Guardrail can vet, while errors it
  // misses land on attributes the model barely uses.
  std::vector<SemNode> nodes = base.nodes();
  SemNode& label = nodes.back();
  label.name = "label";
  label.cardinality = 2 + static_cast<int32_t>(rng.NextUint64(2));  // 2 or 3.
  std::vector<AttrIndex> functional;
  for (AttrIndex j = 0; j + 1 < static_cast<AttrIndex>(nodes.size()); ++j) {
    if (!nodes[static_cast<size_t>(j)].parents.empty() &&
        nodes[static_cast<size_t>(j)].noise <= 0.02) {
      functional.push_back(j);
    }
  }
  label.parents.clear();
  if (functional.size() >= 2) {
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(functional.size(), 2);
    label.parents = {functional[picks[0]], functional[picks[1]]};
  } else if (!functional.empty()) {
    label.parents = {functional[0]};
  } else {
    // Degenerate SEM without functional nodes: fall back to the two
    // preceding attributes.
    AttrIndex n = static_cast<AttrIndex>(nodes.size());
    if (n >= 2) label.parents.push_back(n - 2);
    if (n >= 3) label.parents.push_back(n - 3);
  }
  std::sort(label.parents.begin(), label.parents.end());
  label.noise = 0.08;

  auto sem = std::make_shared<SemModel>(std::move(nodes), rng.NextUint64());

  int64_t rows = spec.num_rows;
  if (row_limit > 0) rows = std::min(rows, row_limit);
  Rng sample_rng(spec.seed ^ 0x5EED5EED5EEDULL);
  Table clean = sem->Sample(rows, &sample_rng);

  DatasetBundle bundle;
  bundle.spec = spec;
  bundle.sem = sem;
  bundle.clean = std::move(clean);
  bundle.label_column = spec.num_attributes - 1;
  return bundle;
}

}  // namespace guardrail
