#ifndef GUARDRAIL_TABLE_VALUE_H_
#define GUARDRAIL_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace guardrail {

/// Dictionary code of a categorical value within its attribute's domain.
/// Codes are dense indexes into Attribute::domain(). kNullValue represents a
/// missing value or a value coerced to NULL by the `coerce` error-handling
/// scheme.
using ValueId = int32_t;
inline constexpr ValueId kNullValue = -1;

/// Index types, kept distinct from raw size_t in signatures for readability.
using AttrIndex = int32_t;
using RowIndex = int64_t;

/// A materialized row: one dictionary code per attribute, in schema order.
/// This doubles as the "program state" sigma of the DSL semantics (Sec. 2.2).
using Row = std::vector<ValueId>;

/// A literal in the DSL surface syntax: String | Number | Boolean (Fig. 2).
/// Inside the engine literals are resolved to dictionary codes; Literal is the
/// human-facing representation used by the parser, printer, and examples.
class Literal {
 public:
  Literal() : value_(std::string()) {}
  explicit Literal(std::string s) : value_(std::move(s)) {}
  explicit Literal(double n) : value_(n) {}
  explicit Literal(bool b) : value_(b) {}

  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_boolean() const { return std::holds_alternative<bool>(value_); }

  const std::string& string_value() const { return std::get<std::string>(value_); }
  double number_value() const { return std::get<double>(value_); }
  bool boolean_value() const { return std::get<bool>(value_); }

  /// Canonical text form: strings verbatim, numbers via shortest round-trip
  /// formatting, booleans as "true"/"false". This is the form stored in
  /// attribute domains, so Literal("1.5") and Literal(1.5) unify.
  std::string ToString() const;

  bool operator==(const Literal& other) const;

 private:
  std::variant<std::string, double, bool> value_;
};

}  // namespace guardrail

#endif  // GUARDRAIL_TABLE_VALUE_H_
