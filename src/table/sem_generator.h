#ifndef GUARDRAIL_TABLE_SEM_GENERATOR_H_
#define GUARDRAIL_TABLE_SEM_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "table/table.h"

namespace guardrail {

/// One endogenous variable of a structural equation model (Def. 4.3): a
/// categorical attribute whose value is a deterministic function of its
/// parents, except with probability `noise` where an exogenous variable takes
/// over and the value is sampled uniformly. noise == 0 yields a pure
/// functional dependency; large noise yields a "stochastic" attribute for
/// which no epsilon-valid constraint should exist.
struct SemNode {
  std::string name;
  int32_t cardinality = 2;
  std::vector<AttrIndex> parents;  // Indexes into SemModel::nodes.
  double noise = 0.0;
};

/// A complete structural equation model over categorical variables. The
/// deterministic functions f_X are derived from `function_seed` via hashing,
/// so the model is fully reproducible without storing the (potentially huge)
/// combo -> value maps.
class SemModel {
 public:
  /// `node_salts` perturbs individual structural functions: node j's f_X is
  /// derived from function_seed ^ node_salts[j], so two models sharing a
  /// seed but differing in one node's salt differ in exactly that node's
  /// conditional distribution. Empty (the default) means all-zero salts —
  /// byte-identical to the historical two-argument behavior.
  SemModel(std::vector<SemNode> nodes, uint64_t function_seed,
           std::vector<uint64_t> node_salts = {});

  const std::vector<SemNode>& nodes() const { return nodes_; }
  int32_t num_nodes() const { return static_cast<int32_t>(nodes_.size()); }

  uint64_t node_salt(AttrIndex node) const {
    return node_salts_.empty() ? 0
                               : node_salts_[static_cast<size_t>(node)];
  }
  uint64_t function_seed() const { return function_seed_; }

  /// Topological order of the node DAG (parents precede children).
  const std::vector<AttrIndex>& topological_order() const { return topo_; }

  /// The structural function f_X applied to concrete parent values: a
  /// deterministic pseudo-random but fixed mapping into [0, cardinality).
  ValueId StructuralFunction(AttrIndex node,
                             const std::vector<ValueId>& parent_values) const;

  /// Root-node marginal weight for value v (Zipf-like skew so the data has
  /// realistic non-uniform marginals).
  double RootWeight(AttrIndex node, ValueId v) const;

  /// Samples `num_rows` rows by ancestral sampling and returns them as a
  /// dictionary-encoded Table with value labels "<name>_v<k>".
  Table Sample(int64_t num_rows, Rng* rng) const;

  /// parents[j] for all j — the ground-truth DAG, for structure-recovery
  /// validation and oracle baselines.
  std::vector<std::vector<AttrIndex>> ParentSets() const;

  /// True if `node` is (near-)deterministic given its parents, i.e., a
  /// synthesizable integrity constraint exists for it.
  bool IsFunctionalNode(AttrIndex node, double epsilon) const;

 private:
  std::vector<SemNode> nodes_;
  uint64_t function_seed_;
  /// Empty, or one salt per node (0 = unperturbed); see the constructor.
  std::vector<uint64_t> node_salts_;
  std::vector<AttrIndex> topo_;
};

/// Knobs for random SEM construction; see DatasetRepository for the presets
/// standing in for the paper's 12 datasets.
struct RandomSemOptions {
  int32_t num_nodes = 8;
  int32_t min_cardinality = 2;
  int32_t max_cardinality = 6;
  /// Fraction of nodes that are roots (no parents).
  double root_fraction = 0.35;
  /// Probability that a non-root node has two parents instead of one.
  double two_parent_fraction = 0.35;
  /// Nodes pick parents among the `parent_window` preceding nodes in the
  /// generation order, yielding chain-like local structure
  /// (PostalCode -> City -> State -> Country).
  int32_t parent_window = 4;
  /// Fraction of non-root nodes that are functional (tiny noise); the rest
  /// are stochastic. Functional nodes keep a whisper of exogenous noise by
  /// default: exact determinism violates faithfulness (a deterministic copy
  /// d-separates its source from everything), a documented pathology for
  /// constraint-based structure learning. 1% noise keeps branches
  /// epsilon-valid at the recommended epsilon while restoring faithfulness.
  double functional_fraction = 0.65;
  double functional_noise = 0.01;
  double stochastic_noise = 0.35;
};

/// Builds a random SEM; `rng` drives the structure, node `function_seed`s are
/// derived from it so sampling is reproducible.
SemModel BuildRandomSem(const RandomSemOptions& options, Rng* rng);

/// Knobs for MakeDriftedSem (the streaming benchmark's shifted segment).
struct SemDriftOptions {
  /// Fraction of non-root nodes whose conditional distribution is
  /// perturbed (at least one node always changes).
  double changed_fraction = 0.5;
};

/// A drifted SEM plus its ground truth: which nodes' conditionals moved.
struct SemDriftInfo {
  SemModel model;
  /// Perturbed nodes, ascending. Everything else is untouched: structure,
  /// cardinalities, noise rates, root marginals, and every other node's
  /// structural function are bit-identical to the base model's.
  std::vector<AttrIndex> changed_nodes;
};

/// Derives a distribution-shifted variant of `base` by re-salting the
/// structural functions of a random subset of non-root nodes: same DAG,
/// same domains, different conditionals exactly at `changed_nodes` — the
/// labeled shift a drift detector should flag (and localize) when sampling
/// switches from `base` to the drifted model.
SemDriftInfo MakeDriftedSem(const SemModel& base,
                            const SemDriftOptions& options, Rng* rng);

}  // namespace guardrail

#endif  // GUARDRAIL_TABLE_SEM_GENERATOR_H_
