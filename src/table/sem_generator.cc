#include "table/sem_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace guardrail {

namespace {

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

SemModel::SemModel(std::vector<SemNode> nodes, uint64_t function_seed,
                   std::vector<uint64_t> node_salts)
    : nodes_(std::move(nodes)),
      function_seed_(function_seed),
      node_salts_(std::move(node_salts)) {
  GUARDRAIL_CHECK(node_salts_.empty() ||
                  node_salts_.size() == nodes_.size())
      << "node_salts must be empty or one per node";
  // Kahn topological sort; validates acyclicity.
  const int32_t n = num_nodes();
  std::vector<int32_t> indegree(static_cast<size_t>(n), 0);
  std::vector<std::vector<AttrIndex>> children(static_cast<size_t>(n));
  for (AttrIndex j = 0; j < n; ++j) {
    for (AttrIndex p : nodes_[static_cast<size_t>(j)].parents) {
      GUARDRAIL_CHECK_GE(p, 0);
      GUARDRAIL_CHECK_LT(p, n);
      GUARDRAIL_CHECK_NE(p, j);
      children[static_cast<size_t>(p)].push_back(j);
      ++indegree[static_cast<size_t>(j)];
    }
  }
  std::vector<AttrIndex> frontier;
  for (AttrIndex j = 0; j < n; ++j) {
    if (indegree[static_cast<size_t>(j)] == 0) frontier.push_back(j);
  }
  while (!frontier.empty()) {
    AttrIndex j = frontier.back();
    frontier.pop_back();
    topo_.push_back(j);
    for (AttrIndex c : children[static_cast<size_t>(j)]) {
      if (--indegree[static_cast<size_t>(c)] == 0) frontier.push_back(c);
    }
  }
  GUARDRAIL_CHECK_EQ(static_cast<int32_t>(topo_.size()), n)
      << "SEM graph has a cycle";
}

ValueId SemModel::StructuralFunction(
    AttrIndex node, const std::vector<ValueId>& parent_values) const {
  const SemNode& spec = nodes_[static_cast<size_t>(node)];
  GUARDRAIL_CHECK_EQ(parent_values.size(), spec.parents.size());
  // Balanced cyclic-linear function: value = (sum w_i * v_i + offset) mod k
  // with per-node pseudo-random weights w_i in [1, k). Unlike a raw hash,
  // this can never collapse to a constant function of a varying parent, so
  // every structural edge carries a statistically visible signal.
  const uint64_t k = static_cast<uint64_t>(spec.cardinality);
  uint64_t h = Mix64(function_seed_ ^ node_salt(node) ^
                     (0x517CC1B727220A95ULL * (node + 1)));
  uint64_t acc = h % k;  // Offset.
  for (size_t i = 0; i < parent_values.size(); ++i) {
    GUARDRAIL_CHECK_GE(parent_values[i], 0);
    uint64_t w = k <= 1 ? 0 : 1 + Mix64(h ^ (0xA24BAED4963EE407ULL * (i + 1))) % (k - 1);
    acc += w * static_cast<uint64_t>(parent_values[i]);
  }
  return static_cast<ValueId>(acc % k);
}

double SemModel::RootWeight(AttrIndex node, ValueId v) const {
  // Zipf(s = 0.7) over a node-specific permutation of the domain.
  const SemNode& spec = nodes_[static_cast<size_t>(node)];
  uint64_t rank =
      Mix64(function_seed_ ^ (node * 0x2545F4914F6CDD1DULL) ^ v) %
          static_cast<uint64_t>(spec.cardinality) +
      1;
  return 1.0 / std::pow(static_cast<double>(rank), 0.7);
}

Table SemModel::Sample(int64_t num_rows, Rng* rng) const {
  Schema schema;
  for (const auto& node : nodes_) {
    Attribute attr(node.name);
    for (int32_t v = 0; v < node.cardinality; ++v) {
      attr.GetOrInsert(node.name + "_v" + std::to_string(v));
    }
    GUARDRAIL_CHECK_OK(schema.AddAttribute(std::move(attr)));
  }
  Table table(std::move(schema));

  // Precompute root marginals.
  std::vector<std::vector<double>> root_weights(nodes_.size());
  for (AttrIndex j = 0; j < num_nodes(); ++j) {
    const SemNode& spec = nodes_[static_cast<size_t>(j)];
    if (!spec.parents.empty()) continue;
    auto& w = root_weights[static_cast<size_t>(j)];
    w.resize(static_cast<size_t>(spec.cardinality));
    for (ValueId v = 0; v < spec.cardinality; ++v) {
      w[static_cast<size_t>(v)] = RootWeight(j, v);
    }
  }

  Row row(nodes_.size(), kNullValue);
  std::vector<ValueId> parent_values;
  for (int64_t r = 0; r < num_rows; ++r) {
    for (AttrIndex j : topo_) {
      const SemNode& spec = nodes_[static_cast<size_t>(j)];
      ValueId v;
      if (spec.parents.empty()) {
        v = static_cast<ValueId>(
            rng->NextWeighted(root_weights[static_cast<size_t>(j)]));
      } else if (spec.noise > 0.0 && rng->NextBernoulli(spec.noise)) {
        // Exogenous takeover: uniform over the domain.
        v = static_cast<ValueId>(
            rng->NextUint64(static_cast<uint64_t>(spec.cardinality)));
      } else {
        parent_values.clear();
        for (AttrIndex p : spec.parents) {
          parent_values.push_back(row[static_cast<size_t>(p)]);
        }
        v = StructuralFunction(j, parent_values);
      }
      row[static_cast<size_t>(j)] = v;
    }
    GUARDRAIL_CHECK_OK(table.AppendRow(row));
  }
  return table;
}

std::vector<std::vector<AttrIndex>> SemModel::ParentSets() const {
  std::vector<std::vector<AttrIndex>> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node.parents);
  return out;
}

bool SemModel::IsFunctionalNode(AttrIndex node, double epsilon) const {
  const SemNode& spec = nodes_[static_cast<size_t>(node)];
  return !spec.parents.empty() && spec.noise <= epsilon;
}

SemModel BuildRandomSem(const RandomSemOptions& options, Rng* rng) {
  GUARDRAIL_CHECK_GE(options.num_nodes, 1);
  GUARDRAIL_CHECK_GE(options.min_cardinality, 2);
  GUARDRAIL_CHECK_GE(options.max_cardinality, options.min_cardinality);
  std::vector<SemNode> nodes;
  nodes.reserve(static_cast<size_t>(options.num_nodes));
  for (AttrIndex j = 0; j < options.num_nodes; ++j) {
    SemNode node;
    node.name = "attr" + std::to_string(j);
    node.cardinality = static_cast<int32_t>(
        rng->NextInt(options.min_cardinality, options.max_cardinality));
    bool is_root = (j == 0) || rng->NextBernoulli(options.root_fraction);
    if (!is_root) {
      int32_t lo = std::max<int32_t>(0, j - options.parent_window);
      int32_t num_parents =
          (j >= 2 && rng->NextBernoulli(options.two_parent_fraction)) ? 2 : 1;
      num_parents = std::min(num_parents, j - lo);
      std::vector<size_t> picks = rng->SampleWithoutReplacement(
          static_cast<size_t>(j - lo), static_cast<size_t>(num_parents));
      for (size_t p : picks) {
        node.parents.push_back(lo + static_cast<AttrIndex>(p));
      }
      std::sort(node.parents.begin(), node.parents.end());
      node.noise = rng->NextBernoulli(options.functional_fraction)
                       ? options.functional_noise
                       : options.stochastic_noise;
    }
    nodes.push_back(std::move(node));
  }
  return SemModel(std::move(nodes), rng->NextUint64());
}

SemDriftInfo MakeDriftedSem(const SemModel& base,
                            const SemDriftOptions& options, Rng* rng) {
  std::vector<AttrIndex> eligible;
  for (AttrIndex j = 0; j < base.num_nodes(); ++j) {
    if (!base.nodes()[static_cast<size_t>(j)].parents.empty()) {
      eligible.push_back(j);
    }
  }
  GUARDRAIL_CHECK(!eligible.empty())
      << "drift needs at least one non-root node";
  size_t num_changed = static_cast<size_t>(
      options.changed_fraction * static_cast<double>(eligible.size()) + 0.5);
  num_changed = std::max<size_t>(1, std::min(num_changed, eligible.size()));
  std::vector<size_t> picks =
      rng->SampleWithoutReplacement(eligible.size(), num_changed);

  std::vector<uint64_t> salts(static_cast<size_t>(base.num_nodes()), 0);
  std::vector<AttrIndex> changed;
  for (size_t p : picks) {
    const AttrIndex node = eligible[p];
    // Nonzero salt re-keys this node's structural function: a fresh cyclic-
    // linear map over the same domain, so the conditional P(X | parents)
    // moves while everything else in the model is untouched.
    salts[static_cast<size_t>(node)] = Mix64(rng->NextUint64()) | 1;
    changed.push_back(node);
  }
  std::sort(changed.begin(), changed.end());
  // Compose with any salts the base already carries (chained drifts).
  for (AttrIndex j = 0; j < base.num_nodes(); ++j) {
    salts[static_cast<size_t>(j)] ^= base.node_salt(j);
  }
  return SemDriftInfo{
      SemModel(base.nodes(), base.function_seed(), std::move(salts)),
      std::move(changed)};
}

}  // namespace guardrail
