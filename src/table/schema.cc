#include "table/schema.h"

#include "common/logging.h"

namespace guardrail {

const std::string& Attribute::label(ValueId code) const {
  GUARDRAIL_CHECK_GE(code, 0);
  GUARDRAIL_CHECK_LT(code, domain_size());
  return domain_[static_cast<size_t>(code)];
}

ValueId Attribute::Lookup(const std::string& label) const {
  auto it = index_.find(label);
  return it == index_.end() ? kNullValue : it->second;
}

ValueId Attribute::GetOrInsert(const std::string& label) {
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  ValueId code = domain_size();
  domain_.push_back(label);
  index_.emplace(label, code);
  return code;
}

Schema::Schema(std::vector<Attribute> attributes) {
  for (auto& attr : attributes) {
    GUARDRAIL_CHECK_OK(AddAttribute(std::move(attr)));
  }
}

const Attribute& Schema::attribute(AttrIndex i) const {
  GUARDRAIL_CHECK_GE(i, 0);
  GUARDRAIL_CHECK_LT(i, num_attributes());
  return attributes_[static_cast<size_t>(i)];
}

Attribute& Schema::attribute(AttrIndex i) {
  GUARDRAIL_CHECK_GE(i, 0);
  GUARDRAIL_CHECK_LT(i, num_attributes());
  return attributes_[static_cast<size_t>(i)];
}

AttrIndex Schema::FindAttribute(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

Status Schema::AddAttribute(Attribute attribute) {
  if (by_name_.count(attribute.name()) > 0) {
    return Status::AlreadyExists("attribute " + attribute.name());
  }
  by_name_.emplace(attribute.name(), num_attributes());
  attributes_.push_back(std::move(attribute));
  return Status::OK();
}

std::vector<std::string> Schema::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const auto& attr : attributes_) names.push_back(attr.name());
  return names;
}

}  // namespace guardrail
