#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/failpoint.h"

namespace guardrail {
namespace ml {

namespace {

struct TreeNode {
  // Internal nodes split multiway on `split_attr`; children indexed by value
  // code, child -1 = fall through to this node's leaf distribution.
  AttrIndex split_attr = -1;
  std::vector<int32_t> children;  // Node ids, -1 = missing.
  // Class distribution at this node (smoothed), used for leaves and for
  // unseen / null values at internal nodes.
  std::vector<double> class_probs;
  ValueId majority = kNullValue;
};

double GiniImpurity(const std::vector<int64_t>& counts, int64_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (int64_t c : counts) {
    double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

class DecisionTreeModel : public Model {
 public:
  DecisionTreeModel(AttrIndex label_column, std::vector<TreeNode> nodes)
      : label_column_(label_column), nodes_(std::move(nodes)) {}

  ValueId Predict(const Row& row) const override {
    const TreeNode& node = Walk(row);
    return node.majority;
  }

  std::vector<double> PredictProbabilities(const Row& row) const override {
    return Walk(row).class_probs;
  }

  std::string name() const override { return "decision_tree"; }
  AttrIndex label_column() const override { return label_column_; }

 private:
  const TreeNode& Walk(const Row& row) const {
    int32_t id = 0;
    while (true) {
      const TreeNode& node = nodes_[static_cast<size_t>(id)];
      if (node.split_attr < 0) return node;
      ValueId v = row[static_cast<size_t>(node.split_attr)];
      if (v == kNullValue) return node;
      // Out-of-vocabulary codes are hash-bucketed into the known domain
      // (see naive_bayes.cc for rationale).
      if (!node.children.empty() &&
          v >= static_cast<ValueId>(node.children.size())) {
        v = v % static_cast<ValueId>(node.children.size());
      }
      if (v >= static_cast<ValueId>(node.children.size()) ||
          node.children[static_cast<size_t>(v)] < 0) {
        return node;
      }
      id = node.children[static_cast<size_t>(v)];
    }
  }

  AttrIndex label_column_;
  std::vector<TreeNode> nodes_;
};

class TreeBuilder {
 public:
  TreeBuilder(const Table& train, AttrIndex label_column,
              DecisionTreeTrainer::Options options)
      : train_(train),
        label_(label_column),
        num_labels_(train.schema().attribute(label_column).domain_size()),
        options_(options) {}

  std::vector<TreeNode> Build() {
    std::vector<RowIndex> rows(static_cast<size_t>(train_.num_rows()));
    for (RowIndex r = 0; r < train_.num_rows(); ++r) {
      rows[static_cast<size_t>(r)] = r;
    }
    std::vector<bool> used(static_cast<size_t>(train_.num_columns()), false);
    used[static_cast<size_t>(label_)] = true;
    BuildNode(rows, used, 0);
    return std::move(nodes_);
  }

 private:
  std::vector<int64_t> LabelCounts(const std::vector<RowIndex>& rows) const {
    std::vector<int64_t> counts(static_cast<size_t>(num_labels_), 0);
    for (RowIndex r : rows) {
      ValueId y = train_.Get(r, label_);
      if (y != kNullValue) ++counts[static_cast<size_t>(y)];
    }
    return counts;
  }

  void FillLeafStats(TreeNode* node, const std::vector<int64_t>& counts) const {
    int64_t total = 0;
    for (int64_t c : counts) total += c;
    node->class_probs.resize(counts.size());
    ValueId best = 0;
    for (size_t y = 0; y < counts.size(); ++y) {
      node->class_probs[y] =
          (static_cast<double>(counts[y]) + 1.0) /
          (static_cast<double>(total) + static_cast<double>(counts.size()));
      if (counts[y] > counts[static_cast<size_t>(best)]) {
        best = static_cast<ValueId>(y);
      }
    }
    node->majority = best;
  }

  // Returns the id of the created node.
  int32_t BuildNode(const std::vector<RowIndex>& rows, std::vector<bool> used,
                    int32_t depth) {
    int32_t id = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    std::vector<int64_t> counts = LabelCounts(rows);
    FillLeafStats(&nodes_[static_cast<size_t>(id)], counts);

    int64_t total = 0, nonzero_classes = 0;
    for (int64_t c : counts) {
      total += c;
      nonzero_classes += c > 0 ? 1 : 0;
    }
    if (depth >= options_.max_depth || total < options_.min_samples_split ||
        nonzero_classes <= 1) {
      return id;
    }

    // Pick the attribute with the best Gini gain.
    double parent_gini = GiniImpurity(counts, total);
    double best_gain = 1e-9;
    AttrIndex best_attr = -1;
    for (AttrIndex a = 0; a < train_.num_columns(); ++a) {
      if (used[static_cast<size_t>(a)]) continue;
      int32_t domain = train_.schema().attribute(a).domain_size();
      if (domain < 2) continue;
      std::vector<std::vector<int64_t>> child_counts(
          static_cast<size_t>(domain),
          std::vector<int64_t>(static_cast<size_t>(num_labels_), 0));
      std::vector<int64_t> child_totals(static_cast<size_t>(domain), 0);
      for (RowIndex r : rows) {
        ValueId v = train_.Get(r, a);
        ValueId y = train_.Get(r, label_);
        if (v == kNullValue || y == kNullValue) continue;
        ++child_counts[static_cast<size_t>(v)][static_cast<size_t>(y)];
        ++child_totals[static_cast<size_t>(v)];
      }
      double weighted = 0.0;
      for (int32_t v = 0; v < domain; ++v) {
        if (child_totals[static_cast<size_t>(v)] == 0) continue;
        weighted += static_cast<double>(child_totals[static_cast<size_t>(v)]) /
                    static_cast<double>(total) *
                    GiniImpurity(child_counts[static_cast<size_t>(v)],
                                 child_totals[static_cast<size_t>(v)]);
      }
      double gain = parent_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_attr = a;
      }
    }
    if (best_attr < 0) return id;

    // Split.
    int32_t domain = train_.schema().attribute(best_attr).domain_size();
    std::vector<std::vector<RowIndex>> partitions(
        static_cast<size_t>(domain));
    for (RowIndex r : rows) {
      ValueId v = train_.Get(r, best_attr);
      if (v != kNullValue) partitions[static_cast<size_t>(v)].push_back(r);
    }
    used[static_cast<size_t>(best_attr)] = true;
    std::vector<int32_t> children(static_cast<size_t>(domain), -1);
    for (int32_t v = 0; v < domain; ++v) {
      if (static_cast<int64_t>(partitions[static_cast<size_t>(v)].size()) <
          options_.min_samples_leaf) {
        continue;
      }
      children[static_cast<size_t>(v)] =
          BuildNode(partitions[static_cast<size_t>(v)], used, depth + 1);
    }
    nodes_[static_cast<size_t>(id)].split_attr = best_attr;
    nodes_[static_cast<size_t>(id)].children = std::move(children);
    return id;
  }

  const Table& train_;
  AttrIndex label_;
  int32_t num_labels_;
  DecisionTreeTrainer::Options options_;
  std::vector<TreeNode> nodes_;
};

}  // namespace

Result<std::unique_ptr<Model>> DecisionTreeTrainer::Train(
    const Table& train, AttrIndex label_column) const {
  GUARDRAIL_FAILPOINT("ml.decision_tree.train");
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (train.schema().attribute(label_column).domain_size() < 1) {
    return Status::InvalidArgument("label column has empty domain");
  }
  TreeBuilder builder(train, label_column, options_);
  return std::unique_ptr<Model>(
      new DecisionTreeModel(label_column, builder.Build()));
}

}  // namespace ml
}  // namespace guardrail
