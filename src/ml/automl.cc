#include "ml/automl.h"

#include <algorithm>

#include "common/failpoint.h"

#include "common/telemetry/telemetry.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"

namespace guardrail {
namespace ml {

namespace {

class MajorityModel : public Model {
 public:
  MajorityModel(AttrIndex label_column, ValueId majority,
                std::vector<double> probs)
      : label_column_(label_column),
        majority_(majority),
        probs_(std::move(probs)) {}

  ValueId Predict(const Row&) const override { return majority_; }
  std::vector<double> PredictProbabilities(const Row&) const override {
    return probs_;
  }
  std::string name() const override { return "majority"; }
  AttrIndex label_column() const override { return label_column_; }

 private:
  AttrIndex label_column_;
  ValueId majority_;
  std::vector<double> probs_;
};

class EnsembleModel : public Model {
 public:
  EnsembleModel(AttrIndex label_column,
                std::vector<std::unique_ptr<Model>> members,
                std::vector<double> weights)
      : label_column_(label_column),
        members_(std::move(members)),
        weights_(std::move(weights)) {}

  ValueId Predict(const Row& row) const override {
    std::vector<double> probs = PredictProbabilities(row);
    return static_cast<ValueId>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }

  std::vector<double> PredictProbabilities(const Row& row) const override {
    std::vector<double> total;
    for (size_t m = 0; m < members_.size(); ++m) {
      std::vector<double> p = members_[m]->PredictProbabilities(row);
      if (total.empty()) total.assign(p.size(), 0.0);
      for (size_t i = 0; i < p.size(); ++i) total[i] += weights_[m] * p[i];
    }
    double sum = 0.0;
    for (double t : total) sum += t;
    if (sum > 0.0) {
      for (double& t : total) t /= sum;
    }
    return total;
  }

  std::string name() const override { return "automl_ensemble"; }
  AttrIndex label_column() const override { return label_column_; }

 private:
  AttrIndex label_column_;
  std::vector<std::unique_ptr<Model>> members_;
  std::vector<double> weights_;
};

}  // namespace

Result<std::unique_ptr<Model>> MajorityTrainer::Train(
    const Table& train, AttrIndex label_column) const {
  GUARDRAIL_FAILPOINT("ml.majority.train");
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  int32_t num_labels = train.schema().attribute(label_column).domain_size();
  std::vector<int64_t> counts(static_cast<size_t>(std::max(1, num_labels)), 0);
  for (ValueId y : train.column(label_column)) {
    if (y != kNullValue) ++counts[static_cast<size_t>(y)];
  }
  ValueId majority = 0;
  int64_t total = 0;
  for (size_t y = 0; y < counts.size(); ++y) {
    total += counts[y];
    if (counts[y] > counts[static_cast<size_t>(majority)]) {
      majority = static_cast<ValueId>(y);
    }
  }
  std::vector<double> probs(counts.size(), 0.0);
  for (size_t y = 0; y < counts.size(); ++y) {
    probs[y] = total > 0 ? static_cast<double>(counts[y]) /
                               static_cast<double>(total)
                         : 1.0 / static_cast<double>(counts.size());
  }
  return std::unique_ptr<Model>(
      new MajorityModel(label_column, majority, std::move(probs)));
}

Result<std::unique_ptr<Model>> AutoMlTrainer::Train(
    const Table& train, AttrIndex label_column) const {
  GUARDRAIL_FAILPOINT("ml.automl.train");
  if (train.num_rows() < 10) {
    return Status::InvalidArgument("too little data for AutoML");
  }
  telemetry::Span span("automl");
  span.AddArg("label_column", static_cast<int64_t>(label_column));
  span.AddArg("train_rows", static_cast<int64_t>(train.num_rows()));
  Rng rng(options_.seed);
  auto [fit_split, val_split] =
      train.Split(1.0 - options_.validation_fraction, &rng);
  if (val_split.num_rows() == 0 || fit_split.num_rows() == 0) {
    return Status::InvalidArgument("degenerate validation split");
  }

  std::vector<std::unique_ptr<Trainer>> trainers;
  trainers.emplace_back(new NaiveBayesTrainer());
  trainers.emplace_back(new DecisionTreeTrainer());
  trainers.emplace_back(new LogisticRegressionTrainer());
  trainers.emplace_back(new MajorityTrainer());

  std::vector<std::unique_ptr<Model>> members;
  std::vector<double> weights;
  for (const auto& trainer : trainers) {
    if (options_.cancel.Cancelled()) break;
    Result<std::unique_ptr<Model>> model =
        trainer->Train(fit_split, label_column);
    GUARDRAIL_COUNTER_INC("automl.candidates_trained");
    if (!model.ok()) continue;
    double accuracy = (*model)->Accuracy(val_split);
    // Weight models by validation accuracy; drop clearly broken ones.
    if (accuracy <= 0.0) continue;
    members.push_back(std::move(*model));
    weights.push_back(accuracy * accuracy);  // Emphasize the better models.
  }
  GUARDRAIL_COUNTER_ADD("automl.members_kept",
                        static_cast<int64_t>(members.size()));
  span.AddArg("members", static_cast<int64_t>(members.size()));
  if (members.empty()) {
    GUARDRAIL_RETURN_NOT_OK(options_.cancel.CheckTimeout("automl training"));
    return Status::Internal("no ensemble member trained successfully");
  }
  return std::unique_ptr<Model>(new EnsembleModel(
      label_column, std::move(members), std::move(weights)));
}

}  // namespace ml
}  // namespace guardrail
