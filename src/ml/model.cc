#include "ml/model.h"

namespace guardrail {
namespace ml {

double Model::Accuracy(const Table& table) const {
  if (table.num_rows() == 0) return 0.0;
  int64_t correct = 0;
  for (RowIndex r = 0; r < table.num_rows(); ++r) {
    Row row = table.GetRow(r);
    if (Predict(row) == row[static_cast<size_t>(label_column())]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(table.num_rows());
}

}  // namespace ml
}  // namespace guardrail
