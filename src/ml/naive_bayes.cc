#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/failpoint.h"

namespace guardrail {
namespace ml {

namespace {

class NaiveBayesModel : public Model {
 public:
  NaiveBayesModel(AttrIndex label_column, int32_t num_labels,
                  std::vector<double> log_prior,
                  std::vector<std::vector<std::vector<double>>> log_likelihood)
      : label_column_(label_column),
        num_labels_(num_labels),
        log_prior_(std::move(log_prior)),
        log_likelihood_(std::move(log_likelihood)) {}

  ValueId Predict(const Row& row) const override {
    std::vector<double> scores = PredictProbabilities(row);
    return static_cast<ValueId>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
  }

  std::vector<double> PredictProbabilities(const Row& row) const override {
    std::vector<double> log_scores = log_prior_;
    for (size_t a = 0; a < log_likelihood_.size(); ++a) {
      if (static_cast<AttrIndex>(a) == label_column_) continue;
      ValueId v = row[a];
      if (v == kNullValue) continue;  // Missing: skip the feature.
      int32_t domain = static_cast<int32_t>(log_likelihood_[a].size());
      if (domain == 0) continue;
      // Out-of-vocabulary codes are hash-bucketed into the known domain,
      // mirroring production feature encoders (and the paper's premise that
      // corrupted inputs actively mislead a deployed model rather than
      // being gracefully marginalized).
      if (v >= domain) v = v % domain;
      for (int32_t y = 0; y < num_labels_; ++y) {
        log_scores[static_cast<size_t>(y)] +=
            log_likelihood_[a][static_cast<size_t>(v)][static_cast<size_t>(y)];
      }
    }
    // Softmax normalization for well-defined probabilities.
    double mx = *std::max_element(log_scores.begin(), log_scores.end());
    double total = 0.0;
    std::vector<double> probs(log_scores.size());
    for (size_t y = 0; y < log_scores.size(); ++y) {
      probs[y] = std::exp(log_scores[y] - mx);
      total += probs[y];
    }
    for (double& p : probs) p /= total;
    return probs;
  }

  std::string name() const override { return "naive_bayes"; }
  AttrIndex label_column() const override { return label_column_; }

 private:
  AttrIndex label_column_;
  int32_t num_labels_;
  std::vector<double> log_prior_;
  // [attribute][feature value][label] -> log P(value | label).
  std::vector<std::vector<std::vector<double>>> log_likelihood_;
};

}  // namespace

Result<std::unique_ptr<Model>> NaiveBayesTrainer::Train(
    const Table& train, AttrIndex label_column) const {
  GUARDRAIL_FAILPOINT("ml.naive_bayes.train");
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  const int32_t num_labels =
      train.schema().attribute(label_column).domain_size();
  if (num_labels < 1) {
    return Status::InvalidArgument("label column has empty domain");
  }
  const int32_t n = train.num_columns();
  const double alpha = options_.smoothing;

  std::vector<int64_t> label_counts(static_cast<size_t>(num_labels), 0);
  for (ValueId y : train.column(label_column)) {
    if (y != kNullValue) ++label_counts[static_cast<size_t>(y)];
  }
  int64_t total = 0;
  for (int64_t c : label_counts) total += c;
  if (total == 0) return Status::InvalidArgument("all labels are NULL");

  std::vector<double> log_prior(static_cast<size_t>(num_labels));
  for (int32_t y = 0; y < num_labels; ++y) {
    log_prior[static_cast<size_t>(y)] =
        std::log((static_cast<double>(label_counts[static_cast<size_t>(y)]) + alpha) /
                 (static_cast<double>(total) + alpha * num_labels));
  }

  std::vector<std::vector<std::vector<double>>> log_likelihood(
      static_cast<size_t>(n));
  for (AttrIndex a = 0; a < n; ++a) {
    if (a == label_column) continue;
    int32_t domain = train.schema().attribute(a).domain_size();
    std::vector<std::vector<int64_t>> counts(
        static_cast<size_t>(domain),
        std::vector<int64_t>(static_cast<size_t>(num_labels), 0));
    const auto& col = train.column(a);
    const auto& labels = train.column(label_column);
    for (RowIndex r = 0; r < train.num_rows(); ++r) {
      ValueId v = col[static_cast<size_t>(r)];
      ValueId y = labels[static_cast<size_t>(r)];
      if (v == kNullValue || y == kNullValue) continue;
      ++counts[static_cast<size_t>(v)][static_cast<size_t>(y)];
    }
    auto& table = log_likelihood[static_cast<size_t>(a)];
    table.assign(static_cast<size_t>(domain),
                 std::vector<double>(static_cast<size_t>(num_labels), 0.0));
    for (int32_t y = 0; y < num_labels; ++y) {
      double denom = static_cast<double>(label_counts[static_cast<size_t>(y)]) +
                     alpha * domain;
      for (int32_t v = 0; v < domain; ++v) {
        table[static_cast<size_t>(v)][static_cast<size_t>(y)] = std::log(
            (static_cast<double>(counts[static_cast<size_t>(v)][static_cast<size_t>(y)]) +
             alpha) /
            denom);
      }
    }
  }

  return std::unique_ptr<Model>(
      new NaiveBayesModel(label_column, num_labels, std::move(log_prior),
                          std::move(log_likelihood)));
}

}  // namespace ml
}  // namespace guardrail
