#ifndef GUARDRAIL_ML_AUTOML_H_
#define GUARDRAIL_ML_AUTOML_H_

#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "ml/model.h"

namespace guardrail {
namespace ml {

/// Majority-class trainer: the trivial floor every other model must beat.
class MajorityTrainer : public Trainer {
 public:
  Result<std::unique_ptr<Model>> Train(const Table& train,
                                       AttrIndex label_column) const override;
  std::string name() const override { return "majority"; }
};

/// Minimal AutoML standing in for autogluon (paper Sec. 7): trains several
/// model families (naive Bayes, decision tree, majority), holds out a
/// validation split, and serves a probability-averaged ensemble of the
/// models weighted by validation accuracy.
class AutoMlTrainer : public Trainer {
 public:
  struct Options {
    double validation_fraction = 0.2;
    uint64_t seed = 0x4D4C5EEDULL;
    /// Budget for the whole AutoML pass. Checked between model families:
    /// expiry serves the ensemble of whatever members finished in time, or
    /// Status::Timeout when none did — never a half-trained model.
    CancellationToken cancel;
  };

  AutoMlTrainer() : options_() {}
  explicit AutoMlTrainer(Options options) : options_(options) {}

  Result<std::unique_ptr<Model>> Train(const Table& train,
                                       AttrIndex label_column) const override;
  std::string name() const override { return "automl_ensemble"; }

 private:
  Options options_;
};

}  // namespace ml
}  // namespace guardrail

#endif  // GUARDRAIL_ML_AUTOML_H_
