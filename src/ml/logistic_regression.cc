#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/failpoint.h"

#include "common/rng.h"

namespace guardrail {
namespace ml {

namespace {

/// Sparse one-hot layout: feature index = offset[attr] + value code; one
/// active feature per attribute (plus a bias term at index 0).
struct FeatureLayout {
  std::vector<int32_t> offsets;  // Per attribute; -1 for the label column.
  int32_t num_features = 1;      // Slot 0 is the bias.
};

/// Invokes fn(feature_index) for the bias plus one one-hot feature per
/// non-label attribute of `row`.
template <typename Fn>
void ForEachActiveFeature(const FeatureLayout& layout, const Row& row,
                          const Fn& fn) {
  fn(0);  // Bias.
  for (size_t a = 0; a < layout.offsets.size(); ++a) {
    int32_t offset = layout.offsets[a];
    if (offset < 0) continue;
    ValueId v = row[a];
    if (v == kNullValue) continue;
    int32_t next = a + 1 < layout.offsets.size() && layout.offsets[a + 1] >= 0
                       ? layout.offsets[a + 1]
                       : layout.num_features;
    int32_t span = next - offset;
    if (span <= 0) continue;
    // Out-of-vocabulary codes hash-bucket into the attribute's span
    // (see naive_bayes.cc for rationale).
    if (v >= span) v = v % span;
    fn(offset + v);
  }
}

class LogisticRegressionModel : public Model {
 public:
  LogisticRegressionModel(AttrIndex label_column, int32_t num_labels,
                          FeatureLayout layout, std::vector<double> weights)
      : label_column_(label_column),
        num_labels_(num_labels),
        layout_(std::move(layout)),
        weights_(std::move(weights)) {}

  ValueId Predict(const Row& row) const override {
    std::vector<double> probs = PredictProbabilities(row);
    return static_cast<ValueId>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }

  std::vector<double> PredictProbabilities(const Row& row) const override {
    std::vector<double> logits(static_cast<size_t>(num_labels_), 0.0);
    ForEachActiveFeature(layout_, row, [&](int32_t feature) {
      for (int32_t y = 0; y < num_labels_; ++y) {
        logits[static_cast<size_t>(y)] += WeightAt(y, feature);
      }
    });
    double mx = *std::max_element(logits.begin(), logits.end());
    double total = 0.0;
    std::vector<double> probs(logits.size());
    for (size_t y = 0; y < logits.size(); ++y) {
      probs[y] = std::exp(logits[y] - mx);
      total += probs[y];
    }
    for (double& p : probs) p /= total;
    return probs;
  }

  std::string name() const override { return "logistic_regression"; }
  AttrIndex label_column() const override { return label_column_; }

  double WeightAt(int32_t label, int32_t feature) const {
    return weights_[static_cast<size_t>(label) *
                        static_cast<size_t>(layout_.num_features) +
                    static_cast<size_t>(feature)];
  }

 private:
  AttrIndex label_column_;
  int32_t num_labels_;
  FeatureLayout layout_;
  std::vector<double> weights_;  // [label][feature], row-major.
};

}  // namespace

Result<std::unique_ptr<Model>> LogisticRegressionTrainer::Train(
    const Table& train, AttrIndex label_column) const {
  GUARDRAIL_FAILPOINT("ml.logistic_regression.train");
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  const int32_t num_labels =
      train.schema().attribute(label_column).domain_size();
  if (num_labels < 2) {
    return Status::InvalidArgument("label domain must have >= 2 values");
  }

  FeatureLayout layout;
  layout.offsets.assign(static_cast<size_t>(train.num_columns()), -1);
  for (AttrIndex a = 0; a < train.num_columns(); ++a) {
    if (a == label_column) continue;
    layout.offsets[static_cast<size_t>(a)] = layout.num_features;
    layout.num_features += train.schema().attribute(a).domain_size();
  }

  std::vector<double> weights(
      static_cast<size_t>(num_labels) * static_cast<size_t>(layout.num_features),
      0.0);

  // SGD over shuffled epochs.
  Rng rng(options_.seed);
  std::vector<RowIndex> order(static_cast<size_t>(train.num_rows()));
  std::iota(order.begin(), order.end(), 0);

  auto weight_ref = [&](int32_t label, int32_t feature) -> double& {
    return weights[static_cast<size_t>(label) *
                       static_cast<size_t>(layout.num_features) +
                   static_cast<size_t>(feature)];
  };

  std::vector<int32_t> active;
  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double lr = options_.learning_rate /
                (1.0 + 0.3 * static_cast<double>(epoch));
    for (RowIndex r : order) {
      ValueId y = train.Get(r, label_column);
      if (y == kNullValue) continue;
      Row row = train.GetRow(r);

      // Forward pass on current weights.
      active.clear();
      ForEachActiveFeature(layout, row,
                           [&](int32_t feature) { active.push_back(feature); });
      std::vector<double> logits(static_cast<size_t>(num_labels), 0.0);
      for (int32_t feature : active) {
        for (int32_t label = 0; label < num_labels; ++label) {
          logits[static_cast<size_t>(label)] += weight_ref(label, feature);
        }
      }
      double mx = *std::max_element(logits.begin(), logits.end());
      double total = 0.0;
      for (double& l : logits) {
        l = std::exp(l - mx);
        total += l;
      }
      // Gradient step: (p - 1[y]) per active feature, plus L2 shrinkage.
      for (int32_t label = 0; label < num_labels; ++label) {
        double p = logits[static_cast<size_t>(label)] / total;
        double grad = p - (label == y ? 1.0 : 0.0);
        for (int32_t feature : active) {
          double& w = weight_ref(label, feature);
          w -= lr * (grad + options_.l2 * w);
        }
      }
    }
  }

  return std::unique_ptr<Model>(new LogisticRegressionModel(
      label_column, num_labels, std::move(layout), std::move(weights)));
}

}  // namespace ml
}  // namespace guardrail
