#ifndef GUARDRAIL_ML_MODEL_H_
#define GUARDRAIL_ML_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace guardrail {
namespace ml {

/// A trained categorical classifier over Table rows. Stands in for the
/// third-party / AutoML models of the paper's ML-integrated queries: opaque
/// predictors whose mis-predictions correlate with input data errors.
class Model {
 public:
  virtual ~Model() = default;

  /// Predicts the label code for a row (schema order of the training table;
  /// the label column's value is ignored).
  virtual ValueId Predict(const Row& row) const = 0;

  /// Class scores for a row (indexed by label code); used by ensembles.
  virtual std::vector<double> PredictProbabilities(const Row& row) const = 0;

  virtual std::string name() const = 0;

  /// Column the model predicts.
  virtual AttrIndex label_column() const = 0;

  /// Convenience: batch accuracy against the labels stored in `table`.
  double Accuracy(const Table& table) const;
};

/// Trainer interface: fits a model on `train` predicting `label_column`.
class Trainer {
 public:
  virtual ~Trainer() = default;
  virtual Result<std::unique_ptr<Model>> Train(const Table& train,
                                               AttrIndex label_column) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace ml
}  // namespace guardrail

#endif  // GUARDRAIL_ML_MODEL_H_
