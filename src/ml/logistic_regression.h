#ifndef GUARDRAIL_ML_LOGISTIC_REGRESSION_H_
#define GUARDRAIL_ML_LOGISTIC_REGRESSION_H_

#include "ml/model.h"

namespace guardrail {
namespace ml {

/// Multinomial (softmax) logistic regression over one-hot-encoded
/// categorical features, trained with mini-batch SGD and L2 regularization.
/// Rounds out the AutoML ensemble with a linear model family.
class LogisticRegressionTrainer : public Trainer {
 public:
  struct Options {
    int32_t epochs = 30;
    double learning_rate = 0.5;
    double l2 = 1e-4;
    uint64_t seed = 0x10615ULL;
  };

  LogisticRegressionTrainer() : options_() {}
  explicit LogisticRegressionTrainer(Options options) : options_(options) {}

  Result<std::unique_ptr<Model>> Train(const Table& train,
                                       AttrIndex label_column) const override;
  std::string name() const override { return "logistic_regression"; }

 private:
  Options options_;
};

}  // namespace ml
}  // namespace guardrail

#endif  // GUARDRAIL_ML_LOGISTIC_REGRESSION_H_
