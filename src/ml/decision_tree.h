#ifndef GUARDRAIL_ML_DECISION_TREE_H_
#define GUARDRAIL_ML_DECISION_TREE_H_

#include "ml/model.h"

namespace guardrail {
namespace ml {

/// Multiway categorical decision tree (ID3-style) with Gini impurity and
/// depth / leaf-size regularization.
class DecisionTreeTrainer : public Trainer {
 public:
  struct Options {
    int32_t max_depth = 8;
    int64_t min_samples_split = 8;
    int64_t min_samples_leaf = 2;
  };

  DecisionTreeTrainer() : options_() {}
  explicit DecisionTreeTrainer(Options options) : options_(options) {}

  Result<std::unique_ptr<Model>> Train(const Table& train,
                                       AttrIndex label_column) const override;
  std::string name() const override { return "decision_tree"; }

 private:
  Options options_;
};

}  // namespace ml
}  // namespace guardrail

#endif  // GUARDRAIL_ML_DECISION_TREE_H_
