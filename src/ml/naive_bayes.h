#ifndef GUARDRAIL_ML_NAIVE_BAYES_H_
#define GUARDRAIL_ML_NAIVE_BAYES_H_

#include "ml/model.h"

namespace guardrail {
namespace ml {

/// Categorical naive Bayes with Laplace smoothing.
class NaiveBayesTrainer : public Trainer {
 public:
  struct Options {
    double smoothing = 1.0;
  };

  NaiveBayesTrainer() : options_() {}
  explicit NaiveBayesTrainer(Options options) : options_(options) {}

  Result<std::unique_ptr<Model>> Train(const Table& train,
                                       AttrIndex label_column) const override;
  std::string name() const override { return "naive_bayes"; }

 private:
  Options options_;
};

}  // namespace ml
}  // namespace guardrail

#endif  // GUARDRAIL_ML_NAIVE_BAYES_H_
