#ifndef GUARDRAIL_STREAM_INCREMENTAL_H_
#define GUARDRAIL_STREAM_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sketch.h"
#include "core/synthesizer.h"
#include "pgm/ci_test.h"
#include "stream/drift_detector.h"
#include "stream/stats_store.h"
#include "table/table.h"

namespace guardrail {
namespace stream {

struct IncrementalOptions {
  /// The full pipeline configuration: used verbatim for the initial
  /// synthesis and every full-resynthesis fallback; `synthesis.fill` also
  /// drives the targeted statement refills.
  core::SynthesisOptions synthesis;
  DriftOptions drift;
  /// Marginal CI-test configuration for the verdict-flip check (raw-data
  /// identity space; see Refresh).
  pgm::GSquareTest::Options ci;
  /// Serve the certified-minimized ensemble (the registry's publish gate
  /// then requires the certificate). Off serves the raw chosen program.
  bool serve_minimized = true;
  /// Seed for the synthesizer's auxiliary-pairing shuffle. Fixed so that a
  /// refresh over identical data reproduces identical bytes.
  uint64_t seed = 7;
};

/// What a Refresh call did.
enum class RefreshAction {
  /// Refresh was not attempted (window below the power floor, or no
  /// baseline program exists yet).
  kNone,
  /// Drift was scored and came back clean: the served program is
  /// byte-identical and nothing is published.
  kNoop,
  /// Localized drift: only statements touching drifted attributes were
  /// re-filled; everything else replayed from the fill cache.
  kIncremental,
  /// Global drift, a CI-verdict flip, or an explicit force: the whole
  /// pipeline re-ran from scratch on the accumulated data.
  kFull,
};

const char* RefreshActionName(RefreshAction action);

struct RefreshResult {
  RefreshAction action = RefreshAction::kNone;
  DriftReport drift;
  /// Serialized program after the refresh (unchanged bytes on kNoop/kNone).
  std::string program_text;
  /// Companion minimization certificate ("" when serve_minimized is off or
  /// minimization was skipped).
  std::string certificate_text;
  /// True when program_text differs from the previously served bytes — the
  /// caller should hot-publish through the registry iff this is set.
  bool published_changed = false;
  int64_t statements_refilled = 0;
  int64_t statements_reused = 0;
  int64_t ci_tests_rerun = 0;
  double seconds = 0.0;
  /// Human-readable explanation of the action taken.
  std::string reason;
};

/// The streaming synthesis core: accumulates ingested rows, keeps a frozen
/// baseline of sufficient statistics next to a fresh window, and on refresh
/// re-does only the work the drift report demands (docs/STREAMING.md).
///
/// Invariants:
///  - The window merges into the baseline only on a successful refresh
///    (incremental or full), never on a no-op — slow drift accumulates in
///    the window until it crosses the detection threshold instead of being
///    laundered into the baseline a sliver at a time.
///  - A no-op refresh leaves the served bytes untouched: statements are not
///    re-filled over the grown data, because supports (and hence bytes)
///    would shift without any distributional cause.
///  - Every published program re-enters through the same minimize + certify
///    gate as the initial synthesis; an incremental patch never bypasses
///    certification.
///
/// Not thread-safe; StreamService serializes access per dataset.
class IncrementalSynthesizer {
 public:
  explicit IncrementalSynthesizer(IncrementalOptions options);

  /// Appends a batch of rows (label-resolved against the accumulated
  /// schema, so independently coded batches merge correctly) and counts
  /// them into the current window.
  Status IngestTable(const Table& batch);

  /// Appends rows already dictionary-coded against schema() (the wire path:
  /// serve::DecodeRows resolves labels against mutable_schema() first).
  Status IngestRows(const std::vector<Row>& rows);

  /// Runs the initial full synthesis over everything ingested so far and
  /// freezes the baseline. Requires at least one ingested row.
  Result<RefreshResult> Bootstrap();

  /// Scores the window against the baseline and refreshes accordingly; see
  /// RefreshAction. `force_full` skips the drift gate and re-runs the whole
  /// pipeline (the manual-policy escape hatch).
  Result<RefreshResult> Refresh(bool force_full = false);

  bool bootstrapped() const { return bootstrapped_; }
  int64_t rows_ingested() const { return data_.num_rows(); }
  int64_t window_rows() const { return window_.num_rows(); }
  const std::string& program_text() const { return program_text_; }
  const std::string& certificate_text() const { return certificate_text_; }
  const Schema& schema() const { return data_.schema(); }
  /// Mutable schema for wire-side label decoding (serve::DecodeRows extends
  /// domains for unseen labels, exactly like the offline CSV path).
  Schema& mutable_schema() { return data_.mutable_schema(); }
  const Table& data() const { return data_; }
  const StatsStore& baseline() const { return baseline_; }
  const StatsStore& window() const { return window_; }

  /// Seeds the accumulated table's schema before the first ingest (so wire
  /// batches resolve against the serving schema's attribute order).
  void SeedSchema(const Schema& schema);

 private:
  /// Runs the full pipeline over data_, rebuilding the fill cache, the
  /// ensemble order, and the baseline CI verdicts.
  Result<RefreshResult> FullResynthesis(RefreshAction action,
                                        std::string reason);

  /// Serializes (and certifies, under serve_minimized) `report` into
  /// program_text_ / certificate_text_.
  Status Publish(const core::SynthesisReport& report, RefreshResult* out);

  /// Re-serializes an incrementally patched ensemble through the same
  /// minimize + certify gate.
  Status PublishProgram(const core::Program& ensemble, RefreshResult* out);

  /// Marginal G² verdicts for every attribute pair over data_.
  std::vector<bool> ComputeCiVerdicts(int64_t* tests_run) const;

  IncrementalOptions options_;
  DriftDetector detector_;

  Table data_;
  StatsStore baseline_;
  StatsStore window_;
  bool bootstrapped_ = false;

  /// Ensemble statement headers in canonical order, duplicates included —
  /// the member-DAG union's shape, replayed on incremental refresh.
  std::vector<core::StatementSketch> ensemble_order_;
  /// Latest fill per sketch; entries for drifted attributes are re-filled,
  /// the rest replay byte-identically.
  std::map<core::StatementSketch, core::Statement> fill_cache_;
  /// Marginal independence verdicts per (x, y) pair (x < y, PairIndex
  /// order) captured at the last full resynthesis; a flip under drift
  /// escalates to full resynthesis because the learned structure itself is
  /// stale, not just the branch tables.
  std::vector<bool> baseline_ci_verdicts_;

  std::string program_text_;
  std::string certificate_text_;
};

}  // namespace stream
}  // namespace guardrail

#endif  // GUARDRAIL_STREAM_INCREMENTAL_H_
