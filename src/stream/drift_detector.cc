#include "stream/drift_detector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/telemetry/telemetry.h"

namespace guardrail {
namespace stream {

namespace {

/// Two-sample G² test of homogeneity over one pair's contingency tables:
/// treats {baseline, window} as the second margin of a 2 x K table whose K
/// categories are the (vx, vy) cells with pooled support, and asks whether
/// the window's cell distribution matches the baseline's.
PairDrift ScorePair(AttrIndex x, AttrIndex y,
                    const StatsStore::PairTable& base,
                    const StatsStore::PairTable& win) {
  PairDrift out;
  out.x = x;
  out.y = y;
  const double nb = static_cast<double>(base.total);
  const double nw = static_cast<double>(win.total);
  const double grand = nb + nw;
  if (base.total == 0 || win.total == 0) return out;

  const int32_t cx = std::max(base.card_x, win.card_x);
  const int32_t cy = std::max(base.card_y, win.card_y);
  double g2 = 0.0;
  int64_t support_cells = 0;
  for (int32_t vx = 0; vx < cx; ++vx) {
    for (int32_t vy = 0; vy < cy; ++vy) {
      const double b = static_cast<double>(base.Count(vx, vy));
      const double w = static_cast<double>(win.Count(vx, vy));
      const double pooled = b + w;
      if (pooled <= 0.0) continue;
      ++support_cells;
      const double eb = nb * pooled / grand;
      const double ew = nw * pooled / grand;
      if (b > 0.0) g2 += b * std::log(b / eb);
      if (w > 0.0) g2 += w * std::log(w / ew);
    }
  }
  if (support_cells <= 1) return out;
  out.statistic = 2.0 * g2;
  out.dof = static_cast<double>(support_cells - 1);
  out.p_value = ChiSquareSurvival(out.statistic, out.dof);
  return out;
}

/// Two-sample G² over one attribute's marginal counts (same 2 x K framing
/// as ScorePair with the values as categories). Used for blame refinement:
/// an attribute whose own marginal moved explains every joint pair it
/// appears in, so its partners are not dragged into the drifted set.
double MarginalDriftPValue(const std::vector<int64_t>& base,
                           const std::vector<int64_t>& win) {
  double nb = 0.0, nw = 0.0;
  const size_t k = std::max(base.size(), win.size());
  for (int64_t c : base) nb += static_cast<double>(c);
  for (int64_t c : win) nw += static_cast<double>(c);
  const double grand = nb + nw;
  if (nb <= 0.0 || nw <= 0.0) return 1.0;
  double g2 = 0.0;
  int64_t support = 0;
  for (size_t v = 0; v < k; ++v) {
    const double b = v < base.size() ? static_cast<double>(base[v]) : 0.0;
    const double w = v < win.size() ? static_cast<double>(win[v]) : 0.0;
    const double pooled = b + w;
    if (pooled <= 0.0) continue;
    ++support;
    if (b > 0.0) g2 += b * std::log(b / (nb * pooled / grand));
    if (w > 0.0) g2 += w * std::log(w / (nw * pooled / grand));
  }
  if (support <= 1) return 1.0;
  return ChiSquareSurvival(2.0 * g2, static_cast<double>(support - 1));
}

}  // namespace

DriftReport DriftDetector::Compare(const StatsStore& baseline,
                                   const StatsStore& window) const {
  GUARDRAIL_CHECK_EQ(baseline.num_attributes(), window.num_attributes());
  DriftReport report;
  const int32_t n = baseline.num_attributes();
  int64_t scorable = 0;
  std::vector<bool> attr_drifted(static_cast<size_t>(n), false);

  // Marginal blame: a shifted attribute changes the *joint* counts of every
  // pair it appears in, so raw endpoint union would smear one drifted node
  // across the whole schema. When exactly one endpoint of a drifted pair
  // moved marginally, that endpoint alone takes the blame; pairs where both
  // or neither moved keep both endpoints (a conditional can shift without
  // moving either marginal).
  std::vector<bool> marginal_moved(static_cast<size_t>(n), false);
  for (AttrIndex a = 0; a < n; ++a) {
    marginal_moved[static_cast<size_t>(a)] =
        MarginalDriftPValue(baseline.marginal(a), window.marginal(a)) <
        options_.alpha;
  }
  for (AttrIndex x = 0; x < n; ++x) {
    for (AttrIndex y = x + 1; y < n; ++y) {
      const StatsStore::PairTable& win = window.pair(x, y);
      if (win.total < options_.min_pair_rows) continue;
      PairDrift drift = ScorePair(x, y, baseline.pair(x, y), win);
      if (drift.dof <= 0.0) continue;
      ++scorable;
      drift.drifted = drift.p_value < options_.alpha &&
                      drift.statistic >= options_.min_statistic;
      report.max_statistic = std::max(report.max_statistic, drift.statistic);
      report.min_p_value = std::min(report.min_p_value, drift.p_value);
      if (drift.drifted) {
        report.drifted.emplace_back(x, y);
        const bool x_moved = marginal_moved[static_cast<size_t>(x)];
        const bool y_moved = marginal_moved[static_cast<size_t>(y)];
        if (x_moved == y_moved) {
          attr_drifted[static_cast<size_t>(x)] = true;
          attr_drifted[static_cast<size_t>(y)] = true;
        } else if (x_moved) {
          attr_drifted[static_cast<size_t>(x)] = true;
        } else {
          attr_drifted[static_cast<size_t>(y)] = true;
        }
      }
      report.pairs.push_back(drift);
    }
  }
  for (AttrIndex a = 0; a < n; ++a) {
    if (attr_drifted[static_cast<size_t>(a)]) {
      report.drifted_attributes.push_back(a);
    }
  }
  if (scorable > 0) {
    report.drifted_fraction = static_cast<double>(report.drifted.size()) /
                              static_cast<double>(scorable);
  }
  report.global = scorable > 0 &&
                  report.drifted_fraction >= options_.global_fraction;
  GUARDRAIL_HISTOGRAM_RECORD("stream.drift.score",
                             static_cast<int64_t>(report.max_statistic));
  GUARDRAIL_COUNTER_ADD("stream.drift.pairs_scored", scorable);
  GUARDRAIL_COUNTER_ADD("stream.drift.pairs_drifted",
                        static_cast<int64_t>(report.drifted.size()));
  return report;
}

}  // namespace stream
}  // namespace guardrail
