#include "stream/policy.h"

namespace guardrail {
namespace stream {

std::optional<ResynthesisMode> ParseResynthesisMode(const std::string& name) {
  if (name == "interval") return ResynthesisMode::kInterval;
  if (name == "drift") return ResynthesisMode::kDriftThreshold;
  if (name == "manual") return ResynthesisMode::kManual;
  return std::nullopt;
}

const char* ResynthesisModeName(ResynthesisMode mode) {
  switch (mode) {
    case ResynthesisMode::kInterval:
      return "interval";
    case ResynthesisMode::kDriftThreshold:
      return "drift";
    case ResynthesisMode::kManual:
      return "manual";
  }
  return "unknown";
}

}  // namespace stream
}  // namespace guardrail
