#include "stream/stats_store.h"

#include <algorithm>

#include "common/logging.h"

namespace guardrail {
namespace stream {

void StatsStore::Reset(int32_t num_attributes) {
  GUARDRAIL_CHECK_GE(num_attributes, 0);
  num_attributes_ = num_attributes;
  num_rows_ = 0;
  const size_t n = static_cast<size_t>(num_attributes);
  pairs_.assign(n * (n - (n > 0 ? 1 : 0)) / 2, PairTable());
  marginals_.assign(n, {});
}

void StatsStore::GrowPair(PairTable* table, int32_t card_x, int32_t card_y) {
  if (card_x <= table->card_x && card_y <= table->card_y) return;
  const int32_t new_x = std::max(card_x, table->card_x);
  const int32_t new_y = std::max(card_y, table->card_y);
  std::vector<int64_t> grown(static_cast<size_t>(new_x) *
                                 static_cast<size_t>(new_y),
                             0);
  for (int32_t vx = 0; vx < table->card_x; ++vx) {
    for (int32_t vy = 0; vy < table->card_y; ++vy) {
      grown[static_cast<size_t>(vx) * static_cast<size_t>(new_y) +
            static_cast<size_t>(vy)] =
          table->counts[static_cast<size_t>(vx) *
                            static_cast<size_t>(table->card_y) +
                        static_cast<size_t>(vy)];
    }
  }
  table->card_x = new_x;
  table->card_y = new_y;
  table->counts = std::move(grown);
}

void StatsStore::IngestBatch(const ColumnBatch& batch) {
  const int32_t n = num_attributes_;
  GUARDRAIL_CHECK_GE(batch.width(), n);
  const int64_t rows = batch.num_rows();
  if (rows == 0 || n == 0) {
    num_rows_ += rows;
    return;
  }

  // One pass per attribute: the batch's max code bounds the dimension growth
  // so the counting loops below never range-check.
  std::vector<int32_t> max_card(static_cast<size_t>(n), 0);
  for (AttrIndex a = 0; a < n; ++a) {
    const ValueId* col = batch.column(a);
    GUARDRAIL_CHECK(col != nullptr)
        << "StatsStore needs every column materialized (attr " << a << ")";
    ValueId max_code = -1;
    for (int64_t r = 0; r < rows; ++r) {
      if (col[r] != kNullValue && col[r] > max_code) max_code = col[r];
    }
    max_card[static_cast<size_t>(a)] = static_cast<int32_t>(max_code + 1);
    auto& marginal = marginals_[static_cast<size_t>(a)];
    if (static_cast<int32_t>(marginal.size()) < max_code + 1) {
      marginal.resize(static_cast<size_t>(max_code + 1), 0);
    }
    for (int64_t r = 0; r < rows; ++r) {
      if (col[r] != kNullValue) ++marginal[static_cast<size_t>(col[r])];
    }
  }

  for (AttrIndex x = 0; x < n; ++x) {
    const ValueId* cx = batch.column(x);
    for (AttrIndex y = x + 1; y < n; ++y) {
      const ValueId* cy = batch.column(y);
      PairTable& table = pairs_[PairIndex(x, y)];
      GrowPair(&table, max_card[static_cast<size_t>(x)],
               max_card[static_cast<size_t>(y)]);
      const size_t stride = static_cast<size_t>(table.card_y);
      int64_t* counts = table.counts.data();
      int64_t counted = 0;
      for (int64_t r = 0; r < rows; ++r) {
        const ValueId vx = cx[r];
        const ValueId vy = cy[r];
        if (vx == kNullValue || vy == kNullValue) continue;
        ++counts[static_cast<size_t>(vx) * stride + static_cast<size_t>(vy)];
        ++counted;
      }
      table.total += counted;
    }
  }
  num_rows_ += rows;
}

void StatsStore::IngestTable(const Table& table, int64_t begin,
                             int64_t count) {
  if (num_attributes_ == 0 && table.num_columns() > 0) {
    Reset(table.num_columns());
  }
  if (count < 0) count = table.num_rows() - begin;
  if (count <= 0) return;
  IngestBatch(ColumnBatch::FromTable(table, begin, count));
}

void StatsStore::Merge(const StatsStore& other) {
  GUARDRAIL_CHECK_EQ(num_attributes_, other.num_attributes_);
  const int32_t n = num_attributes_;
  for (AttrIndex a = 0; a < n; ++a) {
    const auto& theirs = other.marginals_[static_cast<size_t>(a)];
    auto& ours = marginals_[static_cast<size_t>(a)];
    if (ours.size() < theirs.size()) ours.resize(theirs.size(), 0);
    for (size_t v = 0; v < theirs.size(); ++v) ours[v] += theirs[v];
  }
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const PairTable& theirs = other.pairs_[i];
    if (theirs.total == 0 && theirs.card_x == 0) continue;
    PairTable& ours = pairs_[i];
    GrowPair(&ours, theirs.card_x, theirs.card_y);
    for (int32_t vx = 0; vx < theirs.card_x; ++vx) {
      for (int32_t vy = 0; vy < theirs.card_y; ++vy) {
        ours.counts[static_cast<size_t>(vx) *
                        static_cast<size_t>(ours.card_y) +
                    static_cast<size_t>(vy)] +=
            theirs.counts[static_cast<size_t>(vx) *
                              static_cast<size_t>(theirs.card_y) +
                          static_cast<size_t>(vy)];
      }
    }
    ours.total += theirs.total;
  }
  num_rows_ += other.num_rows_;
}

const StatsStore::PairTable& StatsStore::pair(AttrIndex x, AttrIndex y) const {
  GUARDRAIL_CHECK_LT(x, y);
  GUARDRAIL_CHECK_LT(y, num_attributes_);
  return pairs_[PairIndex(x, y)];
}

uint64_t StatsStore::ContentHash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h = (h ^ v) * 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(num_attributes_));
  mix(static_cast<uint64_t>(num_rows_));
  for (const auto& marginal : marginals_) {
    // Trailing zero counts from dimension growth must not perturb the hash:
    // hash only up to the last non-zero entry.
    size_t last = marginal.size();
    while (last > 0 && marginal[last - 1] == 0) --last;
    mix(last);
    for (size_t v = 0; v < last; ++v) {
      mix(static_cast<uint64_t>(marginal[v]));
    }
  }
  for (const PairTable& table : pairs_) {
    mix(static_cast<uint64_t>(table.total));
    for (int32_t vx = 0; vx < table.card_x; ++vx) {
      for (int32_t vy = 0; vy < table.card_y; ++vy) {
        int64_t c = table.Count(vx, vy);
        if (c != 0) {
          mix(static_cast<uint64_t>(vx));
          mix(static_cast<uint64_t>(vy));
          mix(static_cast<uint64_t>(c));
        }
      }
    }
  }
  return h;
}

}  // namespace stream
}  // namespace guardrail
