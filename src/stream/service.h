#ifndef GUARDRAIL_STREAM_SERVICE_H_
#define GUARDRAIL_STREAM_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/protocol.h"
#include "serve/registry.h"
#include "stream/incremental.h"
#include "stream/policy.h"

namespace guardrail {
namespace stream {

struct StreamServiceOptions {
  IncrementalOptions incremental;
  PolicyOptions policy;
  /// Per-ingest row cap (mirrors EngineOptions::max_batch_rows).
  int64_t max_batch_rows = int64_t{1} << 20;
  /// Rows the stream must accumulate before the first (bootstrap) synthesis
  /// runs; a force_refresh ingest overrides the floor.
  int64_t bootstrap_rows = 256;
};

/// Per-dataset streaming state behind the daemon's IngestBatch frames: owns
/// one IncrementalSynthesizer per dataset, applies the resynthesis policy
/// per batch, and hot-publishes refreshed programs through the shared
/// ProgramRegistry — the exact versioned-reload path the watch directory
/// uses, certificate gate included (docs/STREAMING.md).
///
/// Thread-safe: the stream map has its own mutex and every dataset stream
/// serializes its ingests behind a per-dataset mutex, so concurrent
/// connections feeding different datasets never contend.
class StreamService {
 public:
  StreamService(serve::ProgramRegistry* registry,
                StreamServiceOptions options);

  /// The server's ingest hook (ServerOptions::ingest_handler). Never
  /// throws; failures come back as response codes.
  serve::IngestResponse HandleIngest(const serve::IngestRequest& request);

  /// Datasets with an active stream.
  int64_t active_streams() const;

 private:
  struct DatasetStream {
    std::mutex mu;
    IncrementalSynthesizer synth;
    ResynthesisPolicy policy;
    int64_t batches_since_refresh = 0;
    uint64_t served_version = 0;

    DatasetStream(const IncrementalOptions& incremental,
                  const PolicyOptions& policy_options)
        : synth(incremental), policy(policy_options) {}
  };

  DatasetStream* GetOrCreate(const std::string& dataset);

  serve::ProgramRegistry* registry_;
  StreamServiceOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<DatasetStream>> streams_;
};

}  // namespace stream
}  // namespace guardrail

#endif  // GUARDRAIL_STREAM_SERVICE_H_
