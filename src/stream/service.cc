#include "stream/service.h"

#include <utility>

#include "common/csv.h"
#include "common/logging.h"
#include "common/telemetry/telemetry.h"
#include "serve/engine.h"
#include "table/table.h"

namespace guardrail {
namespace stream {

namespace {

serve::IngestAction ToWire(RefreshAction action) {
  switch (action) {
    case RefreshAction::kNone:
      return serve::IngestAction::kNone;
    case RefreshAction::kNoop:
      return serve::IngestAction::kNoop;
    case RefreshAction::kIncremental:
      return serve::IngestAction::kIncremental;
    case RefreshAction::kFull:
      return serve::IngestAction::kFull;
  }
  return serve::IngestAction::kNone;
}

}  // namespace

StreamService::StreamService(serve::ProgramRegistry* registry,
                             StreamServiceOptions options)
    : registry_(registry), options_(std::move(options)) {}

int64_t StreamService::active_streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(streams_.size());
}

StreamService::DatasetStream* StreamService::GetOrCreate(
    const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(dataset);
  if (it == streams_.end()) {
    it = streams_
             .emplace(dataset,
                      std::make_unique<DatasetStream>(options_.incremental,
                                                      options_.policy))
             .first;
  }
  return it->second.get();
}

serve::IngestResponse StreamService::HandleIngest(
    const serve::IngestRequest& request) {
  serve::IngestResponse response;
  if (request.dataset.empty()) {
    response.code = StatusCode::kInvalidArgument;
    response.error = "ingest request names no dataset";
    return response;
  }
  DatasetStream* stream = GetOrCreate(request.dataset);
  std::lock_guard<std::mutex> lock(stream->mu);
  GUARDRAIL_COUNTER_INC("stream.ingest.batches");

  // A fresh stream adopts the served schema when the dataset already has a
  // published program (the wire row layout must agree with validation);
  // otherwise the first CSV batch's header defines it.
  if (stream->synth.schema().num_attributes() == 0) {
    if (auto snapshot = registry_->Get(request.dataset)) {
      stream->synth.SeedSchema(snapshot->schema);
      stream->served_version = snapshot->version;
    }
  }

  if (stream->synth.schema().num_attributes() > 0) {
    Result<std::vector<Row>> rows =
        serve::DecodeRows(request.format, request.payload,
                          &stream->synth.mutable_schema(),
                          options_.max_batch_rows);
    if (!rows.ok()) {
      response.code = rows.status().code();
      response.error = rows.status().message();
      return response;
    }
    Status ingested = stream->synth.IngestRows(*rows);
    if (!ingested.ok()) {
      response.code = ingested.code();
      response.error = ingested.message();
      return response;
    }
    response.rows_ingested = static_cast<uint64_t>(rows->size());
  } else {
    if (request.format != serve::RowFormat::kCsv) {
      response.code = StatusCode::kInvalidArgument;
      response.error =
          "JSON ingest needs an existing schema; publish a program for this "
          "dataset or send the first batch as CSV";
      return response;
    }
    Result<CsvDocument> doc = ParseCsv(request.payload);
    if (!doc.ok()) {
      response.code = doc.status().code();
      response.error = doc.status().message();
      return response;
    }
    if (static_cast<int64_t>(doc->rows.size()) > options_.max_batch_rows) {
      response.code = StatusCode::kInvalidArgument;
      response.error = "batch of " + std::to_string(doc->rows.size()) +
                       " row(s) exceeds the per-request cap of " +
                       std::to_string(options_.max_batch_rows);
      return response;
    }
    Result<Table> batch = Table::FromCsv(*doc);
    if (!batch.ok()) {
      response.code = batch.status().code();
      response.error = batch.status().message();
      return response;
    }
    Status ingested = stream->synth.IngestTable(*batch);
    if (!ingested.ok()) {
      response.code = ingested.code();
      response.error = ingested.message();
      return response;
    }
    response.rows_ingested = static_cast<uint64_t>(batch->num_rows());
  }

  ++stream->batches_since_refresh;
  const bool manual = request.force_refresh;
  bool attempt;
  if (!stream->synth.bootstrapped()) {
    // Bootstrap once enough rows accumulated for a meaningful first
    // synthesis (or on an explicit trigger).
    attempt = manual ||
              stream->synth.rows_ingested() >= options_.bootstrap_rows;
  } else {
    attempt = stream->policy.ShouldRefresh(stream->batches_since_refresh,
                                           manual);
  }
  if (attempt) {
    stream->batches_since_refresh = 0;
    const bool force_full = manual && stream->synth.bootstrapped();
    Result<RefreshResult> refreshed = stream->synth.Refresh(force_full);
    if (!refreshed.ok()) {
      response.code = refreshed.status().code();
      response.error = refreshed.status().message();
      response.program_version = stream->served_version;
      return response;
    }
    response.action = ToWire(refreshed->action);
    response.drift_score = refreshed->drift.max_statistic;
    if (refreshed->published_changed) {
      Result<uint64_t> version = registry_->LoadFromText(
          request.dataset, refreshed->program_text, stream->synth.schema(),
          "stream://" + request.dataset, refreshed->certificate_text);
      if (!version.ok()) {
        // The refreshed program failed the registry's analyzer/certificate
        // gate; the previous version stays live (same contract as a bad
        // watch-dir reload).
        GUARDRAIL_LOG(WARN) << "stream publish refused for '"
                            << request.dataset
                            << "': " << version.status().message();
        response.code = version.status().code();
        response.error = version.status().message();
        response.program_version = stream->served_version;
        return response;
      }
      stream->served_version = *version;
      response.published = true;
      GUARDRAIL_COUNTER_INC("stream.resynth.published");
    }
  }
  response.program_version = stream->served_version;
  return response;
}

}  // namespace stream
}  // namespace guardrail
