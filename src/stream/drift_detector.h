#ifndef GUARDRAIL_STREAM_DRIFT_DETECTOR_H_
#define GUARDRAIL_STREAM_DRIFT_DETECTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "stream/stats_store.h"
#include "table/value.h"

namespace guardrail {
namespace stream {

/// Knobs for per-pair drift scoring (docs/STREAMING.md, "Drift detection").
struct DriftOptions {
  /// Two-sample G² significance level: a pair whose homogeneity p-value
  /// falls below this is drifted. Deliberately much stricter than the CI
  /// test's alpha — a refresh costs synthesis work, so only confident shifts
  /// should trigger one.
  double alpha = 1e-4;
  /// Additionally require at least this G² statistic, guarding against
  /// astronomically significant but practically tiny shifts on huge windows.
  double min_statistic = 0.0;
  /// A pair is scored only when the window counted at least this many rows
  /// for it; below that the test has no power and the pair reads as clean.
  int64_t min_pair_rows = 64;
  /// Window row count below which no refresh is attempted at all (the
  /// stream-level power floor; see IncrementalSynthesizer::Refresh).
  int64_t min_window_rows = 256;
  /// When at least this fraction of scorable pairs drifted, the shift is
  /// global: patching statements locally would chase a moving target, so
  /// the synthesizer falls back to full resynthesis.
  double global_fraction = 0.5;
};

/// One attribute pair's shift score: a two-sample G² test of homogeneity
/// between the frozen baseline contingency table and the current window's.
struct PairDrift {
  AttrIndex x = 0;
  AttrIndex y = 0;
  double statistic = 0.0;
  double dof = 0.0;
  double p_value = 1.0;
  bool drifted = false;
};

struct DriftReport {
  /// Every pair with enough window data to score, in (x, y) order.
  std::vector<PairDrift> pairs;
  /// The drifted subset, in (x, y) order.
  std::vector<std::pair<AttrIndex, AttrIndex>> drifted;
  /// The attributes blamed for the drifted pairs, ascending — the set whose
  /// statements need re-filling. Not the raw endpoint union: when exactly
  /// one endpoint of a drifted pair also shifted marginally, that endpoint
  /// alone is blamed (a moved marginal perturbs every joint it appears in,
  /// and blaming both sides would smear one drifted node across the whole
  /// schema; see Compare).
  std::vector<AttrIndex> drifted_attributes;
  double max_statistic = 0.0;
  double min_p_value = 1.0;
  /// drifted / scorable pairs (0 when nothing was scorable).
  double drifted_fraction = 0.0;
  bool global = false;

  bool any() const { return !drifted.empty(); }
};

/// Scores a window of fresh rows against a frozen baseline, pair by pair.
/// Stateless and cheap: the cost is proportional to the contingency-table
/// cells, never to the rows behind them.
class DriftDetector {
 public:
  explicit DriftDetector(DriftOptions options) : options_(options) {}

  /// Two-sample G² per pair: are the window's (x, y) counts drawn from the
  /// same joint distribution as the baseline's? Both stores must cover the
  /// same attributes.
  DriftReport Compare(const StatsStore& baseline,
                      const StatsStore& window) const;

  const DriftOptions& options() const { return options_; }

 private:
  DriftOptions options_;
};

}  // namespace stream
}  // namespace guardrail

#endif  // GUARDRAIL_STREAM_DRIFT_DETECTOR_H_
