#include "stream/incremental.h"

#include <chrono>
#include <set>
#include <utility>

#include "analysis/semantic.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/telemetry/telemetry.h"
#include "core/normalize.h"
#include "core/serialization.h"
#include "core/sketch_filler.h"
#include "pgm/encoded_data.h"

namespace guardrail {
namespace stream {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

size_t PairFlatIndex(int64_t n, AttrIndex x, AttrIndex y) {
  return static_cast<size_t>(x * (2 * n - x - 1) / 2 + (y - x - 1));
}

core::StatementSketch HeaderOf(const core::Statement& statement) {
  core::StatementSketch sketch;
  sketch.determinants = statement.determinants;
  sketch.dependent = statement.dependent;
  return sketch;
}

}  // namespace

const char* RefreshActionName(RefreshAction action) {
  switch (action) {
    case RefreshAction::kNone:
      return "none";
    case RefreshAction::kNoop:
      return "noop";
    case RefreshAction::kIncremental:
      return "incremental";
    case RefreshAction::kFull:
      return "full";
  }
  return "unknown";
}

IncrementalSynthesizer::IncrementalSynthesizer(IncrementalOptions options)
    : options_(std::move(options)), detector_(options_.drift) {}

void IncrementalSynthesizer::SeedSchema(const Schema& schema) {
  GUARDRAIL_CHECK_EQ(data_.num_rows(), 0)
      << "SeedSchema must precede the first ingest";
  data_ = Table(schema);
}

Status IncrementalSynthesizer::IngestTable(const Table& batch) {
  if (batch.num_rows() == 0) return Status::OK();
  if (data_.num_columns() == 0) {
    data_ = Table(batch.schema());
  }
  const int32_t n = data_.num_columns();
  if (batch.num_columns() != n) {
    return Status::InvalidArgument(
        "ingest batch width " + std::to_string(batch.num_columns()) +
        " does not match stream width " + std::to_string(n));
  }
  const int64_t begin = data_.num_rows();
  // Batches arrive independently dictionary-coded; translate through labels
  // so codes agree with the accumulated schema (extending domains as new
  // labels appear in the stream).
  Row row(static_cast<size_t>(n));
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    for (AttrIndex c = 0; c < n; ++c) {
      const ValueId v = batch.Get(r, c);
      row[static_cast<size_t>(c)] =
          v == kNullValue
              ? kNullValue
              : data_.mutable_schema().attribute(c).GetOrInsert(
                    batch.schema().attribute(c).label(v));
    }
    Status appended = data_.AppendRow(row);
    if (!appended.ok()) return appended;
  }
  if (window_.num_attributes() != n) window_.Reset(n);
  if (baseline_.num_attributes() != n) baseline_.Reset(n);
  window_.IngestTable(data_, begin, data_.num_rows() - begin);
  GUARDRAIL_COUNTER_ADD("stream.ingest.rows", batch.num_rows());
  return Status::OK();
}

Status IncrementalSynthesizer::IngestRows(const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  const int32_t n = data_.num_columns();
  if (n == 0) {
    return Status::InvalidArgument(
        "IngestRows needs a seeded schema (SeedSchema or a prior "
        "IngestTable)");
  }
  const int64_t begin = data_.num_rows();
  for (const Row& row : rows) {
    Status appended = data_.AppendRow(row);
    if (!appended.ok()) return appended;
  }
  if (window_.num_attributes() != n) window_.Reset(n);
  if (baseline_.num_attributes() != n) baseline_.Reset(n);
  window_.IngestTable(data_, begin, data_.num_rows() - begin);
  GUARDRAIL_COUNTER_ADD("stream.ingest.rows",
                        static_cast<int64_t>(rows.size()));
  return Status::OK();
}

std::vector<bool> IncrementalSynthesizer::ComputeCiVerdicts(
    int64_t* tests_run) const {
  const int64_t n = data_.num_columns();
  std::vector<bool> verdicts(static_cast<size_t>(n * (n - 1) / 2), true);
  const pgm::EncodedData encoded = pgm::EncodeIdentity(data_);
  const pgm::GSquareTest test(&encoded, options_.ci);
  const std::vector<int32_t> empty_z;
  for (AttrIndex x = 0; x < n; ++x) {
    for (AttrIndex y = x + 1; y < n; ++y) {
      verdicts[PairFlatIndex(n, x, y)] = test.Test(x, y, empty_z).independent;
    }
  }
  if (tests_run != nullptr) *tests_run += test.num_tests_run();
  return verdicts;
}

Status IncrementalSynthesizer::Publish(const core::SynthesisReport& report,
                                       RefreshResult* out) {
  const std::string previous = program_text_;
  if (options_.serve_minimized && report.minimized) {
    const std::string comment = std::string(analysis::kMinimizedMarker + 2) +
                                "\nstreaming refresh (" +
                                RefreshActionName(out->action) + ")";
    program_text_ =
        core::SerializeProgram(report.minimization.program, data_.schema(),
                               comment);
    certificate_text_ = report.minimization.certificate;
  } else {
    program_text_ = core::SerializeProgram(
        report.program, data_.schema(),
        std::string("streaming refresh (") + RefreshActionName(out->action) +
            ")");
    certificate_text_.clear();
  }
  out->program_text = program_text_;
  out->certificate_text = certificate_text_;
  out->published_changed = program_text_ != previous;
  return Status::OK();
}

Status IncrementalSynthesizer::PublishProgram(const core::Program& ensemble,
                                              RefreshResult* out) {
  const std::string previous = program_text_;
  if (options_.serve_minimized) {
    auto minimized = analysis::MinimizeProgram(
        ensemble, data_.schema(), options_.synthesis.minimize_options);
    if (!minimized.ok()) return minimized.status();
    const std::string comment = std::string(analysis::kMinimizedMarker + 2) +
                                "\nstreaming refresh (" +
                                RefreshActionName(out->action) + ")";
    program_text_ = core::SerializeProgram(minimized->program, data_.schema(),
                                           comment);
    certificate_text_ = minimized->certificate;
  } else {
    program_text_ = core::SerializeProgram(
        ensemble, data_.schema(),
        std::string("streaming refresh (") + RefreshActionName(out->action) +
            ")");
    certificate_text_.clear();
  }
  out->program_text = program_text_;
  out->certificate_text = certificate_text_;
  out->published_changed = program_text_ != previous;
  return Status::OK();
}

Result<RefreshResult> IncrementalSynthesizer::FullResynthesis(
    RefreshAction action, std::string reason) {
  const auto start = std::chrono::steady_clock::now();
  RefreshResult out;
  out.action = action;
  out.reason = std::move(reason);

  const core::Synthesizer synthesizer(options_.synthesis);
  Rng rng(options_.seed);
  core::SynthesisReport report = synthesizer.Synthesize(data_, &rng);

  // The ensemble (union of member-DAG programs) is the shape replayed by
  // incremental refreshes; fall back to the chosen program when synthesis
  // degraded below the ensemble rung.
  const core::Program& shape =
      report.ensemble_program.empty() ? report.program
                                      : report.ensemble_program;
  ensemble_order_.clear();
  ensemble_order_.reserve(shape.statements.size());
  fill_cache_.clear();
  for (const core::Statement& statement : shape.statements) {
    core::StatementSketch sketch = HeaderOf(statement);
    ensemble_order_.push_back(sketch);
    fill_cache_[sketch] = statement;
  }
  baseline_ci_verdicts_ = ComputeCiVerdicts(&out.ci_tests_rerun);

  Status published = Publish(report, &out);
  if (!published.ok()) return published;

  baseline_.Merge(window_);
  window_.Reset(data_.num_columns());
  bootstrapped_ = true;

  out.statements_refilled = static_cast<int64_t>(ensemble_order_.size());
  out.seconds = SecondsSince(start);
  GUARDRAIL_COUNTER_INC("stream.resynth.full");
  return out;
}

Result<RefreshResult> IncrementalSynthesizer::Bootstrap() {
  if (data_.num_rows() == 0) {
    return Status::InvalidArgument("cannot bootstrap an empty stream");
  }
  return FullResynthesis(RefreshAction::kFull, "bootstrap");
}

Result<RefreshResult> IncrementalSynthesizer::Refresh(bool force_full) {
  if (!bootstrapped_) return Bootstrap();
  const auto start = std::chrono::steady_clock::now();

  if (force_full) {
    return FullResynthesis(RefreshAction::kFull, "forced full resynthesis");
  }

  RefreshResult out;
  out.program_text = program_text_;
  out.certificate_text = certificate_text_;
  if (window_.num_rows() < options_.drift.min_window_rows) {
    out.action = RefreshAction::kNone;
    out.reason = "window below power floor (" +
                 std::to_string(window_.num_rows()) + " < " +
                 std::to_string(options_.drift.min_window_rows) + " rows)";
    out.seconds = SecondsSince(start);
    return out;
  }

  out.drift = detector_.Compare(baseline_, window_);
  if (!out.drift.any()) {
    // Clean window: served bytes stay untouched and the window keeps
    // accumulating — merging it into the baseline here would launder slow
    // drift in below the detection threshold.
    out.action = RefreshAction::kNoop;
    out.reason = "no drifted pairs (max G2 " +
                 std::to_string(out.drift.max_statistic) + ")";
    out.seconds = SecondsSince(start);
    GUARDRAIL_COUNTER_INC("stream.resynth.noop");
    return out;
  }
  if (out.drift.global) {
    Result<RefreshResult> full = FullResynthesis(
        RefreshAction::kFull,
        "global drift (" + std::to_string(out.drift.drifted.size()) +
            " pairs, fraction " +
            std::to_string(out.drift.drifted_fraction) + ")");
    if (full.ok()) full->drift = out.drift;
    return full;
  }

  // Localized drift. First re-test the moved pairs: a marginal-independence
  // verdict flip means the learned structure — not just the branch tables —
  // is stale, and patching statements under a wrong skeleton is unsound.
  {
    const int64_t n = data_.num_columns();
    const pgm::EncodedData encoded = pgm::EncodeIdentity(data_);
    const pgm::GSquareTest test(&encoded, options_.ci);
    const std::vector<int32_t> empty_z;
    for (const auto& [x, y] : out.drift.drifted) {
      const bool independent = test.Test(x, y, empty_z).independent;
      ++out.ci_tests_rerun;
      if (independent != baseline_ci_verdicts_[PairFlatIndex(n, x, y)]) {
        Result<RefreshResult> full = FullResynthesis(
            RefreshAction::kFull,
            "ci verdict flipped for pair (" + std::to_string(x) + ", " +
                std::to_string(y) + ")");
        if (full.ok()) {
          full->drift = out.drift;
          full->ci_tests_rerun += out.ci_tests_rerun;
        }
        return full;
      }
    }
    GUARDRAIL_COUNTER_ADD("stream.resynth.ci_tests", out.ci_tests_rerun);
  }

  // Structure held: re-fill only the statements whose attribute footprint
  // intersects the drifted attributes; everything else replays its cached
  // fill byte-identically.
  out.action = RefreshAction::kIncremental;
  std::set<AttrIndex> moved(out.drift.drifted_attributes.begin(),
                            out.drift.drifted_attributes.end());
  std::set<core::StatementSketch> refilled;
  std::set<core::StatementSketch> dead;
  for (auto it = fill_cache_.begin(); it != fill_cache_.end();) {
    const core::StatementSketch& sketch = it->first;
    bool touched = moved.count(sketch.dependent) > 0;
    for (AttrIndex d : sketch.determinants) {
      if (touched) break;
      touched = moved.count(d) > 0;
    }
    if (!touched) {
      ++it;
      continue;
    }
    std::optional<core::Statement> fresh =
        core::FillStatementSketch(sketch, data_, options_.synthesis.fill);
    refilled.insert(sketch);
    if (fresh.has_value()) {
      it->second = std::move(*fresh);
      ++it;
    } else {
      // Fill reached Alg. 1's bottom: no epsilon-valid branch survives on
      // the drifted data, so the statement leaves the served program.
      dead.insert(sketch);
      it = fill_cache_.erase(it);
    }
  }

  core::Program ensemble;
  ensemble.statements.reserve(ensemble_order_.size());
  for (const core::StatementSketch& sketch : ensemble_order_) {
    auto it = fill_cache_.find(sketch);
    if (it == fill_cache_.end()) continue;
    ensemble.statements.push_back(it->second);
    if (refilled.count(sketch) > 0) {
      ++out.statements_refilled;
    } else {
      ++out.statements_reused;
    }
  }
  core::CanonicalizeProgramOrder(&ensemble);

  Status published = PublishProgram(ensemble, &out);
  if (!published.ok()) return published;

  baseline_.Merge(window_);
  window_.Reset(data_.num_columns());

  out.reason = "localized drift: " +
               std::to_string(out.drift.drifted.size()) + " pairs, " +
               std::to_string(out.statements_refilled) +
               " statements refilled, " +
               std::to_string(out.statements_reused) + " reused" +
               (dead.empty() ? ""
                             : ", " + std::to_string(dead.size()) +
                                   " filled to bottom");
  out.seconds = SecondsSince(start);
  GUARDRAIL_COUNTER_INC("stream.resynth.incremental");
  return out;
}

}  // namespace stream
}  // namespace guardrail
