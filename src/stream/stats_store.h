#ifndef GUARDRAIL_STREAM_STATS_STORE_H_
#define GUARDRAIL_STREAM_STATS_STORE_H_

#include <cstdint>
#include <vector>

#include "table/column_batch.h"
#include "table/table.h"

namespace guardrail {
namespace stream {

/// Mergeable sufficient statistics for streaming synthesis: one contingency
/// table per unordered attribute pair plus per-attribute marginals, updated
/// from dictionary-coded row batches (docs/STREAMING.md).
///
/// Everything the drift detector needs — and everything the pairwise stage
/// of CI testing needs — reduces to these counts, so a stream ingests rows
/// once, cheaply, and synthesis-scale work happens only when the counts say
/// the distribution moved.
///
/// Merge is commutative and associative count addition: shard-local stores
/// built over disjoint row ranges combine into exactly the store a single
/// serial pass would have produced, which is what makes batched and
/// parallel ingest deterministic (see stream_test's associativity and
/// split-invariance checks).
class StatsStore {
 public:
  /// A dense pair contingency table. Dimensions grow dynamically as new
  /// dictionary codes appear in the stream; counts are row-major
  /// (x-value major, y-value minor) with x < y by attribute index.
  struct PairTable {
    int32_t card_x = 0;
    int32_t card_y = 0;
    std::vector<int64_t> counts;
    /// Rows where both attributes were non-NULL.
    int64_t total = 0;

    int64_t Count(ValueId vx, ValueId vy) const {
      if (vx < 0 || vy < 0 || vx >= card_x || vy >= card_y) return 0;
      return counts[static_cast<size_t>(vx) * static_cast<size_t>(card_y) +
                    static_cast<size_t>(vy)];
    }
  };

  StatsStore() = default;
  explicit StatsStore(int32_t num_attributes) { Reset(num_attributes); }

  /// Drops all counts and re-sizes to `num_attributes`.
  void Reset(int32_t num_attributes);

  int32_t num_attributes() const { return num_attributes_; }
  int64_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Counts every row of a columnar batch into the pair tables and
  /// marginals. Every attribute in [0, num_attributes) must be materialized
  /// in the batch (ColumnBatch::FromTable always is). NULL cells are skipped
  /// per-attribute; a pair cell counts only when both sides are non-NULL.
  void IngestBatch(const ColumnBatch& batch);

  /// Convenience: ingests rows [begin, begin + count) of `table`
  /// (count < 0 means "through the last row").
  void IngestTable(const Table& table, int64_t begin = 0, int64_t count = -1);

  /// Adds every count of `other` into this store (commutative, associative).
  /// Both stores must cover the same number of attributes.
  void Merge(const StatsStore& other);

  /// The (x, y) contingency table; requires x < y.
  const PairTable& pair(AttrIndex x, AttrIndex y) const;

  /// Per-value non-NULL counts for one attribute (index = dictionary code).
  const std::vector<int64_t>& marginal(AttrIndex a) const {
    return marginals_[static_cast<size_t>(a)];
  }

  /// FNV-1a over every dimension and count in fixed order — equal for any
  /// ingest batching or merge tree that saw the same multiset of rows.
  uint64_t ContentHash() const;

 private:
  size_t PairIndex(AttrIndex x, AttrIndex y) const {
    // x < y over n attributes, lexicographic pair enumeration.
    const int64_t n = num_attributes_;
    return static_cast<size_t>(x * (2 * n - x - 1) / 2 + (y - x - 1));
  }

  static void GrowPair(PairTable* table, int32_t card_x, int32_t card_y);

  int32_t num_attributes_ = 0;
  int64_t num_rows_ = 0;
  std::vector<PairTable> pairs_;
  std::vector<std::vector<int64_t>> marginals_;
};

}  // namespace stream
}  // namespace guardrail

#endif  // GUARDRAIL_STREAM_STATS_STORE_H_
