#ifndef GUARDRAIL_STREAM_POLICY_H_
#define GUARDRAIL_STREAM_POLICY_H_

#include <cstdint>
#include <optional>
#include <string>

namespace guardrail {
namespace stream {

/// When a stream attempts a refresh (docs/STREAMING.md, "Resynthesis
/// policy"). The policy decides *when to look*; the drift detector and
/// incremental synthesizer decide *what to do* once looking.
enum class ResynthesisMode {
  /// Attempt a refresh every `interval_batches` ingested batches.
  kInterval,
  /// Attempt a refresh after every batch; the drift detector's thresholds
  /// gate the actual work, so clean batches cost only the pair scoring.
  kDriftThreshold,
  /// Refresh only when explicitly requested (IngestRequest::force_refresh
  /// or `guardrail stream --force-refresh`).
  kManual,
};

struct PolicyOptions {
  ResynthesisMode mode = ResynthesisMode::kDriftThreshold;
  /// kInterval: batches between refresh attempts.
  int64_t interval_batches = 8;
};

/// Pure decision function: should this batch trigger a refresh attempt?
class ResynthesisPolicy {
 public:
  explicit ResynthesisPolicy(PolicyOptions options) : options_(options) {}

  /// `batches_since_refresh` counts ingested batches since the last refresh
  /// attempt (successful or no-op); `manual` is an explicit caller trigger
  /// that fires under every mode.
  bool ShouldRefresh(int64_t batches_since_refresh, bool manual) const {
    if (manual) return true;
    switch (options_.mode) {
      case ResynthesisMode::kInterval:
        return batches_since_refresh >= options_.interval_batches;
      case ResynthesisMode::kDriftThreshold:
        return true;
      case ResynthesisMode::kManual:
        return false;
    }
    return false;
  }

  const PolicyOptions& options() const { return options_; }

 private:
  PolicyOptions options_;
};

/// "interval" / "drift" / "manual" <-> enum (CLI flag surface).
std::optional<ResynthesisMode> ParseResynthesisMode(const std::string& name);
const char* ResynthesisModeName(ResynthesisMode mode);

}  // namespace stream
}  // namespace guardrail

#endif  // GUARDRAIL_STREAM_POLICY_H_
