#!/bin/sh
# Repo-wide clang-tidy gate over src/ and tools/ (config: .clang-tidy).
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# The build dir must hold a compile_commands.json (the top-level CMakeLists
# exports one unconditionally); when absent the script configures one. When
# clang-tidy itself is not installed the script skips with exit 0 so
# developer machines without LLVM tooling stay unblocked — CI installs it
# and WarningsAsErrors turns every finding into a failure there.
set -e

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
case "$BUILD" in
  /*) ;;
  *) BUILD="$ROOT/$BUILD" ;;
esac
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not found; skipping lint gate" >&2
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
cd "$ROOT"
# xargs exits 123 when any clang-tidy invocation reports (WarningsAsErrors
# promotes every finding), which is exactly the gate semantics we want.
find src tools -name '*.cc' -print0 |
  xargs -0 -P "$JOBS" -n 1 "$TIDY" -p "$BUILD" --quiet
echo "run_clang_tidy: clean"
