// guardrail — command-line front end for the library.
//
//   guardrail synthesize <data.csv> <out.grl> [epsilon] [--time-budget-ms=N]
//       Synthesize an integrity-constraint program from a CSV relation and
//       save it as a reviewable text artifact. With a time budget the
//       synthesizer degrades gracefully (see docs/ROBUSTNESS.md) and reports
//       which ladder rung produced the program.
//   guardrail check <program.grl> <data.csv>
//       Report rows violating the constraints (row numbers are 1-based data
//       rows, header excluded). Exit code 3 when violations exist.
//   guardrail analyze <program.grl> <data.csv> [--json] [--epsilon=E]
//       [--scheme=raise|ignore|coerce|rectify] [--minimize]
//       [--certificate=out.json] [--minimized-out=out.grl]
//       Statically analyze the program against the relation: type/domain
//       checking, dead branches, contradictions, non-triviality audit,
//       coverage holes, and whole-program implication (docs/ANALYSIS.md).
//       --json emits machine-readable diagnostics. --minimize additionally
//       runs the certified minimizer: implied statements are dropped with a
//       machine-checkable equivalence certificate (--certificate) and the
//       minimized program — carrying the `# guardrail-minimized` marker the
//       serving registry's publish gate keys on — is written to
//       --minimized-out. Exit codes: 0 clean or warnings only, 4 when
//       error-severity diagnostics exist, 2 on I/O or parse failure.
//   guardrail repair <program.grl> <in.csv> <out.csv>
//       Rectify violations (MAP repair) and write the cleaned CSV.
//   guardrail profile <data.csv>
//       Print per-column cardinality / entropy / mode statistics.
//   guardrail query <data.csv> "<SELECT ...>"
//       Run a SQL query against the CSV (table name: t).
//   guardrail explain "<SELECT ...>"
//       Show the physical plan, including the predicate-pushdown split.
//   guardrail serve --programs=DIR [--port=N] [--queue-depth=N]
//       [--reload-ms=N] [--ingest] [--resynth-policy=interval|drift|manual]
//       [--resynth-interval=N] [--drift-alpha=A] [--drift-global-fraction=F]
//       [--drift-min-rows=N]
//       Run the guard-serving daemon (docs/SERVING.md): load every
//       <dataset>.grl (+ companion <dataset>.csv schema) program in DIR,
//       listen on 127.0.0.1, hot-reload DIR on changes, and answer framed
//       Validate requests. SIGTERM/SIGINT drains gracefully: accepting
//       stops, in-flight requests finish, then "drained" is printed.
//       --ingest additionally answers protocol-v3 IngestBatch frames: each
//       batch feeds a per-dataset streaming synthesizer, and refreshed
//       programs hot-publish through the same versioned registry path as
//       the watch directory (docs/STREAMING.md).
//   guardrail stream <data.csv> [--batch-rows=N] [--out=FILE]
//       [--resynth-policy=...] [--drift-*=...] [--force-refresh]
//   guardrail stream <data.csv> --endpoint=host:port --dataset=NAME
//       [--batch-rows=N] [--force-refresh]
//       Replay a CSV as a stream of ingest batches. Without --endpoint the
//       replay runs in-process (bootstrap, drift scoring, incremental or
//       full refreshes are reported per batch and the final program is
//       printed or written to --out). With --endpoint each batch is sent as
//       an IngestBatch frame to a daemon running with --ingest.
//       --force-refresh forces a full resynthesis on the final batch.
//   guardrail validate <host:port> <dataset> <data.csv>
//       [--scheme=raise|ignore|coerce|rectify] [--format=csv|json]
//       [--time-budget-ms=N]
//       Send the CSV's rows to a running daemon and report per-row
//       verdicts. --format=json re-encodes the rows as JSON client-side to
//       exercise the JSON wire path. Exit code 3 when violations exist.
//   guardrail validate --endpoints=h:p,h:p,... <dataset> <data.csv>
//       [--retries=N] [--hedge-ms=N]
//       Fleet mode: load-balance the request across several daemons with
//       retries, circuit breakers, and optional request hedging (see
//       docs/SERVING.md, "Resilience").
//
// Global flags (any command):
//   --threads=N         Worker parallelism for synthesis (default: hardware
//                       concurrency, or the GUARDRAIL_THREADS env var). The
//                       synthesized program is byte-identical for any N;
//                       see docs/PARALLELISM.md.
//   --trace-out=FILE    Write a Chrome trace_event JSON timeline of the run
//                       (load in chrome://tracing or https://ui.perfetto.dev).
//   --trace-stream-out=FILE
//                       Stream trace events to FILE incrementally with a
//                       bounded in-memory buffer — for long-lived commands
//                       (serve, stream) whose timeline would overflow the
//                       in-memory trace cap.
//   --metrics-out=FILE  Write all telemetry counters/histograms as JSON.
//   --log-level=LEVEL   debug|info|warn|error|off (default warn; the
//                       GUARDRAIL_LOG_LEVEL env var is the fallback).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/checker.h"
#include "analysis/semantic.h"
#include "common/csv.h"
#include "common/deadline.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/telemetry/telemetry.h"
#include "core/guard.h"
#include "core/normalize.h"
#include "core/printer.h"
#include "core/serialization.h"
#include "core/synthesizer.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/pool.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "stream/incremental.h"
#include "stream/policy.h"
#include "stream/service.h"
#include "table/profile.h"
#include "table/table.h"

namespace guardrail {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

Result<Table> LoadCsvTable(const std::string& path) {
  GUARDRAIL_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path));
  return Table::FromCsv(doc);
}

int CmdSynthesize(const std::string& data_path, const std::string& out_path,
                  double epsilon, int64_t time_budget_ms, int num_threads) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());

  core::SynthesisOptions options;
  options.fill.epsilon = epsilon;
  options.num_threads = num_threads;
  core::Synthesizer synthesizer(options);
  Rng rng(0x6A1DULL);
  // Negative budget = flag absent = unlimited; 0 is a real (instantly
  // expired) budget exercising the trivial rung.
  CancellationToken cancel = time_budget_ms >= 0
                                 ? CancellationToken::WithBudgetMillis(
                                       time_budget_ms)
                                 : CancellationToken::Never();
  core::SynthesisReport report = synthesizer.Synthesize(*table, &rng, cancel);
  core::NormalizeProgram(&report.program);

  std::string comment = "synthesized from " + data_path + " (epsilon " +
                        FormatDouble(epsilon) + ", coverage " +
                        FormatDouble(report.coverage, 3) + ")";
  Status saved = core::SaveProgramToFile(out_path, report.program,
                                         table->schema(), comment);
  if (!saved.ok()) return Fail(saved);
  std::printf("%s\n",
              core::ProgramSummary(report.program, table->schema()).c_str());
  std::printf("coverage %.3f | %lld DAGs in MEC | %.3fs total\n",
              report.coverage,
              static_cast<long long>(report.num_dags_enumerated),
              report.total_seconds);
  if (report.rung != core::SynthesisRung::kFullMec) {
    std::printf("degraded to rung '%s': %s\n",
                core::SynthesisRungName(report.rung),
                report.degradation_reason.c_str());
    if (report.rung == core::SynthesisRung::kTrivial) {
      std::printf("%zu per-attribute domain constraint(s) retained\n",
                  report.domain_constraints.size());
    }
  }
  std::printf("written to %s\n", out_path.c_str());
  return 0;
}

int CmdCheck(const std::string& program_path, const std::string& data_path) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());
  Schema schema = table->schema();
  auto program = core::LoadProgramFromFile(program_path, &schema);
  if (!program.ok()) return Fail(program.status());

  core::Guard guard(&*program);
  core::Interpreter interpreter(&*program);
  int64_t violations = 0;
  for (RowIndex r = 0; r < table->num_rows(); ++r) {
    Row row = table->GetRow(r);
    for (const auto& v : interpreter.Check(row)) {
      ++violations;
      std::printf("row %lld: %s = '%s' but constraints expect '%s'\n",
                  static_cast<long long>(r + 1),
                  schema.attribute(v.attribute).name().c_str(),
                  v.actual == kNullValue
                      ? "<null>"
                      : schema.attribute(v.attribute).label(v.actual).c_str(),
                  schema.attribute(v.attribute).label(v.expected).c_str());
    }
  }
  std::printf("%lld violation(s) across %lld row(s)\n",
              static_cast<long long>(violations),
              static_cast<long long>(table->num_rows()));
  return violations > 0 ? 3 : 0;
}

int CmdAnalyze(const std::string& program_path, const std::string& data_path,
               bool json, double epsilon, core::ErrorPolicy scheme,
               bool minimize, const std::string& certificate_path,
               const std::string& minimized_out_path) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());
  Schema schema = table->schema();
  auto program = core::LoadProgramFromFile(program_path, &schema);
  if (!program.ok()) return Fail(program.status());

  analysis::AnalysisOptions options;
  options.epsilon = epsilon;
  options.scheme = scheme;
  analysis::Analyzer analyzer(options);
  analysis::DiagnosticReport report =
      analyzer.Analyze(*program, schema, *table);
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::fputs(report.ToText().c_str(), stdout);
  }

  if (minimize) {
    auto minimized = analysis::MinimizeProgram(*program, schema);
    if (!minimized.ok()) return Fail(minimized.status());
    std::printf(
        "minimized: %lld -> %lld statement(s), %lld -> %lld branch(es), "
        "%zu dropped\n",
        static_cast<long long>(minimized->statements_before),
        static_cast<long long>(minimized->statements_after),
        static_cast<long long>(minimized->branches_before),
        static_cast<long long>(minimized->branches_after),
        minimized->dropped.size());
    if (!certificate_path.empty()) {
      std::ofstream cert_out(certificate_path, std::ios::binary);
      if (!cert_out ||
          !(cert_out << minimized->certificate)) {
        return Fail(Status::IoError("cannot write " + certificate_path));
      }
      std::printf("certificate written to %s\n", certificate_path.c_str());
    }
    if (!minimized_out_path.empty()) {
      // The marker comment makes the registry's publish gate demand the
      // certificate before this program can be served.
      std::string comment = std::string(analysis::kMinimizedMarker + 2) +
                            "\nminimized from " + program_path;
      Status saved = core::SaveProgramToFile(minimized_out_path,
                                             minimized->program, schema,
                                             comment);
      if (!saved.ok()) return Fail(saved);
      std::printf("minimized program written to %s\n",
                  minimized_out_path.c_str());
    }
  }
  return report.HasErrors() ? 4 : 0;
}

int CmdRepair(const std::string& program_path, const std::string& in_path,
              const std::string& out_path) {
  auto table = LoadCsvTable(in_path);
  if (!table.ok()) return Fail(table.status());
  Schema schema = table->schema();
  auto program = core::LoadProgramFromFile(program_path, &schema);
  if (!program.ok()) return Fail(program.status());
  // Domains may have grown while parsing the program (literals unseen in
  // this CSV); rebuild the table under the extended schema.
  Table working(schema);
  for (RowIndex r = 0; r < table->num_rows(); ++r) {
    std::vector<std::string> labels;
    for (AttrIndex c = 0; c < table->num_columns(); ++c) {
      labels.push_back(table->GetLabel(r, c));
    }
    working.AppendRowLabels(labels);
  }

  core::Guard guard(&*program);
  core::GuardOutcome outcome =
      guard.ProcessTable(&working, core::ErrorPolicy::kRectify);
  Status written = WriteCsvFile(out_path, working.ToCsv());
  if (!written.ok()) return Fail(written);
  std::printf("%lld row(s) flagged, %lld cell(s) repaired -> %s\n",
              static_cast<long long>(outcome.rows_flagged),
              static_cast<long long>(outcome.cells_repaired),
              out_path.c_str());
  if (outcome.rows_failed > 0) {
    std::fprintf(stderr,
                 "warning: %lld row(s) could not be evaluated and were left "
                 "untouched (first error: %s)\n",
                 static_cast<long long>(outcome.rows_failed),
                 outcome.first_error.ToString().c_str());
  }
  return 0;
}

int CmdProfile(const std::string& data_path) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());
  std::fputs(ToString(ProfileTable(*table)).c_str(), stdout);
  return 0;
}

int CmdQuery(const std::string& data_path, const std::string& sql,
             int64_t time_budget_ms) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());
  sql::Executor executor;
  executor.RegisterTable("t", &*table);
  if (time_budget_ms >= 0) {
    executor.SetCancellation(
        CancellationToken::WithBudgetMillis(time_budget_ms));
  }
  auto result = executor.Execute(sql);
  if (!result.ok()) return Fail(result.status());
  std::fputs(result->ToString().c_str(), stdout);
  return 0;
}

int CmdExplain(const std::string& sql) {
  auto stmt = sql::ParseSelect(sql);
  if (!stmt.ok()) return Fail(stmt.status());
  std::fputs(sql::ExplainPlan(*stmt, /*enable_pushdown=*/true).c_str(),
             stdout);
  return 0;
}

std::atomic<bool> g_serve_stop{false};

void HandleStopSignal(int) { g_serve_stop.store(true); }

int CmdServe(const std::string& programs_dir, int port, int queue_depth,
             int reload_ms, bool ingest,
             const stream::PolicyOptions& policy_options,
             const stream::DriftOptions& drift_options, int num_threads) {
  serve::ProgramRegistry registry;
  serve::EngineOptions engine_options;
  if (queue_depth > 0) engine_options.max_inflight = queue_depth;
  serve::ValidationEngine engine(&registry, engine_options);

  serve::ServerOptions options;
  options.port = port;
  options.watch_dir = programs_dir;
  if (reload_ms > 0) options.reload_interval_ms = reload_ms;

  // With --ingest the daemon also learns: IngestBatch frames feed the
  // streaming synthesizer, which hot-publishes refreshed programs through
  // the same registry the Validate path reads.
  std::unique_ptr<stream::StreamService> stream_service;
  if (ingest) {
    stream::StreamServiceOptions stream_options;
    stream_options.policy = policy_options;
    stream_options.incremental.drift = drift_options;
    if (num_threads > 0) {
      stream_options.incremental.synthesis.num_threads = num_threads;
    }
    stream_service =
        std::make_unique<stream::StreamService>(&registry, stream_options);
    options.ingest_handler =
        [service = stream_service.get()](const serve::IngestRequest& request) {
          return service->HandleIngest(request);
        };
  }

  serve::Server server(&registry, &engine, options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  std::printf("listening on 127.0.0.1:%d\n", server.port());
  std::printf("%zu dataset(s) loaded\n", registry.List().size());
  if (ingest) {
    std::printf("ingest enabled (resynthesis policy: %s)\n",
                stream::ResynthesisModeName(policy_options.mode));
  }
  std::fflush(stdout);

  g_serve_stop.store(false);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Drain();
  std::printf("drained\n");
  std::fflush(stdout);
  return 0;
}

const char* IngestActionName(serve::IngestAction action) {
  switch (action) {
    case serve::IngestAction::kNone: return "none";
    case serve::IngestAction::kNoop: return "noop";
    case serve::IngestAction::kIncremental: return "incremental";
    case serve::IngestAction::kFull: return "full";
  }
  return "?";
}

// Remote half of `guardrail stream`: slice the CSV into batches and send
// each as a protocol-v3 IngestBatch frame to a daemon running --ingest.
int StreamRemote(const CsvDocument& doc, int64_t batch_rows,
                 const std::string& endpoint, const std::string& dataset,
                 bool force_refresh) {
  size_t colon = endpoint.rfind(':');
  double port = 0;
  if (colon == std::string::npos || colon == 0 ||
      !ParseDouble(endpoint.substr(colon + 1), &port) || port < 1 ||
      port > 65535) {
    return Fail(Status::InvalidArgument("endpoint must be host:port, got '" +
                                        endpoint + "'"));
  }
  const std::string host = endpoint.substr(0, colon);

  const int64_t total = static_cast<int64_t>(doc.rows.size());
  int64_t batch_id = 0;
  for (int64_t begin = 0; begin < total; begin += batch_rows) {
    const int64_t count = std::min(batch_rows, total - begin);
    CsvDocument slice;
    slice.header = doc.header;
    slice.rows.assign(doc.rows.begin() + begin,
                      doc.rows.begin() + begin + count);
    serve::IngestRequest request;
    request.dataset = dataset;
    request.force_refresh = force_refresh && begin + count >= total;
    request.payload = WriteCsv(slice);
    // A feeder must outlive flaky transport: reconnect and resend on any
    // transport error (a batch that died before its response may or may not
    // have been ingested — resending is the at-least-once contract the
    // stream-side statistics are robust to at these batch sizes).
    Result<serve::IngestResponse> response = Status::OK();
    for (int attempt = 0; attempt < 8; ++attempt) {
      auto client = serve::Client::Connect(host, static_cast<int>(port));
      if (!client.ok()) {
        response = client.status();
        continue;
      }
      response = client->Ingest(request);
      if (response.ok()) break;
    }
    if (!response.ok()) return Fail(response.status());
    if (response->code != StatusCode::kOk) {
      std::fprintf(stderr, "server error on batch %lld: %s\n",
                   static_cast<long long>(batch_id),
                   response->error.c_str());
      return 2;
    }
    std::printf("batch %lld: %llu row(s) -> %s | drift G2 %.2f | version "
                "%llu%s\n",
                static_cast<long long>(batch_id),
                static_cast<unsigned long long>(response->rows_ingested),
                IngestActionName(response->action), response->drift_score,
                static_cast<unsigned long long>(response->program_version),
                response->published ? " [published]" : "");
    ++batch_id;
  }
  return 0;
}

int CmdStream(const std::string& data_path, int64_t batch_rows,
              const stream::PolicyOptions& policy_options,
              const stream::DriftOptions& drift_options, bool force_refresh,
              const std::string& endpoint, const std::string& dataset,
              const std::string& out_path, int num_threads) {
  auto doc = ReadCsvFile(data_path);
  if (!doc.ok()) return Fail(doc.status());
  const int64_t total = static_cast<int64_t>(doc->rows.size());
  if (total == 0) {
    return Fail(Status::InvalidArgument("no data rows in " + data_path));
  }
  if (batch_rows <= 0) batch_rows = 256;

  if (!endpoint.empty()) {
    return StreamRemote(*doc, batch_rows, endpoint, dataset, force_refresh);
  }

  // Local replay: the full streaming loop in-process — bootstrap, per-batch
  // drift scoring, incremental/full refreshes — without a daemon.
  stream::IncrementalOptions incremental;
  incremental.drift = drift_options;
  if (num_threads > 0) incremental.synthesis.num_threads = num_threads;
  stream::IncrementalSynthesizer synth(incremental);
  stream::ResynthesisPolicy policy(policy_options);

  constexpr int64_t kBootstrapRows = 256;
  int64_t batch_id = 0;
  int64_t batches_since_refresh = 0;
  for (int64_t begin = 0; begin < total; begin += batch_rows) {
    const int64_t count = std::min(batch_rows, total - begin);
    CsvDocument slice;
    slice.header = doc->header;
    slice.rows.assign(doc->rows.begin() + begin,
                      doc->rows.begin() + begin + count);
    // Each batch is dictionary-coded independently and label-merged on
    // ingest, exactly like wire batches from independent producers.
    auto batch = Table::FromCsv(slice);
    if (!batch.ok()) return Fail(batch.status());
    Status ingested = synth.IngestTable(*batch);
    if (!ingested.ok()) return Fail(ingested);
    ++batches_since_refresh;
    const bool last = begin + count >= total;

    bool attempt;
    if (!synth.bootstrapped()) {
      attempt = last || synth.rows_ingested() >= kBootstrapRows;
    } else {
      attempt = policy.ShouldRefresh(batches_since_refresh,
                                     force_refresh && last);
    }
    if (attempt) {
      batches_since_refresh = 0;
      const bool force_full = force_refresh && last && synth.bootstrapped();
      auto result = synth.Refresh(force_full);
      if (!result.ok()) return Fail(result.status());
      std::printf(
          "batch %lld (%lld rows in): %s | drifted pairs %zu | max G2 %.2f "
          "| refilled %lld reused %lld | %.3fs%s\n",
          static_cast<long long>(batch_id),
          static_cast<long long>(synth.rows_ingested()),
          stream::RefreshActionName(result->action),
          result->drift.drifted.size(), result->drift.max_statistic,
          static_cast<long long>(result->statements_refilled),
          static_cast<long long>(result->statements_reused),
          result->seconds, result->published_changed ? " [published]" : "");
      if (!result->reason.empty() &&
          result->action != stream::RefreshAction::kNoop) {
        std::printf("  reason: %s\n", result->reason.c_str());
      }
    }
    ++batch_id;
  }

  if (!synth.bootstrapped()) {
    return Fail(Status::Internal("stream never bootstrapped"));
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out || !(out << synth.program_text())) {
      return Fail(Status::IoError("cannot write " + out_path));
    }
    std::printf("final program written to %s\n", out_path.c_str());
  } else {
    std::printf("final program after %lld row(s):\n%s",
                static_cast<long long>(synth.rows_ingested()),
                synth.program_text().c_str());
  }
  return 0;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Re-encodes CSV rows as the JSON wire format (array of flat objects).
// Empty CSV fields become empty-string JSON values — the same ordinary
// empty-string label the CSV path produces — so verdicts stay identical
// across formats.
Result<std::string> CsvTextToJson(const std::string& csv_text) {
  GUARDRAIL_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(csv_text));
  std::string out = "[";
  for (size_t r = 0; r < doc.rows.size(); ++r) {
    if (r > 0) out += ',';
    out += '{';
    for (size_t c = 0; c < doc.header.size(); ++c) {
      if (c > 0) out += ',';
      out += '"' + JsonEscape(doc.header[c]) + "\":\"" +
             JsonEscape(doc.rows[r][c]) + '"';
    }
    out += '}';
  }
  out += ']';
  return out;
}

Result<serve::ValidateRequest> BuildValidateRequest(
    const std::string& dataset, const std::string& data_path,
    core::ErrorPolicy scheme, const std::string& format,
    int64_t time_budget_ms) {
  std::ifstream in(data_path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + data_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string csv_text = ss.str();

  serve::ValidateRequest request;
  request.dataset = dataset;
  request.scheme = scheme;
  if (time_budget_ms > 0) {
    request.deadline_ms = static_cast<uint32_t>(time_budget_ms);
  }
  if (format == "json") {
    request.format = serve::RowFormat::kJson;
    auto json = CsvTextToJson(csv_text);
    GUARDRAIL_RETURN_NOT_OK(json.status());
    request.payload = std::move(json).value();
  } else {
    request.format = serve::RowFormat::kCsv;
    request.payload = std::move(csv_text);
  }
  return request;
}

int ReportValidateResponse(const serve::ValidateResponse& response,
                           core::ErrorPolicy scheme) {
  int64_t violations = 0;
  int64_t failed = 0;
  for (size_t r = 0; r < response.rows.size(); ++r) {
    const serve::RowResult& row = response.rows[r];
    if (row.verdict == serve::RowVerdict::kViolation) {
      ++violations;
      if (row.detail.empty()) {
        std::printf("row %zu: %u violation(s)\n", r + 1, row.violations);
      } else {
        std::printf("row %zu: %u violation(s), repaired to: %s\n", r + 1,
                    row.violations, row.detail.c_str());
      }
    } else if (row.verdict == serve::RowVerdict::kFailed) {
      ++failed;
      std::fprintf(stderr, "row %zu: evaluation failed: %s\n", r + 1,
                   row.detail.c_str());
    }
  }
  std::printf(
      "%lld of %zu row(s) flagged under scheme '%s' (program version "
      "%llu)\n",
      static_cast<long long>(violations), response.rows.size(),
      core::ErrorPolicyName(scheme),
      static_cast<unsigned long long>(response.program_version));
  if (failed > 0) {
    std::fprintf(stderr, "%lld row(s) could not be evaluated\n",
                 static_cast<long long>(failed));
    return 2;
  }
  return violations > 0 ? 3 : 0;
}

int CmdValidate(const std::string& endpoint, const std::string& dataset,
                const std::string& data_path, core::ErrorPolicy scheme,
                const std::string& format, int64_t time_budget_ms) {
  size_t colon = endpoint.rfind(':');
  double port = 0;
  if (colon == std::string::npos || colon == 0 ||
      !ParseDouble(endpoint.substr(colon + 1), &port) || port < 1 ||
      port > 65535) {
    return Fail(Status::InvalidArgument("endpoint must be host:port, got '" +
                                        endpoint + "'"));
  }
  std::string host = endpoint.substr(0, colon);

  auto request = BuildValidateRequest(dataset, data_path, scheme, format,
                                      time_budget_ms);
  if (!request.ok()) return Fail(request.status());
  auto client = serve::Client::Connect(host, static_cast<int>(port));
  if (!client.ok()) return Fail(client.status());
  auto response = client->Validate(*request);
  if (!response.ok()) return Fail(response.status());
  if (response->code != StatusCode::kOk) {
    std::fprintf(stderr, "server error: %s\n", response->error.c_str());
    return 2;
  }
  return ReportValidateResponse(*response, scheme);
}

// Fleet-mode validate: load-balance across --endpoints with retries,
// circuit breakers, and optional hedging (docs/SERVING.md, "Resilience").
int CmdValidateFleet(const std::string& endpoints_spec,
                     const std::string& dataset, const std::string& data_path,
                     core::ErrorPolicy scheme, const std::string& format,
                     int64_t time_budget_ms, int retries, int hedge_ms) {
  auto endpoints = serve::ParseEndpoints(endpoints_spec);
  if (!endpoints.ok()) return Fail(endpoints.status());
  auto request = BuildValidateRequest(dataset, data_path, scheme, format,
                                      time_budget_ms);
  if (!request.ok()) return Fail(request.status());

  serve::PoolOptions options;
  if (retries >= 0) options.retry.max_attempts = retries + 1;
  if (hedge_ms > 0) options.hedge_ms = hedge_ms;
  if (time_budget_ms > 0) options.total_deadline_ms = time_budget_ms;
  serve::ReplicaPool pool(*endpoints, options);
  auto response = pool.Validate(*request);
  if (!response.ok()) return Fail(response.status());
  if (response->code != StatusCode::kOk) {
    std::fprintf(stderr, "server error: %s\n", response->error.c_str());
    return 2;
  }
  return ReportValidateResponse(*response, scheme);
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  guardrail synthesize <data.csv> <out.grl> [epsilon]"
               " [--time-budget-ms=N] [--threads=N]\n"
               "  guardrail check <program.grl> <data.csv>\n"
               "  guardrail analyze <program.grl> <data.csv> [--json]"
               " [--epsilon=E] [--scheme=raise|ignore|coerce|rectify]\n"
               "                    [--minimize] [--certificate=out.json]"
               " [--minimized-out=out.grl]\n"
               "  guardrail repair <program.grl> <in.csv> <out.csv>\n"
               "  guardrail profile <data.csv>\n"
               "  guardrail query <data.csv> \"<SELECT ...>\""
               " [--time-budget-ms=N]\n"
               "  guardrail explain \"<SELECT ...>\"\n"
               "  guardrail serve --programs=DIR [--port=N]"
               " [--queue-depth=N] [--reload-ms=N] [--ingest]\n"
               "                  [--resynth-policy=interval|drift|manual]"
               " [--resynth-interval=N]\n"
               "                  [--drift-alpha=A] [--drift-global-fraction=F]"
               " [--drift-min-rows=N]\n"
               "  guardrail stream <data.csv> [--batch-rows=N] [--out=FILE]"
               " [--force-refresh]\n"
               "                  [--resynth-policy=...] [--drift-*=...]\n"
               "  guardrail stream <data.csv> --endpoint=host:port"
               " --dataset=NAME [--batch-rows=N]\n"
               "  guardrail validate <host:port> <dataset> <data.csv>"
               " [--scheme=...] [--format=csv|json] [--time-budget-ms=N]\n"
               "  guardrail validate --endpoints=h:p,h:p,... <dataset>"
               " <data.csv> [--retries=N] [--hedge-ms=N] [--scheme=...]\n"
               "global flags:\n"
               "  --threads=N         worker parallelism for synthesize"
               " (default: hardware concurrency)\n"
               "  --trace-out=FILE    write a Chrome trace_event JSON timeline"
               " (chrome://tracing, Perfetto)\n"
               "  --trace-stream-out=FILE\n"
               "                      stream trace events to FILE incrementally"
               " (bounded memory; for serve/stream)\n"
               "  --metrics-out=FILE  write telemetry counters/histograms as"
               " JSON\n"
               "  --log-level=LEVEL   debug|info|warn|error|off (default"
               " warn)\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  telemetry::InitLogLevelFromEnv();
  // Extract long options so flag order is free and the positional grammar
  // below stays unchanged.
  int64_t time_budget_ms = -1;
  int num_threads = 0;  // 0 = ThreadPool::DefaultThreads().
  std::string trace_out;
  std::string metrics_out;
  bool json = false;
  bool minimize = false;
  std::string certificate_path;
  std::string minimized_out_path;
  double analyze_epsilon = 0.02;
  core::ErrorPolicy scheme = core::ErrorPolicy::kRaise;
  std::string programs_dir;
  int serve_port = 0;
  int queue_depth = 0;
  int reload_ms = 0;
  std::string row_format = "csv";
  std::string endpoints_spec;
  int retries = -1;   // -1 = pool default.
  int hedge_ms = 0;
  bool ingest = false;
  bool force_refresh = false;
  stream::PolicyOptions policy_options;
  stream::DriftOptions drift_options;
  int64_t batch_rows = 0;  // 0 = CmdStream default.
  std::string stream_endpoint;
  std::string stream_dataset;
  std::string out_path;
  std::string trace_stream_out;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kBudget = "--time-budget-ms=";
    constexpr std::string_view kThreads = "--threads=";
    constexpr std::string_view kTraceOut = "--trace-out=";
    constexpr std::string_view kMetricsOut = "--metrics-out=";
    constexpr std::string_view kLogLevel = "--log-level=";
    constexpr std::string_view kEpsilon = "--epsilon=";
    constexpr std::string_view kScheme = "--scheme=";
    constexpr std::string_view kPrograms = "--programs=";
    constexpr std::string_view kPort = "--port=";
    constexpr std::string_view kQueueDepth = "--queue-depth=";
    constexpr std::string_view kReloadMs = "--reload-ms=";
    constexpr std::string_view kFormat = "--format=";
    constexpr std::string_view kEndpoints = "--endpoints=";
    constexpr std::string_view kRetries = "--retries=";
    constexpr std::string_view kHedgeMs = "--hedge-ms=";
    constexpr std::string_view kCertificate = "--certificate=";
    constexpr std::string_view kMinimizedOut = "--minimized-out=";
    constexpr std::string_view kResynthPolicy = "--resynth-policy=";
    constexpr std::string_view kResynthInterval = "--resynth-interval=";
    constexpr std::string_view kDriftAlpha = "--drift-alpha=";
    constexpr std::string_view kDriftGlobalFraction =
        "--drift-global-fraction=";
    constexpr std::string_view kDriftMinRows = "--drift-min-rows=";
    constexpr std::string_view kBatchRows = "--batch-rows=";
    constexpr std::string_view kEndpoint = "--endpoint=";
    constexpr std::string_view kDataset = "--dataset=";
    constexpr std::string_view kOut = "--out=";
    constexpr std::string_view kTraceStreamOut = "--trace-stream-out=";
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--ingest") {
      ingest = true;
      continue;
    }
    if (arg == "--force-refresh") {
      force_refresh = true;
      continue;
    }
    if (arg.rfind(kResynthPolicy, 0) == 0) {
      auto mode = stream::ParseResynthesisMode(
          std::string(arg.substr(kResynthPolicy.size())));
      if (!mode.has_value()) return Usage();
      policy_options.mode = *mode;
      continue;
    }
    if (arg.rfind(kResynthInterval, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kResynthInterval.size()), &parsed) ||
          parsed < 1) {
        return Usage();
      }
      policy_options.interval_batches = static_cast<int64_t>(parsed);
      policy_options.mode = stream::ResynthesisMode::kInterval;
      continue;
    }
    if (arg.rfind(kDriftAlpha, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kDriftAlpha.size()), &parsed) ||
          parsed <= 0 || parsed >= 1) {
        return Usage();
      }
      drift_options.alpha = parsed;
      continue;
    }
    if (arg.rfind(kDriftGlobalFraction, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kDriftGlobalFraction.size()), &parsed) ||
          parsed <= 0 || parsed > 1) {
        return Usage();
      }
      drift_options.global_fraction = parsed;
      continue;
    }
    if (arg.rfind(kDriftMinRows, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kDriftMinRows.size()), &parsed) ||
          parsed < 1) {
        return Usage();
      }
      drift_options.min_window_rows = static_cast<int64_t>(parsed);
      // Small demo streams need the per-pair power floor lowered too.
      drift_options.min_pair_rows = std::min(drift_options.min_pair_rows,
                                             drift_options.min_window_rows);
      continue;
    }
    if (arg.rfind(kBatchRows, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kBatchRows.size()), &parsed) || parsed < 1) {
        return Usage();
      }
      batch_rows = static_cast<int64_t>(parsed);
      continue;
    }
    if (arg.rfind(kEndpoint, 0) == 0) {
      stream_endpoint = std::string(arg.substr(kEndpoint.size()));
      if (stream_endpoint.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kDataset, 0) == 0) {
      stream_dataset = std::string(arg.substr(kDataset.size()));
      if (stream_dataset.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kOut, 0) == 0) {
      out_path = std::string(arg.substr(kOut.size()));
      if (out_path.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kTraceStreamOut, 0) == 0) {
      trace_stream_out = std::string(arg.substr(kTraceStreamOut.size()));
      if (trace_stream_out.empty()) return Usage();
      continue;
    }
    if (arg == "--minimize") {
      minimize = true;
      continue;
    }
    if (arg.rfind(kCertificate, 0) == 0) {
      certificate_path = std::string(arg.substr(kCertificate.size()));
      if (certificate_path.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kMinimizedOut, 0) == 0) {
      minimized_out_path = std::string(arg.substr(kMinimizedOut.size()));
      if (minimized_out_path.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kEpsilon, 0) == 0) {
      if (!ParseDouble(arg.substr(kEpsilon.size()), &analyze_epsilon) ||
          analyze_epsilon < 0 || analyze_epsilon >= 1) {
        return Usage();
      }
      continue;
    }
    if (arg.rfind(kScheme, 0) == 0) {
      std::string_view name = arg.substr(kScheme.size());
      if (name == "raise") {
        scheme = core::ErrorPolicy::kRaise;
      } else if (name == "ignore") {
        scheme = core::ErrorPolicy::kIgnore;
      } else if (name == "coerce") {
        scheme = core::ErrorPolicy::kCoerce;
      } else if (name == "rectify") {
        scheme = core::ErrorPolicy::kRectify;
      } else {
        return Usage();
      }
      continue;
    }
    if (arg.rfind(kPrograms, 0) == 0) {
      programs_dir = std::string(arg.substr(kPrograms.size()));
      if (programs_dir.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kPort, 0) == 0) {
      double parsed = -1;
      if (!ParseDouble(arg.substr(kPort.size()), &parsed) || parsed < 0 ||
          parsed > 65535) {
        return Usage();
      }
      serve_port = static_cast<int>(parsed);
      continue;
    }
    if (arg.rfind(kQueueDepth, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kQueueDepth.size()), &parsed) ||
          parsed < 1) {
        return Usage();
      }
      queue_depth = static_cast<int>(parsed);
      continue;
    }
    if (arg.rfind(kReloadMs, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kReloadMs.size()), &parsed) || parsed < 1) {
        return Usage();
      }
      reload_ms = static_cast<int>(parsed);
      continue;
    }
    if (arg.rfind(kFormat, 0) == 0) {
      row_format = std::string(arg.substr(kFormat.size()));
      if (row_format != "csv" && row_format != "json") return Usage();
      continue;
    }
    if (arg.rfind(kEndpoints, 0) == 0) {
      endpoints_spec = std::string(arg.substr(kEndpoints.size()));
      if (endpoints_spec.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kRetries, 0) == 0) {
      double parsed = -1;
      if (!ParseDouble(arg.substr(kRetries.size()), &parsed) || parsed < 0 ||
          parsed > 100) {
        return Usage();
      }
      retries = static_cast<int>(parsed);
      continue;
    }
    if (arg.rfind(kHedgeMs, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kHedgeMs.size()), &parsed) || parsed < 1) {
        return Usage();
      }
      hedge_ms = static_cast<int>(parsed);
      continue;
    }
    if (arg.rfind(kThreads, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kThreads.size()), &parsed) || parsed < 1) {
        return Usage();
      }
      num_threads = static_cast<int>(parsed);
      // The caller participates in every parallel loop, so N-way
      // parallelism needs N - 1 pool workers.
      ThreadPool::SetSharedWorkers(num_threads - 1);
      continue;
    }
    if (arg.rfind(kBudget, 0) == 0) {
      double ms = 0;
      if (!ParseDouble(arg.substr(kBudget.size()), &ms) || ms < 0) {
        return Usage();
      }
      time_budget_ms = static_cast<int64_t>(ms);
      continue;
    }
    if (arg.rfind(kTraceOut, 0) == 0) {
      trace_out = std::string(arg.substr(kTraceOut.size()));
      if (trace_out.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kMetricsOut, 0) == 0) {
      metrics_out = std::string(arg.substr(kMetricsOut.size()));
      if (metrics_out.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kLogLevel, 0) == 0) {
      telemetry::LogLevel level;
      if (!telemetry::ParseLogLevel(arg.substr(kLogLevel.size()), &level)) {
        return Usage();
      }
      telemetry::SetLogLevel(level);
      continue;
    }
    if (arg.rfind("--", 0) == 0) return Usage();
    args.emplace_back(arg);
  }
  if (!trace_out.empty()) telemetry::EnableTracing(true);
  if (!metrics_out.empty()) telemetry::EnableMetrics(true);
  if (!trace_stream_out.empty()) {
    Status st = telemetry::StartTraceStream(trace_stream_out);
    if (!st.ok()) return Fail(st);
  }

  size_t n = args.size();
  std::string command = n > 0 ? args[0] : "";
  int rc;
  if (command == "synthesize" && (n == 3 || n == 4)) {
    double epsilon = 0.02;
    if (n == 4 && !ParseDouble(args[3], &epsilon)) return Usage();
    rc = CmdSynthesize(args[1], args[2], epsilon, time_budget_ms,
                       num_threads);
  } else if (command == "check" && n == 3) {
    rc = CmdCheck(args[1], args[2]);
  } else if (command == "analyze" && n == 3) {
    rc = CmdAnalyze(args[1], args[2], json, analyze_epsilon, scheme, minimize,
                    certificate_path, minimized_out_path);
  } else if (command == "repair" && n == 4) {
    rc = CmdRepair(args[1], args[2], args[3]);
  } else if (command == "profile" && n == 2) {
    rc = CmdProfile(args[1]);
  } else if (command == "query" && n == 3) {
    rc = CmdQuery(args[1], args[2], time_budget_ms);
  } else if (command == "explain" && n == 2) {
    rc = CmdExplain(args[1]);
  } else if (command == "serve" && n == 1 && !programs_dir.empty()) {
    rc = CmdServe(programs_dir, serve_port, queue_depth, reload_ms, ingest,
                  policy_options, drift_options, num_threads);
  } else if (command == "stream" && n == 2 &&
             (stream_endpoint.empty() == stream_dataset.empty())) {
    rc = CmdStream(args[1], batch_rows, policy_options, drift_options,
                   force_refresh, stream_endpoint, stream_dataset, out_path,
                   num_threads);
  } else if (command == "validate" && n == 3 && !endpoints_spec.empty()) {
    rc = CmdValidateFleet(endpoints_spec, args[1], args[2], scheme,
                          row_format, time_budget_ms, retries, hedge_ms);
  } else if (command == "validate" && n == 4) {
    rc = CmdValidate(args[1], args[2], args[3], scheme, row_format,
                     time_budget_ms);
  } else {
    return Usage();
  }

  // Telemetry files are written even when the command failed — a failing run
  // is exactly when the trace is most interesting.
  if (!trace_stream_out.empty()) {
    Status st = telemetry::StopTraceStream();
    if (!st.ok()) return Fail(st);
  }
  if (!trace_out.empty()) {
    Status st = telemetry::WriteTrace(trace_out);
    if (!st.ok()) return Fail(st);
  }
  if (!metrics_out.empty()) {
    Status st = telemetry::WriteMetrics(metrics_out);
    if (!st.ok()) return Fail(st);
  }
  return rc;
}

}  // namespace
}  // namespace guardrail

int main(int argc, char** argv) { return guardrail::Main(argc, argv); }
