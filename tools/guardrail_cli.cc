// guardrail — command-line front end for the library.
//
//   guardrail synthesize <data.csv> <out.grl> [epsilon] [--time-budget-ms=N]
//       Synthesize an integrity-constraint program from a CSV relation and
//       save it as a reviewable text artifact. With a time budget the
//       synthesizer degrades gracefully (see docs/ROBUSTNESS.md) and reports
//       which ladder rung produced the program.
//   guardrail check <program.grl> <data.csv>
//       Report rows violating the constraints (row numbers are 1-based data
//       rows, header excluded). Exit code 3 when violations exist.
//   guardrail analyze <program.grl> <data.csv> [--json] [--epsilon=E]
//       [--scheme=raise|ignore|coerce|rectify]
//       Statically analyze the program against the relation: type/domain
//       checking, dead branches, contradictions, non-triviality audit, and
//       coverage holes (docs/ANALYSIS.md). --json emits machine-readable
//       diagnostics. Exit code 4 when error-severity diagnostics exist.
//   guardrail repair <program.grl> <in.csv> <out.csv>
//       Rectify violations (MAP repair) and write the cleaned CSV.
//   guardrail profile <data.csv>
//       Print per-column cardinality / entropy / mode statistics.
//   guardrail query <data.csv> "<SELECT ...>"
//       Run a SQL query against the CSV (table name: t).
//   guardrail explain "<SELECT ...>"
//       Show the physical plan, including the predicate-pushdown split.
//
// Global flags (any command):
//   --threads=N         Worker parallelism for synthesis (default: hardware
//                       concurrency, or the GUARDRAIL_THREADS env var). The
//                       synthesized program is byte-identical for any N;
//                       see docs/PARALLELISM.md.
//   --trace-out=FILE    Write a Chrome trace_event JSON timeline of the run
//                       (load in chrome://tracing or https://ui.perfetto.dev).
//   --metrics-out=FILE  Write all telemetry counters/histograms as JSON.
//   --log-level=LEVEL   debug|info|warn|error|off (default warn; the
//                       GUARDRAIL_LOG_LEVEL env var is the fallback).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/checker.h"
#include "common/deadline.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/telemetry/telemetry.h"
#include "core/guard.h"
#include "core/normalize.h"
#include "core/printer.h"
#include "core/serialization.h"
#include "core/synthesizer.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "table/profile.h"
#include "table/table.h"

namespace guardrail {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

Result<Table> LoadCsvTable(const std::string& path) {
  GUARDRAIL_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path));
  return Table::FromCsv(doc);
}

int CmdSynthesize(const std::string& data_path, const std::string& out_path,
                  double epsilon, int64_t time_budget_ms, int num_threads) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());

  core::SynthesisOptions options;
  options.fill.epsilon = epsilon;
  options.num_threads = num_threads;
  core::Synthesizer synthesizer(options);
  Rng rng(0x6A1DULL);
  // Negative budget = flag absent = unlimited; 0 is a real (instantly
  // expired) budget exercising the trivial rung.
  CancellationToken cancel = time_budget_ms >= 0
                                 ? CancellationToken::WithBudgetMillis(
                                       time_budget_ms)
                                 : CancellationToken::Never();
  core::SynthesisReport report = synthesizer.Synthesize(*table, &rng, cancel);
  core::NormalizeProgram(&report.program);

  std::string comment = "synthesized from " + data_path + " (epsilon " +
                        FormatDouble(epsilon) + ", coverage " +
                        FormatDouble(report.coverage, 3) + ")";
  Status saved = core::SaveProgramToFile(out_path, report.program,
                                         table->schema(), comment);
  if (!saved.ok()) return Fail(saved);
  std::printf("%s\n",
              core::ProgramSummary(report.program, table->schema()).c_str());
  std::printf("coverage %.3f | %lld DAGs in MEC | %.3fs total\n",
              report.coverage,
              static_cast<long long>(report.num_dags_enumerated),
              report.total_seconds);
  if (report.rung != core::SynthesisRung::kFullMec) {
    std::printf("degraded to rung '%s': %s\n",
                core::SynthesisRungName(report.rung),
                report.degradation_reason.c_str());
    if (report.rung == core::SynthesisRung::kTrivial) {
      std::printf("%zu per-attribute domain constraint(s) retained\n",
                  report.domain_constraints.size());
    }
  }
  std::printf("written to %s\n", out_path.c_str());
  return 0;
}

int CmdCheck(const std::string& program_path, const std::string& data_path) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());
  Schema schema = table->schema();
  auto program = core::LoadProgramFromFile(program_path, &schema);
  if (!program.ok()) return Fail(program.status());

  core::Guard guard(&*program);
  core::Interpreter interpreter(&*program);
  int64_t violations = 0;
  for (RowIndex r = 0; r < table->num_rows(); ++r) {
    Row row = table->GetRow(r);
    for (const auto& v : interpreter.Check(row)) {
      ++violations;
      std::printf("row %lld: %s = '%s' but constraints expect '%s'\n",
                  static_cast<long long>(r + 1),
                  schema.attribute(v.attribute).name().c_str(),
                  v.actual == kNullValue
                      ? "<null>"
                      : schema.attribute(v.attribute).label(v.actual).c_str(),
                  schema.attribute(v.attribute).label(v.expected).c_str());
    }
  }
  std::printf("%lld violation(s) across %lld row(s)\n",
              static_cast<long long>(violations),
              static_cast<long long>(table->num_rows()));
  return violations > 0 ? 3 : 0;
}

int CmdAnalyze(const std::string& program_path, const std::string& data_path,
               bool json, double epsilon, core::ErrorPolicy scheme) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());
  Schema schema = table->schema();
  auto program = core::LoadProgramFromFile(program_path, &schema);
  if (!program.ok()) return Fail(program.status());

  analysis::AnalysisOptions options;
  options.epsilon = epsilon;
  options.scheme = scheme;
  analysis::Analyzer analyzer(options);
  analysis::DiagnosticReport report =
      analyzer.Analyze(*program, schema, *table);
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::fputs(report.ToText().c_str(), stdout);
  }
  return report.HasErrors() ? 4 : 0;
}

int CmdRepair(const std::string& program_path, const std::string& in_path,
              const std::string& out_path) {
  auto table = LoadCsvTable(in_path);
  if (!table.ok()) return Fail(table.status());
  Schema schema = table->schema();
  auto program = core::LoadProgramFromFile(program_path, &schema);
  if (!program.ok()) return Fail(program.status());
  // Domains may have grown while parsing the program (literals unseen in
  // this CSV); rebuild the table under the extended schema.
  Table working(schema);
  for (RowIndex r = 0; r < table->num_rows(); ++r) {
    std::vector<std::string> labels;
    for (AttrIndex c = 0; c < table->num_columns(); ++c) {
      labels.push_back(table->GetLabel(r, c));
    }
    working.AppendRowLabels(labels);
  }

  core::Guard guard(&*program);
  core::GuardOutcome outcome =
      guard.ProcessTable(&working, core::ErrorPolicy::kRectify);
  Status written = WriteCsvFile(out_path, working.ToCsv());
  if (!written.ok()) return Fail(written);
  std::printf("%lld row(s) flagged, %lld cell(s) repaired -> %s\n",
              static_cast<long long>(outcome.rows_flagged),
              static_cast<long long>(outcome.cells_repaired),
              out_path.c_str());
  if (outcome.rows_failed > 0) {
    std::fprintf(stderr,
                 "warning: %lld row(s) could not be evaluated and were left "
                 "untouched (first error: %s)\n",
                 static_cast<long long>(outcome.rows_failed),
                 outcome.first_error.ToString().c_str());
  }
  return 0;
}

int CmdProfile(const std::string& data_path) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());
  std::fputs(ToString(ProfileTable(*table)).c_str(), stdout);
  return 0;
}

int CmdQuery(const std::string& data_path, const std::string& sql,
             int64_t time_budget_ms) {
  auto table = LoadCsvTable(data_path);
  if (!table.ok()) return Fail(table.status());
  sql::Executor executor;
  executor.RegisterTable("t", &*table);
  if (time_budget_ms >= 0) {
    executor.SetCancellation(
        CancellationToken::WithBudgetMillis(time_budget_ms));
  }
  auto result = executor.Execute(sql);
  if (!result.ok()) return Fail(result.status());
  std::fputs(result->ToString().c_str(), stdout);
  return 0;
}

int CmdExplain(const std::string& sql) {
  auto stmt = sql::ParseSelect(sql);
  if (!stmt.ok()) return Fail(stmt.status());
  std::fputs(sql::ExplainPlan(*stmt, /*enable_pushdown=*/true).c_str(),
             stdout);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  guardrail synthesize <data.csv> <out.grl> [epsilon]"
               " [--time-budget-ms=N] [--threads=N]\n"
               "  guardrail check <program.grl> <data.csv>\n"
               "  guardrail analyze <program.grl> <data.csv> [--json]"
               " [--epsilon=E] [--scheme=raise|ignore|coerce|rectify]\n"
               "  guardrail repair <program.grl> <in.csv> <out.csv>\n"
               "  guardrail profile <data.csv>\n"
               "  guardrail query <data.csv> \"<SELECT ...>\""
               " [--time-budget-ms=N]\n"
               "  guardrail explain \"<SELECT ...>\"\n"
               "global flags:\n"
               "  --threads=N         worker parallelism for synthesize"
               " (default: hardware concurrency)\n"
               "  --trace-out=FILE    write a Chrome trace_event JSON timeline"
               " (chrome://tracing, Perfetto)\n"
               "  --metrics-out=FILE  write telemetry counters/histograms as"
               " JSON\n"
               "  --log-level=LEVEL   debug|info|warn|error|off (default"
               " warn)\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  telemetry::InitLogLevelFromEnv();
  // Extract long options so flag order is free and the positional grammar
  // below stays unchanged.
  int64_t time_budget_ms = -1;
  int num_threads = 0;  // 0 = ThreadPool::DefaultThreads().
  std::string trace_out;
  std::string metrics_out;
  bool json = false;
  double analyze_epsilon = 0.02;
  core::ErrorPolicy scheme = core::ErrorPolicy::kRaise;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kBudget = "--time-budget-ms=";
    constexpr std::string_view kThreads = "--threads=";
    constexpr std::string_view kTraceOut = "--trace-out=";
    constexpr std::string_view kMetricsOut = "--metrics-out=";
    constexpr std::string_view kLogLevel = "--log-level=";
    constexpr std::string_view kEpsilon = "--epsilon=";
    constexpr std::string_view kScheme = "--scheme=";
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg.rfind(kEpsilon, 0) == 0) {
      if (!ParseDouble(arg.substr(kEpsilon.size()), &analyze_epsilon) ||
          analyze_epsilon < 0 || analyze_epsilon >= 1) {
        return Usage();
      }
      continue;
    }
    if (arg.rfind(kScheme, 0) == 0) {
      std::string_view name = arg.substr(kScheme.size());
      if (name == "raise") {
        scheme = core::ErrorPolicy::kRaise;
      } else if (name == "ignore") {
        scheme = core::ErrorPolicy::kIgnore;
      } else if (name == "coerce") {
        scheme = core::ErrorPolicy::kCoerce;
      } else if (name == "rectify") {
        scheme = core::ErrorPolicy::kRectify;
      } else {
        return Usage();
      }
      continue;
    }
    if (arg.rfind(kThreads, 0) == 0) {
      double parsed = 0;
      if (!ParseDouble(arg.substr(kThreads.size()), &parsed) || parsed < 1) {
        return Usage();
      }
      num_threads = static_cast<int>(parsed);
      // The caller participates in every parallel loop, so N-way
      // parallelism needs N - 1 pool workers.
      ThreadPool::SetSharedWorkers(num_threads - 1);
      continue;
    }
    if (arg.rfind(kBudget, 0) == 0) {
      double ms = 0;
      if (!ParseDouble(arg.substr(kBudget.size()), &ms) || ms < 0) {
        return Usage();
      }
      time_budget_ms = static_cast<int64_t>(ms);
      continue;
    }
    if (arg.rfind(kTraceOut, 0) == 0) {
      trace_out = std::string(arg.substr(kTraceOut.size()));
      if (trace_out.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kMetricsOut, 0) == 0) {
      metrics_out = std::string(arg.substr(kMetricsOut.size()));
      if (metrics_out.empty()) return Usage();
      continue;
    }
    if (arg.rfind(kLogLevel, 0) == 0) {
      telemetry::LogLevel level;
      if (!telemetry::ParseLogLevel(arg.substr(kLogLevel.size()), &level)) {
        return Usage();
      }
      telemetry::SetLogLevel(level);
      continue;
    }
    if (arg.rfind("--", 0) == 0) return Usage();
    args.emplace_back(arg);
  }
  if (!trace_out.empty()) telemetry::EnableTracing(true);
  if (!metrics_out.empty()) telemetry::EnableMetrics(true);

  size_t n = args.size();
  std::string command = n > 0 ? args[0] : "";
  int rc;
  if (command == "synthesize" && (n == 3 || n == 4)) {
    double epsilon = 0.02;
    if (n == 4 && !ParseDouble(args[3], &epsilon)) return Usage();
    rc = CmdSynthesize(args[1], args[2], epsilon, time_budget_ms,
                       num_threads);
  } else if (command == "check" && n == 3) {
    rc = CmdCheck(args[1], args[2]);
  } else if (command == "analyze" && n == 3) {
    rc = CmdAnalyze(args[1], args[2], json, analyze_epsilon, scheme);
  } else if (command == "repair" && n == 4) {
    rc = CmdRepair(args[1], args[2], args[3]);
  } else if (command == "profile" && n == 2) {
    rc = CmdProfile(args[1]);
  } else if (command == "query" && n == 3) {
    rc = CmdQuery(args[1], args[2], time_budget_ms);
  } else if (command == "explain" && n == 2) {
    rc = CmdExplain(args[1]);
  } else {
    return Usage();
  }

  // Telemetry files are written even when the command failed — a failing run
  // is exactly when the trace is most interesting.
  if (!trace_out.empty()) {
    Status st = telemetry::WriteTrace(trace_out);
    if (!st.ok()) return Fail(st);
  }
  if (!metrics_out.empty()) {
    Status st = telemetry::WriteMetrics(metrics_out);
    if (!st.ok()) return Fail(st);
  }
  return rc;
}

}  // namespace
}  // namespace guardrail

int main(int argc, char** argv) { return guardrail::Main(argc, argv); }
