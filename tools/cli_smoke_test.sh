#!/bin/sh
# End-to-end smoke test of the guardrail CLI. Usage: cli_smoke_test.sh <binary>
set -e
BIN="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

cat > "$DIR/data.csv" <<CSV
zip,city,note
94704,Berkeley,a
94704,Berkeley,b
94607,Oakland,a
94607,Oakland,c
10001,NewYork,b
94704,Berkeley,c
94607,Oakland,b
10001,NewYork,a
94704,Berkeley,a
10001,NewYork,c
94704,Berkeley,b
94607,Oakland,a
10001,NewYork,b
94704,Berkeley,c
94607,Oakland,b
10001,NewYork,a
CSV

"$BIN" synthesize "$DIR/data.csv" "$DIR/prog.grl" 0.01 > "$DIR/synth.log"
grep -q "GIVEN zip ON city" "$DIR/prog.grl"

# Clean data: no violations, exit 0.
"$BIN" check "$DIR/prog.grl" "$DIR/data.csv" > "$DIR/clean.log"
grep -q "0 violation" "$DIR/clean.log"

# Corrupt a cell: check exits 3, repair restores it.
sed 's/94704,Berkeley,a/94704,gibbon,a/' "$DIR/data.csv" > "$DIR/dirty.csv"
if "$BIN" check "$DIR/prog.grl" "$DIR/dirty.csv" > "$DIR/dirty.log"; then
  echo "expected nonzero exit for violations" >&2
  exit 1
fi
grep -q "gibbon" "$DIR/dirty.log"
"$BIN" repair "$DIR/prog.grl" "$DIR/dirty.csv" "$DIR/fixed.csv" > /dev/null
"$BIN" check "$DIR/prog.grl" "$DIR/fixed.csv" | grep -q "0 violation"
! grep -q gibbon "$DIR/fixed.csv"

# Static analysis (docs/ANALYSIS.md): a clean program yields no diagnostics
# and exit 0, in both text and JSON form.
"$BIN" analyze "$DIR/prog.grl" "$DIR/data.csv" > "$DIR/analyze.log"
grep -q "no diagnostics" "$DIR/analyze.log"
"$BIN" analyze "$DIR/prog.grl" "$DIR/data.csv" --json > "$DIR/analyze.json"
python3 -m json.tool "$DIR/analyze.json" > /dev/null
grep -q '"counts": {"error": 0, "warning": 0, "info": 0}' "$DIR/analyze.json"

# A corrupted program draws error-severity diagnostics: exit 4 plus valid
# machine-readable JSON naming the code.
sed "s/city <- 'Berkeley'/city <- 'Oakland'/" "$DIR/prog.grl" > "$DIR/bad.grl"
rc=0
"$BIN" analyze "$DIR/bad.grl" "$DIR/data.csv" --json > "$DIR/bad.json" || rc=$?
if [ "$rc" -ne 4 ]; then
  echo "expected exit 4 for error diagnostics, got $rc" >&2
  exit 1
fi
python3 -m json.tool "$DIR/bad.json" > /dev/null
grep -q '"code": "GRL404"' "$DIR/bad.json"
grep -q '"severity": "error"' "$DIR/bad.json"

# Pinned analyze exit-code semantics (docs/ANALYSIS.md): warning-severity
# diagnostics on an otherwise-clean program exit 0 — warnings advise, they
# must not fail pipelines — while I/O failures exit 2 and bad flags exit 1.
# A duplicated statement draws the GRL601/GRL602 implication warnings.
{ echo "# guardrail-program v1"; grep -v '^#' "$DIR/prog.grl"; \
  grep -v '^#' "$DIR/prog.grl"; } > "$DIR/dup.grl"
"$BIN" analyze "$DIR/dup.grl" "$DIR/data.csv" > "$DIR/dup.log"
grep -q "GRL601" "$DIR/dup.log"
grep -q "GRL602" "$DIR/dup.log"
grep -q "2 warning(s)" "$DIR/dup.log"
rc=0
"$BIN" analyze "$DIR/missing.grl" "$DIR/data.csv" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "expected exit 2 for missing program file, got $rc" >&2
  exit 1
fi
rc=0
"$BIN" analyze "$DIR/prog.grl" "$DIR/data.csv" --scheme=bogus \
  > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "expected exit 1 for bad flag, got $rc" >&2
  exit 1
fi

# Certified minimization: --minimize drops the duplicate, emits the
# equivalence certificate, and marks the minimized artifact.
"$BIN" analyze "$DIR/dup.grl" "$DIR/data.csv" --minimize \
  --certificate="$DIR/cert.json" --minimized-out="$DIR/min.grl" \
  > "$DIR/minimize.log"
grep -q "minimized: 2 -> 1 statement(s)" "$DIR/minimize.log"
python3 -m json.tool "$DIR/cert.json" > /dev/null
grep -q '"format": "guardrail-minimization-certificate-v1"' "$DIR/cert.json"
grep -q '^# guardrail-minimized$' "$DIR/min.grl"
# The minimized program is verdict-identical on the dirty batch.
rc=0
"$BIN" check "$DIR/min.grl" "$DIR/dirty.csv" > "$DIR/min_check.log" || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected exit 3 for violations under minimized program, got $rc" >&2
  exit 1
fi
grep -q "gibbon" "$DIR/min_check.log"

# Deadline-aware synthesis: a generous budget on this tiny input stays on
# the top rung (same program), and a zero budget still exits cleanly with a
# trivial-rung artifact instead of hanging or crashing.
"$BIN" synthesize "$DIR/data.csv" "$DIR/prog_budget.grl" 0.01 \
  --time-budget-ms=10000 > "$DIR/synth_budget.log"
# Comment lines embed the source path; the constraints themselves must match.
grep -v '^#' "$DIR/prog.grl" > "$DIR/a.grl"
grep -v '^#' "$DIR/prog_budget.grl" > "$DIR/b.grl"
cmp "$DIR/a.grl" "$DIR/b.grl"
"$BIN" synthesize "$DIR/data.csv" "$DIR/prog_zero.grl" 0.01 \
  --time-budget-ms=0 > "$DIR/synth_zero.log"
grep -q "degraded to rung" "$DIR/synth_zero.log"

# Profile, query, explain all run.
"$BIN" profile "$DIR/data.csv" | grep -q "card=3"
"$BIN" query "$DIR/data.csv" "SELECT city, COUNT(*) AS n FROM t GROUP BY city ORDER BY n DESC, city LIMIT 1" | grep -q "Berkeley | 6"
"$BIN" explain "SELECT a FROM t WHERE ML_PREDICT('m')='x' AND a='y'" | grep -q "Filter\[pre-inference\]"

# Telemetry export: --trace-out / --metrics-out produce valid JSON
# (docs/OBSERVABILITY.md) and the trace contains the nested pipeline spans.
"$BIN" synthesize "$DIR/data.csv" "$DIR/prog_tel.grl" 0.01 \
  --trace-out="$DIR/trace.json" --metrics-out="$DIR/metrics.json" \
  --log-level=warn > "$DIR/synth_tel.log"
python3 -m json.tool "$DIR/trace.json" > /dev/null
python3 -m json.tool "$DIR/metrics.json" > /dev/null
grep -q '"name": "synthesize"' "$DIR/trace.json"
grep -q '"name": "pc"' "$DIR/trace.json"
grep -q '"name": "sketch_fill"' "$DIR/trace.json"
# PC must have run real CI tests on this input; the cache counters must at
# least be present (hits can legitimately be zero on a tiny MEC).
grep -q '"pc.ci_tests_total": [1-9]' "$DIR/metrics.json"
grep -q '"sketch_filler.cache_misses"' "$DIR/metrics.json"
grep -q '"sketch_filler.cache_hits"' "$DIR/metrics.json"
# A query run exports sql.rows_scanned.
"$BIN" query "$DIR/data.csv" "SELECT COUNT(*) AS n FROM t" \
  --metrics-out="$DIR/qmetrics.json" > /dev/null
python3 -m json.tool "$DIR/qmetrics.json" > /dev/null
grep -q '"sql.rows_scanned": 16' "$DIR/qmetrics.json"
# An unknown log level is a usage error.
if "$BIN" profile "$DIR/data.csv" --log-level=shouty > /dev/null 2>&1; then
  echo "expected usage failure for bad log level" >&2
  exit 1
fi

# Serving round trip (docs/SERVING.md): serve a program directory, validate
# clean and dirty batches over TCP, then drain on SIGTERM.
mkdir "$DIR/programs"
cp "$DIR/prog.grl" "$DIR/programs/demo.grl"
cp "$DIR/data.csv" "$DIR/programs/demo.csv"
"$BIN" serve --programs="$DIR/programs" --port=0 > "$DIR/serve.log" 2>&1 &
SERVE_PID=$!
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT=$(sed -n 's/^listening on 127.0.0.1:\([0-9]*\)$/\1/p' "$DIR/serve.log")
  [ -n "$PORT" ] && break
  i=$((i + 1))
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "serve never reported its port" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi
grep -q "1 dataset(s) loaded" "$DIR/serve.log"

# Clean rows validate with zero flagged (exit 0).
"$BIN" validate "127.0.0.1:$PORT" demo "$DIR/data.csv" \
  > "$DIR/validate_clean.log"
grep -q "0 of 16 row(s) flagged" "$DIR/validate_clean.log"

# Dirty rows are flagged (exit 3) and rectify names the repair.
if "$BIN" validate "127.0.0.1:$PORT" demo "$DIR/dirty.csv" \
    --scheme=rectify > "$DIR/validate_dirty.log"; then
  echo "expected nonzero exit for flagged rows" >&2
  exit 1
fi
grep -q "repaired to: 94704,Berkeley" "$DIR/validate_dirty.log"
# JSON rows produce identical verdict counts.
if "$BIN" validate "127.0.0.1:$PORT" demo "$DIR/dirty.csv" \
    --format=json > "$DIR/validate_json.log"; then
  echo "expected nonzero exit for flagged rows (json)" >&2
  exit 1
fi
grep -q "2 of 16 row(s) flagged" "$DIR/validate_json.log"
grep -q "2 of 16 row(s) flagged" "$DIR/validate_dirty.log"

# Fleet mode: the same daemon listed twice behind the replica pool, with
# retries and hedging enabled, reports identical verdicts.
"$BIN" validate --endpoints="127.0.0.1:$PORT,127.0.0.1:$PORT" demo \
  "$DIR/data.csv" --retries=3 > "$DIR/validate_fleet.log"
grep -q "0 of 16 row(s) flagged" "$DIR/validate_fleet.log"
if "$BIN" validate --endpoints="127.0.0.1:$PORT,127.0.0.1:$PORT" demo \
    "$DIR/dirty.csv" --scheme=rectify --retries=3 --hedge-ms=50 \
    > "$DIR/validate_fleet_dirty.log"; then
  echo "expected nonzero exit for flagged rows (fleet)" >&2
  exit 1
fi
grep -q "repaired to: 94704,Berkeley" "$DIR/validate_fleet_dirty.log"

# SIGTERM drains cleanly: exit 0 and a drain marker in the log.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "serve did not exit cleanly on SIGTERM" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi
grep -q "drained" "$DIR/serve.log"

# Certified publish gate (docs/ANALYSIS.md): a minimized program without its
# certificate is refused at load; dropping the companion cert into the
# directory hot-reloads and publishes it.
mkdir "$DIR/programs_min"
cp "$DIR/min.grl" "$DIR/programs_min/mini.grl"
cp "$DIR/data.csv" "$DIR/programs_min/mini.csv"
"$BIN" serve --programs="$DIR/programs_min" --port=0 --reload-ms=100 \
  > "$DIR/serve_min.log" 2>&1 &
SERVE_PID=$!
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT=$(sed -n 's/^listening on 127.0.0.1:\([0-9]*\)$/\1/p' \
    "$DIR/serve_min.log")
  [ -n "$PORT" ] && break
  i=$((i + 1))
  sleep 0.1
done
[ -n "$PORT" ]
grep -q "0 dataset(s) loaded" "$DIR/serve_min.log"
grep -q "refusing to publish an unproven minimization" "$DIR/serve_min.log"
cp "$DIR/cert.json" "$DIR/programs_min/mini.cert.json"
i=0
while [ $i -lt 100 ]; do
  if "$BIN" validate "127.0.0.1:$PORT" mini "$DIR/data.csv" \
      > "$DIR/validate_min.log" 2>&1; then
    break
  fi
  i=$((i + 1))
  sleep 0.1
done
grep -q "0 of 16 row(s) flagged" "$DIR/validate_min.log"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"

echo "cli smoke OK"
