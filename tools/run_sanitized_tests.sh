#!/usr/bin/env bash
# Builds the test suite under a sanitizer and runs it.
#
#   tools/run_sanitized_tests.sh [asan|tsan] [ctest-args...]
#
# The first argument selects the sanitizer (default: asan). Remaining
# arguments are forwarded to ctest, e.g.
#   tools/run_sanitized_tests.sh asan -R robustness_test
# runs only the chaos/deadline/failpoint suite under ASan, and
#   tools/run_sanitized_tests.sh tsan -R "thread_pool_test|determinism_test"
# races the parallel synthesis engine under ThreadSanitizer. Each mode gets
# its own build tree (build-asan/ or build-tsan/) next to the regular build/
# so the three never fight over caches.
set -euo pipefail

mode="asan"
if [[ $# -ge 1 && ( "$1" == "asan" || "$1" == "tsan" ) ]]; then
  mode="$1"
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-${mode}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DGUARDRAIL_SANITIZE="${mode}" \
  -DGUARDRAIL_BUILD_BENCHMARKS=OFF \
  -DGUARDRAIL_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error: a sanitizer report is a test failure, not a warning.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

cd "${build_dir}"
exec ctest --output-on-failure "$@"
