#!/usr/bin/env bash
# Builds the test suite under AddressSanitizer + UBSan and runs it.
#
#   tools/run_sanitized_tests.sh [ctest-args...]
#
# Extra arguments are forwarded to ctest, e.g.
#   tools/run_sanitized_tests.sh -R robustness_test
# runs only the chaos/deadline/failpoint suite. The sanitized tree lives in
# build-asan/ next to the regular build/ so the two never fight over caches.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DGUARDRAIL_SANITIZE=ON \
  -DGUARDRAIL_BUILD_BENCHMARKS=OFF \
  -DGUARDRAIL_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error: a sanitizer report is a test failure, not a warning.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

cd "${build_dir}"
exec ctest --output-on-failure "$@"
