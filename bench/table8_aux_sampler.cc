// Reproduces paper Table 8: ablation of the auxiliary sampler. Synthesis is
// run once with the binary-indicator auxiliary distribution (Def. 4.5) and
// once directly on the raw data (the identity sampler); the reported metric
// is the coverage of the synthesized program (min-max-comparable across the
// two runs per dataset), plus a Wilcoxon signed-rank significance check
// (paper reports p = 0.037).

#include <cstdio>

#include "bench_common.h"
#include "common/math_util.h"
#include "core/synthesizer.h"
#include "exp/pipeline.h"

namespace guardrail {
namespace {

int Run() {
  bench::TextTable table({"Dataset ID", "w/o Auxiliary Sampler",
                          "w/ Auxiliary Sampler", "Winner"});
  std::vector<double> with_aux, without_aux;
  int identity_failures = 0;
  for (int id : bench::BenchDatasetIds()) {
    exp::ExperimentConfig config = bench::DefaultBenchConfig();
    DatasetBundle bundle = DatasetRepository::Build(id, config.row_limit);
    Rng rng(config.seed ^ static_cast<uint64_t>(id));
    auto [train, test] = bundle.clean.Split(config.train_fraction, &rng);
    (void)test;

    core::SynthesisOptions aux_options = config.synthesis;
    aux_options.use_auxiliary_sampler = true;
    core::SynthesisOptions identity_options = config.synthesis;
    identity_options.use_auxiliary_sampler = false;

    Rng rng_a = rng.Fork();
    Rng rng_b = rng.Fork();
    core::SynthesisReport aux_report =
        core::Synthesizer(aux_options).Synthesize(train, &rng_a);
    core::SynthesisReport identity_report =
        core::Synthesizer(identity_options).Synthesize(train, &rng_b);

    with_aux.push_back(aux_report.coverage);
    without_aux.push_back(identity_report.coverage);
    identity_failures += identity_report.coverage == 0.0 ? 1 : 0;
    table.AddRow({bench::FmtInt(id), bench::Fmt(identity_report.coverage),
                  bench::Fmt(aux_report.coverage),
                  aux_report.coverage >= identity_report.coverage ? "aux"
                                                                  : "identity"});
  }
  std::printf("Table 8: effectiveness of the auxiliary sampler "
              "(normalized coverage)\n\n");
  table.Print();
  double p_value = WilcoxonSignedRankPValue(with_aux, without_aux);
  std::printf(
      "\nWilcoxon signed-rank p-value = %.3f (paper: 0.037).\n"
      "Identity-sampler collapses to zero coverage on %d dataset(s) "
      "(paper: 3, the small high-cardinality ones).\n",
      p_value, identity_failures);
  return 0;
}

}  // namespace
}  // namespace guardrail

int main() { return guardrail::Run(); }
