// Micro-benchmarks for the performance-sensitive inner loops, built on
// google-benchmark. These back the design-choice ablations called out in
// DESIGN.md: statement-level caching, predicate pushdown, auxiliary
// sampling cost, and the per-row guard overhead that Table 6 aggregates.

#include <benchmark/benchmark.h>

#include "baselines/partition.h"
#include "common/telemetry/telemetry.h"
#include "core/batch_eval.h"
#include "core/guard.h"
#include "core/sketch_filler.h"
#include "core/synthesizer.h"
#include "ml/naive_bayes.h"
#include "pgm/auxiliary_sampler.h"
#include "pgm/ci_test.h"
#include "pgm/mec_enumerator.h"
#include "pgm/pc_algorithm.h"
#include "sql/executor.h"
#include "table/sem_generator.h"

namespace guardrail {
namespace {

SemModel MakeBenchSem(int32_t nodes) {
  RandomSemOptions opt;
  opt.num_nodes = nodes;
  opt.min_cardinality = 3;
  opt.max_cardinality = 6;
  Rng rng(0xBEAC);
  return BuildRandomSem(opt, &rng);
}

Table MakeBenchTable(int32_t nodes, int64_t rows) {
  SemModel sem = MakeBenchSem(nodes);
  Rng rng(0xDA7A);
  return sem.Sample(rows, &rng);
}

// ------------------------------------------------------------ interpreter --

void BM_InterpreterCheckRow(benchmark::State& state) {
  Table data = MakeBenchTable(8, 4000);
  core::SynthesisOptions options;
  core::Synthesizer synth(options);
  Rng rng(1);
  core::SynthesisReport report = synth.Synthesize(data, &rng);
  core::Interpreter interp(&report.program);
  Row row = data.GetRow(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Check(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterCheckRow);

void BM_GuardDetectViolationsPerRow(benchmark::State& state) {
  Table data = MakeBenchTable(8, 4000);
  core::SynthesisOptions options;
  core::Synthesizer synth(options);
  Rng rng(2);
  core::SynthesisReport report = synth.Synthesize(data, &rng);
  core::Guard guard(&report.program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard.DetectViolations(data));
  }
  state.SetItemsProcessed(state.iterations() * data.num_rows());
}
BENCHMARK(BM_GuardDetectViolationsPerRow);

// ----------------------------------------------------- batch vs interpreter --
// The vectorized-engine ablation: the same synthesized program over the same
// table, scalar interpreter loop (per-row Row materialization plus
// first-matching-branch scans) vs. the compiled columnar engine (dispatch
// tables plus bitmask verdicts). Items processed are rows in both arms, so
// the reported items_per_second columns are directly comparable.
void BM_BatchVsInterpreter(benchmark::State& state) {
  const bool compiled = state.range(0) != 0;
  Table data = MakeBenchTable(8, 20000);
  core::SynthesisOptions options;
  core::Synthesizer synth(options);
  Rng rng(6);
  core::SynthesisReport report = synth.Synthesize(data, &rng);
  core::Guard guard(&report.program);
  core::BatchVerdict verdict;
  for (auto _ : state) {
    if (compiled) {
      guard.compiled().EvaluateTable(data, 0, data.num_rows(), &verdict);
      benchmark::DoNotOptimize(verdict.any_violation);
    } else {
      int64_t flagged = 0;
      for (RowIndex r = 0; r < data.num_rows(); ++r) {
        if (!guard.interpreter().Check(data.GetRow(r)).empty()) ++flagged;
      }
      benchmark::DoNotOptimize(flagged);
    }
  }
  state.SetLabel(compiled ? "compiled" : "interpreter");
  state.SetItemsProcessed(state.iterations() * data.num_rows());
}
BENCHMARK(BM_BatchVsInterpreter)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------- CI tests --

void BM_GSquareTest(benchmark::State& state) {
  Table data = MakeBenchTable(6, state.range(0));
  pgm::EncodedData encoded = pgm::EncodeIdentity(data);
  pgm::GSquareTest test(&encoded, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(test.Test(0, 1, {2}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GSquareTest)->Arg(1000)->Arg(10000);

// Dense-vs-hash CI-kernel ablation: the same G² test with the dense strata
// array (small conditioning-set cardinality products index a flat counts
// buffer) against the hash-map fallback (max_dense_cells = 0 disables the
// dense gate). The two paths produce identical verdicts; the delta is pure
// kernel cost. range(0) is the conditioning-set size.
void BM_GSquareKernel(benchmark::State& state, int64_t max_dense_cells) {
  Table data = MakeBenchTable(8, 20000);
  pgm::EncodedData encoded = pgm::EncodeIdentity(data);
  pgm::GSquareTest::Options options;
  options.max_dense_cells = max_dense_cells;
  pgm::GSquareTest test(&encoded, options);
  std::vector<int32_t> cond;
  for (int64_t i = 0; i < state.range(0); ++i) {
    cond.push_back(static_cast<int32_t>(2 + i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(test.Test(0, 1, cond));
  }
  state.SetItemsProcessed(state.iterations() * data.num_rows());
}

void BM_GSquareKernelDense(benchmark::State& state) {
  BM_GSquareKernel(state, /*max_dense_cells=*/int64_t{1} << 20);
  state.SetLabel("dense");
}
BENCHMARK(BM_GSquareKernelDense)->Arg(1)->Arg(2)->Arg(3);

void BM_GSquareKernelHash(benchmark::State& state) {
  BM_GSquareKernel(state, /*max_dense_cells=*/0);
  state.SetLabel("hash");
}
BENCHMARK(BM_GSquareKernelHash)->Arg(1)->Arg(2)->Arg(3);

void BM_AuxiliarySampling(benchmark::State& state) {
  Table data = MakeBenchTable(10, state.range(0));
  pgm::AuxiliarySamplerOptions opt;
  opt.num_shifts = 5;
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(
        pgm::SampleAuxiliaryDistribution(data, opt, &rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5);
}
BENCHMARK(BM_AuxiliarySampling)->Arg(2000)->Arg(20000);

void BM_PcAlgorithm(benchmark::State& state) {
  Table data = MakeBenchTable(static_cast<int32_t>(state.range(0)), 4000);
  pgm::AuxiliarySamplerOptions opt;
  Rng rng(4);
  pgm::EncodedData aux = pgm::SampleAuxiliaryDistribution(data, opt, &rng);
  pgm::PcAlgorithm pc({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc.Run(aux));
  }
}
BENCHMARK(BM_PcAlgorithm)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- partitions --

void BM_PartitionProduct(benchmark::State& state) {
  Table data = MakeBenchTable(6, state.range(0));
  auto a = baselines::StrippedPartition::ForAttribute(data, 0);
  auto b = baselines::StrippedPartition::ForAttribute(data, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::StrippedPartition::Product(a, b, data.num_rows()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(20000);

// --------------------------------------------------------- sketch filling --

void BM_FillStatementSketch(benchmark::State& state) {
  Table data = MakeBenchTable(8, state.range(0));
  core::StatementSketch sketch;
  sketch.determinants = {0, 1};
  sketch.dependent = 2;
  core::FillOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::FillStatementSketch(sketch, data, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FillStatementSketch)->Arg(2000)->Arg(20000);

// Ablation: Alg. 2 with the statement-level cache (production) vs. a run
// whose MEC has no shared structure to exploit (each fill hits a distinct
// statement). The delta shows what the cache buys on real MECs.
void BM_SynthesizeFromMecWithCache(benchmark::State& state) {
  Table data = MakeBenchTable(7, 3000);
  pgm::Pdag cpdag = pgm::Pdag::CompleteUndirected(5);
  core::SynthesisOptions options;
  options.max_dags = 120;
  core::Synthesizer synth(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.SynthesizeFromMec(cpdag, data));
  }
}
BENCHMARK(BM_SynthesizeFromMecWithCache)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------- telemetry --
// These back the "disabled telemetry is near-free" acceptance bar: the
// per-call cost with metrics off must be a single relaxed atomic load, so
// BM_GuardProcessRow/0 (off) vs /1 (on) should differ by well under 2%.

void BM_TelemetryCounterInc(benchmark::State& state) {
  bool enabled = state.range(0) != 0;
  telemetry::EnableMetrics(enabled);
  for (auto _ : state) {
    GUARDRAIL_COUNTER_INC("bench.telemetry_probe");
  }
  telemetry::EnableMetrics(false);
  state.SetLabel(enabled ? "metrics-on" : "metrics-off");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterInc)->Arg(0)->Arg(1);

void BM_TelemetrySpan(benchmark::State& state) {
  bool enabled = state.range(0) != 0;
  telemetry::EnableTracing(enabled);
  telemetry::EnableMetrics(enabled);
  for (auto _ : state) {
    telemetry::Span span("bench.span_probe");
    benchmark::DoNotOptimize(span);
  }
  telemetry::EnableTracing(false);
  telemetry::EnableMetrics(false);
  telemetry::ClearTrace();
  state.SetLabel(enabled ? "tracing-on" : "tracing-off");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySpan)->Arg(0)->Arg(1);

void BM_GuardProcessRow(benchmark::State& state) {
  bool enabled = state.range(0) != 0;
  telemetry::EnableMetrics(enabled);
  Table data = MakeBenchTable(8, 4000);
  core::SynthesisOptions options;
  core::Synthesizer synth(options);
  Rng rng(5);
  core::SynthesisReport report = synth.Synthesize(data, &rng);
  core::Guard guard(&report.program);
  Row row = data.GetRow(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        guard.ProcessRow(row, core::ErrorPolicy::kRaise));
  }
  telemetry::EnableMetrics(false);
  state.SetLabel(enabled ? "metrics-on" : "metrics-off");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardProcessRow)->Arg(0)->Arg(1);

// ------------------------------------------------------- MEC enumeration --

void BM_MecEnumeration(benchmark::State& state) {
  pgm::Pdag cpdag = pgm::Pdag::CompleteUndirected(
      static_cast<int32_t>(state.range(0)));
  pgm::MecEnumerator enumerator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerator.Enumerate(cpdag));
  }
}
BENCHMARK(BM_MecEnumeration)->Arg(4)->Arg(5)->Arg(6);

// ------------------------------------------------------------- SQL engine --

void BM_QueryWithPushdown(benchmark::State& state) {
  bool pushdown = state.range(0) != 0;
  Table data = MakeBenchTable(8, 8000);
  ml::NaiveBayesTrainer trainer;
  auto model = trainer.Train(data, 7).value();
  sql::Executor::Options opt;
  opt.enable_predicate_pushdown = pushdown;
  sql::Executor executor(opt);
  executor.RegisterTable("t", &data);
  executor.RegisterModel("m", model.get());
  std::string label0 = data.schema().attribute(7).label(0);
  std::string attr0 = data.schema().attribute(0).label(0);
  std::string sql = "SELECT COUNT(*) FROM t WHERE ML_PREDICT('m') = '" +
                    label0 + "' AND attr0 = '" + attr0 + "'";
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(sql));
  }
  state.SetLabel(pushdown ? "pushdown" : "no-pushdown");
}
BENCHMARK(BM_QueryWithPushdown)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace guardrail

BENCHMARK_MAIN();
