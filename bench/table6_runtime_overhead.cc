// Reproduces paper Table 6: runtime overhead of the Guardrail interception
// hook versus the ML inference cost, measured while executing the dataset's
// ML-integrated query workload behind a rectifying guard. Also reports the
// vectorized-engine ablation per dataset — rows/sec through the scalar
// interpreter loop vs. the compiled columnar engine (docs/PERFORMANCE.md) —
// and writes both series to BENCH_table6_runtime_overhead.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/telemetry/state.h"
#include "core/batch_eval.h"
#include "core/guard.h"
#include "exp/pipeline.h"
#include "exp/query_workload.h"
#include "sql/executor.h"
#include "table/column_batch.h"

namespace guardrail {
namespace {

struct KernelSample {
  double interp_rows_per_sec = 0.0;
  double compiled_rows_per_sec = 0.0;
  double speedup = 0.0;
};

// Best-of-3 rows/sec for ProcessTable in interpreter vs. compiled mode over
// the dirty test split — the full per-row path each mode actually pays
// (Row materialization, failpoint probe, and outcome bookkeeping on the
// scalar side; chunked EvaluateTable plus flagged-row walks on the batched
// side), under the non-mutating kIgnore policy so one table serves every
// rep. The capped bench splits are only a few thousand rows, so the split
// is replicated up to production batch scale first — the engine's target
// regime — which amortizes per-call fixed costs (mask allocation, dispatch
// setup) the way real batches do. Metrics are disabled inside the timed
// region: per-row counter/histogram updates would measure the telemetry
// pillar, not the engine.
KernelSample MeasureKernel(const core::Guard& guard, const Table& dirty) {
  using clock = std::chrono::steady_clock;
  auto seconds_since = [](clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               clock::now() - t0)
        .count();
  };
  constexpr int64_t kTargetRows = int64_t{1} << 17;
  Table big{dirty.schema()};
  while (big.num_rows() < kTargetRows && dirty.num_rows() > 0) {
    for (RowIndex r = 0; r < dirty.num_rows(); ++r) {
      if (!big.AppendRow(dirty.GetRow(r)).ok()) break;
    }
  }
  Table& measured = big;
  const double rows = static_cast<double>(measured.num_rows());
  if (measured.num_rows() == 0) return KernelSample{};

  // One-time program compilation stays out of the timed region, matching
  // the compile-once / evaluate-many serving contract.
  guard.compiled();
  telemetry::EnableMetrics(false);
  double interp_best = 0.0;
  double compiled_best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = clock::now();
    core::GuardOutcome scalar = guard.ProcessTable(
        &measured, core::ErrorPolicy::kIgnore, core::GuardEvalMode::kInterpreter);
    interp_best =
        std::max(interp_best, rows / std::max(seconds_since(t0), 1e-9));

    t0 = clock::now();
    core::GuardOutcome batched = guard.ProcessTable(
        &measured, core::ErrorPolicy::kIgnore, core::GuardEvalMode::kCompiled);
    compiled_best =
        std::max(compiled_best, rows / std::max(seconds_since(t0), 1e-9));
    if (scalar.rows_flagged != batched.rows_flagged) {
      std::fprintf(stderr, "kernel verdict mismatch: %lld vs %lld\n",
                   static_cast<long long>(batched.rows_flagged),
                   static_cast<long long>(scalar.rows_flagged));
    }
  }
  telemetry::EnableMetrics(true);
  KernelSample sample;
  sample.interp_rows_per_sec = interp_best;
  sample.compiled_rows_per_sec = compiled_best;
  sample.speedup =
      interp_best > 0.0 ? compiled_best / interp_best : 0.0;
  return sample;
}

struct MinimizationSample {
  int64_t ensemble_statements = 0;
  int64_t minimized_statements = 0;
  double ensemble_rows_per_sec = 0.0;
  double minimized_rows_per_sec = 0.0;
  double speedup = 0.0;
};

// Best-of-3 compiled-engine rows/sec for the raw member-DAG ensemble union
// versus its certified minimization (SynthesisReport::minimization), on the
// replicated dirty split. The raw union keeps every member's statements —
// mostly duplicates — so this measures exactly what the certificate buys at
// serving time. Replication is smaller than MeasureKernel's: the widest raw
// unions run thousands of statements and the ratio stabilizes well before
// 2^15 rows.
MinimizationSample MeasureMinimization(const core::SynthesisReport& synth,
                                       const Table& dirty) {
  MinimizationSample sample;
  if (!synth.minimized || dirty.num_rows() == 0) return sample;
  sample.ensemble_statements =
      static_cast<int64_t>(synth.ensemble_program.statements.size());
  sample.minimized_statements =
      static_cast<int64_t>(synth.minimization.program.statements.size());

  using clock = std::chrono::steady_clock;
  auto seconds_since = [](clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               clock::now() - t0)
        .count();
  };
  constexpr int64_t kTargetRows = int64_t{1} << 15;
  Table big{dirty.schema()};
  while (big.num_rows() < kTargetRows) {
    for (RowIndex r = 0; r < dirty.num_rows(); ++r) {
      if (!big.AppendRow(dirty.GetRow(r)).ok()) break;
    }
  }
  const double rows = static_cast<double>(big.num_rows());

  core::Guard raw_guard(&synth.ensemble_program);
  core::Guard min_guard(&synth.minimization.program);
  raw_guard.compiled();
  min_guard.compiled();
  telemetry::EnableMetrics(false);
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = clock::now();
    core::GuardOutcome raw = raw_guard.ProcessTable(
        &big, core::ErrorPolicy::kIgnore, core::GuardEvalMode::kCompiled);
    sample.ensemble_rows_per_sec = std::max(
        sample.ensemble_rows_per_sec, rows / std::max(seconds_since(t0), 1e-9));

    t0 = clock::now();
    core::GuardOutcome minimized = min_guard.ProcessTable(
        &big, core::ErrorPolicy::kIgnore, core::GuardEvalMode::kCompiled);
    sample.minimized_rows_per_sec =
        std::max(sample.minimized_rows_per_sec,
                 rows / std::max(seconds_since(t0), 1e-9));
    if (raw.rows_flagged != minimized.rows_flagged) {
      std::fprintf(stderr, "minimized verdict mismatch: %lld vs %lld\n",
                   static_cast<long long>(minimized.rows_flagged),
                   static_cast<long long>(raw.rows_flagged));
    }
  }
  telemetry::EnableMetrics(true);
  sample.speedup = sample.ensemble_rows_per_sec > 0.0
                       ? sample.minimized_rows_per_sec /
                             sample.ensemble_rows_per_sec
                       : 0.0;
  return sample;
}

int Run() {
  // Guard/inference times come from the telemetry counters the executor
  // feeds (sql.guard_micros / sql.inference_micros), so the table matches a
  // `--metrics-out` export of the same run.
  bench::EnableBenchTelemetry();
  bench::TextTable table({"Dataset ID", "Guardrail Time (s)",
                          "Inference Time (s)", "Guard/Inference",
                          "Rows guarded", "Interp rows/s", "Compiled rows/s",
                          "Speedup", "Stmts raw->min", "Min rows/s",
                          "Min speedup"});
  double total_guard = 0.0;
  double total_speedup = 0.0;
  int datasets = 0;
  std::string json = "[\n";
  for (int id : bench::BenchDatasetIds()) {
    bench::ResetBenchTelemetry();
    exp::ExperimentConfig config = bench::DefaultBenchConfig();
    config.restrict_errors_to_constrained = true;  // RQ2 setup (Sec. 8.2).
    auto prepared = exp::PrepareDataset(id, config);
    if (!prepared.ok()) {
      std::fprintf(stderr, "dataset %d failed: %s\n", id,
                   prepared.status().ToString().c_str());
      return 1;
    }
    const exp::PreparedDataset& p = **prepared;
    core::Guard guard(&p.synthesis.program);

    sql::Executor executor;
    executor.RegisterTable("t", &p.test_dirty);
    executor.RegisterModel("m", p.model.get());
    executor.SetGuard(&guard, core::ErrorPolicy::kRectify);
    for (const auto& query : exp::GenerateWorkload(p.bundle, "t", "m")) {
      auto result = executor.Execute(query.sql);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    const sql::ExecStats& stats = executor.stats();
    double guard_seconds =
        static_cast<double>(bench::CounterValue("sql.guard_micros")) / 1e6;
    double inference_seconds =
        static_cast<double>(bench::CounterValue("sql.inference_micros")) / 1e6;
    KernelSample kernel = MeasureKernel(guard, p.test_dirty);
    MinimizationSample minimization =
        MeasureMinimization(p.synthesis, p.test_dirty);
    total_guard += guard_seconds;
    total_speedup += kernel.speedup;
    if (datasets > 0) json += ",\n";
    ++datasets;
    table.AddRow({bench::FmtInt(id), bench::Fmt(guard_seconds, 4),
                  bench::Fmt(inference_seconds, 4),
                  inference_seconds > 0
                      ? bench::Fmt(guard_seconds / inference_seconds, 3)
                      : "-",
                  bench::FmtInt(stats.rows_after_pushdown),
                  bench::FmtInt(
                      static_cast<int64_t>(kernel.interp_rows_per_sec)),
                  bench::FmtInt(
                      static_cast<int64_t>(kernel.compiled_rows_per_sec)),
                  bench::Fmt(kernel.speedup, 2),
                  bench::FmtInt(minimization.ensemble_statements) + "->" +
                      bench::FmtInt(minimization.minimized_statements),
                  bench::FmtInt(static_cast<int64_t>(
                      minimization.minimized_rows_per_sec)),
                  bench::Fmt(minimization.speedup, 2)});
    json += "  {\"dataset\": " + std::to_string(id);
    json += ", \"guard_seconds\": " + bench::Fmt(guard_seconds, 6);
    json += ", \"inference_seconds\": " + bench::Fmt(inference_seconds, 6);
    json += ", \"rows_guarded\": " +
            std::to_string(stats.rows_after_pushdown);
    json += ", \"interp_rows_per_sec\": " +
            std::to_string(static_cast<int64_t>(kernel.interp_rows_per_sec));
    json += ", \"compiled_rows_per_sec\": " +
            std::to_string(static_cast<int64_t>(kernel.compiled_rows_per_sec));
    json += ", \"speedup\": " + bench::Fmt(kernel.speedup, 3);
    json += ", \"ensemble_statements\": " +
            std::to_string(minimization.ensemble_statements);
    json += ", \"minimized_statements\": " +
            std::to_string(minimization.minimized_statements);
    json += ", \"ensemble_rows_per_sec\": " +
            std::to_string(
                static_cast<int64_t>(minimization.ensemble_rows_per_sec));
    json += ", \"minimized_rows_per_sec\": " +
            std::to_string(
                static_cast<int64_t>(minimization.minimized_rows_per_sec));
    json += ", \"minimization_speedup\": " +
            bench::Fmt(minimization.speedup, 3);
    json += "}";
  }
  json += "\n]\n";
  std::printf("Table 6: runtime overheads and breakdown\n\n");
  table.Print();
  std::printf(
      "\nAverage guard overhead: %.4f s per dataset workload "
      "(paper: 0.332 s average; shape to check is guard time being\n"
      "comparable to or below model inference time).\n",
      datasets > 0 ? total_guard / datasets : 0.0);
  std::printf(
      "Average compiled/interpreter speedup: %.2fx across %d datasets.\n",
      datasets > 0 ? total_speedup / datasets : 0.0, datasets);
  if (std::FILE* f = std::fopen("BENCH_table6_runtime_overhead.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_table6_runtime_overhead.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace guardrail

int main() { return guardrail::Run(); }
