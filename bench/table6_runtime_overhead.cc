// Reproduces paper Table 6: runtime overhead of the Guardrail interception
// hook versus the ML inference cost, measured while executing the dataset's
// ML-integrated query workload behind a rectifying guard.

#include <cstdio>

#include "bench_common.h"
#include "core/guard.h"
#include "exp/pipeline.h"
#include "exp/query_workload.h"
#include "sql/executor.h"

namespace guardrail {
namespace {

int Run() {
  // Guard/inference times come from the telemetry counters the executor
  // feeds (sql.guard_micros / sql.inference_micros), so the table matches a
  // `--metrics-out` export of the same run.
  bench::EnableBenchTelemetry();
  bench::TextTable table({"Dataset ID", "Guardrail Time (s)",
                          "Inference Time (s)", "Guard/Inference",
                          "Rows guarded"});
  double total_guard = 0.0;
  int datasets = 0;
  for (int id : bench::BenchDatasetIds()) {
    bench::ResetBenchTelemetry();
    exp::ExperimentConfig config = bench::DefaultBenchConfig();
    config.restrict_errors_to_constrained = true;  // RQ2 setup (Sec. 8.2).
    auto prepared = exp::PrepareDataset(id, config);
    if (!prepared.ok()) {
      std::fprintf(stderr, "dataset %d failed: %s\n", id,
                   prepared.status().ToString().c_str());
      return 1;
    }
    const exp::PreparedDataset& p = **prepared;
    core::Guard guard(&p.synthesis.program);

    sql::Executor executor;
    executor.RegisterTable("t", &p.test_dirty);
    executor.RegisterModel("m", p.model.get());
    executor.SetGuard(&guard, core::ErrorPolicy::kRectify);
    for (const auto& query : exp::GenerateWorkload(p.bundle, "t", "m")) {
      auto result = executor.Execute(query.sql);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    const sql::ExecStats& stats = executor.stats();
    double guard_seconds =
        static_cast<double>(bench::CounterValue("sql.guard_micros")) / 1e6;
    double inference_seconds =
        static_cast<double>(bench::CounterValue("sql.inference_micros")) / 1e6;
    total_guard += guard_seconds;
    ++datasets;
    table.AddRow({bench::FmtInt(id), bench::Fmt(guard_seconds, 4),
                  bench::Fmt(inference_seconds, 4),
                  inference_seconds > 0
                      ? bench::Fmt(guard_seconds / inference_seconds, 3)
                      : "-",
                  bench::FmtInt(stats.rows_after_pushdown)});
  }
  std::printf("Table 6: runtime overheads and breakdown\n\n");
  table.Print();
  std::printf(
      "\nAverage guard overhead: %.4f s per dataset workload "
      "(paper: 0.332 s average; shape to check is guard time being\n"
      "comparable to or below model inference time).\n",
      datasets > 0 ? total_guard / datasets : 0.0);
  return 0;
}

}  // namespace
}  // namespace guardrail

int main() { return guardrail::Run(); }
