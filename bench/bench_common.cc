#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/telemetry/telemetry.h"

namespace guardrail {
namespace bench {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  while (row.size() < header_.size()) row.emplace_back("");
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      out += cell;
      out.append(widths[i] - cell.size() + 2, ' ');
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Fmt(double value, int digits) {
  return FormatDouble(value, digits);
}

std::string FmtInt(int64_t value) { return std::to_string(value); }

exp::ExperimentConfig DefaultBenchConfig() {
  exp::ExperimentConfig config;
  // Cap per-dataset rows: the large datasets (Adult 48842, Bank 45211, ...)
  // are sampled down for a single-core sweep; detection quality, timing
  // ordering, and rectification shapes are unchanged.
  config.row_limit = 12000;
  // Paper-recommended epsilon range is 0.01-0.05 (Fig. 7); the sweep in
  // fig7_epsilon_sweep varies it explicitly.
  config.synthesis.fill.epsilon = 0.05;
  return config;
}

std::vector<int> BenchDatasetIds() {
  if (std::getenv("GUARDRAIL_BENCH_FAST") != nullptr) return {2, 4, 6};
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
}

void EnableBenchTelemetry() { telemetry::EnableMetrics(true); }

void ResetBenchTelemetry() {
  telemetry::MetricsRegistry::Instance().ResetAll();
  telemetry::ClearTrace();
}

int64_t CounterValue(std::string_view name) {
  return telemetry::MetricsRegistry::Instance().CounterValue(name);
}

double SpanSeconds(std::string_view name) {
  std::string counter = "span.";
  counter += name;
  counter += ".micros";
  return static_cast<double>(CounterValue(counter)) / 1e6;
}

}  // namespace bench
}  // namespace guardrail
