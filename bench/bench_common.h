#ifndef GUARDRAIL_BENCH_BENCH_COMMON_H_
#define GUARDRAIL_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "exp/pipeline.h"

namespace guardrail {
namespace bench {

/// Fixed-width text table printer for the experiment binaries; each bench
/// prints the same rows/series as the corresponding paper table or figure.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with column-width alignment and a header rule.
  std::string ToString() const;

  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers used across benches.
std::string Fmt(double value, int digits = 3);
std::string FmtInt(int64_t value);

/// The shared experiment configuration for bench runs. Row counts follow
/// paper Table 2 but are capped (per dataset) so the full 12-dataset sweep
/// completes in CI-scale time; the cap preserves every qualitative shape.
exp::ExperimentConfig DefaultBenchConfig();

/// Dataset ids to sweep (all 12 unless GUARDRAIL_BENCH_FAST is set, then a
/// representative trio for smoke runs).
std::vector<int> BenchDatasetIds();

}  // namespace bench
}  // namespace guardrail

#endif  // GUARDRAIL_BENCH_BENCH_COMMON_H_
