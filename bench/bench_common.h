#ifndef GUARDRAIL_BENCH_BENCH_COMMON_H_
#define GUARDRAIL_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/pipeline.h"

namespace guardrail {
namespace bench {

/// Fixed-width text table printer for the experiment binaries; each bench
/// prints the same rows/series as the corresponding paper table or figure.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with column-width alignment and a header rule.
  std::string ToString() const;

  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers used across benches.
std::string Fmt(double value, int digits = 3);
std::string FmtInt(int64_t value);

/// The shared experiment configuration for bench runs. Row counts follow
/// paper Table 2 but are capped (per dataset) so the full 12-dataset sweep
/// completes in CI-scale time; the cap preserves every qualitative shape.
exp::ExperimentConfig DefaultBenchConfig();

/// Dataset ids to sweep (all 12 unless GUARDRAIL_BENCH_FAST is set, then a
/// representative trio for smoke runs).
std::vector<int> BenchDatasetIds();

/// Turns on the telemetry metrics pillar for a bench run. Benches read their
/// timings back through SpanSeconds/CounterValue so the numbers they print
/// are the same measurements `--metrics-out` would export — not a second
/// ad-hoc clock.
void EnableBenchTelemetry();

/// Zeroes all counters/histograms and clears the trace buffer (telemetry
/// stays enabled). Call between per-dataset iterations so reads are
/// per-iteration, not cumulative.
void ResetBenchTelemetry();

/// Current value of a telemetry counter (0 when never touched).
int64_t CounterValue(std::string_view name);

/// Accumulated wall-clock of the named span in seconds, i.e.
/// `span.<name>.micros` / 1e6 (0.0 when the span never ran).
double SpanSeconds(std::string_view name);

}  // namespace bench
}  // namespace guardrail

#endif  // GUARDRAIL_BENCH_BENCH_COMMON_H_
