// Chaos soak for the resilient validation fleet (docs/SERVING.md,
// "Resilience"): three in-process servers behind a ReplicaPool, worker
// threads streaming randomized rectify batches while the main thread
// kill/restarts one node at a time and a failpoint cuts ~15% of
// connections mid-request. Every pooled response is compared byte-for-byte
// against an offline Guard pass of the same batch — the bench doubles as a
// correctness gate and exits nonzero on any lost, failed, or mismatched
// batch. Time-bounded: GUARDRAIL_SOAK_SECONDS (default 10, CI uses <= 30);
// GUARDRAIL_BENCH_FAST=1 shrinks to 3 s. Results go to
// BENCH_fleet_soak.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "core/guard.h"
#include "serve/engine.h"
#include "serve/pool.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "common/telemetry/log.h"
#include "serve/server.h"
#include "table/table.h"

namespace guardrail {
namespace {

constexpr int kZips = 20;
constexpr int kNodes = 3;

std::string ZipLabel(int i) { return "9" + std::to_string(4000 + i); }
std::string CityLabel(int i) { return "city_" + std::to_string(i); }

std::string SeedCsv() {
  std::string csv = "zip,city\n";
  for (int i = 0; i < kZips; ++i) {
    csv += ZipLabel(i) + "," + CityLabel(i) + "\n";
  }
  return csv;
}

std::string ProgramText() {
  std::string text = "# guardrail-program v1\nGIVEN zip ON city HAVING\n";
  for (int i = 0; i < kZips; ++i) {
    text += "  IF zip = '" + ZipLabel(i) + "' THEN city <- '" + CityLabel(i) +
            "';\n";
  }
  return text;
}

// One batch with ~2% corrupted city labels so rectification really fires.
std::string MakeBatch(Rng* rng, int rows) {
  std::string payload = "zip,city\n";
  for (int r = 0; r < rows; ++r) {
    int zip = static_cast<int>(rng->NextUint64(kZips));
    int city = zip;
    if (rng->NextBernoulli(0.02)) {
      city = (zip + 1 + static_cast<int>(rng->NextUint64(kZips - 1))) % kZips;
    }
    payload += ZipLabel(zip) + "," + CityLabel(city) + "\n";
  }
  return payload;
}

/// One fleet node; registry and engine survive server kill/restart cycles
/// (a warm restart on the same port).
struct Node {
  serve::ProgramRegistry registry;
  std::unique_ptr<serve::ValidationEngine> engine;
  std::unique_ptr<serve::Server> server;
  int port = 0;

  Status Start(const Schema& schema, int port_hint) {
    if (engine == nullptr) {
      auto version = registry.LoadFromText("demo", ProgramText(), schema);
      if (!version.ok()) return version.status();
      engine =
          std::make_unique<serve::ValidationEngine>(&registry,
                                                    serve::EngineOptions{});
    }
    serve::ServerOptions options;
    options.port = port_hint;
    server = std::make_unique<serve::Server>(&registry, engine.get(), options);
    Status st = server->Start();
    if (st.ok()) port = server->port();
    return st;
  }

  Status Restart(const Schema& schema) {
    server.reset();  // Drains and joins.
    Status st = Status::OK();
    for (int i = 0; i < 100; ++i) {
      st = Start(schema, port);
      if (st.ok()) return st;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return st;
  }
};

/// Offline Guard oracle: an independent pass over one batch. The schema
/// copy persists across batches per worker so unseen labels get stable ids.
class OfflineOracle {
 public:
  OfflineOracle(const serve::ProgramRegistry& registry)
      : snapshot_(registry.Get("demo")),
        schema_(snapshot_->schema),
        guard_(&snapshot_->program) {}

  Result<std::vector<serve::RowResult>> Pass(const std::string& payload) {
    auto doc = ParseCsv(payload);
    GUARDRAIL_RETURN_NOT_OK(doc.status());
    std::vector<serve::RowResult> expected;
    for (const auto& record : doc->rows) {
      Row row(2, kNullValue);
      for (AttrIndex c = 0; c < 2; ++c) {
        row[static_cast<size_t>(c)] =
            schema_.attribute(c).GetOrInsert(record[static_cast<size_t>(c)]);
      }
      serve::RowResult out;
      auto checked = guard_.interpreter().CheckedCheck(row);
      GUARDRAIL_RETURN_NOT_OK(checked.status());
      if (!checked->empty()) {
        out.verdict = serve::RowVerdict::kViolation;
        out.violations = static_cast<uint16_t>(checked->size());
        auto repaired = guard_.ProcessRow(row, core::ErrorPolicy::kRectify);
        GUARDRAIL_RETURN_NOT_OK(repaired.status());
        if (!(*repaired == row)) {
          std::vector<std::string> fields;
          for (AttrIndex c = 0; c < 2; ++c) {
            ValueId v = (*repaired)[static_cast<size_t>(c)];
            fields.push_back(v == kNullValue ? ""
                                             : schema_.attribute(c).label(v));
          }
          out.detail = WriteCsvRecord(fields);
        }
      }
      expected.push_back(std::move(out));
    }
    return expected;
  }

 private:
  std::shared_ptr<const serve::ProgramSnapshot> snapshot_;
  Schema schema_;
  core::Guard guard_;
};

struct SoakStats {
  std::atomic<int64_t> batches_ok{0};
  std::atomic<int64_t> batches_failed{0};
  std::atomic<int64_t> mismatched_rows{0};
  std::atomic<int64_t> rows_checked{0};
  std::atomic<int64_t> repaired_rows{0};
};

int Run() {
  // Tripped-failpoint warnings are the point of this bench; don't log each.
  telemetry::SetLogLevel(telemetry::LogLevel::kError);
  const bool fast = std::getenv("GUARDRAIL_BENCH_FAST") != nullptr;
  int soak_seconds = fast ? 3 : 10;
  if (const char* env = std::getenv("GUARDRAIL_SOAK_SECONDS")) {
    soak_seconds = std::atoi(env);
    if (soak_seconds <= 0) soak_seconds = 10;
  }
  const int workers = 3;
  const int rows_per_batch = 64;

  auto doc = ParseCsv(SeedCsv());
  if (!doc.ok()) return 1;
  auto seed_table = Table::FromCsv(*doc);
  if (!seed_table.ok()) return 1;
  const Schema schema = seed_table->schema();

  Node nodes[kNodes];
  for (Node& node : nodes) {
    if (Status st = node.Start(schema, 0); !st.ok()) {
      std::fprintf(stderr, "node start failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::vector<serve::Endpoint> endpoints;
  for (Node& node : nodes) endpoints.push_back({"127.0.0.1", node.port});

  serve::PoolOptions pool_options;
  pool_options.retry.max_attempts = 8;
  pool_options.retry.initial_backoff_ms = 2;
  pool_options.retry.max_backoff_ms = 50;
  pool_options.retry.seed = 0x50AC;
  pool_options.health_probe_interval_ms = 200;
  serve::ReplicaPool pool(endpoints, pool_options);

  // Cut ~15% of connections after the request is read, before the response
  // is written — the retransmit-after-lost-response window.
  ScopedFailpoint chaos("serve.connection_drop", 0.15, StatusCode::kIoError,
                        /*seed=*/0xC405);

  SoakStats stats;
  std::atomic<bool> stop{false};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(soak_seconds);

  std::vector<std::thread> streamers;
  for (int w = 0; w < workers; ++w) {
    streamers.emplace_back([&, w] {
      Rng rng(0x50AC5EEDULL + static_cast<uint64_t>(w));
      OfflineOracle oracle(nodes[0].registry);
      while (!stop.load(std::memory_order_relaxed)) {
        serve::ValidateRequest request;
        request.dataset = "demo";
        request.scheme = core::ErrorPolicy::kRectify;
        request.payload = MakeBatch(&rng, rows_per_batch);
        auto expected = oracle.Pass(request.payload);
        if (!expected.ok()) {
          stats.batches_failed.fetch_add(1);
          continue;
        }
        auto response = pool.Validate(request);
        if (!response.ok() || response->code != StatusCode::kOk ||
            response->rows.size() != expected->size()) {
          stats.batches_failed.fetch_add(1);
          continue;
        }
        for (size_t r = 0; r < expected->size(); ++r) {
          stats.rows_checked.fetch_add(1);
          if (!(response->rows[r] == (*expected)[r])) {
            stats.mismatched_rows.fetch_add(1);
          }
          if (!response->rows[r].detail.empty()) {
            stats.repaired_rows.fetch_add(1);
          }
        }
        stats.batches_ok.fetch_add(1);
      }
    });
  }

  // Chaos driver: kill/restart one node at a time, round robin.
  int kills = 0;
  int victim = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    if (std::chrono::steady_clock::now() >= deadline) break;
    if (Status st = nodes[victim].Restart(schema); !st.ok()) {
      std::fprintf(stderr, "node %d restart failed: %s\n", victim,
                   st.ToString().c_str());
      stop.store(true);
      for (auto& t : streamers) t.join();
      return 1;
    }
    ++kills;
    victim = (victim + 1) % kNodes;
  }
  stop.store(true);
  for (auto& t : streamers) t.join();

  auto replica_stats = pool.Stats();
  int64_t attempts = 0, failures = 0;
  for (const auto& s : replica_stats) {
    attempts += static_cast<int64_t>(s.requests);
    failures += static_cast<int64_t>(s.failures);
  }

  bench::TextTable table({"Metric", "Value"});
  table.AddRow({"soak seconds", bench::FmtInt(soak_seconds)});
  table.AddRow({"node kills", bench::FmtInt(kills)});
  table.AddRow({"batches ok", bench::FmtInt(stats.batches_ok.load())});
  table.AddRow({"batches failed", bench::FmtInt(stats.batches_failed.load())});
  table.AddRow({"rows checked", bench::FmtInt(stats.rows_checked.load())});
  table.AddRow({"rows repaired", bench::FmtInt(stats.repaired_rows.load())});
  table.AddRow({"mismatched rows", bench::FmtInt(stats.mismatched_rows.load())});
  table.AddRow({"replica attempts", bench::FmtInt(attempts)});
  table.AddRow({"replica failures", bench::FmtInt(failures)});
  std::printf("Fleet chaos soak (%d nodes, %d workers, %d rows/batch):\n\n",
              kNodes, workers, rows_per_batch);
  table.Print();

  std::string json = "[\n  {\"bench\": \"fleet_soak\"";
  json += ", \"soak_seconds\": " + std::to_string(soak_seconds);
  json += ", \"node_kills\": " + std::to_string(kills);
  json += ", \"batches_ok\": " + std::to_string(stats.batches_ok.load());
  json += ", \"batches_failed\": " + std::to_string(stats.batches_failed.load());
  json += ", \"rows_checked\": " + std::to_string(stats.rows_checked.load());
  json += ", \"rows_repaired\": " + std::to_string(stats.repaired_rows.load());
  json += ", \"mismatched_rows\": " +
          std::to_string(stats.mismatched_rows.load());
  json += ", \"replica_attempts\": " + std::to_string(attempts);
  json += ", \"replica_failures\": " + std::to_string(failures);
  json += "}\n]\n";
  if (std::FILE* f = std::fopen("BENCH_fleet_soak.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_fleet_soak.json\n");
  }

  // Correctness gate: verdicts must be byte-identical to the offline Guard
  // and no batch may be lost despite the kill/restart churn.
  if (stats.mismatched_rows.load() > 0) return 1;
  if (stats.batches_failed.load() > 0) return 1;
  if (stats.batches_ok.load() == 0) return 1;
  return 0;
}

}  // namespace
}  // namespace guardrail

int main() { return guardrail::Run(); }
