// Reproduces paper Fig. 6: effectiveness of rectification on the 48
// ML-integrated SQL queries (4 per dataset). For each query we report the
// min-max-normalized relative error of (a) the query over the error-injected
// data and (b) the same query behind a rectifying Guardrail guard, both
// against the clean-data ground truth. The paper reports an average error
// reduction of 0.87 +/- 0.25.

#include <cstdio>

#include "bench_common.h"
#include "common/math_util.h"
#include "core/guard.h"
#include "exp/pipeline.h"
#include "exp/query_workload.h"
#include "sql/executor.h"

namespace guardrail {
namespace {

int Run() {
  struct QueryOutcome {
    int dataset_id;
    int query_index;
    double dirty_error;
    double rectified_error;
  };
  std::vector<QueryOutcome> outcomes;

  for (int id : bench::BenchDatasetIds()) {
    exp::ExperimentConfig config = bench::DefaultBenchConfig();
    // RQ2 isolates constraint-covered errors (paper Sec. 8.2 setup).
    config.restrict_errors_to_constrained = true;
    auto prepared = exp::PrepareDataset(id, config);
    if (!prepared.ok()) {
      std::fprintf(stderr, "dataset %d failed: %s\n", id,
                   prepared.status().ToString().c_str());
      return 1;
    }
    const exp::PreparedDataset& p = **prepared;
    core::Guard guard(&p.synthesis.program);

    for (const auto& query : exp::GenerateWorkload(p.bundle, "t", "m")) {
      sql::Executor clean_exec;
      clean_exec.RegisterTable("t", &p.test_clean);
      clean_exec.RegisterModel("m", p.model.get());
      auto clean_result = clean_exec.Execute(query.sql);

      sql::Executor dirty_exec;
      dirty_exec.RegisterTable("t", &p.test_dirty);
      dirty_exec.RegisterModel("m", p.model.get());
      auto dirty_result = dirty_exec.Execute(query.sql);

      sql::Executor guarded_exec;
      guarded_exec.RegisterTable("t", &p.test_dirty);
      guarded_exec.RegisterModel("m", p.model.get());
      guarded_exec.SetGuard(&guard, core::ErrorPolicy::kRectify);
      auto guarded_result = guarded_exec.Execute(query.sql);

      if (!clean_result.ok() || !dirty_result.ok() || !guarded_result.ok()) {
        std::fprintf(stderr, "query failed on dataset %d\n", id);
        return 1;
      }
      outcomes.push_back(
          {id, query.query_index,
           exp::RelativeQueryError(*clean_result, *dirty_result),
           exp::RelativeQueryError(*clean_result, *guarded_result)});
    }
  }

  // Min-max normalize across all queries so different base units share one
  // scale (paper Sec. 8.2).
  std::vector<double> all;
  for (const auto& o : outcomes) {
    all.push_back(o.dirty_error);
    all.push_back(o.rectified_error);
  }
  std::vector<double> normalized = all;
  MinMaxNormalize(&normalized);

  bench::TextTable table({"Query", "Dirty error (norm.)",
                          "Rectified error (norm.)", "Improved"});
  double dirty_sum = 0.0, rectified_sum = 0.0;
  std::vector<double> reductions;  // Over error-affected queries.
  int improved = 0, affected = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    double dirty = normalized[2 * i];
    double rectified = normalized[2 * i + 1];
    dirty_sum += outcomes[i].dirty_error;
    rectified_sum += outcomes[i].rectified_error;
    bool is_better = rectified <= dirty + 1e-12;
    improved += is_better ? 1 : 0;
    // The paper's 48 hand-written queries were all visibly affected by the
    // injected errors (every red dot in Fig. 6 sits above zero); per-query
    // reduction ratios are only meaningful on that subset.
    if (outcomes[i].dirty_error >= 0.01) {
      ++affected;
      reductions.push_back(1.0 - outcomes[i].rectified_error /
                                     outcomes[i].dirty_error);
    }
    char name[32];
    std::snprintf(name, sizeof(name), "D%d-Q%d", outcomes[i].dataset_id,
                  outcomes[i].query_index);
    table.AddRow({name, bench::Fmt(dirty, 4), bench::Fmt(rectified, 4),
                  is_better ? "yes" : "no"});
  }
  std::printf("Figure 6: effectiveness on rectifying data errors "
              "(%zu queries)\n\n", outcomes.size());
  table.Print();
  double mean_reduction = Mean(reductions);
  std::printf(
      "\nQueries improved or unchanged: %d / %zu\n"
      "Average relative-error reduction over the %d error-affected queries "
      "(dirty >= 0.01): %.2f +/- %.2f (paper: 0.87 +/- 0.25)\n"
      "Total relative error across all queries: dirty %.3f -> rectified "
      "%.3f (%.0f%% reduction)\n",
      improved, outcomes.size(), affected, mean_reduction, StdDev(reductions),
      dirty_sum, rectified_sum,
      dirty_sum > 0 ? 100.0 * (1.0 - rectified_sum / dirty_sum) : 0.0);
  return 0;
}

}  // namespace
}  // namespace guardrail

int main() { return guardrail::Run(); }
