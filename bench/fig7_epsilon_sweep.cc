// Reproduces paper Fig. 7: the impact of the validity threshold epsilon on
// the coverage and loss of the synthesized integrity constraints. Coverage
// should rise with epsilon (looser branches survive) at the price of a
// rising loss; the paper recommends epsilon in [0.01, 0.05].

#include <cstdio>

#include "bench_common.h"
#include "core/metrics.h"
#include "core/synthesizer.h"
#include "exp/pipeline.h"

namespace guardrail {
namespace {

int Run() {
  const std::vector<double> epsilons = {0.001, 0.005, 0.01, 0.02,
                                        0.05,  0.1,   0.2,  0.3};
  bench::TextTable table({"Dataset ID", "epsilon", "Coverage",
                          "Loss (fraction of rows)", "# Statements",
                          "# Branches"});
  for (int id : bench::BenchDatasetIds()) {
    exp::ExperimentConfig config = bench::DefaultBenchConfig();
    DatasetBundle bundle = DatasetRepository::Build(id, config.row_limit);
    Rng rng(config.seed ^ static_cast<uint64_t>(id));
    auto [train, test] = bundle.clean.Split(config.train_fraction, &rng);
    (void)test;

    // Learn the structure once; epsilon only affects sketch filling, so the
    // sweep reuses the CPDAG (this also mirrors how Fig. 7 was produced:
    // one structure, many epsilon values).
    core::SynthesisOptions options = config.synthesis;
    Rng sketch_rng = rng.Fork();
    core::SynthesisReport base =
        core::Synthesizer(options).Synthesize(train, &sketch_rng);

    for (double epsilon : epsilons) {
      core::SynthesisOptions swept = options;
      swept.fill.epsilon = epsilon;
      core::SynthesisReport report =
          core::Synthesizer(swept).SynthesizeFromMec(base.cpdag, train);
      double loss_fraction =
          train.num_rows() > 0
              ? static_cast<double>(core::ProgramLoss(report.program, train)) /
                    static_cast<double>(train.num_rows())
              : 0.0;
      table.AddRow({bench::FmtInt(id), bench::Fmt(epsilon),
                    bench::Fmt(report.coverage),
                    bench::Fmt(loss_fraction, 4),
                    bench::FmtInt(
                        static_cast<int64_t>(report.program.statements.size())),
                    bench::FmtInt(report.program.NumBranches())});
    }
  }
  std::printf("Figure 7: impact of epsilon on coverage and loss\n\n");
  table.Print();
  std::printf(
      "\nPaper shape: coverage is non-decreasing in epsilon while loss\n"
      "creeps up; epsilon = 0.01-0.05 is the recommended trade-off.\n");
  return 0;
}

}  // namespace
}  // namespace guardrail

int main() { return guardrail::Run(); }
