// Reproduces paper Table 4: offline synthesis wall-clock per dataset, with
// the pipeline-stage breakdown (auxiliary sampling, structure learning, MEC
// enumeration, sketch filling). Absolute times differ from the paper's
// Python prototype; the shape to check is that wider datasets cost more and
// that the one-off cost stays practical.

#include <cstdio>

#include "bench_common.h"
#include "exp/pipeline.h"

namespace guardrail {
namespace {

int Run() {
  // Timings are read back from the telemetry span counters, so this table
  // prints the same measurements a `--metrics-out` export would contain.
  bench::EnableBenchTelemetry();
  bench::TextTable table({"Dataset ID", "# Attr.", "Total Time (s)",
                          "Sampling", "Structure", "Enumeration", "Fill",
                          "Cache hit rate"});
  for (int id : bench::BenchDatasetIds()) {
    bench::ResetBenchTelemetry();
    exp::ExperimentConfig config = bench::DefaultBenchConfig();
    config.train_model = false;
    auto prepared = exp::PrepareDataset(id, config);
    if (!prepared.ok()) {
      std::fprintf(stderr, "dataset %d failed: %s\n", id,
                   prepared.status().ToString().c_str());
      return 1;
    }
    double hits =
        static_cast<double>(bench::CounterValue("sketch_filler.cache_hits"));
    double lookups =
        hits +
        static_cast<double>(bench::CounterValue("sketch_filler.cache_misses"));
    table.AddRow({bench::FmtInt(id),
                  bench::FmtInt((*prepared)->bundle.spec.num_attributes),
                  bench::Fmt(bench::SpanSeconds("aux_sample") +
                                 bench::SpanSeconds("structure") +
                                 bench::SpanSeconds("enumerate") +
                                 bench::SpanSeconds("sketch_fill"),
                             4),
                  bench::Fmt(bench::SpanSeconds("aux_sample"), 3),
                  bench::Fmt(bench::SpanSeconds("structure"), 3),
                  bench::Fmt(bench::SpanSeconds("enumerate"), 3),
                  bench::Fmt(bench::SpanSeconds("sketch_fill"), 3),
                  lookups > 0 ? bench::Fmt(hits / lookups) : "-"});
  }
  std::printf("Table 4: processing time for offline synthesis\n\n");
  table.Print();
  std::printf(
      "\nPaper shape: one-off cost, minutes-scale in Python; here the C++\n"
      "pipeline is faster in absolute terms but ordering with attribute\n"
      "count and the dominance of structure learning match.\n");
  return 0;
}

}  // namespace
}  // namespace guardrail

int main() { return guardrail::Run(); }
