// Reproduces paper Table 4: offline synthesis wall-clock per dataset, with
// the pipeline-stage breakdown (auxiliary sampling, structure learning, MEC
// enumeration, sketch filling). Absolute times differ from the paper's
// Python prototype; the shape to check is that wider datasets cost more and
// that the one-off cost stays practical.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "exp/pipeline.h"

namespace guardrail {
namespace {

// Thread-scaling sweep for the parallel synthesis engine: re-run a
// representative dataset at 1/2/4/8 threads and record the synthesize-span
// wall-clock. Results are written as BENCH_table4_thread_scaling.json (one
// object per thread count) so plotting scripts can consume them alongside
// the table output. Speedups depend on the host's core count; on a 1-core
// CI box all four rows are expected to be flat.
int RunThreadScaling() {
  const int kThreads[] = {1, 2, 4, 8};
  const int dataset_id = bench::BenchDatasetIds().front();
  bench::TextTable table(
      {"Threads", "Synthesize (s)", "Structure", "Fill", "Speedup"});
  std::string json = "[\n";
  double baseline = 0.0;
  for (int t : kThreads) {
    bench::ResetBenchTelemetry();
    ThreadPool::SetSharedWorkers(t - 1);  // Caller participates: t-1 workers.
    exp::ExperimentConfig config = bench::DefaultBenchConfig();
    config.train_model = false;
    config.synthesis.num_threads = t;
    auto prepared = exp::PrepareDataset(dataset_id, config);
    if (!prepared.ok()) {
      std::fprintf(stderr, "dataset %d failed: %s\n", dataset_id,
                   prepared.status().ToString().c_str());
      return 1;
    }
    double total = bench::SpanSeconds("synthesize");
    double structure = bench::SpanSeconds("structure");
    double fill = bench::SpanSeconds("sketch_fill");
    if (t == 1) baseline = total;
    table.AddRow({bench::FmtInt(t), bench::Fmt(total, 4),
                  bench::Fmt(structure, 4), bench::Fmt(fill, 4),
                  total > 0 ? bench::Fmt(baseline / total, 2) + "x" : "-"});
    json += "  {\"bench\": \"table4_thread_scaling\", \"dataset\": " +
            std::to_string(dataset_id) +
            ", \"threads\": " + std::to_string(t) +
            ", \"synthesize_seconds\": " + bench::Fmt(total, 6) +
            ", \"structure_seconds\": " + bench::Fmt(structure, 6) +
            ", \"fill_seconds\": " + bench::Fmt(fill, 6) + "}";
    json += (t == kThreads[3]) ? "\n" : ",\n";
  }
  ThreadPool::SetSharedWorkers(ThreadPool::DefaultThreads() - 1);
  json += "]\n";
  std::printf("\nThread scaling (dataset %d; output programs are identical "
              "at every width):\n\n", dataset_id);
  table.Print();
  if (std::FILE* f = std::fopen("BENCH_table4_thread_scaling.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_table4_thread_scaling.json\n");
  }
  return 0;
}

int Run() {
  // Timings are read back from the telemetry span counters, so this table
  // prints the same measurements a `--metrics-out` export would contain.
  bench::EnableBenchTelemetry();
  bench::TextTable table({"Dataset ID", "# Attr.", "Total Time (s)",
                          "Sampling", "Structure", "Enumeration", "Fill",
                          "Cache hit rate"});
  for (int id : bench::BenchDatasetIds()) {
    bench::ResetBenchTelemetry();
    exp::ExperimentConfig config = bench::DefaultBenchConfig();
    config.train_model = false;
    auto prepared = exp::PrepareDataset(id, config);
    if (!prepared.ok()) {
      std::fprintf(stderr, "dataset %d failed: %s\n", id,
                   prepared.status().ToString().c_str());
      return 1;
    }
    double hits =
        static_cast<double>(bench::CounterValue("sketch_filler.cache_hits"));
    double lookups =
        hits +
        static_cast<double>(bench::CounterValue("sketch_filler.cache_misses"));
    table.AddRow({bench::FmtInt(id),
                  bench::FmtInt((*prepared)->bundle.spec.num_attributes),
                  bench::Fmt(bench::SpanSeconds("aux_sample") +
                                 bench::SpanSeconds("structure") +
                                 bench::SpanSeconds("enumerate") +
                                 bench::SpanSeconds("sketch_fill"),
                             4),
                  bench::Fmt(bench::SpanSeconds("aux_sample"), 3),
                  bench::Fmt(bench::SpanSeconds("structure"), 3),
                  bench::Fmt(bench::SpanSeconds("enumerate"), 3),
                  bench::Fmt(bench::SpanSeconds("sketch_fill"), 3),
                  lookups > 0 ? bench::Fmt(hits / lookups) : "-"});
  }
  std::printf("Table 4: processing time for offline synthesis\n\n");
  table.Print();
  std::printf(
      "\nPaper shape: one-off cost, minutes-scale in Python; here the C++\n"
      "pipeline is faster in absolute terms but ordering with attribute\n"
      "count and the dominance of structure learning match.\n");
  return RunThreadScaling();
}

}  // namespace
}  // namespace guardrail

int main() { return guardrail::Run(); }
