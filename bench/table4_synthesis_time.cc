// Reproduces paper Table 4: offline synthesis wall-clock per dataset, with
// the pipeline-stage breakdown (auxiliary sampling, structure learning, MEC
// enumeration, sketch filling). Absolute times differ from the paper's
// Python prototype; the shape to check is that wider datasets cost more and
// that the one-off cost stays practical.

#include <cstdio>

#include "bench_common.h"
#include "exp/pipeline.h"

namespace guardrail {
namespace {

int Run() {
  bench::TextTable table({"Dataset ID", "# Attr.", "Total Time (s)",
                          "Sampling", "Structure", "Enumeration", "Fill",
                          "Cache hit rate"});
  for (int id : bench::BenchDatasetIds()) {
    exp::ExperimentConfig config = bench::DefaultBenchConfig();
    config.train_model = false;
    auto prepared = exp::PrepareDataset(id, config);
    if (!prepared.ok()) {
      std::fprintf(stderr, "dataset %d failed: %s\n", id,
                   prepared.status().ToString().c_str());
      return 1;
    }
    const core::SynthesisReport& r = (*prepared)->synthesis;
    double hits = static_cast<double>(r.cache_hits);
    double lookups = hits + static_cast<double>(r.cache_misses);
    table.AddRow({bench::FmtInt(id),
                  bench::FmtInt((*prepared)->bundle.spec.num_attributes),
                  bench::Fmt(r.sampling_seconds + r.structure_seconds +
                                 r.enumeration_seconds + r.fill_seconds,
                             4),
                  bench::Fmt(r.sampling_seconds, 3),
                  bench::Fmt(r.structure_seconds, 3),
                  bench::Fmt(r.enumeration_seconds, 3),
                  bench::Fmt(r.fill_seconds, 3),
                  lookups > 0 ? bench::Fmt(hits / lookups) : "-"});
  }
  std::printf("Table 4: processing time for offline synthesis\n\n");
  table.Print();
  std::printf(
      "\nPaper shape: one-off cost, minutes-scale in Python; here the C++\n"
      "pipeline is faster in absolute terms but ordering with attribute\n"
      "count and the dominance of structure learning match.\n");
  return 0;
}

}  // namespace
}  // namespace guardrail

int main() { return guardrail::Run(); }
